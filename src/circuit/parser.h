// SPICE-style netlist parser.
//
// One component card per line, first letter selecting the kind (SPICE
// convention), '*' or ';' starting comments, '.end' optional:
//
//   * three-stage amplifier, units V / kOhm / mA
//   Vcc vcc 0 18
//   R2  vcc V1 12k tol=1%
//   Q1  V1 N1 0 300 tol=2% vbe=0.7 vbespread=0.01
//   D1  in n1 0.2 imax=[-0.001,0.1,0,0.01]
//   C1  out 0 1u tol=5%
//   L1  a b 2m
//   A1  in out 2.5 tol=2%        ; ideal gain block
//
// Numeric values accept the usual magnitude suffixes (p n u m k M G,
// with 'meg' also accepted for 1e6). Tolerances accept "5%" or "0.05".
// The parser is unit-agnostic: values are stored as written (scaled by the
// suffix), matching the library's V / kOhm / mA convention when the cards
// are authored that way.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace flames::circuit {

/// Thrown on malformed input; carries the 1-based line number, the bare
/// message, and the raw card text (when known) so that callers — the CLI,
/// lint L4 diagnostics — can quote the offending source line.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : ParseError(line, message, std::string{}) {}
  ParseError(std::size_t line, const std::string& message, std::string card)
      : std::runtime_error("line " + std::to_string(line) + ": " + message +
                           (card.empty() ? std::string{}
                                         : " [card: " + card + "]")),
        line_(line),
        message_(message),
        card_(std::move(card)) {}

  [[nodiscard]] std::size_t line() const { return line_; }
  /// The message without the "line N:" prefix or the quoted card.
  [[nodiscard]] const std::string& message() const { return message_; }
  /// The raw source card; empty if the failure preceded any card.
  [[nodiscard]] const std::string& card() const { return card_; }

  /// A copy with the card attached (used by the parser's per-card wrapper;
  /// an already-attached card is kept).
  [[nodiscard]] ParseError withCard(const std::string& card) const {
    return card_.empty() ? ParseError(line_, message_, card) : *this;
  }

 private:
  std::size_t line_;
  std::string message_;
  std::string card_;
};

/// Parses a netlist from a stream; throws ParseError on malformed cards.
[[nodiscard]] Netlist parseNetlist(std::istream& is);

/// Parses a netlist from a string.
[[nodiscard]] Netlist parseNetlistString(const std::string& text);

/// Parses a netlist file; throws std::runtime_error if unreadable.
[[nodiscard]] Netlist parseNetlistFile(const std::string& path);

/// Parses one numeric token with an optional magnitude suffix
/// (p n u m k M/meg G); throws std::invalid_argument on garbage.
[[nodiscard]] double parseEngineeringValue(const std::string& token);

/// Serialises a netlist back to the card format; the output re-parses to an
/// equivalent netlist (component names must start with their kind letter —
/// they do for anything built through the Netlist factories or the parser;
/// a leading kind letter is prepended otherwise).
void writeNetlist(const Netlist& net, std::ostream& os);
[[nodiscard]] std::string writeNetlistString(const Netlist& net);

}  // namespace flames::circuit
