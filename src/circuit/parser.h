// SPICE-style netlist parser.
//
// One component card per line, first letter selecting the kind (SPICE
// convention), '*' or ';' starting comments, '.end' optional:
//
//   * three-stage amplifier, units V / kOhm / mA
//   Vcc vcc 0 18
//   R2  vcc V1 12k tol=1%
//   Q1  V1 N1 0 300 tol=2% vbe=0.7 vbespread=0.01
//   D1  in n1 0.2 imax=[-0.001,0.1,0,0.01]
//   C1  out 0 1u tol=5%
//   L1  a b 2m
//   A1  in out 2.5 tol=2%        ; ideal gain block
//
// Numeric values accept the usual magnitude suffixes (p n u m k M G,
// with 'meg' also accepted for 1e6). Tolerances accept "5%" or "0.05".
// The parser is unit-agnostic: values are stored as written (scaled by the
// suffix), matching the library's V / kOhm / mA convention when the cards
// are authored that way.
#pragma once

#include <iosfwd>
#include <string>

#include "circuit/netlist.h"

namespace flames::circuit {

/// Thrown on malformed input; carries the 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a netlist from a stream; throws ParseError on malformed cards.
[[nodiscard]] Netlist parseNetlist(std::istream& is);

/// Parses a netlist from a string.
[[nodiscard]] Netlist parseNetlistString(const std::string& text);

/// Parses a netlist file; throws std::runtime_error if unreadable.
[[nodiscard]] Netlist parseNetlistFile(const std::string& path);

/// Parses one numeric token with an optional magnitude suffix
/// (p n u m k M/meg G); throws std::invalid_argument on garbage.
[[nodiscard]] double parseEngineeringValue(const std::string& token);

/// Serialises a netlist back to the card format; the output re-parses to an
/// equivalent netlist (component names must start with their kind letter —
/// they do for anything built through the Netlist factories or the parser;
/// a leading kind letter is prepended otherwise).
void writeNetlist(const Netlist& net, std::ostream& os);
[[nodiscard]] std::string writeNetlistString(const Netlist& net);

}  // namespace flames::circuit
