// Circuit netlist: nodes and components with toleranced nominal parameters.
//
// The same netlist feeds two consumers:
//  * the DC operating-point simulator (circuit/mna.*), which plays the role
//    of the physical bench — faults are injected into a copy and the
//    simulated voltages become "measurements";
//  * the diagnostic model builder (constraints/model_builder.*), which turns
//    the nominal, toleranced netlist into the fuzzy constraint network the
//    FLAMES engine propagates through (paper §6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzzy/fuzzy_interval.h"

namespace flames::circuit {

/// Node handle; kGround (node 0) is the reference node.
using NodeId = std::uint32_t;
inline constexpr NodeId kGround = 0;

/// Component families supported by both the simulator and the diagnostic
/// model builder.
enum class ComponentKind {
  kResistor,   ///< pins {a, b}; value = resistance (ohm)
  kVSource,    ///< pins {plus, minus}; value = EMF (volt)
  kDiode,      ///< pins {anode, cathode}; value = forward drop Vf (volt)
  kGain,       ///< pins {in, out}; ideal voltage amplifier, value = gain
  kNpn,        ///< pins {collector, base, emitter}; value = beta
  kCapacitor,  ///< pins {a, b}; value = capacitance (open at DC)
  kInductor,   ///< pins {a, b}; value = inductance (short at DC)
};

[[nodiscard]] std::string_view kindName(ComponentKind k);

/// One circuit component with its nominal parameters and tolerances.
///
/// `value` is the headline parameter (see ComponentKind); `relTol` is the
/// relative tolerance used to fuzzify it for the diagnostic model. BJTs
/// additionally carry vbe (with absolute spread vbeSpread); diodes may carry
/// a maximum-current rating expressed directly as a fuzzy set (paper Fig. 5
/// uses [-1, 100, 0, 10] microamps).
struct Component {
  std::string name;
  ComponentKind kind = ComponentKind::kResistor;
  std::vector<NodeId> pins;
  double value = 0.0;
  double relTol = 0.0;

  // BJT-only fields.
  double vbe = 0.7;
  double vbeSpread = 0.0;

  // Diode-only optional rating (in the same current unit used throughout).
  std::optional<fuzzy::FuzzyInterval> maxCurrent;

  /// Fuzzy nominal of the headline parameter: [v, v, |v|*relTol, |v|*relTol].
  [[nodiscard]] fuzzy::FuzzyInterval fuzzyValue() const {
    return fuzzy::FuzzyInterval::withTolerance(value, relTol);
  }

  /// Fuzzy nominal of the BJT base-emitter drop.
  [[nodiscard]] fuzzy::FuzzyInterval fuzzyVbe() const {
    return fuzzy::FuzzyInterval::about(vbe, vbeSpread);
  }
};

/// A named-node netlist builder and container.
class Netlist {
 public:
  Netlist();

  /// Creates (or returns) the node with this name. "0", "gnd" and "GND" are
  /// aliases of the ground node.
  NodeId node(const std::string& name);

  /// Looks up an existing node by name; throws if absent.
  [[nodiscard]] NodeId findNode(const std::string& name) const;

  [[nodiscard]] const std::string& nodeName(NodeId id) const;
  [[nodiscard]] std::size_t nodeCount() const { return nodeNames_.size(); }

  // --- component factories -------------------------------------------------
  Component& addResistor(const std::string& name, const std::string& a,
                         const std::string& b, double ohms,
                         double relTol = 0.05);
  Component& addVSource(const std::string& name, const std::string& plus,
                        const std::string& minus, double volts,
                        double relTol = 0.0);
  Component& addDiode(const std::string& name, const std::string& anode,
                      const std::string& cathode, double vf = 0.7,
                      double relTol = 0.0);
  Component& addGain(const std::string& name, const std::string& in,
                     const std::string& out, double gain, double relTol = 0.0);
  Component& addNpn(const std::string& name, const std::string& collector,
                    const std::string& base, const std::string& emitter,
                    double beta, double betaRelTol = 0.05, double vbe = 0.7,
                    double vbeSpread = 0.05);
  Component& addCapacitor(const std::string& name, const std::string& a,
                          const std::string& b, double farads,
                          double relTol = 0.05);
  Component& addInductor(const std::string& name, const std::string& a,
                         const std::string& b, double henries,
                         double relTol = 0.05);

  [[nodiscard]] const std::vector<Component>& components() const {
    return components_;
  }
  [[nodiscard]] std::vector<Component>& components() { return components_; }

  /// Finds a component by name; throws std::out_of_range if absent.
  [[nodiscard]] const Component& component(const std::string& name) const;
  [[nodiscard]] Component& component(const std::string& name);

  [[nodiscard]] bool hasComponent(const std::string& name) const;

 private:
  Component& add(Component c);

  std::vector<std::string> nodeNames_;
  std::vector<Component> components_;
};

}  // namespace flames::circuit
