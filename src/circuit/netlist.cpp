#include "circuit/netlist.h"

#include <algorithm>

namespace flames::circuit {

std::string_view kindName(ComponentKind k) {
  switch (k) {
    case ComponentKind::kResistor: return "resistor";
    case ComponentKind::kVSource: return "vsource";
    case ComponentKind::kDiode: return "diode";
    case ComponentKind::kGain: return "gain";
    case ComponentKind::kNpn: return "npn";
    case ComponentKind::kCapacitor: return "capacitor";
    case ComponentKind::kInductor: return "inductor";
  }
  return "unknown";
}

Netlist::Netlist() { nodeNames_.push_back("0"); }

NodeId Netlist::node(const std::string& name) {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  for (NodeId i = 0; i < nodeNames_.size(); ++i) {
    if (nodeNames_[i] == name) return i;
  }
  nodeNames_.push_back(name);
  return static_cast<NodeId>(nodeNames_.size() - 1);
}

NodeId Netlist::findNode(const std::string& name) const {
  if (name == "0" || name == "gnd" || name == "GND") return kGround;
  for (NodeId i = 0; i < nodeNames_.size(); ++i) {
    if (nodeNames_[i] == name) return i;
  }
  throw std::out_of_range("Netlist: unknown node '" + name + "'");
}

const std::string& Netlist::nodeName(NodeId id) const {
  if (id >= nodeNames_.size()) throw std::out_of_range("Netlist::nodeName");
  return nodeNames_[id];
}

Component& Netlist::add(Component c) {
  if (hasComponent(c.name)) {
    throw std::invalid_argument("Netlist: duplicate component '" + c.name +
                                "'");
  }
  components_.push_back(std::move(c));
  return components_.back();
}

Component& Netlist::addResistor(const std::string& name, const std::string& a,
                                const std::string& b, double ohms,
                                double relTol) {
  if (ohms <= 0.0) throw std::invalid_argument("addResistor: ohms <= 0");
  Component c;
  c.name = name;
  c.kind = ComponentKind::kResistor;
  c.pins = {node(a), node(b)};
  c.value = ohms;
  c.relTol = relTol;
  return add(std::move(c));
}

Component& Netlist::addVSource(const std::string& name,
                               const std::string& plus,
                               const std::string& minus, double volts,
                               double relTol) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kVSource;
  c.pins = {node(plus), node(minus)};
  c.value = volts;
  c.relTol = relTol;
  return add(std::move(c));
}

Component& Netlist::addDiode(const std::string& name, const std::string& anode,
                             const std::string& cathode, double vf,
                             double relTol) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kDiode;
  c.pins = {node(anode), node(cathode)};
  c.value = vf;
  c.relTol = relTol;
  return add(std::move(c));
}

Component& Netlist::addGain(const std::string& name, const std::string& in,
                            const std::string& out, double gain,
                            double relTol) {
  Component c;
  c.name = name;
  c.kind = ComponentKind::kGain;
  c.pins = {node(in), node(out)};
  c.value = gain;
  c.relTol = relTol;
  return add(std::move(c));
}

Component& Netlist::addNpn(const std::string& name,
                           const std::string& collector,
                           const std::string& base, const std::string& emitter,
                           double beta, double betaRelTol, double vbe,
                           double vbeSpread) {
  if (beta <= 0.0) throw std::invalid_argument("addNpn: beta <= 0");
  Component c;
  c.name = name;
  c.kind = ComponentKind::kNpn;
  c.pins = {node(collector), node(base), node(emitter)};
  c.value = beta;
  c.relTol = betaRelTol;
  c.vbe = vbe;
  c.vbeSpread = vbeSpread;
  return add(std::move(c));
}

Component& Netlist::addCapacitor(const std::string& name, const std::string& a,
                                 const std::string& b, double farads,
                                 double relTol) {
  if (farads <= 0.0) throw std::invalid_argument("addCapacitor: farads <= 0");
  Component c;
  c.name = name;
  c.kind = ComponentKind::kCapacitor;
  c.pins = {node(a), node(b)};
  c.value = farads;
  c.relTol = relTol;
  return add(std::move(c));
}

Component& Netlist::addInductor(const std::string& name, const std::string& a,
                                const std::string& b, double henries,
                                double relTol) {
  if (henries <= 0.0) {
    throw std::invalid_argument("addInductor: henries <= 0");
  }
  Component c;
  c.name = name;
  c.kind = ComponentKind::kInductor;
  c.pins = {node(a), node(b)};
  c.value = henries;
  c.relTol = relTol;
  return add(std::move(c));
}

const Component& Netlist::component(const std::string& name) const {
  for (const Component& c : components_) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("Netlist: unknown component '" + name + "'");
}

Component& Netlist::component(const std::string& name) {
  for (Component& c : components_) {
    if (c.name == name) return c;
  }
  throw std::out_of_range("Netlist: unknown component '" + name + "'");
}

bool Netlist::hasComponent(const std::string& name) const {
  return std::any_of(components_.begin(), components_.end(),
                     [&](const Component& c) { return c.name == name; });
}

}  // namespace flames::circuit
