#include "circuit/ac.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/lu.h"

namespace flames::circuit {

namespace {

using linalg::ComplexMatrix;
using linalg::ComplexVector;
using Cplx = std::complex<double>;

}  // namespace

double AcPoint::magnitudeDb(NodeId n) const {
  const double m = magnitude(n);
  return 20.0 * std::log10(std::max(m, 1e-30));
}

double AcPoint::phaseDegrees(NodeId n) const {
  return std::arg(v(n)) * 180.0 / std::numbers::pi;
}

AcSolver::AcSolver(Netlist net, AcOptions options)
    : net_(std::move(net)), options_(options) {
  dc_ = DcSolver(net_).solve();
  if (!dc_.converged) {
    throw std::runtime_error("AcSolver: DC operating point did not converge");
  }
}

AcPoint AcSolver::solve(double omega, const std::string& acSource) const {
  const Component& src = net_.component(acSource);
  if (src.kind != ComponentKind::kVSource) {
    throw std::runtime_error("AcSolver: AC source must be a vsource");
  }

  const std::size_t nodes = net_.nodeCount();
  auto nodeRow = [&](NodeId n) -> long {
    return n == kGround ? -1 : static_cast<long>(n - 1);
  };

  // Branch unknowns: every vsource (AC-shorted or driving), every gain
  // output and every inductor.
  std::map<std::string, std::size_t> branchIndex;
  std::size_t next = nodes - 1;
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kVSource || c.kind == ComponentKind::kGain ||
        c.kind == ComponentKind::kInductor) {
      branchIndex[c.name] = next++;
    }
  }

  ComplexMatrix a(next, next);
  ComplexVector b(next, Cplx{});

  auto stampAdmittance = [&](NodeId p, NodeId q, Cplx y) {
    const long rp = nodeRow(p), rq = nodeRow(q);
    if (rp >= 0) a.addAt(static_cast<std::size_t>(rp),
                         static_cast<std::size_t>(rp), y);
    if (rq >= 0) a.addAt(static_cast<std::size_t>(rq),
                         static_cast<std::size_t>(rq), y);
    if (rp >= 0 && rq >= 0) {
      a.addAt(static_cast<std::size_t>(rp), static_cast<std::size_t>(rq), -y);
      a.addAt(static_cast<std::size_t>(rq), static_cast<std::size_t>(rp), -y);
    }
  };
  auto stampBranchCurrent = [&](NodeId p, NodeId q, std::size_t col,
                                Cplx w = Cplx{1.0}) {
    const long rp = nodeRow(p), rq = nodeRow(q);
    if (rp >= 0) a.addAt(static_cast<std::size_t>(rp), col, w);
    if (rq >= 0) a.addAt(static_cast<std::size_t>(rq), col, -w);
  };
  auto stampBranchVoltage = [&](std::size_t row, NodeId p, NodeId q, Cplx e,
                                Cplx impedance = Cplx{}) {
    const long rp = nodeRow(p), rq = nodeRow(q);
    if (rp >= 0) a.addAt(row, static_cast<std::size_t>(rp), Cplx{1.0});
    if (rq >= 0) a.addAt(row, static_cast<std::size_t>(rq), Cplx{-1.0});
    if (impedance != Cplx{}) a.addAt(row, row, -impedance);
    b[row] = e;
  };

  const double vt = options_.thermalVoltage;
  for (const Component& c : net_.components()) {
    switch (c.kind) {
      case ComponentKind::kResistor:
        stampAdmittance(c.pins[0], c.pins[1], Cplx{1.0 / c.value});
        break;
      case ComponentKind::kCapacitor:
        stampAdmittance(c.pins[0], c.pins[1], Cplx{0.0, omega * c.value});
        break;
      case ComponentKind::kInductor: {
        // Branch with V = jwL * I (handles the w = 0 short cleanly).
        const std::size_t j = branchIndex.at(c.name);
        stampBranchCurrent(c.pins[0], c.pins[1], j);
        stampBranchVoltage(j, c.pins[0], c.pins[1], Cplx{},
                           Cplx{0.0, omega * c.value});
        break;
      }
      case ComponentKind::kVSource: {
        const std::size_t j = branchIndex.at(c.name);
        stampBranchCurrent(c.pins[0], c.pins[1], j);
        stampBranchVoltage(j, c.pins[0], c.pins[1],
                           c.name == acSource ? Cplx{1.0} : Cplx{});
        break;
      }
      case ComponentKind::kGain: {
        const std::size_t j = branchIndex.at(c.name);
        const long rOut = nodeRow(c.pins[1]);
        const long rIn = nodeRow(c.pins[0]);
        if (rOut >= 0) {
          a.addAt(static_cast<std::size_t>(rOut), j, Cplx{1.0});
          a.addAt(j, static_cast<std::size_t>(rOut), Cplx{1.0});
        }
        if (rIn >= 0) a.addAt(j, static_cast<std::size_t>(rIn), Cplx{-c.value});
        break;
      }
      case ComponentKind::kDiode: {
        const auto it = dc_.states.find(c.name);
        if (it == dc_.states.end() || it->second != DeviceState::kOn) break;
        const double id = dc_.branchCurrents.count(c.name) != 0
                              ? dc_.branchCurrents.at(c.name)
                              : 0.0;
        if (id <= 0.0) break;
        const double rd = options_.diodeIdeality * vt / id;
        stampAdmittance(c.pins[0], c.pins[1], Cplx{1.0 / rd});
        break;
      }
      case ComponentKind::kNpn: {
        const auto it = dc_.states.find(c.name);
        if (it == dc_.states.end() || it->second != DeviceState::kOn) break;
        const double ib = dc_.branchCurrents.count(c.name) != 0
                              ? dc_.branchCurrents.at(c.name)
                              : 0.0;
        const double ic = c.value * ib;
        if (ic <= 0.0) break;
        const double gm = ic / vt;
        const double rpi = c.value / gm;
        const NodeId collector = c.pins[0], base = c.pins[1],
                     emitter = c.pins[2];
        // r_pi between base and emitter.
        stampAdmittance(base, emitter, Cplx{1.0 / rpi});
        // g_m * v_be from collector to emitter (VCCS stamp).
        const long rc = nodeRow(collector), re = nodeRow(emitter);
        const long rb = nodeRow(base);
        auto add = [&](long row, long col, double v) {
          if (row >= 0 && col >= 0) {
            a.addAt(static_cast<std::size_t>(row),
                    static_cast<std::size_t>(col), Cplx{v});
          }
        };
        add(rc, rb, gm);
        add(rc, re, -gm);
        add(re, rb, -gm);
        add(re, re, gm);
        break;
      }
    }
  }

  const auto solution = linalg::solveLinearComplex(a, b);
  if (!solution) throw std::runtime_error("AcSolver: singular AC system");

  AcPoint point;
  point.omega = omega;
  point.nodeVoltages.assign(nodes, Cplx{});
  for (NodeId n = 1; n < nodes; ++n) {
    point.nodeVoltages[n] = (*solution)[static_cast<std::size_t>(nodeRow(n))];
  }
  return point;
}

double AcSolver::gainMagnitude(double hertz, const std::string& acSource,
                               const std::string& node) const {
  const double omega = 2.0 * std::numbers::pi * hertz;
  return solve(omega, acSource).magnitude(net_.findNode(node));
}

std::vector<double> acMagnitudeSweep(const Netlist& net,
                                     const std::string& acSource,
                                     const std::string& node,
                                     const std::vector<double>& hertz,
                                     AcOptions options) {
  const AcSolver solver(net, options);
  std::vector<double> out;
  out.reserve(hertz.size());
  for (double f : hertz) {
    out.push_back(solver.gainMagnitude(f, acSource, node));
  }
  return out;
}

}  // namespace flames::circuit
