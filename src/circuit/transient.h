// Transient (time-domain) simulation.
//
// Completes the "dynamic systems" substrate (paper §2.1 discusses dynamic
// circuits as the hard case for model-based diagnosis): the circuit is
// integrated with backward Euler, replacing each reactive element by its
// companion model at every step —
//
//   capacitor:  i = C/h * v(t) - C/h * v(t-h)   (conductance + current src)
//   inductor:   v = L/h * i(t) - L/h * i(t-h)   (branch with history EMF)
//
// and re-solving the nonlinear DC system (diode/BJT state iteration) at
// each time point. Sources can be stepped to produce step responses, whose
// time constants are the dynamic signatures a diagnoser can measure.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"

namespace flames::circuit {

/// A source-value override as a function of time (seconds in the unit
/// system implied by the netlist: with kOhm/uF units, time is in ms).
using SourceWaveform = std::function<double(double time)>;

struct TransientOptions {
  double timeStep = 1e-2;
  int maxStateIterationsPerStep = 50;
};

/// Result of a transient run: node voltages per time point.
struct TransientResult {
  std::vector<double> time;
  /// waveforms[nodeId][k] = voltage of node at time[k].
  std::vector<std::vector<double>> waveforms;

  [[nodiscard]] const std::vector<double>& waveform(NodeId n) const {
    return waveforms.at(n);
  }
  [[nodiscard]] std::size_t steps() const { return time.size(); }
};

/// Backward-Euler transient solver. The initial condition is the DC
/// operating point of the netlist with all waveforms evaluated at t = 0.
class TransientSolver {
 public:
  explicit TransientSolver(Netlist net, TransientOptions options = {});

  /// Overrides a voltage source's value with a waveform.
  void setWaveform(const std::string& sourceName, SourceWaveform waveform);

  /// Integrates from 0 to `duration`. Throws std::runtime_error if any
  /// step's system is singular or fails to settle.
  [[nodiscard]] TransientResult run(double duration);

  /// Convenience: unit step on `sourceName` at t = 0 (from 0 to `level`),
  /// returning the waveform at `node`.
  [[nodiscard]] std::vector<double> stepResponse(const std::string& sourceName,
                                                 double level,
                                                 const std::string& node,
                                                 double duration);

  [[nodiscard]] const Netlist& netlist() const { return net_; }

 private:
  Netlist net_;
  TransientOptions options_;
  std::map<std::string, SourceWaveform> waveforms_;
};

/// Estimates the 10%-90% rise time of a step response; returns a negative
/// value if the waveform never crosses the thresholds.
[[nodiscard]] double riseTime(const std::vector<double>& time,
                              const std::vector<double>& waveform);

}  // namespace flames::circuit
