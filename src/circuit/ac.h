// AC small-signal analysis (the paper's "dynamic mode", §9).
//
// The circuit is linearised around its DC operating point and solved in the
// frequency domain with complex MNA:
//
//  * resistor: conductance 1/R;
//  * capacitor: admittance j w C;  inductor: impedance j w L (branch);
//  * gain block: ideal V(out) = A * V(in), as at DC;
//  * diode ON: small-signal resistance r_d = n VT / Id (const-drop model
//    idealises this to a short; we use the physical r_d so filters behave);
//    diode OFF: open;
//  * NPN active: hybrid-pi — g_m = Ic / VT into the collector, r_pi =
//    beta / g_m base-emitter; cutoff: open.
//
// Independent DC sources are AC grounds (shorted); the designated AC input
// source drives amplitude 1 at phase 0, so node results are transfer
// functions H(jw) from that input.
#pragma once

#include <complex>
#include <map>
#include <string>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"

namespace flames::circuit {

/// One AC solution at a single frequency.
struct AcPoint {
  double omega = 0.0;  ///< rad/s
  std::vector<std::complex<double>> nodeVoltages;  // indexed by NodeId

  [[nodiscard]] std::complex<double> v(NodeId n) const {
    return nodeVoltages.at(n);
  }
  [[nodiscard]] double magnitude(NodeId n) const { return std::abs(v(n)); }
  [[nodiscard]] double magnitudeDb(NodeId n) const;
  [[nodiscard]] double phaseDegrees(NodeId n) const;
};

struct AcOptions {
  /// Thermal voltage used for the hybrid-pi linearisation (volt). The
  /// default matches the V / kOhm / mA unit system used throughout.
  double thermalVoltage = 0.02585;
  /// Diode ideality factor for r_d = n VT / Id.
  double diodeIdeality = 1.0;
};

/// AC solver owning a copy of the netlist; the DC operating point is solved
/// once at construction to obtain conduction states and bias currents.
class AcSolver {
 public:
  /// Throws std::runtime_error if the DC operating point cannot be solved.
  explicit AcSolver(Netlist net, AcOptions options = {});

  /// Solves at angular frequency `omega` with `acSource` (a kVSource name)
  /// driving unit amplitude; all other sources are AC-shorted.
  /// Throws std::runtime_error on a singular system or unknown source.
  [[nodiscard]] AcPoint solve(double omega, const std::string& acSource) const;

  /// Convenience: |H| at a node for a frequency in hertz.
  [[nodiscard]] double gainMagnitude(double hertz, const std::string& acSource,
                                     const std::string& node) const;

  [[nodiscard]] const OperatingPoint& operatingPoint() const { return dc_; }

 private:
  Netlist net_;
  AcOptions options_;
  OperatingPoint dc_;
};

/// Sweep helper: |H| at `node` for each frequency (hertz).
[[nodiscard]] std::vector<double> acMagnitudeSweep(
    const Netlist& net, const std::string& acSource, const std::string& node,
    const std::vector<double>& hertz, AcOptions options = {});

}  // namespace flames::circuit
