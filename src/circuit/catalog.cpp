#include "circuit/catalog.h"

namespace flames::circuit {

Netlist paperFig2Chain() {
  Netlist n;
  // Absolute spreads of 0.05 expressed as relative tolerances on the
  // nominals: 0.05/1, 0.05/2, 0.05/3.
  n.addVSource("Va", "A", "0", 3.0, 0.0);
  n.addGain("amp1", "A", "B", 1.0, 0.05);
  n.addGain("amp2", "B", "C", 2.0, 0.025);
  n.addGain("amp3", "B", "D", 3.0, 0.05 / 3.0);
  return n;
}

Netlist paperFig5DiodeNetwork() {
  Netlist n;
  // Units: volts, kilo-ohms, milliamps — so 100 microamps reads as 0.1 and
  // the paper's fuzzy rating [-1, 100, 0, 10] uA becomes [-1e-3, .1, 0, .01].
  // The source level keeps the nominal diode current (~90 uA) inside the
  // rating, so only a faulted circuit trips the bound.
  n.addVSource("Vin", "in", "0", 0.8, 0.0);
  Component& d1 = n.addDiode("d1", "in", "n1", 0.2, 0.0);
  d1.maxCurrent = fuzzy::FuzzyInterval(-0.001, 0.100, 0.0, 0.010);
  n.addResistor("r1", "n1", "0", 10.0, 0.02);   // 10 kOhm
  n.addResistor("r2", "n1", "n2", 10.0, 0.02);  // 10 kOhm to the n2 tap
  n.addResistor("rload", "n2", "0", 10.0, 0.02);
  return n;
}

Netlist paperFig6ThreeStageAmp() {
  // Reconstruction of Fig. 6 with the figure's exact component inventory
  // (R1 200k, R2 12k, R3 24k, R4 3k, R5 2.2k, R6 1.8k; T1 beta 300,
  // T2 beta 200, T3 beta 100; Vbe = 0.7 V; Vcc = 18 V). The figure leaves
  // the wiring partly implicit; this arrangement keeps the single-path
  // property (Vs downstream of everything) and all transistors in the
  // linear region, which §9 states the chosen values ensure:
  //
  //   stage 1: collector-feedback common emitter
  //     R2: Vcc -> V1 (load), R1: V1 -> N1 (feedback), R3: N1 -> gnd,
  //     T1: C = V1, B = N1, E = gnd               => V1 ~ 7.1 V
  //   stage 2: degenerated common emitter, direct coupled
  //     T2: B = V1, C = V2, E = E2; R4: E2 -> gnd; R5: Vcc -> V2
  //                                                => V2 ~ 13 V
  //   stage 3: emitter follower output
  //     T3: B = V2, C = Vcc, E = Vs; R6: Vs -> gnd => Vs ~ 12.4 V
  // Tolerances are tight (1% resistors, 2% beta, 10 mV Vbe): §9 diagnoses
  // *slightly* deviated components through partial conflicts, which requires
  // nominal-prediction spreads comparable to the fault-induced shifts — a
  // bench-calibrated board, not a loose production one.
  Netlist n;
  n.addVSource("Vcc", "vcc", "0", 18.0, 0.0);
  n.addResistor("R2", "vcc", "V1", 12.0, 0.01);   // kOhm
  n.addResistor("R1", "V1", "N1", 200.0, 0.01);
  n.addResistor("R3", "N1", "0", 24.0, 0.01);
  n.addNpn("T1", "V1", "N1", "0", 300.0, 0.02, 0.7, 0.01);
  n.addResistor("R5", "vcc", "V2", 2.2, 0.01);
  n.addResistor("R4", "E2", "0", 3.0, 0.01);
  n.addNpn("T2", "V2", "V1", "E2", 200.0, 0.02, 0.7, 0.01);
  n.addResistor("R6", "Vs", "0", 1.8, 0.01);
  n.addNpn("T3", "vcc", "V2", "Vs", 100.0, 0.02, 0.7, 0.01);
  return n;
}

}  // namespace flames::circuit
