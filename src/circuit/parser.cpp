#include "circuit/parser.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace flames::circuit {

namespace {

// Splits a line into whitespace-separated tokens, dropping comments.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == '*' || ch == ';') break;  // comment to end of line
    if (std::isspace(static_cast<unsigned char>(ch))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

// Splits "key=value" into its parts; returns false for a bare token.
bool splitKeyValue(const std::string& token, std::string& key,
                   std::string& value) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  key = token.substr(0, eq);
  std::transform(key.begin(), key.end(), key.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  value = token.substr(eq + 1);
  return true;
}

double parseTolerance(const std::string& text, std::size_t line) {
  try {
    if (!text.empty() && text.back() == '%') {
      return parseEngineeringValue(text.substr(0, text.size() - 1)) / 100.0;
    }
    return parseEngineeringValue(text);
  } catch (const std::invalid_argument& e) {
    throw ParseError(line, std::string("bad tolerance: ") + e.what());
  }
}

// Parses "[m1,m2,alpha,beta]" into a fuzzy interval.
fuzzy::FuzzyInterval parseFuzzy(const std::string& text, std::size_t line) {
  if (text.size() < 2 || text.front() != '[' || text.back() != ']') {
    throw ParseError(line, "fuzzy literal must look like [m1,m2,a,b]");
  }
  std::vector<double> parts;
  std::string cur;
  for (char ch : text.substr(1, text.size() - 2)) {
    if (ch == ',') {
      parts.push_back(parseEngineeringValue(cur));
      cur.clear();
    } else {
      cur.push_back(ch);
    }
  }
  if (!cur.empty()) parts.push_back(parseEngineeringValue(cur));
  if (parts.size() != 4) {
    throw ParseError(line, "fuzzy literal needs exactly 4 numbers");
  }
  try {
    return {parts[0], parts[1], parts[2], parts[3]};
  } catch (const std::invalid_argument& e) {
    throw ParseError(line, std::string("bad fuzzy literal: ") + e.what());
  }
}

struct CardOptions {
  double tol = -1.0;  // unset
  double vbe = 0.7;
  double vbeSpread = 0.0;
  std::optional<fuzzy::FuzzyInterval> imax;
};

CardOptions parseOptions(const std::vector<std::string>& tokens,
                         std::size_t firstOption, std::size_t line) {
  CardOptions opts;
  for (std::size_t i = firstOption; i < tokens.size(); ++i) {
    std::string key, value;
    if (!splitKeyValue(tokens[i], key, value)) {
      throw ParseError(line, "expected key=value, got '" + tokens[i] + "'");
    }
    if (key == "tol") {
      opts.tol = parseTolerance(value, line);
    } else if (key == "vbe") {
      opts.vbe = parseEngineeringValue(value);
    } else if (key == "vbespread") {
      opts.vbeSpread = parseEngineeringValue(value);
    } else if (key == "imax") {
      opts.imax = parseFuzzy(value, line);
    } else {
      throw ParseError(line, "unknown option '" + key + "'");
    }
  }
  return opts;
}

void requireTokens(const std::vector<std::string>& tokens, std::size_t n,
                   std::size_t line, const char* what) {
  if (tokens.size() < n) {
    throw ParseError(line, std::string(what) + ": expected at least " +
                               std::to_string(n - 1) + " fields");
  }
}

}  // namespace

double parseEngineeringValue(const std::string& token) {
  if (token.empty()) throw std::invalid_argument("empty numeric token");
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("not a number: '" + token + "'");
  }
  std::string suffix = token.substr(pos);
  std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  static const std::map<std::string, double> kScales = {
      {"", 1.0},    {"p", 1e-12}, {"n", 1e-9}, {"u", 1e-6},
      {"m", 1e-3},  {"k", 1e3},   {"meg", 1e6}, {"g", 1e9},
  };
  // Datasheet-style uppercase 'M' means mega and must be resolved before
  // the case-folded lookup would read it as milli; lowercase 'm' and SPICE
  // 'meg' keep their usual meanings.
  if (token.substr(pos) == "M") return value * 1e6;
  auto it = kScales.find(suffix);
  if (it == kScales.end()) {
    throw std::invalid_argument("unknown magnitude suffix '" +
                                token.substr(pos) + "'");
  }
  return value * it->second;
}

Netlist parseNetlist(std::istream& is) {
  Netlist net;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head[0] == '.') {
      std::string directive = head;
      std::transform(directive.begin(), directive.end(), directive.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (directive == ".end") break;
      throw ParseError(lineNo, "unknown directive '" + head + "'", line);
    }

    const char kind =
        static_cast<char>(std::toupper(static_cast<unsigned char>(head[0])));
    try {
      switch (kind) {
        case 'R': {
          requireTokens(tokens, 4, lineNo, "resistor");
          const auto opts = parseOptions(tokens, 4, lineNo);
          net.addResistor(head, tokens[1], tokens[2],
                          parseEngineeringValue(tokens[3]),
                          opts.tol < 0.0 ? 0.0 : opts.tol);
          break;
        }
        case 'C': {
          requireTokens(tokens, 4, lineNo, "capacitor");
          const auto opts = parseOptions(tokens, 4, lineNo);
          net.addCapacitor(head, tokens[1], tokens[2],
                           parseEngineeringValue(tokens[3]),
                           opts.tol < 0.0 ? 0.0 : opts.tol);
          break;
        }
        case 'L': {
          requireTokens(tokens, 4, lineNo, "inductor");
          const auto opts = parseOptions(tokens, 4, lineNo);
          net.addInductor(head, tokens[1], tokens[2],
                          parseEngineeringValue(tokens[3]),
                          opts.tol < 0.0 ? 0.0 : opts.tol);
          break;
        }
        case 'V': {
          requireTokens(tokens, 4, lineNo, "vsource");
          const auto opts = parseOptions(tokens, 4, lineNo);
          net.addVSource(head, tokens[1], tokens[2],
                         parseEngineeringValue(tokens[3]),
                         opts.tol < 0.0 ? 0.0 : opts.tol);
          break;
        }
        case 'D': {
          requireTokens(tokens, 4, lineNo, "diode");
          const auto opts = parseOptions(tokens, 4, lineNo);
          Component& d = net.addDiode(head, tokens[1], tokens[2],
                                      parseEngineeringValue(tokens[3]),
                                      opts.tol < 0.0 ? 0.0 : opts.tol);
          d.maxCurrent = opts.imax;
          break;
        }
        case 'Q': {
          requireTokens(tokens, 5, lineNo, "transistor");
          const auto opts = parseOptions(tokens, 5, lineNo);
          net.addNpn(head, tokens[1], tokens[2], tokens[3],
                     parseEngineeringValue(tokens[4]),
                     opts.tol < 0.0 ? 0.05 : opts.tol, opts.vbe,
                     opts.vbeSpread);
          break;
        }
        case 'A': {
          requireTokens(tokens, 4, lineNo, "gain block");
          const auto opts = parseOptions(tokens, 4, lineNo);
          net.addGain(head, tokens[1], tokens[2],
                      parseEngineeringValue(tokens[3]),
                      opts.tol < 0.0 ? 0.0 : opts.tol);
          break;
        }
        default:
          throw ParseError(lineNo,
                           std::string("unknown component kind '") + head[0] +
                               "' (expected R C L V D Q or A)");
      }
    } catch (const ParseError& e) {
      // Inner helpers only know the line number; attach the raw card here
      // so every ParseError leaving the parser can quote its source.
      throw e.withCard(line);
    } catch (const std::exception& e) {
      throw ParseError(lineNo, e.what(), line);
    }
  }
  return net;
}

Netlist parseNetlistString(const std::string& text) {
  std::istringstream is(text);
  return parseNetlist(is);
}

namespace {

char kindLetter(ComponentKind k) {
  switch (k) {
    case ComponentKind::kResistor: return 'R';
    case ComponentKind::kVSource: return 'V';
    case ComponentKind::kDiode: return 'D';
    case ComponentKind::kGain: return 'A';
    case ComponentKind::kNpn: return 'Q';
    case ComponentKind::kCapacitor: return 'C';
    case ComponentKind::kInductor: return 'L';
  }
  return '?';
}

std::string cardName(const Component& c) {
  const char want = kindLetter(c.kind);
  if (!c.name.empty() &&
      std::toupper(static_cast<unsigned char>(c.name[0])) == want) {
    return c.name;
  }
  return std::string(1, want) + c.name;
}

}  // namespace

void writeNetlist(const Netlist& net, std::ostream& os) {
  os << "* written by flames::circuit::writeNetlist\n";
  os.precision(17);
  for (const Component& c : net.components()) {
    os << cardName(c);
    for (NodeId pin : c.pins) os << ' ' << net.nodeName(pin);
    os << ' ' << c.value;
    if (c.relTol > 0.0) os << " tol=" << c.relTol;
    if (c.kind == ComponentKind::kNpn) {
      os << " vbe=" << c.vbe;
      if (c.vbeSpread > 0.0) os << " vbespread=" << c.vbeSpread;
    }
    if (c.kind == ComponentKind::kDiode && c.maxCurrent) {
      os << " imax=[" << c.maxCurrent->m1() << ',' << c.maxCurrent->m2()
         << ',' << c.maxCurrent->alpha() << ',' << c.maxCurrent->beta()
         << ']';
    }
    os << '\n';
  }
  os << ".end\n";
}

std::string writeNetlistString(const Netlist& net) {
  std::ostringstream os;
  writeNetlist(net, os);
  return os.str();
}

Netlist parseNetlistFile(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw std::runtime_error("parseNetlistFile: cannot open " + path);
  }
  return parseNetlist(is);
}

}  // namespace flames::circuit
