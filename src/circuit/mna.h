// DC operating-point simulator (modified nodal analysis).
//
// This is the substitute for the paper's physical bench: the faulted netlist
// is solved for its DC operating point and selected node voltages are handed
// to the diagnostic engine as "measurements" (optionally fuzzified with a
// measurement-equipment spread).
//
// Device models match the diagnostic constraint models of §6.2:
//  * resistor: Ohm's law;
//  * independent voltage source;
//  * ideal gain block (Vout = A * Vin, infinite input impedance);
//  * diode: constant-drop Vf when conducting, open otherwise (state
//    iteration);
//  * NPN BJT: forward-active linear model Vbe = const, Ic = beta * Ib,
//    with a cutoff state (state iteration); saturation is detected and
//    reported, not modelled (the paper's circuits stay in the linear
//    region, §9).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace flames::circuit {

/// Per-transistor / per-diode conduction state after convergence.
enum class DeviceState { kOff, kOn };

/// Solved DC operating point.
struct OperatingPoint {
  bool converged = false;
  int iterations = 0;
  /// True if some BJT ended with Vce below the saturation margin — the
  /// linear-region assumption of the diagnostic model is then violated.
  bool saturationWarning = false;

  std::vector<double> nodeVoltages;          // indexed by NodeId
  std::map<std::string, double> branchCurrents;  // sources, diodes, BJT Ib
  std::map<std::string, DeviceState> states;     // diodes and BJTs

  /// Voltage of a node by id; ground is 0 by construction.
  [[nodiscard]] double v(NodeId n) const { return nodeVoltages.at(n); }
};

/// Simulator options.
struct MnaOptions {
  int maxStateIterations = 100;
  double vceSaturationMargin = 0.2;  ///< warn if an active BJT has Vce below
  double currentTolerance = 1e-12;
};

/// DC solver bound to one netlist.
class DcSolver {
 public:
  explicit DcSolver(const Netlist& net, MnaOptions options = {});

  /// Solves for the DC operating point. Throws std::runtime_error if the
  /// system is singular (badly formed circuit).
  [[nodiscard]] OperatingPoint solve() const;

  /// Convenience: node voltage by name from a solved point.
  [[nodiscard]] double voltage(const OperatingPoint& op,
                               const std::string& nodeName) const;

  /// Current through a component (resistor currents are recomputed from the
  /// node voltages; sources/diodes report their branch unknown; BJTs report
  /// base current — collector current is beta * Ib).
  [[nodiscard]] double current(const OperatingPoint& op,
                               const std::string& componentName) const;

 private:
  const Netlist& net_;
  MnaOptions options_;
};

}  // namespace flames::circuit
