// Fault injection (paper §7's common fault modes, plus connection opens).
//
// Faults are applied to a *copy* of the nominal netlist before simulation;
// the diagnostic engine never sees them — it only sees the resulting
// measurements, exactly as a bench technician would.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace flames::circuit {

/// The kinds of injected defects supported by the simulator.
enum class FaultKind {
  kOpen,        ///< component becomes (almost) an open circuit
  kShort,       ///< component becomes (almost) a short circuit
  kParamExact,  ///< headline parameter forced to `param`
  kParamScale,  ///< headline parameter multiplied by `param`
  kPinOpen,     ///< connection at pin index `param` breaks (node open)
};

[[nodiscard]] std::string_view faultKindName(FaultKind k);

/// One injected defect.
struct Fault {
  std::string component;
  FaultKind kind = FaultKind::kOpen;
  double param = 0.0;

  static Fault open(std::string comp) {
    return {std::move(comp), FaultKind::kOpen, 0.0};
  }
  static Fault shortCircuit(std::string comp) {
    return {std::move(comp), FaultKind::kShort, 0.0};
  }
  static Fault paramExact(std::string comp, double value) {
    return {std::move(comp), FaultKind::kParamExact, value};
  }
  static Fault paramScale(std::string comp, double factor) {
    return {std::move(comp), FaultKind::kParamScale, factor};
  }
  static Fault pinOpen(std::string comp, std::size_t pin) {
    return {std::move(comp), FaultKind::kPinOpen, static_cast<double>(pin)};
  }

  [[nodiscard]] std::string describe() const;

  friend bool operator==(const Fault&, const Fault&) = default;
};

/// Resistance used to emulate an open connection (kOhm units: 1e9 = 1 TOhm).
inline constexpr double kOpenResistance = 1e9;
/// Resistance used to emulate a short (kOhm units: 1e-6 = 1 mOhm).
inline constexpr double kShortResistance = 1e-6;

/// Returns a copy of the netlist with the faults applied.
///
/// Opens/shorts replace the component with an extreme resistor network so
/// the MNA matrix stays regular; pin opens splice a kOpenResistance between
/// the original node and a fresh floating node that the pin is moved to.
[[nodiscard]] Netlist applyFaults(const Netlist& nominal,
                                  const std::vector<Fault>& faults);

}  // namespace flames::circuit
