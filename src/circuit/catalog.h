// Reference circuits from the paper, ready to instantiate.
//
//  * paperFig2Chain()        — the 3-amplifier chain of Fig. 2 (gains 1, 2,
//                              3; amp2 and amp3 both driven from node B).
//  * paperFig5DiodeNetwork() — diode d1 feeding r1 (node n1) and r2 (node
//                              n2) of Fig. 5, with the fuzzy 100 uA rating.
//  * paperFig6ThreeStageAmp()— the 3-stage BJT amplifier of Fig. 6 used for
//                              the experimental results of Fig. 7.
#pragma once

#include "circuit/netlist.h"

namespace flames::circuit {

/// Fig. 2: Va --[amp1 x1]--> B --[amp2 x2]--> C, and B --[amp3 x3]--> D.
/// All gains carry +/-0.05 absolute spread (modelled as relTol on the
/// nominal), matching amp1[1,1,.05,.05], amp2[2,2,.05,.05], amp3[3,3,.05,.05].
[[nodiscard]] Netlist paperFig2Chain();

/// Fig. 5: source -> diode d1 (Vf = 0.2 V) -> node n1 -> r1 (10 kOhm) to
/// ground, and n1 -> r2 (10 kOhm) to node n2 -> ground... The paper's
/// fragment has d1 feeding two resistor branches whose voltages Vr1, Vr2 are
/// separately measurable; currents are limited by the diode rating
/// Id <= [−1, 100, 0, 10] microamps.
[[nodiscard]] Netlist paperFig5DiodeNetwork();

/// Fig. 6: 18 V supply; stage 1: R1 (200k) Vcc->N1, R2 (12k) N1->gnd,
/// T1 (beta 300) with collector load R3 (24k) producing V1; stage 2: T2
/// (beta 200) base at V1 via direct coupling, emitter resistor R4 (3k),
/// collector load R5 (2.2k) producing V2; stage 3: T3 (beta 100) with
/// emitter resistor R6 (1.8k) producing Vs. Vbe = 0.7 V for all transistors.
///
/// The paper's figure leaves some wiring implicit; this reconstruction keeps
/// every component of the figure (R1..R6, T1..T3) in a 3-stage
/// direct-coupled topology whose nominal operating point keeps all three
/// transistors in the linear region, which is the property §9 relies on.
[[nodiscard]] Netlist paperFig6ThreeStageAmp();

}  // namespace flames::circuit
