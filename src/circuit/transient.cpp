#include "circuit/transient.h"

#include <cmath>
#include <stdexcept>

namespace flames::circuit {

TransientSolver::TransientSolver(Netlist net, TransientOptions options)
    : net_(std::move(net)), options_(options) {
  if (options_.timeStep <= 0.0) {
    throw std::invalid_argument("TransientSolver: timeStep <= 0");
  }
}

void TransientSolver::setWaveform(const std::string& sourceName,
                                  SourceWaveform waveform) {
  const Component& c = net_.component(sourceName);
  if (c.kind != ComponentKind::kVSource) {
    throw std::invalid_argument("setWaveform: '" + sourceName +
                                "' is not a vsource");
  }
  waveforms_[sourceName] = std::move(waveform);
}

TransientResult TransientSolver::run(double duration) {
  const double h = options_.timeStep;

  // Initial condition: DC solution with waveforms evaluated at t = 0
  // (capacitors open, inductors short — the original netlist semantics).
  Netlist init = net_;
  for (const auto& [name, wf] : waveforms_) {
    init.component(name).value = wf(0.0);
  }
  MnaOptions mnaOpts;
  mnaOpts.maxStateIterations = options_.maxStateIterationsPerStep;
  const DcSolver initSolver(init, mnaOpts);
  const OperatingPoint init0 = initSolver.solve();
  if (!init0.converged) {
    throw std::runtime_error("TransientSolver: initial DC point diverged");
  }

  // Reactive-element state.
  std::map<std::string, double> capVoltage;  // v(pin0) - v(pin1)
  std::map<std::string, double> indCurrent;  // through, pin0 -> pin1
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kCapacitor) {
      capVoltage[c.name] = init0.v(c.pins[0]) - init0.v(c.pins[1]);
    } else if (c.kind == ComponentKind::kInductor) {
      indCurrent[c.name] = initSolver.current(init0, c.name);
    }
  }

  TransientResult result;
  result.time.push_back(0.0);
  result.waveforms.assign(net_.nodeCount(), {});
  for (NodeId n = 0; n < net_.nodeCount(); ++n) {
    result.waveforms[n].push_back(init0.v(n));
  }

  const auto steps = static_cast<std::size_t>(std::ceil(duration / h));
  for (std::size_t k = 1; k <= steps; ++k) {
    const double t = static_cast<double>(k) * h;

    // Build the companion-model netlist for this step.
    Netlist companion;
    for (const Component& c : net_.components()) {
      switch (c.kind) {
        case ComponentKind::kCapacitor: {
          // Thevenin backward Euler: series EMF v_prev then R = h/C.
          const std::string mid = c.name + "__x";
          Component src;
          src.name = c.name + "__v";
          src.kind = ComponentKind::kVSource;
          src.pins = {companion.node(net_.nodeName(c.pins[0])),
                      companion.node(mid)};
          src.value = capVoltage.at(c.name);
          companion.components().push_back(std::move(src));
          companion.addResistor(c.name + "__r", mid, net_.nodeName(c.pins[1]),
                                h / c.value, 0.0);
          break;
        }
        case ComponentKind::kInductor: {
          // Thevenin backward Euler: R = L/h then EMF -R * i_prev.
          const double rl = c.value / h;
          const std::string mid = c.name + "__x";
          companion.addResistor(c.name + "__r", net_.nodeName(c.pins[0]), mid,
                                rl, 0.0);
          Component src;
          src.name = c.name + "__v";
          src.kind = ComponentKind::kVSource;
          src.pins = {companion.node(mid),
                      companion.node(net_.nodeName(c.pins[1]))};
          src.value = -rl * indCurrent.at(c.name);
          companion.components().push_back(std::move(src));
          break;
        }
        case ComponentKind::kVSource: {
          const auto wf = waveforms_.find(c.name);
          Component src = c;
          src.pins = {companion.node(net_.nodeName(c.pins[0])),
                      companion.node(net_.nodeName(c.pins[1]))};
          if (wf != waveforms_.end()) src.value = wf->second(t);
          companion.components().push_back(std::move(src));
          break;
        }
        default: {
          Component copy = c;
          copy.pins.clear();
          for (NodeId pin : c.pins) {
            copy.pins.push_back(companion.node(net_.nodeName(pin)));
          }
          companion.components().push_back(std::move(copy));
          break;
        }
      }
    }

    const DcSolver solver(companion, mnaOpts);
    const OperatingPoint op = solver.solve();
    if (!op.converged) {
      throw std::runtime_error("TransientSolver: step " + std::to_string(k) +
                               " did not converge");
    }

    // Update reactive state.
    for (const Component& c : net_.components()) {
      if (c.kind == ComponentKind::kCapacitor) {
        capVoltage[c.name] =
            op.v(companion.findNode(net_.nodeName(c.pins[0]))) -
            op.v(companion.findNode(net_.nodeName(c.pins[1])));
      } else if (c.kind == ComponentKind::kInductor) {
        indCurrent[c.name] = solver.current(op, c.name + "__r");
      }
    }

    result.time.push_back(t);
    for (NodeId n = 0; n < net_.nodeCount(); ++n) {
      result.waveforms[n].push_back(
          op.v(companion.findNode(net_.nodeName(n))));
    }
  }
  return result;
}

std::vector<double> TransientSolver::stepResponse(
    const std::string& sourceName, double level, const std::string& node,
    double duration) {
  setWaveform(sourceName,
              [level](double t) { return t > 0.0 ? level : 0.0; });
  const TransientResult r = run(duration);
  return r.waveform(net_.findNode(node));
}

double riseTime(const std::vector<double>& time,
                const std::vector<double>& waveform) {
  if (time.size() != waveform.size() || waveform.empty()) return -1.0;
  const double v0 = waveform.front();
  const double v1 = waveform.back();
  const double lo = v0 + 0.1 * (v1 - v0);
  const double hi = v0 + 0.9 * (v1 - v0);
  double tLo = -1.0, tHi = -1.0;
  const bool rising = v1 >= v0;
  for (std::size_t i = 0; i < waveform.size(); ++i) {
    const double v = waveform[i];
    const bool pastLo = rising ? v >= lo : v <= lo;
    const bool pastHi = rising ? v >= hi : v <= hi;
    if (tLo < 0.0 && pastLo) tLo = time[i];
    if (tHi < 0.0 && pastHi) {
      tHi = time[i];
      break;
    }
  }
  if (tLo < 0.0 || tHi < 0.0) return -1.0;
  return tHi - tLo;
}

}  // namespace flames::circuit
