#include "circuit/mna.h"

#include <cmath>
#include <stdexcept>

#include "linalg/lu.h"

namespace flames::circuit {

namespace {

using linalg::Matrix;
using linalg::Vector;

// Index plan: node voltages for nodes 1..N-1 occupy [0, N-2]; each
// voltage-defined branch (vsource, gain output, conducting diode, active BJT
// base-emitter) appends one current unknown.
struct IndexPlan {
  std::size_t nodeCount = 0;  // including ground
  std::size_t unknowns = 0;

  [[nodiscard]] long nodeRow(NodeId n) const {
    return n == kGround ? -1 : static_cast<long>(n - 1);
  }
};

}  // namespace

DcSolver::DcSolver(const Netlist& net, MnaOptions options)
    : net_(net), options_(options) {}

OperatingPoint DcSolver::solve() const {
  const std::size_t nodes = net_.nodeCount();
  IndexPlan plan;
  plan.nodeCount = nodes;

  // Conduction states, iterated to consistency.
  std::map<std::string, DeviceState> states;
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kDiode) states[c.name] = DeviceState::kOn;
    if (c.kind == ComponentKind::kNpn) states[c.name] = DeviceState::kOn;
  }

  OperatingPoint op;
  for (int iter = 1; iter <= options_.maxStateIterations; ++iter) {
    // Count branch unknowns for the current state assignment.
    std::map<std::string, std::size_t> branchIndex;
    std::size_t next = nodes - 1;
    for (const Component& c : net_.components()) {
      const bool needsBranch =
          c.kind == ComponentKind::kVSource || c.kind == ComponentKind::kGain ||
          c.kind == ComponentKind::kInductor ||  // 0 V branch (DC short)
          (c.kind == ComponentKind::kDiode &&
           states[c.name] == DeviceState::kOn) ||
          (c.kind == ComponentKind::kNpn &&
           states[c.name] == DeviceState::kOn);
      if (needsBranch) branchIndex[c.name] = next++;
    }
    plan.unknowns = next;

    Matrix a = Matrix::square(plan.unknowns);
    Vector b(plan.unknowns, 0.0);

    auto stampConductance = [&](NodeId p, NodeId q, double g) {
      const long rp = plan.nodeRow(p), rq = plan.nodeRow(q);
      if (rp >= 0) a.addAt(static_cast<std::size_t>(rp),
                           static_cast<std::size_t>(rp), g);
      if (rq >= 0) a.addAt(static_cast<std::size_t>(rq),
                           static_cast<std::size_t>(rq), g);
      if (rp >= 0 && rq >= 0) {
        a.addAt(static_cast<std::size_t>(rp), static_cast<std::size_t>(rq),
                -g);
        a.addAt(static_cast<std::size_t>(rq), static_cast<std::size_t>(rp),
                -g);
      }
    };

    // Couples branch current `col` into the KCL rows of p (leaving, +w) and
    // q (entering, -w).
    auto stampBranchCurrent = [&](NodeId p, NodeId q, std::size_t col,
                                  double w = 1.0) {
      const long rp = plan.nodeRow(p), rq = plan.nodeRow(q);
      if (rp >= 0) a.addAt(static_cast<std::size_t>(rp), col, w);
      if (rq >= 0) a.addAt(static_cast<std::size_t>(rq), col, -w);
    };

    // Branch voltage equation row: V(p) - V(q) = e.
    auto stampBranchVoltage = [&](std::size_t row, NodeId p, NodeId q,
                                  double e) {
      const long rp = plan.nodeRow(p), rq = plan.nodeRow(q);
      if (rp >= 0) a.addAt(row, static_cast<std::size_t>(rp), 1.0);
      if (rq >= 0) a.addAt(row, static_cast<std::size_t>(rq), -1.0);
      b[row] = e;
    };

    for (const Component& c : net_.components()) {
      switch (c.kind) {
        case ComponentKind::kResistor:
          stampConductance(c.pins[0], c.pins[1], 1.0 / c.value);
          break;
        case ComponentKind::kVSource: {
          const std::size_t j = branchIndex[c.name];
          stampBranchCurrent(c.pins[0], c.pins[1], j);
          stampBranchVoltage(j, c.pins[0], c.pins[1], c.value);
          break;
        }
        case ComponentKind::kCapacitor:
          break;  // open at DC
        case ComponentKind::kInductor: {
          // Short at DC: a 0 V branch whose current is an unknown.
          const std::size_t j = branchIndex[c.name];
          stampBranchCurrent(c.pins[0], c.pins[1], j);
          stampBranchVoltage(j, c.pins[0], c.pins[1], 0.0);
          break;
        }
        case ComponentKind::kGain: {
          // V(out) = A * V(in); output behaves as an ideal source to ground.
          const std::size_t j = branchIndex[c.name];
          const long rOut = plan.nodeRow(c.pins[1]);
          const long rIn = plan.nodeRow(c.pins[0]);
          if (rOut >= 0) {
            a.addAt(static_cast<std::size_t>(rOut), j, 1.0);
            a.addAt(j, static_cast<std::size_t>(rOut), 1.0);
          }
          if (rIn >= 0) a.addAt(j, static_cast<std::size_t>(rIn), -c.value);
          break;
        }
        case ComponentKind::kDiode: {
          if (states[c.name] != DeviceState::kOn) break;  // open when off
          const std::size_t j = branchIndex[c.name];
          stampBranchCurrent(c.pins[0], c.pins[1], j);
          stampBranchVoltage(j, c.pins[0], c.pins[1], c.value);
          break;
        }
        case ComponentKind::kNpn: {
          if (states[c.name] != DeviceState::kOn) break;  // cutoff
          const NodeId collector = c.pins[0], base = c.pins[1],
                       emitter = c.pins[2];
          const std::size_t j = branchIndex[c.name];  // Ib unknown
          // Base-emitter branch: V(b) - V(e) = Vbe, current Ib.
          stampBranchCurrent(base, emitter, j);
          stampBranchVoltage(j, base, emitter, c.vbe);
          // Collector current beta * Ib from collector to emitter.
          stampBranchCurrent(collector, emitter, j, c.value);
          break;
        }
      }
    }

    const auto solution = linalg::solveLinear(a, b);
    if (!solution) {
      throw std::runtime_error("DcSolver: singular MNA system");
    }
    const Vector& x = *solution;

    // Extract node voltages.
    op.nodeVoltages.assign(nodes, 0.0);
    for (NodeId n = 1; n < nodes; ++n) {
      op.nodeVoltages[n] = x[static_cast<std::size_t>(plan.nodeRow(n))];
    }
    op.branchCurrents.clear();
    for (const auto& [name, idx] : branchIndex) op.branchCurrents[name] = x[idx];

    // Check state consistency and flip inconsistent devices.
    bool consistent = true;
    for (const Component& c : net_.components()) {
      if (c.kind == ComponentKind::kDiode) {
        DeviceState& s = states[c.name];
        if (s == DeviceState::kOn) {
          if (op.branchCurrents[c.name] < -options_.currentTolerance) {
            s = DeviceState::kOff;
            consistent = false;
          }
        } else {
          const double vd = op.v(c.pins[0]) - op.v(c.pins[1]);
          if (vd > c.value + 1e-9) {
            s = DeviceState::kOn;
            consistent = false;
          }
        }
      } else if (c.kind == ComponentKind::kNpn) {
        DeviceState& s = states[c.name];
        if (s == DeviceState::kOn) {
          if (op.branchCurrents[c.name] < -options_.currentTolerance) {
            s = DeviceState::kOff;
            consistent = false;
          }
        } else {
          const double vbe = op.v(c.pins[1]) - op.v(c.pins[2]);
          if (vbe > c.vbe + 1e-9) {
            s = DeviceState::kOn;
            consistent = false;
          }
        }
      }
    }

    op.iterations = iter;
    if (consistent) {
      op.converged = true;
      op.states = states;
      // Saturation check on active BJTs.
      for (const Component& c : net_.components()) {
        if (c.kind == ComponentKind::kNpn &&
            states[c.name] == DeviceState::kOn) {
          const double vce = op.v(c.pins[0]) - op.v(c.pins[2]);
          if (vce < options_.vceSaturationMargin) op.saturationWarning = true;
        }
      }
      return op;
    }
  }

  op.converged = false;
  op.states = states;
  return op;
}

double DcSolver::voltage(const OperatingPoint& op,
                         const std::string& nodeName) const {
  return op.v(net_.findNode(nodeName));
}

double DcSolver::current(const OperatingPoint& op,
                         const std::string& componentName) const {
  const Component& c = net_.component(componentName);
  switch (c.kind) {
    case ComponentKind::kResistor:
      return (op.v(c.pins[0]) - op.v(c.pins[1])) / c.value;
    case ComponentKind::kCapacitor:
      return 0.0;  // open at DC
    case ComponentKind::kVSource:
    case ComponentKind::kGain:
    case ComponentKind::kInductor:
      return op.branchCurrents.at(componentName);
    case ComponentKind::kDiode:
    case ComponentKind::kNpn: {
      const auto it = op.branchCurrents.find(componentName);
      return it == op.branchCurrents.end() ? 0.0 : it->second;
    }
  }
  throw std::logic_error("DcSolver::current: unhandled kind");
}

}  // namespace flames::circuit
