#include "circuit/fault.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace flames::circuit {

std::string_view faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kOpen: return "open";
    case FaultKind::kShort: return "short";
    case FaultKind::kParamExact: return "param-exact";
    case FaultKind::kParamScale: return "param-scale";
    case FaultKind::kPinOpen: return "pin-open";
  }
  return "unknown";
}

std::string Fault::describe() const {
  std::ostringstream os;
  os << component << ": " << faultKindName(kind);
  if (kind == FaultKind::kParamExact || kind == FaultKind::kParamScale) {
    os << ' ' << param;
  } else if (kind == FaultKind::kPinOpen) {
    os << " pin " << static_cast<std::size_t>(param);
  }
  return os.str();
}

namespace {

// Replaces `comp` (by name) with an extreme-valued resistor network so the
// faulted circuit remains solvable.
void replaceWithResistance(Netlist& net, const std::string& name,
                           double ohms) {
  Component& c = net.component(name);
  switch (c.kind) {
    case ComponentKind::kResistor:
    case ComponentKind::kDiode:
    case ComponentKind::kVSource:
    case ComponentKind::kCapacitor:
    case ComponentKind::kInductor:
      c.kind = ComponentKind::kResistor;
      c.pins.resize(2);
      c.value = ohms;
      c.relTol = 0.0;
      c.maxCurrent.reset();
      break;
    case ComponentKind::kGain: {
      // An open gain block leaves the output floating; a shorted one passes
      // the input through. Model both as a resistor bridge in->out.
      c.kind = ComponentKind::kResistor;
      c.value = ohms;
      c.relTol = 0.0;
      break;
    }
    case ComponentKind::kNpn: {
      // Dead transistor: replace with resistors C-E and B-E so no node is
      // left floating.
      const NodeId collector = c.pins[0], base = c.pins[1], emitter = c.pins[2];
      c.kind = ComponentKind::kResistor;
      c.pins = {collector, emitter};
      c.value = ohms;
      c.relTol = 0.0;
      Component be;
      be.name = c.name + "__be";
      be.kind = ComponentKind::kResistor;
      be.pins = {base, emitter};
      be.value = kOpenResistance;
      net.components().push_back(std::move(be));
      break;
    }
  }
}

void applyOne(Netlist& net, const Fault& f) {
  switch (f.kind) {
    case FaultKind::kOpen:
      replaceWithResistance(net, f.component, kOpenResistance);
      return;
    case FaultKind::kShort:
      replaceWithResistance(net, f.component, kShortResistance);
      return;
    case FaultKind::kParamExact:
      net.component(f.component).value = f.param;
      return;
    case FaultKind::kParamScale:
      net.component(f.component).value *= f.param;
      return;
    case FaultKind::kPinOpen: {
      Component& c = net.component(f.component);
      const auto pin = static_cast<std::size_t>(f.param);
      if (pin >= c.pins.size()) {
        throw std::invalid_argument("pinOpen: pin index out of range for " +
                                    f.component);
      }
      const NodeId oldNode = c.pins[pin];
      const NodeId floating =
          net.node(f.component + "__float" + std::to_string(pin));
      c.pins[pin] = floating;
      Component bridge;
      bridge.name = f.component + "__open" + std::to_string(pin);
      bridge.kind = ComponentKind::kResistor;
      bridge.pins = {oldNode, floating};
      bridge.value = kOpenResistance;
      net.components().push_back(std::move(bridge));
      return;
    }
  }
  throw std::logic_error("applyOne: unhandled fault kind");
}

}  // namespace

Netlist applyFaults(const Netlist& nominal, const std::vector<Fault>& faults) {
  Netlist net = nominal;
  for (const Fault& f : faults) applyOne(net, f);
  return net;
}

}  // namespace flames::circuit
