// Builds the diagnostic constraint model from a netlist (paper §6.2).
//
// For every component a correctness *assumption* is created; the component's
// behavioural constraints (Ohm's law, junction drops, current gain) are
// guarded by it. Kirchhoff's current law is stamped per node
// (assumption-free by default — wiring is trusted, as in the paper's Fig. 7
// where a node open surfaces through the component assumptions around it).
//
// Because analog networks contain simultaneous (feedback) loops that local
// propagation cannot solve from scratch, the builder also computes *nominal
// predictions* for the node voltages: the nominal operating point is solved
// once, every component parameter is perturbed by its tolerance, and each
// observable gets a fuzzy nominal [v, v, s, s] whose spread s is the sum of
// the per-component sensitivities and whose environment contains exactly the
// components the observable is sensitive to. This mirrors the paper's
// "Model / Prediction / Assumption" triples (Fig. 5) and gives measured
// quantities their Vn for the Dc evaluation.
#pragma once

#include <map>
#include <string>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "constraints/propagator.h"

namespace flames::constraints {

struct ModelBuildOptions {
  /// Give independent sources no assumption (they are trusted test
  /// equipment); matches the paper's candidate sets, which never contain the
  /// supply.
  bool trustSources = true;
  /// Add nominal fuzzy predictions for node voltages via sensitivity
  /// analysis (needs a solvable nominal operating point).
  bool addNominalPredictions = true;
  /// Voltage change below this does not count as sensitivity (volt).
  double sensitivityThreshold = 1e-7;
  /// Extra multiplier on the summed sensitivity spread (1 = linear sum).
  double spreadScale = 1.0;
  /// Run the netlist-level lint rules (L1 connectivity, L3 fuzzy-value
  /// sanity, L4 names) before building and throw lint::LintError when they
  /// report error-grade findings — a broken netlist is rejected with
  /// actionable diagnostics instead of surfacing as a singular MNA system
  /// or, worse, a silently vacuous model. Warnings never block here.
  bool lintBeforeBuild = true;
};

/// The constructed model plus its bookkeeping.
struct BuiltModel {
  Model model;
  /// component name -> correctness assumption.
  std::map<std::string, atms::AssumptionId> assumptionOf;
  /// Nominal DC operating point of the un-faulted netlist.
  circuit::OperatingPoint nominalOp;

  /// Quantity ids of the standard magnitudes.
  [[nodiscard]] QuantityId voltage(const std::string& node) const {
    return model.quantity("V(" + node + ")");
  }
  [[nodiscard]] QuantityId current(const std::string& component) const {
    return model.quantity("I(" + component + ")");
  }
};

/// Quantity naming helpers shared by the builder and its consumers.
[[nodiscard]] std::string voltageQuantityName(const std::string& node);
[[nodiscard]] std::string currentQuantityName(const std::string& component);

/// Builds the diagnostic model. Throws std::runtime_error if the nominal
/// operating point cannot be solved while predictions were requested.
[[nodiscard]] BuiltModel buildDiagnosticModel(const circuit::Netlist& net,
                                              ModelBuildOptions options = {});

}  // namespace flames::constraints
