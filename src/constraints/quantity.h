// Quantities and their fuzzy value entries (paper §6.1.1).
//
// A quantity is a named circuit magnitude (node voltage, branch current).
// During diagnosis each quantity accumulates *value entries*: fuzzy
// intervals, each supported by an assumption environment and tagged with its
// provenance (nominal prediction, measurement, or derivation through a
// constraint). The paper calls the discovery of a second value for an
// already-valued point a "coincidence"; the propagator resolves those into
// corroborations or (partial) conflicts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "atms/environment.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::constraints {

using QuantityId = std::uint32_t;

/// Stable id of a recorded derivation step (constraints/provenance.h).
/// Entry indices inside the propagator are unstable — subsumption can erase
/// kept entries — so everything provenance-related keys on this instead.
using ProvEntryId = std::uint32_t;
inline constexpr ProvEntryId kNoProvEntry = 0xffffffffu;

/// What a quantity measures.
enum class QuantityKind { kVoltage, kCurrent, kOther };

/// A named circuit magnitude.
struct Quantity {
  std::string name;
  QuantityKind kind = QuantityKind::kOther;
};

/// Provenance of a value entry.
enum class ValueSource {
  kNominal,   ///< a-priori prediction from the model (fuzzified nominal)
  kMeasured,  ///< entered as an observation
  kDerived,   ///< computed through a constraint
};

[[nodiscard]] std::string_view valueSourceName(ValueSource s);

/// One supported value of a quantity.
struct ValueEntry {
  fuzzy::FuzzyInterval value;
  atms::Environment env;
  ValueSource source = ValueSource::kDerived;
  /// Index of the producing constraint (-1 for nominal/measured entries).
  int fromConstraint = -1;
  /// True if a measurement participates anywhere in the derivation.
  bool fromMeasurement = false;
  /// Certainty of the derivation (min of constraint degrees used).
  double degree = 1.0;
  /// Derivation depth (0 for roots), used to bound propagation.
  int depth = 0;
  /// Stable provenance id; kNoProvEntry unless a ProvenanceLog is attached
  /// to the propagator (PropagatorOptions::provenance).
  ProvEntryId provId = kNoProvEntry;
};

}  // namespace flames::constraints
