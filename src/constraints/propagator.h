// Fuzzy value propagation with ATMS conflict recording (paper §6.1).
//
// The Model holds quantities, constraints, the assumption registry and the
// a-priori predictions (fuzzified nominal values and model-implied bounds,
// each supported by an assumption environment). The Propagator pushes
// measured and predicted values through the constraint network; every time a
// quantity that already has a value receives another one (a *coincidence*,
// paper Fig. 4) the degree of consistency Dc is evaluated:
//
//   Dc == 1          corroboration (recorded, does not exonerate — §6.1.2)
//   0 < Dc < 1       partial conflict: nogood of degree 1 - Dc
//   Dc == 0          conflict: nogood of degree 1
//
// The nogood environment is the union of the two supports. A crisp policy
// (DIANA-style baseline, §4.2/Fig. 5) is provided for comparison: values are
// widened to their supports and only empty intersections conflict.
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "atms/atms.h"
#include "constraints/constraint.h"
#include "constraints/provenance.h"
#include "constraints/quantity.h"
#include "constraints/schedule.h"
#include "fuzzy/consistency.h"

namespace flames::constraints {

/// A diagnostic model: quantities, constraints, assumptions, predictions.
class Model {
 public:
  /// Creates (or finds) a quantity by name.
  QuantityId addQuantity(const std::string& name,
                         QuantityKind kind = QuantityKind::kOther);

  [[nodiscard]] std::optional<QuantityId> findQuantity(
      const std::string& name) const;
  [[nodiscard]] QuantityId quantity(const std::string& name) const;
  [[nodiscard]] const Quantity& quantityInfo(QuantityId id) const;
  [[nodiscard]] std::size_t quantityCount() const { return quantities_.size(); }

  /// Creates (or finds) an assumption by name.
  atms::AssumptionId addAssumption(const std::string& name);
  [[nodiscard]] std::optional<atms::AssumptionId> findAssumption(
      const std::string& name) const;
  [[nodiscard]] const std::string& assumptionName(atms::AssumptionId id) const;
  [[nodiscard]] std::size_t assumptionCount() const {
    return assumptionNames_.size();
  }

  /// Renders an environment with assumption names: "{R1,T1}".
  [[nodiscard]] std::string describe(const atms::Environment& env) const;

  /// Installs a constraint; returns its index.
  std::size_t addConstraint(ConstraintPtr c);
  [[nodiscard]] const std::vector<ConstraintPtr>& constraints() const {
    return constraints_;
  }

  /// Registers an a-priori prediction (nominal value or model bound).
  void addPrediction(QuantityId q, fuzzy::FuzzyInterval value,
                     atms::Environment env, double degree = 1.0);

  struct Prediction {
    QuantityId quantity;
    fuzzy::FuzzyInterval value;
    atms::Environment env;
    double degree = 1.0;
  };
  [[nodiscard]] const std::vector<Prediction>& predictions() const {
    return predictions_;
  }

  /// Constraint indices touching each quantity (built lazily on demand).
  /// NOT safe to call concurrently while the index is stale — call
  /// warmIncidence() after the last mutation if the model will be shared
  /// across threads.
  [[nodiscard]] const std::vector<std::size_t>& constraintsOn(
      QuantityId q) const;

  /// Materialises the quantity->constraint incidence index so that all
  /// subsequent const access is read-only. A fully built model on which
  /// warmIncidence() has run can back any number of concurrent Propagators
  /// (buildDiagnosticModel() does this before returning).
  void warmIncidence() const;

 private:
  std::vector<Quantity> quantities_;
  std::vector<std::string> assumptionNames_;
  std::vector<ConstraintPtr> constraints_;
  std::vector<Prediction> predictions_;
  mutable std::vector<std::vector<std::size_t>> incidence_;
  mutable bool incidenceDirty_ = true;
};

/// How coincidences turn into conflicts.
enum class ConflictPolicy {
  kFuzzy,  ///< Dc-based partial conflicts (FLAMES)
  kCrisp,  ///< DIANA-style: conflict only on empty support intersection
};

/// One resolved coincidence, kept for reporting (the Fig. 7 table shows the
/// Dc of each measured-vs-nominal pair).
struct CoincidenceRecord {
  QuantityId quantity = 0;
  fuzzy::FuzzyInterval measuredSide;  // the value treated as Vm
  fuzzy::FuzzyInterval nominalSide;   // the value treated as Vn
  fuzzy::Consistency consistency;
  atms::Environment env;  // union of both supports
  bool measuredVsNominal = false;  ///< true when Vm is a direct measurement
};

struct PropagatorOptions {
  ConflictPolicy policy = ConflictPolicy::kFuzzy;
  /// Widen every value to its support (crisp-interval arithmetic emulation).
  bool crispifyValues = false;
  std::size_t maxEntriesPerQuantity = 24;
  std::size_t maxEnvSize = 12;
  int maxDepth = 12;
  /// Derived values whose support is wider than this are discarded: they
  /// arise from dividing by near-zero fuzzy factors and carry no
  /// diagnostic information.
  double maxDerivedWidth = 1e3;
  /// Partial conflicts weaker than this are treated as corroborations.
  /// (Fuzzy subtraction is not the exact inverse of addition, so healthy
  /// circuits produce sub-5% residual discrepancies between derivation
  /// paths; the floor keeps those out of the nogood database.)
  double minNogoodDegree = 0.05;
  std::size_t maxSteps = 500000;
  /// Cooperative cancellation hook, polled once per propagation step (the
  /// granularity at which a runaway diagnosis can be abandoned). When it
  /// returns true, run() throws CancelledError. Null = never cancelled.
  /// The service layer points this at a per-job deadline/cancel flag.
  std::function<bool()> cancelCheck;
  /// Derivation recording sink (constraints/provenance.h). Null (the
  /// default) disables recording, and the only hot-path cost is the null
  /// test itself; non-null, every kept entry and every recorded nogood is
  /// appended to the log and each ValueEntry carries a stable provId. The
  /// log must outlive the propagator's run.
  ProvenanceLog* provenance = nullptr;
  /// Compiled propagation schedule (constraints/schedule.h). Null (the
  /// default) keeps the original per-entry FIFO sweep. Non-null switches to
  /// the event-driven engine: constraints are *activated* when a watched
  /// quantity gains an entry (lowest layer drains first) and fire over only
  /// the delta of input combinations their per-slot watermarks have not yet
  /// consumed. steps() then counts kept entries instead of queue pops — the
  /// same certified bounds apply (every pop consumed one kept entry). The
  /// schedule must have been compiled from a model of identical shape and
  /// must outlive the propagator.
  const PropagationSchedule* schedule = nullptr;
};

/// Thrown by Propagator::run() (and propagated through diagnoseWith) when
/// PropagatorOptions::cancelCheck reports cancellation mid-flight.
class CancelledError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The propagation engine.
class Propagator {
 public:
  explicit Propagator(const Model& model, PropagatorOptions options = {});

  /// Enters an observation for a quantity (optionally guarded by a
  /// measurement-trust assumption environment) and propagates immediately if
  /// run() was already called; otherwise it is queued.
  void addMeasurement(QuantityId q, fuzzy::FuzzyInterval value,
                      atms::Environment env = {});

  /// Propagates to fixpoint (or until the step budget runs out).
  void run();

  /// True if run() reached a fixpoint within the step budget.
  [[nodiscard]] bool completed() const { return completed_; }
  [[nodiscard]] std::size_t steps() const { return steps_; }

  [[nodiscard]] const std::vector<ValueEntry>& values(QuantityId q) const;
  [[nodiscard]] const atms::NogoodDb& nogoods() const { return nogoods_; }
  [[nodiscard]] const std::vector<CoincidenceRecord>& coincidences() const {
    return coincidences_;
  }

  /// The worst (lowest-Dc) measured-vs-nominal coincidence for a quantity,
  /// if any — this is the Dc the paper tabulates per measured node.
  [[nodiscard]] std::optional<CoincidenceRecord> worstCoincidence(
      QuantityId q) const;

  [[nodiscard]] const Model& model() const { return model_; }

  /// Quantities whose entry list changed (gained or lost an entry) since
  /// the last markClean(). Lets an incremental caller check that a probe's
  /// effects stayed inside its static impact cone (oracle invariant I12).
  [[nodiscard]] std::vector<QuantityId> touchedQuantities() const;
  /// Resets the touched-quantity tracking (call between probes).
  void markClean();

  /// Derived entries discarded because their quantity was at the entry cap.
  /// Zero means this run kept every informative derivation, which makes the
  /// result arrival-order independent (confluence) — the exactness witness
  /// the incremental session checks before trusting a delta extension. Any
  /// saturation makes results order-sensitive: a value discarded today
  /// cannot coincide with a measurement that arrives tomorrow.
  [[nodiscard]] std::size_t saturatedDiscards() const {
    return saturatedDiscards_;
  }

 private:
  struct WorkItem {
    QuantityId quantity;
    std::size_t entryIndex;
  };

  // Adds an entry (with coincidence resolution and subsumption); returns
  // true if it was kept. `parents` (optional, read only when a provenance
  // log is attached) lists the recorded ids the entry was derived from —
  // slot-aligned with the producing constraint's variables for derived
  // entries, the coinciding pair for crisp refinements.
  bool addEntry(QuantityId q, ValueEntry entry,
                const ProvEntryId* parents = nullptr,
                std::size_t parentCount = 0);

  // Fires all constraints incident on q using entry `idx` as one input.
  void fire(QuantityId q, std::size_t entryIndex);

  // --- Scheduled (event-driven) engine, active when options_.schedule is
  // set. Constraints activate instead of entries queueing; each activation
  // fires the constraint over the watermark delta of input combinations.
  void runScheduled();
  void fireConstraint(std::size_t ci);
  // Activates the watchers of q (skipping `fromConstraint`: an entry never
  // participates in its own producer's firings — the echo rule).
  void notifyWatchers(QuantityId q, int fromConstraint);

  void resolveCoincidence(QuantityId q, const ValueEntry& a,
                          const ValueEntry& b);

  const Model& model_;
  PropagatorOptions options_;
  std::vector<std::vector<ValueEntry>> values_;
  std::deque<WorkItem> queue_;
  /// Crisp-policy interval refinements discovered during coincidence
  /// resolution; drained after the triggering addEntry completes (adding
  /// entries while iterating the entry list would invalidate iterators).
  struct PendingRefinement {
    QuantityId quantity = 0;
    ValueEntry entry;
    ProvEntryId parents[2] = {kNoProvEntry, kNoProvEntry};
  };
  std::vector<PendingRefinement> pendingRefinements_;
  /// Scratch for the slot-aligned parent ids while firing (avoids a heap
  /// allocation per derived combination when recording).
  std::vector<ProvEntryId> provParentsScratch_;
  bool drainingRefinements_ = false;
  atms::NogoodDb nogoods_;
  std::vector<CoincidenceRecord> coincidences_;
  std::size_t steps_ = 0;
  bool completed_ = false;
  bool seeded_ = false;

  // --- Scheduled-engine state (sized only when options_.schedule is set).
  /// Per-layer FIFO activation buckets (lowest non-empty layer pops first).
  std::vector<std::deque<std::size_t>> activation_;
  /// inQueue_[ci]: constraint ci is already activated (watch discipline).
  std::vector<char> inQueue_;
  /// watermark_[ci][slot]: entries of that slot's quantity already consumed
  /// by ci's past firings; a firing enumerates only combinations with at
  /// least one input above its slot's watermark. Erasures in addEntry keep
  /// the marks aligned with the surviving entries.
  std::vector<std::vector<std::size_t>> watermark_;
  /// Kept-entry budget tripped (schedule mode's analogue of the legacy
  /// step-budget abort).
  bool budgetExhausted_ = false;
  std::size_t saturatedDiscards_ = 0;
  /// touched_[q]: values_[q] changed since the last markClean().
  std::vector<char> touched_;
};

}  // namespace flames::constraints
