// Non-directional constraints over fuzzy quantities (paper §6.2).
//
// The model of the circuit is a network of constraints (Ohm's law,
// Kirchhoff's current law, device models). Analog behaviour is
// non-directional — any variable of a constraint can be solved for from the
// others — so each constraint exposes solveFor(target, inputs). Component
// parameters (R, gain, beta, Vf, Vbe) enter as *fuzzy constants* embedded in
// the constraint, and the constraint carries the assumption environment
// governing its validity (typically {component-is-correct}).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atms/environment.h"
#include "constraints/quantity.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::constraints {

/// Abstract non-directional constraint.
class Constraint {
 public:
  Constraint(std::string name, std::vector<QuantityId> variables,
             atms::Environment validity, double degree = 1.0)
      : name_(std::move(name)),
        variables_(std::move(variables)),
        validity_(std::move(validity)),
        degree_(degree) {}
  virtual ~Constraint() = default;

  Constraint(const Constraint&) = delete;
  Constraint& operator=(const Constraint&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<QuantityId>& variables() const {
    return variables_;
  }
  /// Assumptions under which the constraint is a valid model.
  [[nodiscard]] const atms::Environment& validity() const { return validity_; }
  /// Certainty degree of the constraint (expert rules may be < 1).
  [[nodiscard]] double degree() const { return degree_; }

  /// Solves for variables()[target] given fuzzy values of all the others
  /// (`inputs` is aligned with variables(); inputs[target] is ignored).
  /// Returns nullopt if this direction is not solvable.
  [[nodiscard]] virtual std::optional<fuzzy::FuzzyInterval> solveFor(
      std::size_t target,
      const std::vector<fuzzy::FuzzyInterval>& inputs) const = 0;

  /// Upper bound on |derived value| over every derivation toward
  /// variables()[target] whose result the propagator could retain under the
  /// given support-width cutoff (PropagatorOptions::maxDerivedWidth), when
  /// each input may be an arbitrarily narrow interval anywhere inside
  /// inputRanges[i] (aligned with variables(); inputRanges[target] is
  /// ignored, infinities mean "unknown").
  ///
  /// The bound exists because a constraint's fuzzy parameter contributes an
  /// irreducible width that scales with the operating point — e.g. a kept
  /// I = (Va-Vb)/R entry must satisfy |Va-Vb| * width(1/R) <= cutoff, which
  /// caps |I| at cutoff * sup(R) / width(R) no matter how crisp the inputs
  /// are. Used by the static envelope analysis (flames::analyze) to clip
  /// abstract transfers to what the runtime would actually keep; returning
  /// +infinity (the default) is always sound and means "no bound".
  [[nodiscard]] virtual double keptMagnitudeBound(
      std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
      double widthCutoff) const {
    (void)target;
    (void)inputRanges;
    (void)widthCutoff;
    return std::numeric_limits<double>::infinity();
  }

 private:
  std::string name_;
  std::vector<QuantityId> variables_;
  atms::Environment validity_;
  double degree_;
};

/// sum_i coeff[i] * var[i] = rhs, with crisp coefficients and fuzzy rhs.
/// Models KCL (currents sum to zero) and general linear relations.
class SumConstraint final : public Constraint {
 public:
  SumConstraint(std::string name, std::vector<QuantityId> variables,
                std::vector<double> coefficients, fuzzy::FuzzyInterval rhs,
                atms::Environment validity, double degree = 1.0);

  [[nodiscard]] std::optional<fuzzy::FuzzyInterval> solveFor(
      std::size_t target,
      const std::vector<fuzzy::FuzzyInterval>& inputs) const override;

  [[nodiscard]] double keptMagnitudeBound(
      std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
      double widthCutoff) const override;

 private:
  std::vector<double> coefficients_;
  fuzzy::FuzzyInterval rhs_;
};

/// var[0] - var[1] = drop (fuzzy constant): voltage sources, diode drops,
/// base-emitter junctions.
class DiffConstraint final : public Constraint {
 public:
  DiffConstraint(std::string name, QuantityId a, QuantityId b,
                 fuzzy::FuzzyInterval drop, atms::Environment validity,
                 double degree = 1.0);

  [[nodiscard]] std::optional<fuzzy::FuzzyInterval> solveFor(
      std::size_t target,
      const std::vector<fuzzy::FuzzyInterval>& inputs) const override;

  [[nodiscard]] double keptMagnitudeBound(
      std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
      double widthCutoff) const override;

 private:
  fuzzy::FuzzyInterval drop_;
};

/// var[1] = factor * var[0] (fuzzy factor): ideal gain blocks and the BJT
/// current relation Ic = beta * Ib.
class ScaleConstraint final : public Constraint {
 public:
  ScaleConstraint(std::string name, QuantityId input, QuantityId output,
                  fuzzy::FuzzyInterval factor, atms::Environment validity,
                  double degree = 1.0);

  [[nodiscard]] std::optional<fuzzy::FuzzyInterval> solveFor(
      std::size_t target,
      const std::vector<fuzzy::FuzzyInterval>& inputs) const override;

  [[nodiscard]] double keptMagnitudeBound(
      std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
      double widthCutoff) const override;

 private:
  fuzzy::FuzzyInterval factor_;
};

/// V(a) - V(b) = I * R (fuzzy R): Ohm's law; variables are {Va, Vb, I}.
class OhmConstraint final : public Constraint {
 public:
  OhmConstraint(std::string name, QuantityId va, QuantityId vb, QuantityId i,
                fuzzy::FuzzyInterval resistance, atms::Environment validity,
                double degree = 1.0);

  [[nodiscard]] std::optional<fuzzy::FuzzyInterval> solveFor(
      std::size_t target,
      const std::vector<fuzzy::FuzzyInterval>& inputs) const override;

  [[nodiscard]] double keptMagnitudeBound(
      std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
      double widthCutoff) const override;

 private:
  fuzzy::FuzzyInterval resistance_;
};

using ConstraintPtr = std::unique_ptr<Constraint>;

}  // namespace flames::constraints
