// Compiled propagation schedule — the runtime product of the static
// watch-set / impact-cone analysis (flames::analyze::computeSchedule).
//
// The schedule is computed from the bipartite constraint graph alone, before
// any propagation, and the Propagator consumes it as an alternative firing
// discipline (PropagatorOptions::schedule): instead of sweeping a per-entry
// FIFO, constraints are *activated* when a watched quantity gains an entry
// and fired over only the delta of not-yet-consumed input combinations (the
// geas propagator_ext / glasgow low_level_constraint_store idiom). Three
// static facts make that sound:
//
//   watch sets    a slot is watched iff some *other* slot of the constraint
//                 is statically solvable — an update there can change an
//                 output. Unwatched slots never feed a derivation, so their
//                 updates need not activate the constraint.
//   layers        constraints carry a priority layer: the BFS depth of
//                 their biconnected block in the block-cut tree, rooted at
//                 the blocks holding seeded quantities (predictions and
//                 measurable voltages). Activations drain lowest layer
//                 first, so value flow follows the topological order of
//                 blocks while constraints inside one block (a cycle) share
//                 a layer and simply re-activate until their slots quiesce.
//   impact cones  per quantity q, the set of quantities and constraints a
//                 new entry at q can reach through solvable directions,
//                 with a certified bound on the *extra* kept entries the
//                 cascade can produce: sum of retention bounds R(q') over
//                 the cone (analyze/cost.h). Incremental probes are checked
//                 against this bound at runtime (oracle invariant I12).
//
// The struct lives in flames::constraints (not flames::analyze) so the
// Propagator can consume it without depending on the analysis layer; the
// analyzer fills it in and layers its report types on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "constraints/quantity.h"

namespace flames::constraints {

struct PropagationSchedule {
  struct ConstraintPlan {
    /// Slot indices the constraint can be solved for (value-independent:
    /// probed through solveFor once, from the transfer structure alone).
    std::vector<std::size_t> solvableTargets;
    /// watchedSlots[i]: an entry landing in slot i's quantity can change
    /// some output of this constraint (a solvable target other than i
    /// exists). Sized to the constraint's arity.
    std::vector<char> watchedSlots;
    /// Priority layer (block-cut BFS depth; lower drains first).
    std::size_t layer = 0;
  };

  /// The statically bounded blast radius of a new entry at one quantity.
  struct ImpactCone {
    /// Quantities reachable through solvable directions (sorted, includes
    /// the source quantity itself).
    std::vector<QuantityId> quantities;
    /// Constraints fireable inside the cone (sorted indices).
    std::vector<std::size_t> constraints;
    /// Certified bound on the kept entries the cascade can add: the total
    /// retention capacity sum R(q') over the cone's quantities, computed at
    /// the entry cap the analysis assumed. Saturates (analyze::kCostSaturated).
    std::uint64_t stepBound = 0;
    /// True when the cone spans its entire connected component: a probe
    /// here re-propagates everything reachable, so the incremental win
    /// comes only from the watermarked delta discipline, not cone pruning.
    bool wholeComponent = false;
  };

  /// Indexed by constraint. Empty solvableTargets = inert constraint.
  std::vector<ConstraintPlan> constraints;
  /// watchers[q]: constraints with a watched slot on quantity q (each
  /// listed once, ascending). The activation sets of the scheduled engine.
  std::vector<std::vector<std::size_t>> watchers;
  /// Number of distinct layers (max layer + 1; at least 1 for any model
  /// with constraints).
  std::size_t layerCount = 1;
  /// Indexed by quantity.
  std::vector<ImpactCone> cones;

  /// Structural compatibility with a model (the schedule must have been
  /// compiled from a model of identical shape).
  [[nodiscard]] bool compatibleWith(std::size_t quantityCount,
                                    std::size_t constraintCount) const {
    return watchers.size() == quantityCount && cones.size() == quantityCount &&
           constraints.size() == constraintCount;
  }
};

}  // namespace flames::constraints
