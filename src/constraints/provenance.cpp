#include "constraints/provenance.h"

#include <stdexcept>

namespace flames::constraints {

std::string_view provKindName(ProvKind k) {
  switch (k) {
    case ProvKind::kRoot: return "root";
    case ProvKind::kDerived: return "derived";
    case ProvKind::kRefinement: return "refine";
  }
  return "?";
}

ProvEntryId ProvenanceLog::addEntry(QuantityId q, ProvKind kind,
                                    const ValueEntry& e,
                                    const ProvEntryId* parents,
                                    std::size_t parentCount) {
  if (entries_.size() >= kNoProvEntry) {
    throw std::length_error("ProvenanceLog: entry id space exhausted");
  }
  ProvEntry p;
  p.quantity = q;
  p.kind = kind;
  p.source = e.source;
  p.constraintIndex = kind == ProvKind::kDerived ? e.fromConstraint : -1;
  p.value = e.value;
  p.env = e.env;
  p.degree = e.degree;
  p.depth = e.depth;
  p.parentsBegin = static_cast<std::uint32_t>(parents_.size());
  if (parents != nullptr) {
    parents_.insert(parents_.end(), parents, parents + parentCount);
  }
  p.parentsEnd = static_cast<std::uint32_t>(parents_.size());
  entries_.push_back(std::move(p));
  return static_cast<ProvEntryId>(entries_.size() - 1);
}

void ProvenanceLog::addNogood(QuantityId q, ProvEntryId a, ProvEntryId b,
                              double dc, double degree, bool kept,
                              atms::Environment env) {
  nogoods_.push_back({q, a, b, dc, degree, kept, std::move(env)});
}

std::vector<ProvEntryId> ProvenanceLog::parentsOf(const ProvEntry& e) const {
  return {parents_.begin() + e.parentsBegin, parents_.begin() + e.parentsEnd};
}

void ProvenanceLog::clear() {
  entries_.clear();
  parents_.clear();
  nogoods_.clear();
}

}  // namespace flames::constraints
