#include "constraints/constraint.h"

#include <cmath>
#include <stdexcept>

namespace flames::constraints {

using fuzzy::FuzzyInterval;

// --- SumConstraint -----------------------------------------------------------

SumConstraint::SumConstraint(std::string name,
                             std::vector<QuantityId> variables,
                             std::vector<double> coefficients,
                             FuzzyInterval rhs, atms::Environment validity,
                             double degree)
    : Constraint(std::move(name), std::move(variables), std::move(validity),
                 degree),
      coefficients_(std::move(coefficients)),
      rhs_(std::move(rhs)) {
  if (coefficients_.size() != this->variables().size()) {
    throw std::invalid_argument("SumConstraint: coefficient count mismatch");
  }
  for (double c : coefficients_) {
    if (c == 0.0) {
      throw std::invalid_argument("SumConstraint: zero coefficient");
    }
  }
}

std::optional<FuzzyInterval> SumConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  if (target >= variables().size()) return std::nullopt;
  FuzzyInterval acc = rhs_;
  for (std::size_t i = 0; i < variables().size(); ++i) {
    if (i == target) continue;
    acc = acc.sub(inputs[i].scaled(coefficients_[i]));
  }
  return acc.scaled(1.0 / coefficients_[target]);
}

// --- DiffConstraint ----------------------------------------------------------

DiffConstraint::DiffConstraint(std::string name, QuantityId a, QuantityId b,
                               FuzzyInterval drop, atms::Environment validity,
                               double degree)
    : Constraint(std::move(name), {a, b}, std::move(validity), degree),
      drop_(std::move(drop)) {}

std::optional<FuzzyInterval> DiffConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  if (target == 0) return inputs[1].add(drop_);   // a = b + drop
  if (target == 1) return inputs[0].sub(drop_);   // b = a - drop
  return std::nullopt;
}

// --- ScaleConstraint ---------------------------------------------------------

ScaleConstraint::ScaleConstraint(std::string name, QuantityId input,
                                 QuantityId output, FuzzyInterval factor,
                                 atms::Environment validity, double degree)
    : Constraint(std::move(name), {input, output}, std::move(validity),
                 degree),
      factor_(std::move(factor)) {
  const fuzzy::Cut s = factor_.support();
  if (s.lo <= 0.0 && s.hi >= 0.0) {
    throw std::invalid_argument(
        "ScaleConstraint: factor support must exclude zero (non-invertible)");
  }
}

std::optional<FuzzyInterval> ScaleConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  if (target == 1) return inputs[0].mul(factor_);  // out = in * k
  if (target == 0) return inputs[1].div(factor_);  // in = out / k
  return std::nullopt;
}

// --- OhmConstraint -----------------------------------------------------------

OhmConstraint::OhmConstraint(std::string name, QuantityId va, QuantityId vb,
                             QuantityId i, FuzzyInterval resistance,
                             atms::Environment validity, double degree)
    : Constraint(std::move(name), {va, vb, i}, std::move(validity), degree),
      resistance_(std::move(resistance)) {
  const fuzzy::Cut s = resistance_.support();
  if (s.lo <= 0.0) {
    throw std::invalid_argument("OhmConstraint: resistance must be > 0");
  }
}

std::optional<FuzzyInterval> OhmConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  switch (target) {
    case 0:  // Va = Vb + I * R
      return inputs[1].add(inputs[2].mul(resistance_));
    case 1:  // Vb = Va - I * R
      return inputs[0].sub(inputs[2].mul(resistance_));
    case 2:  // I = (Va - Vb) / R
      return inputs[0].sub(inputs[1]).div(resistance_);
    default:
      return std::nullopt;
  }
}

}  // namespace flames::constraints
