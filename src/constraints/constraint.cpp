#include "constraints/constraint.h"

#include <cmath>
#include <stdexcept>

#include <algorithm>
#include <limits>

namespace flames::constraints {

using fuzzy::FuzzyInterval;

namespace {

constexpr double kNoBound = std::numeric_limits<double>::infinity();

double maxAbs(const fuzzy::Cut& c) {
  return std::max(std::abs(c.lo), std::abs(c.hi));
}

}  // namespace

// --- SumConstraint -----------------------------------------------------------

SumConstraint::SumConstraint(std::string name,
                             std::vector<QuantityId> variables,
                             std::vector<double> coefficients,
                             FuzzyInterval rhs, atms::Environment validity,
                             double degree)
    : Constraint(std::move(name), std::move(variables), std::move(validity),
                 degree),
      coefficients_(std::move(coefficients)),
      rhs_(std::move(rhs)) {
  if (coefficients_.size() != this->variables().size()) {
    throw std::invalid_argument("SumConstraint: coefficient count mismatch");
  }
  for (double c : coefficients_) {
    if (c == 0.0) {
      throw std::invalid_argument("SumConstraint: zero coefficient");
    }
  }
}

std::optional<FuzzyInterval> SumConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  if (target >= variables().size()) return std::nullopt;
  FuzzyInterval acc = rhs_;
  for (std::size_t i = 0; i < variables().size(); ++i) {
    if (i == target) continue;
    acc = acc.sub(inputs[i].scaled(coefficients_[i]));
  }
  return acc.scaled(1.0 / coefficients_[target]);
}

double SumConstraint::keptMagnitudeBound(
    std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
    double widthCutoff) const {
  (void)inputRanges;
  if (target >= variables().size()) return kNoBound;
  // Crisp coefficients: the only irreducible width is the fuzzy rhs's,
  // scaled by 1/|c_t|. If that floor already exceeds the cutoff, nothing
  // derived this way is ever retained (bound 0 over-approximates "empty").
  const fuzzy::Cut rhs = rhs_.support();
  if (rhs.width() / std::abs(coefficients_[target]) > widthCutoff) return 0.0;
  return kNoBound;
}

// --- DiffConstraint ----------------------------------------------------------

DiffConstraint::DiffConstraint(std::string name, QuantityId a, QuantityId b,
                               FuzzyInterval drop, atms::Environment validity,
                               double degree)
    : Constraint(std::move(name), {a, b}, std::move(validity), degree),
      drop_(std::move(drop)) {}

std::optional<FuzzyInterval> DiffConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  if (target == 0) return inputs[1].add(drop_);   // a = b + drop
  if (target == 1) return inputs[0].sub(drop_);   // b = a - drop
  return std::nullopt;
}

double DiffConstraint::keptMagnitudeBound(
    std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
    double widthCutoff) const {
  (void)target;
  (void)inputRanges;
  // The drop's width is an irreducible floor on any derivation's width.
  if (drop_.support().width() > widthCutoff) return 0.0;
  return kNoBound;
}

// --- ScaleConstraint ---------------------------------------------------------

ScaleConstraint::ScaleConstraint(std::string name, QuantityId input,
                                 QuantityId output, FuzzyInterval factor,
                                 atms::Environment validity, double degree)
    : Constraint(std::move(name), {input, output}, std::move(validity),
                 degree),
      factor_(std::move(factor)) {
  const fuzzy::Cut s = factor_.support();
  if (s.lo <= 0.0 && s.hi >= 0.0) {
    throw std::invalid_argument(
        "ScaleConstraint: factor support must exclude zero (non-invertible)");
  }
}

std::optional<FuzzyInterval> ScaleConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  if (target == 1) return inputs[0].mul(factor_);  // out = in * k
  if (target == 0) return inputs[1].div(factor_);  // in = out / k
  return std::nullopt;
}

double ScaleConstraint::keptMagnitudeBound(
    std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
    double widthCutoff) const {
  (void)target;
  (void)inputRanges;
  // out = in * k with crisp in: width >= |in| * width(k), so a retained
  // entry has |in| <= cutoff / width(k) and |out| <= |in| * maxAbs(k).
  // in = out / k symmetrically: width >= |out| * width(1/k) =
  // |out| * width(k) / |klo*khi|, so |out| <= cutoff * |klo*khi| / width(k)
  // and |in| <= |out| / minAbs(k) — the same cutoff * maxAbs(k) / width(k).
  const fuzzy::Cut k = factor_.support();
  if (k.width() <= 0.0) return kNoBound;
  return widthCutoff * maxAbs(k) / k.width();
}

// --- OhmConstraint -----------------------------------------------------------

OhmConstraint::OhmConstraint(std::string name, QuantityId va, QuantityId vb,
                             QuantityId i, FuzzyInterval resistance,
                             atms::Environment validity, double degree)
    : Constraint(std::move(name), {va, vb, i}, std::move(validity), degree),
      resistance_(std::move(resistance)) {
  const fuzzy::Cut s = resistance_.support();
  if (s.lo <= 0.0) {
    throw std::invalid_argument("OhmConstraint: resistance must be > 0");
  }
}

std::optional<FuzzyInterval> OhmConstraint::solveFor(
    std::size_t target, const std::vector<FuzzyInterval>& inputs) const {
  switch (target) {
    case 0:  // Va = Vb + I * R
      return inputs[1].add(inputs[2].mul(resistance_));
    case 1:  // Vb = Va - I * R
      return inputs[0].sub(inputs[2].mul(resistance_));
    case 2:  // I = (Va - Vb) / R
      return inputs[0].sub(inputs[1]).div(resistance_);
    default:
      return std::nullopt;
  }
}

double OhmConstraint::keptMagnitudeBound(
    std::size_t target, const std::vector<fuzzy::Cut>& inputRanges,
    double widthCutoff) const {
  const fuzzy::Cut r = resistance_.support();
  if (r.width() <= 0.0) return kNoBound;
  // A retained I*R product has |I| <= cutoff / width(R) (the fuzzy R
  // contributes width |I| * width(R) even to a crisp I), so its magnitude
  // is at most cutoff * sup(R) / width(R). Equivalently for target I: the
  // dividend Va-Vb is capped by |Va-Vb| * width(1/R) <= cutoff.
  const double productCap = widthCutoff * r.hi / r.width();
  switch (target) {
    case 0:  // Va = Vb + I*R
      return maxAbs(inputRanges[1]) + productCap;
    case 1:  // Vb = Va - I*R
      return maxAbs(inputRanges[0]) + productCap;
    case 2:  // I = (Va - Vb) / R
      return productCap;
    default:
      return kNoBound;
  }
}

}  // namespace flames::constraints
