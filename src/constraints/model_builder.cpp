#include "constraints/model_builder.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "lint/lint.h"

namespace flames::constraints {

using atms::Environment;
using circuit::Component;
using circuit::ComponentKind;
using circuit::DcSolver;
using circuit::Netlist;
using circuit::NodeId;
using fuzzy::FuzzyInterval;

std::string voltageQuantityName(const std::string& node) {
  return "V(" + node + ")";
}

std::string currentQuantityName(const std::string& component) {
  return "I(" + component + ")";
}

namespace {

// Perturbs one parameter of one component and returns the voltage deltas at
// every node; empty if the perturbed circuit cannot be solved.
std::vector<double> voltageDeltas(const Netlist& net,
                                  const circuit::OperatingPoint& base,
                                  const std::string& comp, bool perturbVbe,
                                  double factorOrDelta) {
  Netlist copy = net;
  Component& c = copy.component(comp);
  if (perturbVbe) {
    c.vbe += factorOrDelta;
  } else {
    c.value *= factorOrDelta;
  }
  try {
    const auto op = DcSolver(copy).solve();
    if (!op.converged) return {};
    std::vector<double> deltas(base.nodeVoltages.size(), 0.0);
    for (std::size_t n = 0; n < deltas.size(); ++n) {
      deltas[n] = op.nodeVoltages[n] - base.nodeVoltages[n];
    }
    return deltas;
  } catch (const std::runtime_error&) {
    return {};
  }
}

}  // namespace

BuiltModel buildDiagnosticModel(const Netlist& net, ModelBuildOptions options) {
  if (options.lintBeforeBuild) {
    // Netlist-level rules only: they need nothing the builder has not seen
    // yet, and error severity means the model below could not produce
    // meaningful diagnoses anyway. The full pass (L2/L5/L6) runs at the
    // compile-cache and audit surfaces, which have the model and KB in hand.
    lint::enforce(lint::lintNetlist(net));
  }
  BuiltModel built;
  Model& model = built.model;

  // --- assumptions ---
  for (const Component& c : net.components()) {
    if (c.kind == ComponentKind::kVSource && options.trustSources) continue;
    built.assumptionOf[c.name] = model.addAssumption(c.name);
  }
  auto envOf = [&](const std::string& comp) {
    Environment e;
    const auto it = built.assumptionOf.find(comp);
    if (it != built.assumptionOf.end()) e.insert(it->second);
    return e;
  };

  // --- quantities ---
  for (NodeId n = 0; n < net.nodeCount(); ++n) {
    model.addQuantity(voltageQuantityName(net.nodeName(n)),
                      QuantityKind::kVoltage);
  }
  const QuantityId vGround = model.quantity(voltageQuantityName("0"));
  model.addPrediction(vGround, FuzzyInterval::crisp(0.0), Environment{});

  // Nominal operating point first: device conduction states shape the model.
  const DcSolver solver(net);
  built.nominalOp = solver.solve();
  if (!built.nominalOp.converged && options.addNominalPredictions) {
    throw std::runtime_error(
        "buildDiagnosticModel: nominal operating point did not converge");
  }

  auto vq = [&](NodeId n) {
    return model.quantity(voltageQuantityName(net.nodeName(n)));
  };

  // --- component constraints ---
  for (const Component& c : net.components()) {
    const Environment env = envOf(c.name);
    switch (c.kind) {
      case ComponentKind::kResistor: {
        const QuantityId i = model.addQuantity(currentQuantityName(c.name),
                                               QuantityKind::kCurrent);
        model.addConstraint(std::make_unique<OhmConstraint>(
            "ohm(" + c.name + ")", vq(c.pins[0]), vq(c.pins[1]), i,
            c.fuzzyValue(), env));
        break;
      }
      case ComponentKind::kVSource: {
        model.addQuantity(currentQuantityName(c.name), QuantityKind::kCurrent);
        model.addConstraint(std::make_unique<DiffConstraint>(
            "emf(" + c.name + ")", vq(c.pins[0]), vq(c.pins[1]),
            c.fuzzyValue(), env));
        break;
      }
      case ComponentKind::kGain: {
        model.addConstraint(std::make_unique<ScaleConstraint>(
            "gain(" + c.name + ")", vq(c.pins[0]), vq(c.pins[1]),
            c.fuzzyValue(), env));
        break;
      }
      case ComponentKind::kCapacitor: {
        // Open at DC: zero current under the capacitor's correctness.
        const QuantityId i = model.addQuantity(currentQuantityName(c.name),
                                               QuantityKind::kCurrent);
        model.addPrediction(i, FuzzyInterval::crisp(0.0), env);
        break;
      }
      case ComponentKind::kInductor: {
        // Short at DC: equal node voltages under the inductor's
        // correctness; its current is a free branch variable for KCL.
        model.addQuantity(currentQuantityName(c.name), QuantityKind::kCurrent);
        model.addConstraint(std::make_unique<DiffConstraint>(
            "short(" + c.name + ")", vq(c.pins[0]), vq(c.pins[1]),
            FuzzyInterval::crisp(0.0), env));
        break;
      }
      case ComponentKind::kDiode: {
        const QuantityId i = model.addQuantity(currentQuantityName(c.name),
                                               QuantityKind::kCurrent);
        const bool conducting =
            !built.nominalOp.converged ||
            (built.nominalOp.states.count(c.name) != 0 &&
             built.nominalOp.states.at(c.name) == circuit::DeviceState::kOn);
        if (conducting) {
          model.addConstraint(std::make_unique<DiffConstraint>(
              "vf(" + c.name + ")", vq(c.pins[0]), vq(c.pins[1]),
              c.fuzzyValue(), env));
          if (c.maxCurrent) {
            // The rating enters as a model prediction for the current; any
            // derived current is checked against it via Dc (paper Fig. 5).
            model.addPrediction(i, *c.maxCurrent, env);
          }
        } else {
          model.addPrediction(i, FuzzyInterval::crisp(0.0), env);
        }
        break;
      }
      case ComponentKind::kNpn: {
        const QuantityId ib = model.addQuantity("Ib(" + c.name + ")",
                                                QuantityKind::kCurrent);
        const QuantityId ic = model.addQuantity("Ic(" + c.name + ")",
                                                QuantityKind::kCurrent);
        const QuantityId ie = model.addQuantity("Ie(" + c.name + ")",
                                                QuantityKind::kCurrent);
        const bool active =
            !built.nominalOp.converged ||
            (built.nominalOp.states.count(c.name) != 0 &&
             built.nominalOp.states.at(c.name) == circuit::DeviceState::kOn);
        if (active) {
          model.addConstraint(std::make_unique<DiffConstraint>(
              "vbe(" + c.name + ")", vq(c.pins[1]), vq(c.pins[2]),
              c.fuzzyVbe(), env));
          model.addConstraint(std::make_unique<ScaleConstraint>(
              "beta(" + c.name + ")", ib, ic, c.fuzzyValue(), env));
          // Ie = Ic + Ib  <=>  1*ie - 1*ic - 1*ib = 0.
          model.addConstraint(std::make_unique<SumConstraint>(
              "kcl(" + c.name + ")", std::vector<QuantityId>{ie, ic, ib},
              std::vector<double>{1.0, -1.0, -1.0}, FuzzyInterval::crisp(0.0),
              env));
        } else {
          model.addPrediction(ib, FuzzyInterval::crisp(0.0), env);
          model.addPrediction(ic, FuzzyInterval::crisp(0.0), env);
          model.addPrediction(ie, FuzzyInterval::crisp(0.0), env);
        }
        break;
      }
    }
  }

  // --- Kirchhoff's current law per node ---
  for (NodeId n = 1; n < net.nodeCount(); ++n) {
    std::vector<QuantityId> vars;
    std::vector<double> coeffs;
    bool skip = false;
    for (const Component& c : net.components()) {
      for (std::size_t pin = 0; pin < c.pins.size(); ++pin) {
        if (c.pins[pin] != n) continue;
        switch (c.kind) {
          case ComponentKind::kResistor:
          case ComponentKind::kVSource:
          case ComponentKind::kDiode:
          case ComponentKind::kCapacitor:
          case ComponentKind::kInductor: {
            // Branch current flows pin0 -> pin1 through the element.
            const QuantityId i = model.quantity(currentQuantityName(c.name));
            vars.push_back(i);
            coeffs.push_back(pin == 0 ? 1.0 : -1.0);
            break;
          }
          case ComponentKind::kGain:
            // Input draws nothing; an ideal output can source any current,
            // so KCL at the output node is uninformative.
            if (pin == 1) skip = true;
            break;
          case ComponentKind::kNpn: {
            const char* names[3] = {"Ic(", "Ib(", "Ie("};
            const QuantityId i = model.quantity(std::string(names[pin]) +
                                                c.name + ")");
            // Ic and Ib flow into the device; Ie flows out of it.
            coeffs.push_back(pin == 2 ? -1.0 : 1.0);
            vars.push_back(i);
            break;
          }
        }
      }
    }
    if (skip || vars.empty()) continue;
    // Merge duplicate variables (a component with both pins on one node).
    std::vector<QuantityId> mergedVars;
    std::vector<double> mergedCoeffs;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      bool found = false;
      for (std::size_t j = 0; j < mergedVars.size(); ++j) {
        if (mergedVars[j] == vars[i]) {
          mergedCoeffs[j] += coeffs[i];
          found = true;
          break;
        }
      }
      if (!found) {
        mergedVars.push_back(vars[i]);
        mergedCoeffs.push_back(coeffs[i]);
      }
    }
    // Drop zeroed terms.
    std::vector<QuantityId> finalVars;
    std::vector<double> finalCoeffs;
    for (std::size_t i = 0; i < mergedVars.size(); ++i) {
      if (mergedCoeffs[i] != 0.0) {
        finalVars.push_back(mergedVars[i]);
        finalCoeffs.push_back(mergedCoeffs[i]);
      }
    }
    if (finalVars.empty()) continue;
    model.addConstraint(std::make_unique<SumConstraint>(
        "kcl(" + net.nodeName(n) + ")", finalVars, finalCoeffs,
        FuzzyInterval::crisp(0.0), Environment{}));
  }

  // --- nominal fuzzy predictions by sensitivity analysis ---
  if (options.addNominalPredictions && built.nominalOp.converged) {
    const std::size_t nodes = net.nodeCount();
    std::vector<double> spread(nodes, 0.0);
    std::vector<Environment> envs(nodes);

    for (const Component& c : net.components()) {
      const Environment env = envOf(c.name);
      if (env.empty()) continue;  // trusted component: no contribution

      // Tolerance bumps contribute to the prediction *spread*; components
      // without a tolerance still get a small dependency probe so that the
      // prediction's *environment* names every component it structurally
      // relies on (e.g. an exact diode drop pins a node voltage: zero
      // spread, but the prediction is wrong the moment the diode is).
      std::vector<std::vector<double>> deltaSets;
      if (c.relTol > 0.0) {
        deltaSets.push_back(
            voltageDeltas(net, built.nominalOp, c.name, false, 1.0 + c.relTol));
        deltaSets.push_back(
            voltageDeltas(net, built.nominalOp, c.name, false, 1.0 - c.relTol));
      }
      if (c.kind == ComponentKind::kNpn && c.vbeSpread > 0.0) {
        deltaSets.push_back(
            voltageDeltas(net, built.nominalOp, c.name, true, c.vbeSpread));
        deltaSets.push_back(
            voltageDeltas(net, built.nominalOp, c.name, true, -c.vbeSpread));
      }
      std::vector<double> worst(nodes, 0.0);
      for (const auto& ds : deltaSets) {
        for (std::size_t n = 0; n < ds.size() && n < nodes; ++n) {
          worst[n] = std::max(worst[n], std::abs(ds[n]));
        }
      }
      for (std::size_t n = 1; n < nodes; ++n) {
        if (worst[n] > options.sensitivityThreshold) {
          spread[n] += worst[n];
          envs[n] = envs[n].unionWith(env);
        }
      }

      constexpr double kDependencyProbe = 0.01;
      const auto depDeltas = voltageDeltas(net, built.nominalOp, c.name,
                                           false, 1.0 + kDependencyProbe);
      for (std::size_t n = 1; n < depDeltas.size() && n < nodes; ++n) {
        if (std::abs(depDeltas[n]) > options.sensitivityThreshold) {
          envs[n] = envs[n].unionWith(env);
        }
      }
    }

    for (NodeId n = 1; n < nodes; ++n) {
      const double v0 = built.nominalOp.nodeVoltages[n];
      const double s = spread[n] * options.spreadScale;
      model.addPrediction(vq(n), FuzzyInterval::about(v0, std::max(s, 1e-12)),
                          envs[n]);
    }
  }

  // Materialise the lazily built incidence index now: a compiled model is
  // shared read-only across concurrent Propagators (service layer), and the
  // first constraintsOn() call must not race.
  built.model.warmIncidence();
  return built;
}

}  // namespace flames::constraints
