// Derivation provenance for fuzzy propagation (the flames::prov substrate).
//
// When a ProvenanceLog is attached to a Propagator
// (PropagatorOptions::provenance), every kept value entry and every recorded
// nogood is appended here with enough structure to *replay* it without the
// engine: which constraint fired, which parent entries it consumed (one per
// constraint slot, with a sentinel at the solved-for slot), and — for
// nogoods — the two colliding entries plus the Dc area computation that
// condemned their combined environment.
//
// The log is append-only and arena-backed: parent lists live in one flat
// vector referenced by (begin, end) ranges, so recording costs one
// std::vector append per entry and the disabled path costs only the null
// check at the call sites. Entries are identified by their append index
// (ProvEntryId), which stays valid after the propagator erases subsumed
// entries from its working set; a parent id is therefore always smaller
// than the id of the entry that consumed it (the chains are acyclic by
// construction).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "atms/environment.h"
#include "constraints/quantity.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::constraints {

/// How a recorded entry came to be.
enum class ProvKind {
  kRoot,        ///< measurement or nominal prediction (no parents)
  kDerived,     ///< constraint application (slot-aligned parents)
  kRefinement,  ///< crisp-policy support intersection (two parents)
};

[[nodiscard]] std::string_view provKindName(ProvKind k);

/// One recorded derivation step. For kDerived, the parent range is aligned
/// with the constraint's variable slots and holds kNoProvEntry at the
/// solved-for slot; for kRefinement it holds the two coinciding entries.
struct ProvEntry {
  QuantityId quantity = 0;
  ProvKind kind = ProvKind::kRoot;
  ValueSource source = ValueSource::kDerived;
  int constraintIndex = -1;  ///< kDerived only
  fuzzy::FuzzyInterval value;
  atms::Environment env;
  double degree = 1.0;
  int depth = 0;
  std::uint32_t parentsBegin = 0;  ///< range into ProvenanceLog's arena
  std::uint32_t parentsEnd = 0;
};

/// One recorded conflict: the coincidence of entries `a` and `b` on
/// `quantity` evaluated to consistency `dc`, condemning `env` (the union of
/// both supports) with `degree`. `kept` mirrors NogoodDb::add's subsumption
/// verdict at insertion time.
struct ProvNogood {
  QuantityId quantity = 0;
  ProvEntryId a = kNoProvEntry;
  ProvEntryId b = kNoProvEntry;
  double dc = 0.0;
  double degree = 0.0;
  bool kept = false;
  atms::Environment env;
};

class ProvenanceLog {
 public:
  /// Appends an entry; returns its stable id. `parents` may be null.
  ProvEntryId addEntry(QuantityId q, ProvKind kind, const ValueEntry& e,
                       const ProvEntryId* parents, std::size_t parentCount);

  void addNogood(QuantityId q, ProvEntryId a, ProvEntryId b, double dc,
                 double degree, bool kept, atms::Environment env);

  [[nodiscard]] const std::vector<ProvEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::vector<ProvNogood>& nogoods() const {
    return nogoods_;
  }

  /// The parent ids of an entry, in slot order (kDerived) or pair order
  /// (kRefinement); empty for roots.
  [[nodiscard]] std::vector<ProvEntryId> parentsOf(const ProvEntry& e) const;
  [[nodiscard]] const ProvEntryId* parentsData(const ProvEntry& e) const {
    return parents_.data() + e.parentsBegin;
  }
  [[nodiscard]] std::size_t parentCount(const ProvEntry& e) const {
    return e.parentsEnd - e.parentsBegin;
  }

  void clear();

 private:
  std::vector<ProvEntry> entries_;
  std::vector<ProvEntryId> parents_;  ///< arena for all parent lists
  std::vector<ProvNogood> nogoods_;
};

}  // namespace flames::constraints
