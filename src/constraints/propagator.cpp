#include "constraints/propagator.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::constraints {

namespace {

// Probe points for the propagation stage (see obs/obs.h for the contract:
// one relaxed load per hit when the layer is disabled).
obs::Counter& cSteps() {
  static obs::Counter& c = obs::counter("propagator.steps");
  return c;
}
obs::Counter& cEntriesAdded() {
  static obs::Counter& c = obs::counter("propagator.entries_added");
  return c;
}
obs::Counter& cDiscardSaturated() {
  static obs::Counter& c = obs::counter("propagator.discard.saturated");
  return c;
}
obs::Counter& cDiscardWidth() {
  static obs::Counter& c = obs::counter("propagator.discard.derived_width");
  return c;
}
obs::Counter& cDiscardRedundant() {
  static obs::Counter& c = obs::counter("propagator.discard.redundant");
  return c;
}
obs::Counter& cCoincidences() {
  static obs::Counter& c = obs::counter("propagator.coincidences");
  return c;
}
obs::Counter& cNogoods() {
  static obs::Counter& c = obs::counter("propagator.nogoods_recorded");
  return c;
}
obs::Histogram& hQueueDepth() {
  static obs::Histogram& h = obs::histogram("propagator.queue_depth");
  return h;
}

}  // namespace

using atms::Environment;
using fuzzy::FuzzyInterval;

// --- Model -------------------------------------------------------------------

QuantityId Model::addQuantity(const std::string& name, QuantityKind kind) {
  if (const auto existing = findQuantity(name)) return *existing;
  quantities_.push_back({name, kind});
  incidenceDirty_ = true;
  return static_cast<QuantityId>(quantities_.size() - 1);
}

std::optional<QuantityId> Model::findQuantity(const std::string& name) const {
  for (QuantityId i = 0; i < quantities_.size(); ++i) {
    if (quantities_[i].name == name) return i;
  }
  return std::nullopt;
}

QuantityId Model::quantity(const std::string& name) const {
  if (const auto q = findQuantity(name)) return *q;
  throw std::out_of_range("Model: unknown quantity '" + name + "'");
}

const Quantity& Model::quantityInfo(QuantityId id) const {
  if (id >= quantities_.size()) throw std::out_of_range("Model::quantityInfo");
  return quantities_[id];
}

atms::AssumptionId Model::addAssumption(const std::string& name) {
  if (const auto existing = findAssumption(name)) return *existing;
  assumptionNames_.push_back(name);
  return static_cast<atms::AssumptionId>(assumptionNames_.size() - 1);
}

std::optional<atms::AssumptionId> Model::findAssumption(
    const std::string& name) const {
  for (atms::AssumptionId i = 0; i < assumptionNames_.size(); ++i) {
    if (assumptionNames_[i] == name) return i;
  }
  return std::nullopt;
}

const std::string& Model::assumptionName(atms::AssumptionId id) const {
  if (id >= assumptionNames_.size()) {
    throw std::out_of_range("Model::assumptionName");
  }
  return assumptionNames_[id];
}

std::string Model::describe(const Environment& env) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (atms::AssumptionId id : env.ids()) {
    if (!first) os << ',';
    if (id < assumptionNames_.size()) {
      os << assumptionNames_[id];
    } else {
      os << '#' << id;
    }
    first = false;
  }
  os << '}';
  return os.str();
}

std::size_t Model::addConstraint(ConstraintPtr c) {
  if (!c) throw std::invalid_argument("Model::addConstraint: null");
  for (QuantityId v : c->variables()) {
    if (v >= quantities_.size()) {
      throw std::out_of_range("Model::addConstraint: unknown quantity");
    }
  }
  constraints_.push_back(std::move(c));
  incidenceDirty_ = true;
  return constraints_.size() - 1;
}

void Model::addPrediction(QuantityId q, FuzzyInterval value, Environment env,
                          double degree) {
  if (q >= quantities_.size()) {
    throw std::out_of_range("Model::addPrediction: unknown quantity");
  }
  predictions_.push_back({q, std::move(value), std::move(env), degree});
}

const std::vector<std::size_t>& Model::constraintsOn(QuantityId q) const {
  warmIncidence();
  if (q >= incidence_.size()) throw std::out_of_range("Model::constraintsOn");
  return incidence_[q];
}

void Model::warmIncidence() const {
  if (!incidenceDirty_) return;
  incidence_.assign(quantities_.size(), {});
  for (std::size_t ci = 0; ci < constraints_.size(); ++ci) {
    for (QuantityId v : constraints_[ci]->variables()) {
      incidence_[v].push_back(ci);
    }
  }
  incidenceDirty_ = false;
}

// --- Propagator --------------------------------------------------------------

Propagator::Propagator(const Model& model, PropagatorOptions options)
    : model_(model), options_(std::move(options)) {
  values_.resize(model.quantityCount());
  touched_.assign(model.quantityCount(), 0);
  if (options_.schedule != nullptr) {
    const PropagationSchedule& s = *options_.schedule;
    if (!s.compatibleWith(model.quantityCount(), model.constraints().size())) {
      throw std::invalid_argument(
          "Propagator: schedule was compiled from a model of different shape");
    }
    activation_.resize(std::max<std::size_t>(s.layerCount, 1));
    inQueue_.assign(model.constraints().size(), 0);
    watermark_.resize(model.constraints().size());
    for (std::size_t ci = 0; ci < watermark_.size(); ++ci) {
      watermark_[ci].assign(model.constraints()[ci]->variables().size(), 0);
    }
  }
}

void Propagator::addMeasurement(QuantityId q, FuzzyInterval value,
                                Environment env) {
  ValueEntry e;
  e.value = options_.crispifyValues
                ? FuzzyInterval::crispInterval(value.support().lo,
                                               value.support().hi)
                : std::move(value);
  e.env = std::move(env);
  e.source = ValueSource::kMeasured;
  e.fromMeasurement = true;
  addEntry(q, std::move(e));
}

void Propagator::run() {
  obs::Span span("propagation.run", "propagator");
  if (!seeded_) {
    seeded_ = true;
    for (const Model::Prediction& p : model_.predictions()) {
      ValueEntry e;
      e.value = options_.crispifyValues
                    ? FuzzyInterval::crispInterval(p.value.support().lo,
                                                   p.value.support().hi)
                    : p.value;
      e.env = p.env;
      e.source = ValueSource::kNominal;
      e.degree = p.degree;
      addEntry(p.quantity, std::move(e));
    }
  }
  completed_ = true;
  if (options_.schedule != nullptr) {
    runScheduled();
    return;
  }
  const bool sampling = obs::enabled();
  while (!queue_.empty()) {
    if (options_.cancelCheck && options_.cancelCheck()) {
      completed_ = false;
      queue_.clear();
      throw CancelledError("propagation cancelled");
    }
    if (sampling) {
      cSteps().add();
      hQueueDepth().record(queue_.size());
    }
    if (++steps_ > options_.maxSteps) {
      completed_ = false;
      queue_.clear();
      return;
    }
    const WorkItem item = queue_.front();
    queue_.pop_front();
    fire(item.quantity, item.entryIndex);
  }
}

const std::vector<ValueEntry>& Propagator::values(QuantityId q) const {
  if (q >= values_.size()) throw std::out_of_range("Propagator::values");
  return values_[q];
}

std::optional<CoincidenceRecord> Propagator::worstCoincidence(
    QuantityId q) const {
  // The paper tabulates Dc(Vm, Vn) of measurement against nominal; prefer
  // those records and fall back to arbitrary pairs only when no direct
  // measured-vs-nominal coincidence happened at this quantity.
  std::optional<CoincidenceRecord> worst;
  for (int pass = 0; pass < 2 && !worst; ++pass) {
    const bool requireNominal = pass == 0;
    for (const CoincidenceRecord& c : coincidences_) {
      if (c.quantity != q) continue;
      if (requireNominal && !c.measuredVsNominal) continue;
      if (!worst || c.consistency.dc < worst->consistency.dc) worst = c;
    }
  }
  return worst;
}

bool Propagator::addEntry(QuantityId q, ValueEntry entry,
                          const ProvEntryId* parents,
                          std::size_t parentCount) {
  if (q >= values_.size()) throw std::out_of_range("Propagator::addEntry");
  auto& entries = values_[q];

  // Exact duplicate or subsumed-by-more-informative check. Root entries
  // (measurements, nominal predictions) are always kept so the diagnostic
  // coincidences remain visible.
  for (const ValueEntry& existing : entries) {
    if (existing.env == entry.env &&
        existing.value.approxEquals(entry.value, 1e-12)) {
      cDiscardRedundant().add();
      return false;
    }
    if (entry.source == ValueSource::kDerived &&
        existing.degree >= entry.degree &&
        existing.env.isSubsetOf(entry.env) &&
        existing.value.subsetOf(entry.value)) {
      cDiscardRedundant().add();
      return false;  // the new entry carries no extra information
    }
  }

  // Record the derivation before coincidence resolution so nogoods can
  // reference the incoming entry. Discards below (saturation) don't
  // invalidate the record: the derivation stays valid whether or not the
  // value is retained in the working set.
  if (options_.provenance != nullptr) {
    const ProvKind kind = entry.source != ValueSource::kDerived
                              ? ProvKind::kRoot
                              : (entry.fromConstraint >= 0
                                     ? ProvKind::kDerived
                                     : ProvKind::kRefinement);
    entry.provId = options_.provenance->addEntry(q, kind, entry, parents,
                                                 parentCount);
  }

  // Resolve coincidences against the entries that will be kept.
  for (const ValueEntry& existing : entries) {
    resolveCoincidence(q, existing, entry);
  }

  // Remove derived entries that the new one renders redundant. Erasing
  // shifts the survivors down, so pending work items on this quantity must
  // follow the shift — and die outright when their entry was just erased;
  // a stale index would make fire() read past the end of values_[q].
  if (entry.source != ValueSource::kDerived ||
      entries.size() < options_.maxEntriesPerQuantity) {
    std::vector<std::size_t> removed;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const ValueEntry& e = entries[i];
      if (e.source == ValueSource::kDerived && entry.degree >= e.degree &&
          entry.env.isSubsetOf(e.env) && entry.value.subsetOf(e.value)) {
        removed.push_back(i);
      }
    }
    if (!removed.empty()) {
      for (std::size_t k = 0; k < removed.size(); ++k) {
        entries.erase(entries.begin() +
                      static_cast<std::ptrdiff_t>(removed[k] - k));
      }
      touched_[q] = 1;
      queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                                  [&](WorkItem& w) {
                                    if (w.quantity != q) return false;
                                    std::size_t shift = 0;
                                    for (const std::size_t r : removed) {
                                      if (r == w.entryIndex) return true;
                                      if (r < w.entryIndex) ++shift;
                                    }
                                    w.entryIndex -= shift;
                                    return false;
                                  }),
                   queue_.end());
      if (options_.schedule != nullptr) {
        // Keep the consumption watermarks aligned with the surviving
        // entries: every erased index below a constraint's mark on this
        // quantity was already consumed, so the mark shifts down with it.
        for (const std::size_t ci : model_.constraintsOn(q)) {
          const std::vector<QuantityId>& vars =
              model_.constraints()[ci]->variables();
          for (std::size_t s = 0; s < vars.size(); ++s) {
            if (vars[s] != q) continue;
            std::size_t below = 0;
            for (const std::size_t r : removed) {
              if (r < watermark_[ci][s]) ++below;
            }
            watermark_[ci][s] -= below;
          }
        }
      }
    }
    if (entries.size() >= options_.maxEntriesPerQuantity &&
        entry.source == ValueSource::kDerived) {
      cDiscardSaturated().add();
      ++saturatedDiscards_;
      return false;  // quantity saturated; keep roots flowing regardless
    }
    const int producedBy = entry.fromConstraint;
    entries.push_back(std::move(entry));
    touched_[q] = 1;
    cEntriesAdded().add();
    if (options_.schedule != nullptr) {
      // Scheduled engine: a kept entry is one step of the certified bound
      // (in the sweep engine every kept entry is popped exactly once, so
      // the two counts are bounded by the same analysis).
      if (obs::enabled()) cSteps().add();
      if (++steps_ > options_.maxSteps) budgetExhausted_ = true;
      notifyWatchers(q, producedBy);
    } else {
      queue_.push_back({q, entries.size() - 1});
    }

    // Drain crisp-policy refinements queued by coincidence resolution.
    if (!drainingRefinements_ && !pendingRefinements_.empty()) {
      drainingRefinements_ = true;
      while (!pendingRefinements_.empty()) {
        PendingRefinement r = std::move(pendingRefinements_.back());
        pendingRefinements_.pop_back();
        addEntry(r.quantity, std::move(r.entry), r.parents, 2);
      }
      drainingRefinements_ = false;
    }
    return true;
  }
  cDiscardSaturated().add();
  ++saturatedDiscards_;
  return false;
}

void Propagator::fire(QuantityId q, std::size_t entryIndex) {
  // Copy: values_[q] may reallocate while deriving.
  const ValueEntry source = values_[q][entryIndex];
  const bool recording = options_.provenance != nullptr;

  for (std::size_t ci : model_.constraintsOn(q)) {
    if (source.fromConstraint == static_cast<int>(ci)) continue;  // echo
    const Constraint& c = *model_.constraints()[ci];
    const auto& vars = c.variables();

    for (std::size_t target = 0; target < vars.size(); ++target) {
      if (vars[target] == q) continue;
      if (source.depth >= options_.maxDepth) continue;

      // Build input combinations: the slot(s) holding q use `source`;
      // every other slot ranges over that quantity's entries.
      std::vector<std::size_t> openSlots;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (i == target || vars[i] == q) continue;
        openSlots.push_back(i);
      }
      bool feasible = true;
      for (std::size_t slot : openSlots) {
        if (values_[vars[slot]].empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;

      std::vector<FuzzyInterval> inputs(vars.size());
      std::vector<const ValueEntry*> chosen(vars.size(), nullptr);
      for (std::size_t i = 0; i < vars.size(); ++i) {
        if (vars[i] == q) {
          inputs[i] = source.value;
          chosen[i] = &source;
        }
      }

      // Depth-first enumeration over open slots (bounded by entry caps).
      std::vector<std::size_t> cursor(openSlots.size(), 0);
      while (true) {
        Environment env = source.env.unionWith(c.validity());
        double degree = std::min(source.degree, c.degree());
        bool fromMeasurement = source.fromMeasurement;
        int depth = source.depth;
        bool ok = true;
        for (std::size_t s = 0; s < openSlots.size(); ++s) {
          const ValueEntry& e = values_[vars[openSlots[s]]][cursor[s]];
          if (e.fromConstraint == static_cast<int>(ci)) {
            ok = false;  // echo through the same constraint
            break;
          }
          inputs[openSlots[s]] = e.value;
          env = env.unionWith(e.env);
          degree = std::min(degree, e.degree);
          fromMeasurement = fromMeasurement || e.fromMeasurement;
          depth = std::max(depth, e.depth);
        }
        // Gate on the *deepest* input, not just the popped one: the set of
        // derivable combinations is then a function of the entry set alone,
        // independent of arrival order — the confluence property the
        // incremental session's exactness argument rests on (and the same
        // gate the scheduled engine applies).
        if (ok && depth >= options_.maxDepth) ok = false;
        if (ok && env.size() <= options_.maxEnvSize &&
            !nogoods_.isInconsistent(env, 1.0)) {
          std::optional<FuzzyInterval> derived;
          try {
            derived = c.solveFor(target, inputs);
          } catch (const std::domain_error&) {
            derived = std::nullopt;  // e.g. division by zero-straddling value
          }
          if (derived &&
              derived->support().width() > options_.maxDerivedWidth) {
            cDiscardWidth().add();
          }
          if (derived &&
              derived->support().width() <= options_.maxDerivedWidth) {
            ValueEntry e;
            e.value = options_.crispifyValues
                          ? FuzzyInterval::crispInterval(
                                derived->support().lo, derived->support().hi)
                          : *derived;
            e.env = std::move(env);
            e.source = ValueSource::kDerived;
            e.fromConstraint = static_cast<int>(ci);
            e.fromMeasurement = fromMeasurement;
            e.degree = degree;
            e.depth = depth + 1;
            if (recording) {
              // Slot-aligned parents, filled only for derivations that
              // survive the width gate (most enumerated combinations are
              // discarded before this point). The solved-for slot keeps the
              // sentinel; values_ is untouched since the slot loop above, so
              // the cursor still addresses the consumed entries.
              provParentsScratch_.assign(vars.size(), kNoProvEntry);
              for (std::size_t i = 0; i < vars.size(); ++i) {
                if (i != target && vars[i] == q) {
                  provParentsScratch_[i] = source.provId;
                }
              }
              for (std::size_t s = 0; s < openSlots.size(); ++s) {
                provParentsScratch_[openSlots[s]] =
                    values_[vars[openSlots[s]]][cursor[s]].provId;
              }
            }
            addEntry(vars[target], std::move(e),
                     recording ? provParentsScratch_.data() : nullptr,
                     recording ? provParentsScratch_.size() : 0);
          }
        }
        // Advance the cursor.
        std::size_t s = 0;
        for (; s < openSlots.size(); ++s) {
          if (++cursor[s] < values_[vars[openSlots[s]]].size()) break;
          cursor[s] = 0;
        }
        if (s == openSlots.size()) break;
        if (openSlots.empty()) break;
      }
      if (openSlots.empty()) {
        // The single-pass body above already ran once via the while loop.
      }
    }
  }
}

// --- Scheduled engine --------------------------------------------------------

void Propagator::notifyWatchers(QuantityId q, int fromConstraint) {
  const PropagationSchedule& s = *options_.schedule;
  for (const std::size_t ci : s.watchers[q]) {
    // Echo rule: an entry never participates in its producer's firings, so
    // the producer need not re-activate for it.
    if (fromConstraint == static_cast<int>(ci)) continue;
    if (inQueue_[ci]) continue;
    inQueue_[ci] = 1;
    activation_[s.constraints[ci].layer].push_back(ci);
  }
}

void Propagator::runScheduled() {
  const bool sampling = obs::enabled();
  while (true) {
    std::size_t layer = activation_.size();
    std::size_t pending = 0;
    for (std::size_t l = 0; l < activation_.size(); ++l) {
      if (layer == activation_.size() && !activation_[l].empty()) layer = l;
      pending += activation_[l].size();
    }
    if (layer == activation_.size()) return;  // quiescent
    if (options_.cancelCheck && options_.cancelCheck()) {
      completed_ = false;
      for (std::deque<std::size_t>& b : activation_) b.clear();
      std::fill(inQueue_.begin(), inQueue_.end(), 0);
      throw CancelledError("propagation cancelled");
    }
    if (sampling) hQueueDepth().record(pending);
    const std::size_t ci = activation_[layer].front();
    activation_[layer].pop_front();
    inQueue_[ci] = 0;
    fireConstraint(ci);
    if (budgetExhausted_) {
      completed_ = false;
      for (std::deque<std::size_t>& b : activation_) b.clear();
      std::fill(inQueue_.begin(), inQueue_.end(), 0);
      return;
    }
  }
}

void Propagator::fireConstraint(std::size_t ci) {
  const Constraint& c = *model_.constraints()[ci];
  const std::vector<QuantityId>& vars = c.variables();
  const std::size_t arity = vars.size();
  const PropagationSchedule::ConstraintPlan& plan =
      options_.schedule->constraints[ci];
  const bool recording = options_.provenance != nullptr;

  // Capture the entry counts and prior watermarks, then advance the marks
  // immediately: erasures during this firing adjust the stored marks (and
  // the local copies drive the enumeration — reads are clamped to the live
  // lists, so a combination whose entry was erased mid-firing just drops).
  std::vector<std::size_t> size(arity);
  std::vector<std::size_t> oldMark = watermark_[ci];
  for (std::size_t i = 0; i < arity; ++i) {
    size[i] = values_[vars[i]].size();
    watermark_[ci][i] = size[i];
  }

  std::vector<FuzzyInterval> inputs(arity);
  std::vector<std::size_t> inputSlots;
  std::vector<std::size_t> cursor;
  std::vector<std::size_t> lo;
  std::vector<std::size_t> hi;
  for (const std::size_t target : plan.solvableTargets) {
    inputSlots.clear();
    for (std::size_t i = 0; i < arity; ++i) {
      if (i != target) inputSlots.push_back(i);
    }
    if (inputSlots.empty()) continue;  // nothing can trigger a 1-ary solve

    // Delta join: partition the new combinations by the first input slot
    // holding a not-yet-consumed entry (the *lead*). Slots before the lead
    // stay below their old mark, the lead ranges over the new entries,
    // slots after it over everything — each new combination is enumerated
    // exactly once, and a fresh constraint (all marks zero) enumerates the
    // full product through lead position 0.
    for (std::size_t lead = 0; lead < inputSlots.size(); ++lead) {
      if (oldMark[inputSlots[lead]] >= size[inputSlots[lead]]) continue;
      cursor.assign(inputSlots.size(), 0);
      lo.assign(inputSlots.size(), 0);
      hi.assign(inputSlots.size(), 0);
      bool feasible = true;
      for (std::size_t p = 0; p < inputSlots.size(); ++p) {
        const std::size_t s = inputSlots[p];
        if (p < lead) {
          hi[p] = oldMark[s];
        } else if (p == lead) {
          lo[p] = oldMark[s];
          hi[p] = size[s];
        } else {
          hi[p] = size[s];
        }
        if (lo[p] >= hi[p]) {
          feasible = false;
          break;
        }
        cursor[p] = lo[p];
      }
      if (!feasible) continue;

      while (true) {
        if (budgetExhausted_) return;
        Environment env = c.validity();
        double degree = c.degree();
        bool fromMeasurement = false;
        int maxDepth = 0;
        bool ok = true;
        if (recording) provParentsScratch_.assign(arity, kNoProvEntry);
        for (std::size_t p = 0; p < inputSlots.size(); ++p) {
          const std::size_t s = inputSlots[p];
          const std::vector<ValueEntry>& list = values_[vars[s]];
          if (cursor[p] >= list.size()) {
            ok = false;  // erased mid-firing
            break;
          }
          const ValueEntry& e = list[cursor[p]];
          if (e.fromConstraint == static_cast<int>(ci)) {
            ok = false;  // echo through the same constraint
            break;
          }
          inputs[s] = e.value;
          env = env.unionWith(e.env);
          degree = std::min(degree, e.degree);
          fromMeasurement = fromMeasurement || e.fromMeasurement;
          maxDepth = std::max(maxDepth, e.depth);
          if (recording) provParentsScratch_[s] = e.provId;
        }
        // Depth gate, matched to the sweep engine: the deepest input decides
        // (order-independent — both engines derive exactly the combinations
        // whose every input is below the limit).
        if (ok && maxDepth >= options_.maxDepth) ok = false;
        if (ok && env.size() <= options_.maxEnvSize &&
            !nogoods_.isInconsistent(env, 1.0)) {
          std::optional<FuzzyInterval> derived;
          try {
            derived = c.solveFor(target, inputs);
          } catch (const std::domain_error&) {
            derived = std::nullopt;
          }
          if (derived &&
              derived->support().width() > options_.maxDerivedWidth) {
            cDiscardWidth().add();
            derived = std::nullopt;
          }
          if (derived) {
            ValueEntry e;
            e.value = options_.crispifyValues
                          ? FuzzyInterval::crispInterval(
                                derived->support().lo, derived->support().hi)
                          : *derived;
            e.env = std::move(env);
            e.source = ValueSource::kDerived;
            e.fromConstraint = static_cast<int>(ci);
            e.fromMeasurement = fromMeasurement;
            e.degree = degree;
            e.depth = maxDepth + 1;
            addEntry(vars[target], std::move(e),
                     recording ? provParentsScratch_.data() : nullptr,
                     recording ? provParentsScratch_.size() : 0);
          }
        }
        std::size_t p = 0;
        for (; p < inputSlots.size(); ++p) {
          if (++cursor[p] < hi[p]) break;
          cursor[p] = lo[p];
        }
        if (p == inputSlots.size()) break;
      }
    }
  }
}

std::vector<QuantityId> Propagator::touchedQuantities() const {
  std::vector<QuantityId> out;
  for (std::size_t q = 0; q < touched_.size(); ++q) {
    if (touched_[q]) out.push_back(static_cast<QuantityId>(q));
  }
  return out;
}

void Propagator::markClean() {
  std::fill(touched_.begin(), touched_.end(), 0);
}

void Propagator::resolveCoincidence(QuantityId q, const ValueEntry& a,
                                    const ValueEntry& b) {
  cCoincidences().add();
  CoincidenceRecord rec;
  rec.quantity = q;
  rec.env = a.env.unionWith(b.env);

  if (options_.policy == ConflictPolicy::kCrisp) {
    // DIANA-style: only empty support intersections conflict; overlapping
    // values *refine* each other — the intersection, supported by the union
    // of both environments, is queued as a new (tighter) value. (§4.1: "the
    // management of intervals is done by an ATMS extension".)
    const bool overlap = a.value.supportsOverlap(b.value);
    rec.measuredSide = a.fromMeasurement ? a.value : b.value;
    rec.nominalSide = a.fromMeasurement ? b.value : a.value;
    rec.consistency.dc = overlap ? 1.0 : 0.0;
    rec.consistency.deviation =
        fuzzy::degreeOfConsistency(rec.measuredSide, rec.nominalSide)
            .deviation;
    rec.measuredVsNominal = (a.source != ValueSource::kDerived) &&
                            (b.source != ValueSource::kDerived);
    coincidences_.push_back(rec);
    if (!overlap) {
      const double degree = std::min({1.0, a.degree, b.degree});
      const bool kept = nogoods_.add(
          rec.env, degree, "conflict on " + model_.quantityInfo(q).name);
      if (kept) cNogoods().add();
      if (options_.provenance != nullptr) {
        options_.provenance->addNogood(q, a.provId, b.provId, 0.0, degree,
                                       kept, rec.env);
      }
      return;
    }
    const fuzzy::Cut sa = a.value.support(), sb = b.value.support();
    const fuzzy::Cut inter{std::max(sa.lo, sb.lo), std::min(sa.hi, sb.hi)};
    // Only enqueue a refinement that is strictly tighter than both parents
    // (otherwise the narrower parent already carries the information).
    if (inter.width() < sa.width() - 1e-12 &&
        inter.width() < sb.width() - 1e-12) {
      ValueEntry refined;
      refined.value = FuzzyInterval::crispInterval(inter.lo, inter.hi);
      refined.env = rec.env;
      refined.source = ValueSource::kDerived;
      refined.fromMeasurement = a.fromMeasurement || b.fromMeasurement;
      refined.degree = std::min(a.degree, b.degree);
      refined.depth = std::max(a.depth, b.depth) + 1;
      pendingRefinements_.push_back(
          {q, std::move(refined), {a.provId, b.provId}});
    }
    return;
  }

  // Fuzzy policy. If one value is contained in the other this is a *split*
  // (Fig. 4 case a): the narrower value refines the wider one — no
  // conflict, whatever the widths (a wide derived estimate containing the
  // nominal must not be read as a discrepancy).
  if (a.value.subsetOf(b.value) || b.value.subsetOf(a.value)) {
    rec.measuredSide = a.fromMeasurement ? a.value : b.value;
    rec.nominalSide = a.fromMeasurement ? b.value : a.value;
    rec.consistency.dc = 1.0;
    rec.consistency.deviation = fuzzy::Deviation::kNone;
    rec.measuredVsNominal = (a.source == ValueSource::kMeasured &&
                             b.source == ValueSource::kNominal) ||
                            (b.source == ValueSource::kMeasured &&
                             a.source == ValueSource::kNominal);
    coincidences_.push_back(rec);
    return;
  }

  // Orient the pair (the measurement-rooted side is Vm); when both or
  // neither are measurement-rooted, evaluate both orders and keep the
  // worst, per the paper's coincidence-resolution rule (§6.1.1).
  fuzzy::Consistency cons;
  if (a.fromMeasurement != b.fromMeasurement) {
    const ValueEntry& vm = a.fromMeasurement ? a : b;
    const ValueEntry& vn = a.fromMeasurement ? b : a;
    cons = fuzzy::degreeOfConsistency(vm.value, vn.value);
    rec.measuredSide = vm.value;
    rec.nominalSide = vn.value;
  } else {
    const fuzzy::Consistency ab = fuzzy::degreeOfConsistency(a.value, b.value);
    const fuzzy::Consistency ba = fuzzy::degreeOfConsistency(b.value, a.value);
    cons = ab.dc <= ba.dc ? ab : ba;
    rec.measuredSide = ab.dc <= ba.dc ? a.value : b.value;
    rec.nominalSide = ab.dc <= ba.dc ? b.value : a.value;
  }
  // A *derived* value's spread aggregates the component tolerances along
  // its derivation path, so against the nominal (or another derived value)
  // its membership is correlated with the other side's and the area ratio
  // overstates the conflict: both can contain the true value yet overlap
  // only on a shoulder sliver. The sound consistency for any pair
  // involving a derived value is Zadeh's compatibility — the possibility
  // that one common value satisfies both distributions — which still
  // yields a hard conflict for disjoint estimates (classic GDE) but grades
  // the shared-shoulder case by its joint membership. The paper's area
  // formula remains in force for its own case: a root measurement (pure
  // meter imprecision) against a root prediction.
  if (a.source == ValueSource::kDerived || b.source == ValueSource::kDerived) {
    cons.dc = std::max(cons.dc, a.value.possibilityOfEquality(b.value));
  }
  rec.consistency = cons;
  rec.measuredVsNominal =
      (a.source == ValueSource::kMeasured && b.source == ValueSource::kNominal) ||
      (b.source == ValueSource::kMeasured && a.source == ValueSource::kNominal) ||
      (a.fromMeasurement != b.fromMeasurement &&
       (a.source == ValueSource::kNominal || b.source == ValueSource::kNominal));
  coincidences_.push_back(rec);

  const double nogoodDegree =
      std::min({cons.nogoodDegree(), a.degree, b.degree});
  if (nogoodDegree >= options_.minNogoodDegree) {
    const bool kept = nogoods_.add(
        rec.env, nogoodDegree, "conflict on " + model_.quantityInfo(q).name);
    if (kept) cNogoods().add();
    if (options_.provenance != nullptr) {
      options_.provenance->addNogood(q, a.provId, b.provId, cons.dc,
                                     nogoodDegree, kept, rec.env);
    }
  }
}

}  // namespace flames::constraints
