#include "constraints/quantity.h"

namespace flames::constraints {

std::string_view valueSourceName(ValueSource s) {
  switch (s) {
    case ValueSource::kNominal: return "nominal";
    case ValueSource::kMeasured: return "measured";
    case ValueSource::kDerived: return "derived";
  }
  return "unknown";
}

}  // namespace flames::constraints
