// LU factorisation with partial pivoting, templated over the scalar so the
// same decomposition serves the real (DC) and complex (AC) MNA systems.
#pragma once

#include <cmath>
#include <complex>
#include <optional>

#include "linalg/matrix.h"

namespace flames::linalg {

/// LU decomposition (PA = LU) with partial pivoting of a square matrix.
///
/// Factorisation happens at construction; `singular()` reports whether a
/// pivot fell below the tolerance, in which case solve() must not be called.
template <typename T>
class BasicLuDecomposition {
 public:
  explicit BasicLuDecomposition(BasicMatrix<T> a, double pivotTol = 1e-13)
      : lu_(std::move(a)) {
    if (lu_.rows() != lu_.cols()) {
      throw std::invalid_argument("LuDecomposition: matrix not square");
    }
    const std::size_t n = lu_.rows();
    perm_.resize(n);
    for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

    for (std::size_t k = 0; k < n; ++k) {
      // Partial pivot: the row with the largest |entry| in column k.
      std::size_t pivot = k;
      double best = std::abs(lu_(perm_[k], k));
      for (std::size_t r = k + 1; r < n; ++r) {
        const double v = std::abs(lu_(perm_[r], k));
        if (v > best) {
          best = v;
          pivot = r;
        }
      }
      if (best <= pivotTol) {
        singular_ = true;
        return;
      }
      if (pivot != k) {
        std::swap(perm_[pivot], perm_[k]);
        permSign_ = -permSign_;
      }
      const T d = lu_(perm_[k], k);
      for (std::size_t r = k + 1; r < n; ++r) {
        const T factor = lu_(perm_[r], k) / d;
        lu_(perm_[r], k) = factor;
        for (std::size_t c = k + 1; c < n; ++c) {
          lu_(perm_[r], c) -= factor * lu_(perm_[k], c);
        }
      }
    }
  }

  [[nodiscard]] bool singular() const { return singular_; }

  /// Solves A x = b; requires !singular() and b.size() == n.
  [[nodiscard]] std::vector<T> solve(const std::vector<T>& b) const {
    if (singular_) throw std::logic_error("LuDecomposition::solve: singular");
    const std::size_t n = lu_.rows();
    if (b.size() != n) {
      throw std::invalid_argument("LuDecomposition::solve size");
    }
    std::vector<T> y(n, T{});
    for (std::size_t i = 0; i < n; ++i) {
      T acc = b[perm_[i]];
      for (std::size_t j = 0; j < i; ++j) acc -= lu_(perm_[i], j) * y[j];
      y[i] = acc;
    }
    std::vector<T> x(n, T{});
    for (std::size_t ii = n; ii-- > 0;) {
      T acc = y[ii];
      for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(perm_[ii], j) * x[j];
      x[ii] = acc / lu_(perm_[ii], ii);
    }
    return x;
  }

  /// Determinant of A (0 if singular was detected).
  [[nodiscard]] T determinant() const {
    if (singular_) return T{};
    T d = static_cast<T>(permSign_);
    for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(perm_[i], i);
    return d;
  }

 private:
  BasicMatrix<T> lu_;                // packed L (unit diag) and U
  std::vector<std::size_t> perm_;    // row permutation
  int permSign_ = 1;
  bool singular_ = false;
};

using LuDecomposition = BasicLuDecomposition<double>;
using ComplexLuDecomposition = BasicLuDecomposition<std::complex<double>>;

/// One-shot convenience: solves A x = b, or nullopt if A is singular.
[[nodiscard]] std::optional<Vector> solveLinear(const Matrix& a,
                                                const Vector& b);

/// Complex variant.
[[nodiscard]] std::optional<ComplexVector> solveLinearComplex(
    const ComplexMatrix& a, const ComplexVector& b);

}  // namespace flames::linalg
