// Minimal dense matrix/vector types for the MNA circuit solvers.
//
// The DC operating-point simulator assembles a real system G x = b; the AC
// small-signal solver (circuit/ac.*) assembles a complex one at each
// frequency. Circuits in this domain are small (tens to hundreds of
// unknowns), so a dense representation with LU factorisation is the right
// tool — no sparse machinery needed. BasicMatrix is templated over the
// scalar; `Matrix` (double) and `ComplexMatrix` are the two instantiations
// used.
#pragma once

#include <complex>
#include <cstddef>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace flames::linalg {

using Vector = std::vector<double>;
using ComplexVector = std::vector<std::complex<double>>;

/// Row-major dense matrix over scalar T.
template <typename T>
class BasicMatrix {
 public:
  BasicMatrix() = default;

  /// rows x cols matrix, zero-initialised.
  BasicMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  /// Square n x n matrix, zero-initialised.
  static BasicMatrix square(std::size_t n) { return BasicMatrix(n, n); }

  /// Identity matrix of size n.
  static BasicMatrix identity(std::size_t n) {
    BasicMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] T at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
    return data_[r * cols_ + c];
  }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  T operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Adds v to entry (r, c) — the MNA "stamp" primitive.
  void addAt(std::size_t r, std::size_t c, T v) { data_[r * cols_ + c] += v; }

  void fill(T v) {
    for (T& d : data_) d = v;
  }

  /// Matrix-vector product; requires x.size() == cols().
  [[nodiscard]] std::vector<T> multiply(const std::vector<T>& x) const {
    if (x.size() != cols_) {
      throw std::invalid_argument("Matrix::multiply size");
    }
    std::vector<T> y(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      for (std::size_t c = 0; c < cols_; ++c) {
        acc += data_[r * cols_ + c] * x[c];
      }
      y[r] = acc;
    }
    return y;
  }

  /// Max-abs norm of the matrix entries.
  [[nodiscard]] double maxAbs() const {
    double m = 0.0;
    for (const T& d : data_) m = std::max(m, std::abs(d));
    return m;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Matrix = BasicMatrix<double>;
using ComplexMatrix = BasicMatrix<std::complex<double>>;

template <typename T>
std::ostream& operator<<(std::ostream& os, const BasicMatrix<T>& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << '[';
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? ", " : "");
    }
    os << "]\n";
  }
  return os;
}

/// Euclidean norm of a vector.
[[nodiscard]] double norm2(const Vector& v);

/// Max-abs norm of a vector.
[[nodiscard]] double normInf(const Vector& v);

/// Component-wise difference a - b; requires equal sizes.
[[nodiscard]] Vector subtract(const Vector& a, const Vector& b);

}  // namespace flames::linalg
