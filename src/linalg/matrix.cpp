#include "linalg/matrix.h"

#include <cmath>

namespace flames::linalg {

double norm2(const Vector& v) {
  double s = 0.0;
  for (double d : v) s += d * d;
  return std::sqrt(s);
}

double normInf(const Vector& v) {
  double m = 0.0;
  for (double d : v) m = std::max(m, std::abs(d));
  return m;
}

Vector subtract(const Vector& a, const Vector& b) {
  if (a.size() != b.size()) throw std::invalid_argument("subtract size");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

}  // namespace flames::linalg
