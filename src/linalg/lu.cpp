#include "linalg/lu.h"

namespace flames::linalg {

std::optional<Vector> solveLinear(const Matrix& a, const Vector& b) {
  LuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.solve(b);
}

std::optional<ComplexVector> solveLinearComplex(const ComplexMatrix& a,
                                                const ComplexVector& b) {
  ComplexLuDecomposition lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.solve(b);
}

}  // namespace flames::linalg
