// Clang thread-safety annotations and annotated synchronization wrappers.
//
// The standard library's mutex types carry no capability annotations on
// libstdc++, so clang's -Wthread-safety analysis cannot check code that
// uses them directly. These thin wrappers attach the annotations:
//
//   util::Mutex / util::SharedMutex   annotated lockable types
//   util::MutexLock                   scoped exclusive lock (lock_guard)
//   util::ReaderLock / WriterLock     scoped shared/exclusive lock
//   util::CondVar                     condition variable over util::Mutex
//
// Members protected by a mutex are declared with FLAMES_GUARDED_BY(mu);
// functions that must be entered holding it use FLAMES_REQUIRES(mu). Under
// any compiler other than clang the macros expand to nothing and the
// wrappers degrade to the std primitives they hold, so the annotations are
// compile-time documentation locally and an enforced error (-Wthread-safety
// -Werror=thread-safety) in the clang CI job.
//
// CondVar deliberately exposes only the un-predicated wait(Mutex&): the
// predicate overload of std::condition_variable::wait would re-lock inside
// the callee where the analysis cannot see it. Callers hold the mutex via
// MutexLock and loop:  while (!ready) cv.wait(mu);
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define FLAMES_TSA(x) __attribute__((x))
#else
#define FLAMES_TSA(x)
#endif

#define FLAMES_CAPABILITY(x) FLAMES_TSA(capability(x))
#define FLAMES_SCOPED_CAPABILITY FLAMES_TSA(scoped_lockable)
#define FLAMES_GUARDED_BY(x) FLAMES_TSA(guarded_by(x))
#define FLAMES_PT_GUARDED_BY(x) FLAMES_TSA(pt_guarded_by(x))
#define FLAMES_ACQUIRE(...) FLAMES_TSA(acquire_capability(__VA_ARGS__))
#define FLAMES_ACQUIRE_SHARED(...) \
  FLAMES_TSA(acquire_shared_capability(__VA_ARGS__))
#define FLAMES_RELEASE(...) FLAMES_TSA(release_capability(__VA_ARGS__))
#define FLAMES_RELEASE_SHARED(...) \
  FLAMES_TSA(release_shared_capability(__VA_ARGS__))
#define FLAMES_REQUIRES(...) FLAMES_TSA(requires_capability(__VA_ARGS__))
#define FLAMES_REQUIRES_SHARED(...) \
  FLAMES_TSA(requires_shared_capability(__VA_ARGS__))
#define FLAMES_EXCLUDES(...) FLAMES_TSA(locks_excluded(__VA_ARGS__))
#define FLAMES_RETURN_CAPABILITY(x) FLAMES_TSA(lock_returned(x))
#define FLAMES_NO_THREAD_SAFETY_ANALYSIS FLAMES_TSA(no_thread_safety_analysis)

namespace flames::util {

class CondVar;

/// std::mutex with the clang capability annotation.
class FLAMES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FLAMES_ACQUIRE() { m_.lock(); }
  void unlock() FLAMES_RELEASE() { m_.unlock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// std::shared_mutex with the clang capability annotation.
class FLAMES_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FLAMES_ACQUIRE() { m_.lock(); }
  void unlock() FLAMES_RELEASE() { m_.unlock(); }
  void lockShared() FLAMES_ACQUIRE_SHARED() { m_.lock_shared(); }
  void unlockShared() FLAMES_RELEASE_SHARED() { m_.unlock_shared(); }

 private:
  std::shared_mutex m_;
};

/// Scoped exclusive lock over Mutex (the annotated lock_guard).
class FLAMES_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FLAMES_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FLAMES_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped exclusive lock over SharedMutex.
class FLAMES_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) FLAMES_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterLock() FLAMES_RELEASE() { mu_.unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared (reader) lock over SharedMutex.
class FLAMES_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) FLAMES_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lockShared();
  }
  ~ReaderLock() FLAMES_RELEASE() { mu_.unlockShared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with util::Mutex. wait() must be called with
/// the mutex held (enforced by the annotation); it releases the mutex while
/// blocked and re-acquires it before returning, exactly like
/// std::condition_variable — the adopt/release dance just keeps ownership
/// with the caller's MutexLock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) FLAMES_REQUIRES(mu) {
    std::unique_lock<std::mutex> adopted(mu.m_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();  // ownership stays with the caller's scoped lock
  }

  void notifyOne() { cv_.notify_one(); }
  void notifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace flames::util
