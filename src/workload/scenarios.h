// Fault-scenario sampling and measurement synthesis (experiments E3-E6, E8).
//
// A scenario is a set of injected faults plus the probes that will be read.
// simulateMeasurements() plays the role of the bench: it solves the faulted
// circuit and returns the probe voltages (optionally with deterministic
// pseudo-random meter noise), which the diagnosis engine consumes without
// ever seeing the fault.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/fault.h"
#include "circuit/netlist.h"

namespace flames::workload {

/// One injected-fault scenario.
struct FaultScenario {
  std::string description;
  std::vector<circuit::Fault> faults;
};

struct ScenarioOptions {
  bool includeOpens = true;
  bool includeShorts = true;
  bool includeSoftDeviations = true;
  /// Relative deviations used for soft faults (scale factors).
  std::vector<double> softFactors = {1.15, 0.85, 1.5, 0.5};
  std::size_t maxFaultsPerScenario = 1;
};

/// Deterministically samples `count` fault scenarios over the components of
/// the netlist (seeded PRNG; sources are never faulted).
[[nodiscard]] std::vector<FaultScenario> sampleScenarios(
    const circuit::Netlist& net, std::size_t count, std::uint32_t seed,
    ScenarioOptions options = {});

/// A synthesised probe reading.
struct ProbeReading {
  std::string node;
  double volts = 0.0;
};

/// Solves the faulted circuit and reads the probes. `noise` adds a
/// deterministic pseudo-random absolute offset in [-noise, +noise] (meter
/// error). Throws std::runtime_error if the faulted circuit cannot be
/// solved.
[[nodiscard]] std::vector<ProbeReading> simulateMeasurements(
    const circuit::Netlist& nominal, const std::vector<circuit::Fault>& faults,
    const std::vector<std::string>& probes, double noise = 0.0,
    std::uint32_t noiseSeed = 1);

/// One service-shaped request: a sampled fault scenario with the probe
/// readings its faulted circuit produces on the bench.
struct TrafficItem {
  FaultScenario scenario;
  std::vector<ProbeReading> readings;
};

/// Deterministically synthesises a diagnosis-request stream: samples
/// `count` fault scenarios and simulates the given probes for each. All
/// randomness flows from the explicit `seed` — two calls with identical
/// arguments return bit-identical streams. Scenarios whose faulted circuit
/// fails to converge are dropped (the bench cannot read a board it cannot
/// power), so the result may hold fewer than `count` items. Each item's
/// meter-noise stream uses a splitmix64-derived sub-seed (rng.h) so
/// identical faults still yield distinct readings and no stream is shared
/// between master seeds.
[[nodiscard]] std::vector<TrafficItem> synthesizeTraffic(
    const circuit::Netlist& net, const std::vector<std::string>& probes,
    std::size_t count, std::uint32_t seed, double noise = 0.0,
    ScenarioOptions options = {});

}  // namespace flames::workload
