// Synthetic circuit generators for scaling studies (experiments E4-E6).
//
// The paper evaluates on one hand-built circuit; a credible release needs
// parameterised workloads to characterise candidate-space explosion,
// propagation cost and test-selection quality. All generators are
// deterministic in their parameters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace flames::workload {

/// Va -> amp1 -> n1 -> amp2 -> ... -> ampN -> nN: the Fig. 2 pattern
/// generalised to N stages. `gainSpread` is the absolute spread per gain.
[[nodiscard]] circuit::Netlist gainChain(std::size_t stages,
                                         double sourceVolts = 1.0,
                                         double gain = 1.5,
                                         double gainSpread = 0.05);

/// A resistive ladder: source feeding N series sections, each with a shunt
/// resistor to ground; taps t1..tN are observable.
[[nodiscard]] circuit::Netlist resistorLadder(std::size_t sections,
                                              double sourceVolts = 10.0,
                                              double seriesOhms = 1.0,
                                              double shuntOhms = 2.0,
                                              double relTol = 0.02);

/// A chain of buffered voltage dividers: each stage divides by
/// rTop/(rTop+rBottom) and re-amplifies with an ideal gain block, so faults
/// in one stage do not load the previous one. Gives long single-path
/// circuits with both resistors and gain blocks.
[[nodiscard]] circuit::Netlist dividerCascade(std::size_t stages,
                                              double sourceVolts = 8.0,
                                              double rTop = 10.0,
                                              double rBottom = 10.0,
                                              double gain = 2.0,
                                              double relTol = 0.02);

/// A cascade of buffered RC lowpass sections with geometrically spaced
/// corner frequencies: stage i has R = seriesOhms, C = baseFarads /
/// spacing^(i-1), separated by unity gain buffers so the corners stay
/// independent. Used by the dynamic-mode (AC) experiments.
[[nodiscard]] circuit::Netlist rcFilterChain(std::size_t stages,
                                             double seriesOhms = 1.0,
                                             double baseFarads = 1.0,
                                             double spacing = 4.0,
                                             double relTol = 0.05);

/// A rows x cols resistor mesh: node g_r_c at each grid point, horizontal
/// and vertical resistors between neighbours, the source driving the
/// top-left corner and the bottom-right corner grounded through a load.
/// Every node voltage is observable; KCL-rich topology for propagation
/// stress tests.
[[nodiscard]] circuit::Netlist resistorGrid(std::size_t rows,
                                            std::size_t cols,
                                            double sourceVolts = 10.0,
                                            double ohms = 1.0,
                                            double relTol = 0.02);

/// Observable node names of a generated circuit (the tap nodes, in order).
[[nodiscard]] std::vector<std::string> tapsOf(const circuit::Netlist& net,
                                              const std::string& prefix = "t");

}  // namespace flames::workload
