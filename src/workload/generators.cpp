#include "workload/generators.h"

#include <stdexcept>

namespace flames::workload {

using circuit::Netlist;

Netlist gainChain(std::size_t stages, double sourceVolts, double gain,
                  double gainSpread) {
  Netlist net;
  net.addVSource("Vin", "t0", "0", sourceVolts, 0.0);
  for (std::size_t i = 1; i <= stages; ++i) {
    const std::string in = "t" + std::to_string(i - 1);
    const std::string out = "t" + std::to_string(i);
    net.addGain("amp" + std::to_string(i), in, out, gain,
                gain > 0.0 ? gainSpread / gain : 0.0);
  }
  return net;
}

Netlist resistorLadder(std::size_t sections, double sourceVolts,
                       double seriesOhms, double shuntOhms, double relTol) {
  Netlist net;
  net.addVSource("Vin", "t0", "0", sourceVolts, 0.0);
  for (std::size_t i = 1; i <= sections; ++i) {
    const std::string prev = "t" + std::to_string(i - 1);
    const std::string cur = "t" + std::to_string(i);
    net.addResistor("Rs" + std::to_string(i), prev, cur, seriesOhms, relTol);
    net.addResistor("Rp" + std::to_string(i), cur, "0", shuntOhms, relTol);
  }
  return net;
}

Netlist dividerCascade(std::size_t stages, double sourceVolts, double rTop,
                       double rBottom, double gain, double relTol) {
  Netlist net;
  net.addVSource("Vin", "t0", "0", sourceVolts, 0.0);
  for (std::size_t i = 1; i <= stages; ++i) {
    const std::string in = "t" + std::to_string(i - 1);
    const std::string mid = "m" + std::to_string(i);
    const std::string out = "t" + std::to_string(i);
    net.addResistor("Rt" + std::to_string(i), in, mid, rTop, relTol);
    net.addResistor("Rb" + std::to_string(i), mid, "0", rBottom, relTol);
    net.addGain("buf" + std::to_string(i), mid, out, gain, relTol);
  }
  return net;
}

circuit::Netlist rcFilterChain(std::size_t stages, double seriesOhms,
                               double baseFarads, double spacing,
                               double relTol) {
  Netlist net;
  net.addVSource("Vin", "t0", "0", 1.0);
  double farads = baseFarads;
  for (std::size_t i = 1; i <= stages; ++i) {
    const std::string in = "t" + std::to_string(i - 1);
    const std::string mid = "f" + std::to_string(i);
    const std::string out = "t" + std::to_string(i);
    net.addResistor("R" + std::to_string(i), in, mid, seriesOhms, relTol);
    net.addCapacitor("C" + std::to_string(i), mid, "0", farads, relTol);
    net.addGain("buf" + std::to_string(i), mid, out, 1.0, 0.0);
    farads /= spacing;
  }
  return net;
}

circuit::Netlist resistorGrid(std::size_t rows, std::size_t cols,
                              double sourceVolts, double ohms,
                              double relTol) {
  if (rows < 1 || cols < 1) {
    throw std::invalid_argument("resistorGrid: empty grid");
  }
  Netlist net;
  auto nodeName = [](std::size_t r, std::size_t c) {
    return "g" + std::to_string(r) + "_" + std::to_string(c);
  };
  net.addVSource("Vin", nodeName(0, 0), "0", sourceVolts, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        net.addResistor("Rh" + std::to_string(r) + "_" + std::to_string(c),
                        nodeName(r, c), nodeName(r, c + 1), ohms, relTol);
      }
      if (r + 1 < rows) {
        net.addResistor("Rv" + std::to_string(r) + "_" + std::to_string(c),
                        nodeName(r, c), nodeName(r + 1, c), ohms, relTol);
      }
    }
  }
  net.addResistor("Rload", nodeName(rows - 1, cols - 1), "0", ohms, relTol);
  return net;
}

std::vector<std::string> tapsOf(const circuit::Netlist& net,
                                const std::string& prefix) {
  std::vector<std::string> taps;
  for (circuit::NodeId n = 1; n < net.nodeCount(); ++n) {
    const std::string& name = net.nodeName(n);
    if (name.rfind(prefix, 0) == 0) taps.push_back(name);
  }
  return taps;
}

}  // namespace flames::workload
