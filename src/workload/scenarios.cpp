#include "workload/scenarios.h"

#include <random>
#include <stdexcept>

#include "circuit/mna.h"
#include "workload/rng.h"

namespace flames::workload {

using circuit::Component;
using circuit::ComponentKind;
using circuit::Fault;
using circuit::Netlist;

std::vector<FaultScenario> sampleScenarios(const Netlist& net,
                                           std::size_t count,
                                           std::uint32_t seed,
                                           ScenarioOptions options) {
  // Faultable components (sources are trusted bench equipment).
  std::vector<const Component*> pool;
  for (const Component& c : net.components()) {
    if (c.kind != ComponentKind::kVSource) pool.push_back(&c);
  }
  if (pool.empty()) return {};

  // Menu of injectable faults per component.
  auto menuFor = [&](const Component& c) {
    std::vector<std::pair<std::string, Fault>> menu;
    if (options.includeOpens) menu.emplace_back("open", Fault::open(c.name));
    if (options.includeShorts && c.kind == ComponentKind::kResistor) {
      menu.emplace_back("short", Fault::shortCircuit(c.name));
    }
    if (options.includeSoftDeviations) {
      for (double f : options.softFactors) {
        menu.emplace_back("x" + std::to_string(f),
                          Fault::paramScale(c.name, f));
      }
    }
    return menu;
  };

  std::mt19937 rng(seed);
  std::vector<FaultScenario> scenarios;
  scenarios.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FaultScenario s;
    std::uniform_int_distribution<std::size_t> nFaults(
        1, std::max<std::size_t>(1, options.maxFaultsPerScenario));
    const std::size_t k = nFaults(rng);
    for (std::size_t j = 0; j < k; ++j) {
      std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
      const Component& c = *pool[pick(rng)];
      const auto menu = menuFor(c);
      if (menu.empty()) continue;
      std::uniform_int_distribution<std::size_t> pickMode(0, menu.size() - 1);
      const auto& [modeName, fault] = menu[pickMode(rng)];
      // Avoid faulting the same component twice in one scenario.
      bool dup = false;
      for (const Fault& f : s.faults) {
        if (f.component == fault.component) dup = true;
      }
      if (dup) continue;
      if (!s.description.empty()) s.description += " + ";
      s.description += c.name + ":" + modeName;
      s.faults.push_back(fault);
    }
    if (s.faults.empty()) {
      s.description = "no-fault";
    }
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

std::vector<ProbeReading> simulateMeasurements(
    const Netlist& nominal, const std::vector<Fault>& faults,
    const std::vector<std::string>& probes, double noise,
    std::uint32_t noiseSeed) {
  const Netlist faulted = circuit::applyFaults(nominal, faults);
  const auto op = circuit::DcSolver(faulted).solve();
  if (!op.converged) {
    throw std::runtime_error("simulateMeasurements: faulted circuit did not converge");
  }
  std::mt19937 rng(noiseSeed);
  std::uniform_real_distribution<double> dist(-noise, noise);
  std::vector<ProbeReading> readings;
  readings.reserve(probes.size());
  for (const std::string& p : probes) {
    double v = op.v(faulted.findNode(p));
    if (noise > 0.0) v += dist(rng);
    readings.push_back({p, v});
  }
  return readings;
}

std::vector<TrafficItem> synthesizeTraffic(const Netlist& net,
                                           const std::vector<std::string>& probes,
                                           std::size_t count,
                                           std::uint32_t seed, double noise,
                                           ScenarioOptions options) {
  std::vector<TrafficItem> traffic;
  traffic.reserve(count);
  std::size_t index = 0;
  // The scenario sampler consumes the master seed directly; each item's
  // meter-noise stream gets its own derived sub-seed so that (a) two runs
  // with the same seed replay bit-identically and (b) no stream is shared
  // with the sampler or with any other master seed (the old `seed + index`
  // derivation collided across adjacent seeds).
  for (FaultScenario& s : sampleScenarios(net, count, seed, options)) {
    ++index;
    try {
      auto readings =
          simulateMeasurements(net, s.faults, probes, noise,
                               deriveSeed(seed, index));
      traffic.push_back({std::move(s), std::move(readings)});
    } catch (const std::runtime_error&) {
      // Non-convergent faulted circuit: the bench cannot read it; skip.
    }
  }
  return traffic;
}

}  // namespace flames::workload
