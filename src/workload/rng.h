// Deterministic seed derivation shared by every randomized workload.
//
// All generated workloads (traffic synthesis, scenario fuzzing) must be
// replayable from a single user-visible seed. Deriving per-item sub-seeds by
// plain addition (`seed + index`) makes adjacent master seeds share streams
// (seed 1 / item 2 collides with seed 2 / item 1); splitmix64 finalization
// decorrelates the (seed, stream) pairs so every master seed owns a disjoint
// family of sub-streams.
#pragma once

#include <cstdint>

namespace flames::workload {

/// splitmix64 finalizer (Steele, Lea & Flood) — bijective avalanche mix.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Sub-seed for stream `stream` of master seed `seed`. Distinct (seed,
/// stream) pairs map to distinct mixer inputs, so no two streams of any two
/// master seeds coincide by construction (the mix is bijective).
[[nodiscard]] constexpr std::uint32_t deriveSeed(std::uint32_t seed,
                                                 std::uint64_t stream) {
  return static_cast<std::uint32_t>(
      splitmix64((static_cast<std::uint64_t>(seed) << 32) ^ stream));
}

}  // namespace flames::workload
