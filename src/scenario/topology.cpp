#include "scenario/topology.h"

#include <stdexcept>

namespace flames::scenario {

using circuit::Netlist;

std::string_view familyName(Family f) {
  switch (f) {
    case Family::kLadder: return "ladder";
    case Family::kDivider: return "divider";
    case Family::kBridge: return "bridge";
    case Family::kAmpChain: return "ampchain";
  }
  return "unknown";
}

Family familyFromName(std::string_view name) {
  for (Family f : allFamilies()) {
    if (familyName(f) == name) return f;
  }
  throw std::invalid_argument("unknown topology family: " + std::string(name));
}

const std::vector<Family>& allFamilies() {
  static const std::vector<Family> kAll = {Family::kLadder, Family::kDivider,
                                           Family::kBridge, Family::kAmpChain};
  return kAll;
}

namespace {

/// Per-spec value perturbation stream. Each draw scales a nominal parameter
/// within [lo, hi] of itself, so generated circuits differ in values (not
/// just shape) while every component keeps a physically sensible magnitude.
class ValueStream {
 public:
  explicit ValueStream(std::uint32_t seed) : rng_(seed) {}

  double around(double nominal, double lo = 0.7, double hi = 1.4) {
    std::uniform_real_distribution<double> d(lo, hi);
    return nominal * d(rng_);
  }

 private:
  std::mt19937 rng_;
};

Topology buildLadder(const TopologySpec& spec) {
  ValueStream vs(spec.valueSeed);
  Topology t;
  Netlist& net = t.net;
  net.addVSource("Vin", "t0", "0", vs.around(10.0), 0.0);
  t.probes.push_back("t0");
  for (std::size_t i = 1; i <= spec.depth; ++i) {
    const std::string prev = "t" + std::to_string(i - 1);
    const std::string cur = "t" + std::to_string(i);
    net.addResistor("Rs" + std::to_string(i), prev, cur, vs.around(1.0), 0.02);
    net.addResistor("Rp" + std::to_string(i), cur, "0", vs.around(2.5), 0.02);
    t.probes.push_back(cur);
  }
  return t;
}

Topology buildDivider(const TopologySpec& spec) {
  ValueStream vs(spec.valueSeed);
  Topology t;
  Netlist& net = t.net;
  net.addVSource("Vin", "t0", "0", vs.around(8.0), 0.0);
  t.probes.push_back("t0");
  for (std::size_t i = 1; i <= spec.depth; ++i) {
    const std::string in = "t" + std::to_string(i - 1);
    const std::string mid = "d" + std::to_string(i);
    const std::string out = "t" + std::to_string(i);
    net.addResistor("Rt" + std::to_string(i), in, mid, vs.around(10.0), 0.02);
    net.addResistor("Rb" + std::to_string(i), mid, "0", vs.around(10.0), 0.02);
    net.addGain("buf" + std::to_string(i), mid, out, vs.around(2.0, 0.8, 1.3),
                0.02);
    t.probes.push_back(mid);
    t.probes.push_back(out);
  }
  return t;
}

Topology buildBridge(const TopologySpec& spec) {
  // A chain of `depth` Wheatstone cells: cell i has two half-bridges
  // in -> a_i -> gnd and in -> b_i -> gnd joined by a detector resistor
  // a_i -> b_i, and a_i feeds the next cell. Both midpoints are probed, so
  // any arm deviation unbalances an observable pair.
  //
  // Chaining (rather than hanging every cell off one source node) keeps the
  // maximum node degree at 5 for every depth. That bound matters: a KCL
  // constraint over a degree-k node makes fuzzy propagation enumerate the
  // cartesian product of the k-1 source quantities' value entries per
  // firing, so a shared source node of degree 2*depth+1 turns mesh
  // diagnosis exponential in depth.
  ValueStream vs(spec.valueSeed);
  Topology t;
  Netlist& net = t.net;
  net.addVSource("Vin", "a0", "0", vs.around(10.0), 0.0);
  t.probes.push_back("a0");
  for (std::size_t i = 1; i <= spec.depth; ++i) {
    const std::string s = std::to_string(i);
    const std::string in = "a" + std::to_string(i - 1);
    const std::string a = "a" + s;
    const std::string b = "b" + s;
    net.addResistor("Ra" + s, in, a, vs.around(1.0), 0.02);
    net.addResistor("Rc" + s, a, "0", vs.around(4.0), 0.02);
    net.addResistor("Rb" + s, in, b, vs.around(1.2), 0.02);
    net.addResistor("Rd" + s, b, "0", vs.around(3.5), 0.02);
    net.addResistor("Rg" + s, a, b, vs.around(5.0), 0.02);
    t.probes.push_back(a);
    t.probes.push_back(b);
  }
  return t;
}

Topology buildAmpChain(const TopologySpec& spec) {
  // Stage i fans `width` gain blocks out of the previous main tap; branch 0
  // continues the chain (the Fig. 2 shape: amp2 and amp3 both driven from
  // node B, generalised to arbitrary depth and fan-out).
  ValueStream vs(spec.valueSeed);
  Topology t;
  Netlist& net = t.net;
  net.addVSource("Vin", "t0", "0", vs.around(2.0), 0.0);
  t.probes.push_back("t0");
  for (std::size_t i = 1; i <= spec.depth; ++i) {
    const std::string in = "t" + std::to_string(i - 1);
    for (std::size_t w = 0; w < spec.width; ++w) {
      const std::string suffix =
          std::to_string(i) + (w == 0 ? "" : "_" + std::to_string(w));
      const std::string out = "t" + suffix;
      const double gain = vs.around(1.6, 0.75, 1.5);
      net.addGain("amp" + suffix, in, out, gain, 0.05 / gain);
      t.probes.push_back(out);
    }
  }
  return t;
}

}  // namespace

Topology buildTopology(const TopologySpec& spec) {
  if (spec.depth == 0) throw std::invalid_argument("topology depth == 0");
  if (spec.width == 0) throw std::invalid_argument("topology width == 0");
  switch (spec.family) {
    case Family::kLadder: return buildLadder(spec);
    case Family::kDivider: return buildDivider(spec);
    case Family::kBridge: return buildBridge(spec);
    case Family::kAmpChain: return buildAmpChain(spec);
  }
  throw std::logic_error("buildTopology: unhandled family");
}

TopologySpec sampleSpec(std::mt19937& rng, const TopologyOptions& options) {
  const std::vector<Family>& pool =
      options.families.empty() ? allFamilies() : options.families;
  std::uniform_int_distribution<std::size_t> pickFamily(0, pool.size() - 1);
  std::uniform_int_distribution<std::size_t> pickDepth(
      std::max<std::size_t>(1, options.minDepth),
      std::max<std::size_t>(options.minDepth, options.maxDepth));
  TopologySpec spec;
  spec.family = pool[pickFamily(rng)];
  spec.depth = pickDepth(rng);
  spec.width = 1;
  if (spec.family == Family::kAmpChain && options.maxWidth > 1) {
    std::uniform_int_distribution<std::size_t> pickWidth(1, options.maxWidth);
    spec.width = pickWidth(rng);
  }
  spec.valueSeed = static_cast<std::uint32_t>(rng());
  return spec;
}

}  // namespace flames::scenario
