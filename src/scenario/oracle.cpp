#include "scenario/oracle.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <unordered_map>

#include "circuit/fault.h"
#include "constraints/model_builder.h"
#include "kb/store.h"
#include "lint/lint.h"
#include "prov/certificate.h"
#include "prov/check.h"
#include "service/service.h"

namespace flames::scenario {

using diagnosis::DiagnosisReport;
using diagnosis::MeasurementSummary;
using diagnosis::RankedCandidate;
using diagnosis::RankedNogood;

namespace {

constexpr double kTol = 1e-9;

bool inUnit(double x) { return x >= -kTol && x <= 1.0 + kTol; }

std::string joinComponents(const std::vector<std::string>& comps) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < comps.size(); ++i) {
    if (i != 0) os << ',';
    os << comps[i];
  }
  os << '}';
  return os.str();
}

bool strictSubset(const std::vector<std::string>& a,
                  const std::vector<std::string>& b) {
  if (a.size() >= b.size()) return false;
  const std::set<std::string> bs(b.begin(), b.end());
  return std::all_of(a.begin(), a.end(),
                     [&](const std::string& c) { return bs.count(c) != 0; });
}

bool intersects(const std::vector<std::string>& a,
                const std::vector<std::string>& b) {
  return std::any_of(a.begin(), a.end(), [&](const std::string& c) {
    return std::find(b.begin(), b.end(), c) != b.end();
  });
}

std::string sortedKey(const std::vector<std::string>& comps) {
  std::vector<std::string> s = comps;
  std::sort(s.begin(), s.end());
  return joinComponents(s);
}

/// (component-set key, degree) pairs in a canonical order, for comparing
/// two reports' nogood lists as multisets (tie order within equal degrees
/// is not part of the contract).
std::vector<std::pair<std::string, double>> canonicalNogoods(
    const DiagnosisReport& r) {
  std::vector<std::pair<std::string, double>> v;
  v.reserve(r.nogoods.size());
  for (const RankedNogood& n : r.nogoods) {
    v.emplace_back(sortedKey(n.components), n.degree);
  }
  std::sort(v.begin(), v.end());
  return v;
}

}  // namespace

std::vector<std::string> checkReportInvariants(const DiagnosisReport& report) {
  std::vector<std::string> v;
  auto fail = [&](const std::string& msg) { v.push_back(msg); };

  // I1 — propagation must have completed.
  if (!report.propagationCompleted) {
    fail("I1: propagation budget exhausted");
  }

  // I2 — Dc table sanity.
  for (const MeasurementSummary& m : report.measurements) {
    if (!inUnit(m.dc)) {
      fail("I2: Dc(" + m.quantity + ") = " + std::to_string(m.dc) +
           " outside [0,1]");
    }
    if (std::abs(std::abs(m.signedDc) - m.dc) > kTol) {
      fail("I2: |signedDc| != dc for " + m.quantity);
    }
    if (m.direction == -1 && m.signedDc > kTol) {
      fail("I2: below-nominal deviation with positive signed Dc for " +
           m.quantity);
    }
    if (m.direction == 1 && m.signedDc < -kTol) {
      fail("I2: above-nominal deviation with negative signed Dc for " +
           m.quantity);
    }
  }

  // I3 — nogood degrees and subset-minimality.
  for (const RankedNogood& n : report.nogoods) {
    if (n.components.empty()) fail("I3: empty nogood");
    if (n.degree <= kTol || n.degree > 1.0 + kTol) {
      fail("I3: nogood " + joinComponents(n.components) + " degree " +
           std::to_string(n.degree) + " outside (0,1]");
    }
  }
  for (std::size_t i = 0; i < report.nogoods.size(); ++i) {
    for (std::size_t j = 0; j < report.nogoods.size(); ++j) {
      if (i == j) continue;
      if (strictSubset(report.nogoods[i].components,
                       report.nogoods[j].components)) {
        fail("I3: nogood " + joinComponents(report.nogoods[j].components) +
             " is subsumed by " + joinComponents(report.nogoods[i].components));
      }
    }
  }

  // I4 — candidate structure.
  for (const RankedCandidate& c : report.candidates) {
    if (c.components.empty()) fail("I4: empty candidate");
    if (!inUnit(c.suspicion)) {
      fail("I4: candidate " + joinComponents(c.components) + " suspicion " +
           std::to_string(c.suspicion) + " outside [0,1]");
    }
    if (!inUnit(c.plausibility)) {
      fail("I4: candidate " + joinComponents(c.components) + " plausibility " +
           std::to_string(c.plausibility) + " outside [0,1]");
    }
    if (!inUnit(c.prior)) {
      fail("I4: candidate " + joinComponents(c.components) + " prior " +
           std::to_string(c.prior) + " outside [0,1]");
    }
    const std::set<std::string> unique(c.components.begin(),
                                       c.components.end());
    if (unique.size() != c.components.size()) {
      fail("I4: candidate " + joinComponents(c.components) +
           " repeats a component");
    }
  }
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < report.candidates.size(); ++j) {
      const auto si = std::set<std::string>(
          report.candidates[i].components.begin(),
          report.candidates[i].components.end());
      const auto sj = std::set<std::string>(
          report.candidates[j].components.begin(),
          report.candidates[j].components.end());
      if (si == sj) {
        fail("I4: duplicate candidate " +
             joinComponents(report.candidates[i].components));
      }
    }
  }

  // I5 — every conflict is explained by some candidate.
  if (!report.candidates.empty()) {
    for (const RankedNogood& n : report.nogoods) {
      const bool hit = std::any_of(
          report.candidates.begin(), report.candidates.end(),
          [&](const RankedCandidate& c) {
            return intersects(c.components, n.components);
          });
      if (!hit) {
        fail("I5: nogood " + joinComponents(n.components) +
             " is hit by no candidate");
      }
    }
  }

  // I6 — suspicion table range.
  for (const auto& [comp, s] : report.suspicion) {
    if (!inUnit(s)) {
      fail("I6: suspicion(" + comp + ") = " + std::to_string(s) +
           " outside [0,1]");
    }
  }

  return v;
}

diagnosis::FlamesOptions defaultOracleFlamesOptions() {
  // Stock options. The per-model entry cap is derived by runOracle from the
  // static cost model (see oracle.h): mesh topologies explode at the stock
  // 24 while tree-shaped families are fine there, and the work-budget
  // derivation reproduces exactly that distinction.
  return diagnosis::FlamesOptions{};
}

OracleResult runOracle(const Scenario& s, const OracleOptions& options,
                       service::DiagnosisService* svc) {
  OracleResult result;

  circuit::Netlist net;
  std::vector<workload::ProbeReading> readings;
  try {
    net = buildNetlist(s);
    readings = synthesize(s);
  } catch (const std::exception& e) {
    result.violations.emplace_back(std::string("bench: ") + e.what());
    return result;
  }

  // I7 — generated netlists must lint clean of errors.
  const lint::LintReport lintReport = lint::lintNetlist(net, options.flames.lint);
  if (!lintReport.ok()) {
    for (const lint::Diagnostic& d : lintReport.diagnostics) {
      if (d.severity == lint::Severity::kError) {
        result.violations.push_back("I7: lint " + d.rule + " " + d.location +
                                    ": " + d.message);
      }
    }
  }

  diagnosis::FlamesOptions fopts = options.flames;
  fopts.measurementSpread = s.measurementSpread;
  if (options.checkCertificates) fopts.recordProvenance = true;

  // Pre-propagation static analysis: derives the per-model entry cap and
  // produces the certificates I8/I9 are checked against. The analysis knobs
  // mirror the propagation configuration so the certificates cover the run
  // that actually happens.
  if (options.deriveEntryCap || options.checkAnalysis) {
    try {
      const constraints::BuiltModel built =
          constraints::buildDiagnosticModel(net, fopts.model);
      result.analysis = analyze::analyzeModel(
          built, analyze::analysisOptionsFor(fopts.propagation));
      if (options.deriveEntryCap) {
        fopts.propagation.maxEntriesPerQuantity = analyze::recommendedEntryCap(
            *result.analysis, fopts.propagation.maxEntriesPerQuantity);
      }
    } catch (const std::exception& e) {
      result.violations.emplace_back(std::string("analyze: ") + e.what());
      return result;
    }
  }
  result.appliedEntryCap = fopts.propagation.maxEntriesPerQuantity;

  try {
    if (options.via == OracleVia::kService) {
      std::unique_ptr<service::DiagnosisService> local;
      if (svc == nullptr) {
        service::ServiceOptions sopts;
        sopts.workers = 1;
        local = std::make_unique<service::DiagnosisService>(sopts);
        svc = local.get();
      }
      service::DiagnosisRequest req;
      req.netlist = std::make_shared<const circuit::Netlist>(net);
      req.options = fopts;
      for (const auto& r : readings) {
        req.measurements.push_back(
            service::crispMeasurement(r.node, r.volts, s.measurementSpread));
      }
      const service::JobHandle job = svc->submit(req);
      const service::JobResult& jr = job->wait();
      if (jr.status != service::JobStatus::kDone) {
        result.violations.push_back(
            "service: job resolved " +
            std::string(service::jobStatusName(jr.status)) +
            (jr.error.empty() ? "" : " (" + jr.error + ")"));
        return result;
      }
      result.report = jr.report;
    } else {
      diagnosis::FlamesEngine engine(net, fopts);
      for (const auto& r : readings) engine.measure(r.node, r.volts);
      result.report = engine.diagnose();
    }
  } catch (const std::exception& e) {
    result.violations.emplace_back(std::string("diagnose: ") + e.what());
    return result;
  }

  for (std::string& msg : checkReportInvariants(result.report)) {
    result.violations.push_back(std::move(msg));
  }

  if (options.checkAnalysis && result.analysis) {
    // I8 — every post-propagation value hull sits inside its envelope.
    std::unordered_map<std::string, const analyze::Envelope*> envByName;
    for (const analyze::QuantityEnvelope& q : result.analysis->envelopes.quantities) {
      envByName.emplace(q.name, &q.envelope);
    }
    for (const diagnosis::QuantityValueHull& h : result.report.valueHulls) {
      const auto it = envByName.find(h.quantity);
      if (it == envByName.end()) {
        result.violations.push_back("I8: no static envelope for quantity " +
                                    h.quantity);
        continue;
      }
      if (!it->second->contains(fuzzy::Cut{h.lo, h.hi})) {
        std::ostringstream os;
        os << "I8: value hull of " << h.quantity << " [" << h.lo << ", "
           << h.hi << "] escapes its static envelope [" << it->second->lo
           << ", " << it->second->hi << "]";
        result.violations.push_back(os.str());
      }
    }
    // I9 — the certified step bound was not exceeded. The bound is
    // certified at the derived entry cap (B is monotone in the cap), so it
    // only applies when the run's cap did not exceed the derived one.
    if (result.appliedEntryCap <= result.analysis->cost.derivedEntryCap &&
        result.report.propagationSteps > result.analysis->cost.stepBound) {
      result.violations.push_back(
          "I9: observed " + std::to_string(result.report.propagationSteps) +
          " propagation steps exceed the certified bound " +
          std::to_string(result.analysis->cost.stepBound));
    }
  }

  // I10 — replay the run's certificate through the independent checker. The
  // model is rebuilt from the netlist (deterministic) so the replay shares
  // no state with the diagnosis that produced the log; both diagnosis paths
  // fuzzify crisp probe readings identically (about(volts, spread)), so the
  // certificate's observation list is reconstructed the same way.
  if (options.checkCertificates && result.report.provenance) {
    try {
      std::vector<diagnosis::Observation> certObs;
      for (const auto& r : readings) {
        certObs.push_back(
            service::crispMeasurement(r.node, r.volts, s.measurementSpread));
      }
      const constraints::BuiltModel built =
          constraints::buildDiagnosticModel(net, fopts.model);
      const prov::Certificate cert =
          prov::buildCertificate(built, *result.report.provenance, certObs);
      const prov::CheckResult check =
          prov::checkCertificate(net, cert, fopts.model);
      for (const std::string& v : check.violations) {
        result.violations.push_back("I10: " + v);
      }
    } catch (const std::exception& e) {
      result.violations.emplace_back(
          std::string("I10: certificate replay threw: ") + e.what());
    }
  }

  // I11 — KB durability. Drive the run's own symptom signature through a
  // durable experience store in a scratch directory: confirm, compact (so a
  // snapshot exists), then confirm/fail/decay again so the state is a
  // snapshot plus a live WAL tail — the exact shape crash recovery has to
  // handle. Reopening the directory must reproduce the in-memory canonical
  // serialization byte for byte.
  if (options.checkKbDurability) {
    namespace fs = std::filesystem;
    static std::atomic<std::uint64_t> kbRun{0};
    const fs::path dir =
        fs::temp_directory_path() /
        ("flames-kb-oracle-" + std::to_string(::getpid()) + "-" +
         std::to_string(s.seed) + "-" + std::to_string(kbRun.fetch_add(1)));
    try {
      kb::KbOptions ko;
      ko.dir = dir.string();
      ko.origin = "oracle";
      const std::string mode(circuit::faultKindName(s.fault.kind));
      std::string live;
      {
        kb::KbStore store(ko);
        store.recordSuccess(result.report.signature, s.fault.component, mode);
        store.compact();
        store.recordSuccess(result.report.signature, s.fault.component, mode);
        store.recordFailure(s.fault.component, mode);
        store.decay();
        live = store.serialize();
      }
      const kb::KbStore reopened(ko);
      const std::string replayed = reopened.serialize();
      if (replayed != live) {
        result.violations.push_back(
            "I11: reopened KB state diverges from the in-memory store (live " +
            std::to_string(live.size()) + " bytes, replayed " +
            std::to_string(replayed.size()) + " bytes)");
      }
    } catch (const std::exception& e) {
      result.violations.emplace_back(std::string("I11: kb store threw: ") +
                                     e.what());
    }
    std::error_code ec;
    fs::remove_all(dir, ec);
  }

  // I12 — incremental replay. A fresh engine replays the same readings one
  // probe at a time through the compiled-schedule path
  // (FlamesEngine::addMeasurement); the final report must match the batch
  // diagnosis exactly, and each probe after the first (the first call is
  // the from-scratch seed propagation) must stay inside its static impact
  // cone: touched quantities ⊆ cone quantities, kept entries ≤ the cone's
  // certified step bound. The oracle compiles its own ScheduleAnalysis at
  // the applied entry cap and the actual probe count, independent of the
  // engine's internal schedule.
  if (options.checkIncremental && !readings.empty()) {
    try {
      diagnosis::FlamesEngine inc(net, fopts);
      analyze::ScheduleOptions scheduleOpts;
      scheduleOpts.entryCap = result.appliedEntryCap;
      scheduleOpts.assumedMeasurements = readings.size();
      const analyze::ScheduleAnalysis sched =
          analyze::computeSchedule(inc.builtModel().model, scheduleOpts);
      DiagnosisReport incReport;
      for (std::size_t i = 0; i < readings.size(); ++i) {
        incReport = inc.addMeasurement(readings[i].node, readings[i].volts);
        if (i == 0) continue;  // from-scratch seed: every quantity is touched
        const diagnosis::IncrementalSession* session = inc.incrementalSession();
        if (session == nullptr) {
          result.violations.push_back(
              "I12: engine has no incremental session after probe " +
              readings[i].node);
          break;
        }
        // Cone containment and the step bound only apply to genuine delta
        // extensions; the exactness guard's batch recomputes (entry-cap
        // saturation) legitimately touch the whole model.
        if (!session->lastIncremental()) continue;
        const constraints::QuantityId q =
            inc.builtModel().voltage(readings[i].node);
        const constraints::PropagationSchedule::ImpactCone& cone =
            sched.plan.cones[q];
        const std::set<constraints::QuantityId> inCone(cone.quantities.begin(),
                                                       cone.quantities.end());
        for (const constraints::QuantityId t : session->lastTouched()) {
          if (inCone.count(t) == 0) {
            result.violations.push_back(
                "I12: probe " + readings[i].node + " touched quantity " +
                inc.builtModel().model.quantityInfo(t).name +
                " outside its static impact cone");
          }
        }
        if (result.appliedEntryCap <= sched.entryCap &&
            cone.stepBound < analyze::kCostSaturated &&
            session->lastStepsDelta() > cone.stepBound) {
          result.violations.push_back(
              "I12: probe " + readings[i].node + " kept " +
              std::to_string(session->lastStepsDelta()) +
              " entries, exceeding its cone's certified bound " +
              std::to_string(cone.stepBound));
        }
      }
      // Batch equivalence: nogoods as a canonical multiset, candidates in
      // rank order, and the per-component suspicion table.
      const auto batchNg = canonicalNogoods(result.report);
      const auto incNg = canonicalNogoods(incReport);
      if (batchNg.size() != incNg.size()) {
        result.violations.push_back(
            "I12: incremental replay produced " +
            std::to_string(incNg.size()) + " nogoods, batch produced " +
            std::to_string(batchNg.size()));
      } else {
        for (std::size_t i = 0; i < batchNg.size(); ++i) {
          if (batchNg[i].first != incNg[i].first ||
              std::abs(batchNg[i].second - incNg[i].second) > kTol) {
            result.violations.push_back(
                "I12: nogood mismatch at " + batchNg[i].first + " (batch " +
                std::to_string(batchNg[i].second) + ", incremental " +
                incNg[i].first + " " + std::to_string(incNg[i].second) + ")");
            break;
          }
        }
      }
      if (result.report.candidates.size() != incReport.candidates.size()) {
        result.violations.push_back(
            "I12: incremental replay produced " +
            std::to_string(incReport.candidates.size()) +
            " candidates, batch produced " +
            std::to_string(result.report.candidates.size()));
      } else {
        for (std::size_t i = 0; i < result.report.candidates.size(); ++i) {
          const RankedCandidate& b = result.report.candidates[i];
          const RankedCandidate& c = incReport.candidates[i];
          if (sortedKey(b.components) != sortedKey(c.components) ||
              std::abs(b.plausibility - c.plausibility) > kTol) {
            result.violations.push_back(
                "I12: candidate rank " + std::to_string(i + 1) +
                " diverges (batch " + joinComponents(b.components) +
                " p=" + std::to_string(b.plausibility) + ", incremental " +
                joinComponents(c.components) +
                " p=" + std::to_string(c.plausibility) + ")");
            break;
          }
        }
      }
      if (result.report.suspicion.size() != incReport.suspicion.size()) {
        result.violations.push_back("I12: suspicion table size diverges");
      } else {
        for (const auto& [comp, susp] : result.report.suspicion) {
          const auto it = incReport.suspicion.find(comp);
          if (it == incReport.suspicion.end() ||
              std::abs(it->second - susp) > kTol) {
            result.violations.push_back("I12: suspicion(" + comp +
                                        ") diverges between batch and "
                                        "incremental replay");
            break;
          }
        }
      }
    } catch (const std::exception& e) {
      result.violations.emplace_back(
          std::string("I12: incremental replay threw: ") + e.what());
    }
  }

  result.faultDetected = result.report.faultDetected();
  if (!result.faultDetected) {
    result.violations.push_back("detect: injected fault " + s.fault.describe() +
                                " raised no discrepancy");
  }

  for (std::size_t i = 0; i < result.report.candidates.size(); ++i) {
    const RankedCandidate& c = result.report.candidates[i];
    if (std::find(c.components.begin(), c.components.end(),
                  s.fault.component) != c.components.end()) {
      result.culpritRank = static_cast<int>(i) + 1;
      result.culpritDegree = c.plausibility;
      break;
    }
  }
  if (result.culpritRank < 0) {
    result.violations.push_back("recovery: culprit " + s.fault.component +
                                " absent from the ranked candidates");
  } else if (options.requireRankAtMost > 0 &&
             static_cast<std::size_t>(result.culpritRank) >
                 options.requireRankAtMost) {
    result.violations.push_back(
        "rank: culprit " + s.fault.component + " ranked " +
        std::to_string(result.culpritRank) + ", required top-" +
        std::to_string(options.requireRankAtMost));
  }

  return result;
}

}  // namespace flames::scenario
