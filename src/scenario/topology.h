// Seeded topology generation for the scenario harness.
//
// A TopologySpec is a tiny, fully replayable description of one generated
// circuit: a structural family, a depth/width, and a value seed that
// perturbs every component parameter inside its family's range. The same
// spec always rebuilds the same circuit::Netlist — the spec (not the
// netlist) is what a `.scenario` repro file stores.
//
// Families (the generator grammar, DESIGN.md §8):
//   ladder    — resistive ladder: `depth` series sections, each with a shunt
//               to ground; every tap observable.
//   divider   — cascade of buffered voltage dividers: `depth` stages of
//               rTop/rBottom dividers isolated by ideal gain blocks.
//   bridge    — chain of `depth` Wheatstone cells: two half-bridges per cell
//               joined by a detector resistor, both midpoints observable;
//               each cell's a-midpoint feeds the next cell (bounded node
//               degree — see buildBridge).
//   ampchain  — multi-stage amplifier tree: `depth` stages, each fanning out
//               to `width` gain blocks driven from the previous main tap
//               (the Fig. 2 pattern generalised in both dimensions).
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/netlist.h"

namespace flames::scenario {

enum class Family : std::uint8_t {
  kLadder,
  kDivider,
  kBridge,
  kAmpChain,
};

[[nodiscard]] std::string_view familyName(Family f);
/// Inverse of familyName; throws std::invalid_argument on unknown names.
[[nodiscard]] Family familyFromName(std::string_view name);
/// All families, in declaration order.
[[nodiscard]] const std::vector<Family>& allFamilies();

/// Replayable description of one generated circuit.
struct TopologySpec {
  Family family = Family::kLadder;
  std::size_t depth = 3;  ///< sections / stages / cells
  std::size_t width = 1;  ///< fan-out per stage (ampchain only)
  /// Seed of the per-component value perturbation stream.
  std::uint32_t valueSeed = 1;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// A generated circuit plus its observable probe points.
struct Topology {
  circuit::Netlist net;
  std::vector<std::string> probes;
};

/// Deterministically builds the circuit described by the spec. Throws
/// std::invalid_argument on degenerate specs (depth == 0, width == 0).
[[nodiscard]] Topology buildTopology(const TopologySpec& spec);

/// Bounds for spec sampling.
struct TopologyOptions {
  std::size_t minDepth = 2;
  std::size_t maxDepth = 6;
  std::size_t maxWidth = 3;  ///< ampchain fan-out bound
  /// Families eligible for sampling; empty = all.
  std::vector<Family> families;
};

/// Draws a spec from the options' ranges using the caller's RNG.
[[nodiscard]] TopologySpec sampleSpec(std::mt19937& rng,
                                      const TopologyOptions& options = {});

}  // namespace flames::scenario
