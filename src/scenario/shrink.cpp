#include "scenario/shrink.h"

#include <algorithm>

#include "circuit/netlist.h"

namespace flames::scenario {

namespace {

using circuit::Component;
using circuit::ComponentKind;

/// The class of a violation message is its prefix up to the first ':'
/// ("rank", "I3", "bench", ...). Shrinking must preserve the failure class:
/// a reduction that swaps a rank violation for a bench error has found a
/// *different* (and usually self-inflicted) bug, not a smaller instance of
/// the original one.
std::string violationClass(const std::string& violation) {
  const std::size_t colon = violation.find(':');
  return colon == std::string::npos ? violation : violation.substr(0, colon);
}

/// Drops probes that no longer name a node of the candidate's (possibly
/// depth- or width-reduced) topology. Returns false when the candidate is
/// not worth running: unbuildable, or no probes left to read.
bool pruneStaleProbes(Scenario& candidate) {
  try {
    const Topology topo = buildTopology(candidate.topology);
    auto& probes = candidate.probes;
    probes.erase(std::remove_if(probes.begin(), probes.end(),
                                [&](const std::string& name) {
                                  try {
                                    (void)topo.net.findNode(name);
                                    return false;
                                  } catch (const std::exception&) {
                                    return true;
                                  }
                                }),
                 probes.end());
    return !probes.empty();
  } catch (const std::exception&) {
    return false;
  }
}

/// True iff the oracle still fails on the candidate *in one of the original
/// failure's violation classes*. Any exception (unbuildable topology,
/// missing culprit, unsolvable bench) counts as "does not reproduce" — the
/// shrinker must only keep diagnosable failures.
bool reproduces(const Scenario& candidate, const OracleOptions& oracle,
                const std::vector<std::string>& originalClasses) {
  try {
    const OracleResult r = runOracle(candidate, oracle);
    return std::any_of(r.violations.begin(), r.violations.end(),
                       [&](const std::string& v) {
                         return std::find(originalClasses.begin(),
                                          originalClasses.end(),
                                          violationClass(v)) !=
                                originalClasses.end();
                       });
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

ShrinkResult shrink(const Scenario& failing, const OracleOptions& oracle,
                    const ShrinkOptions& options) {
  ShrinkResult result;
  result.scenario = failing;

  // Record which way the original scenario fails; every accepted reduction
  // must keep at least one violation of the same class.
  std::vector<std::string> originalClasses;
  try {
    for (const std::string& v : runOracle(failing, oracle).violations) {
      const std::string cls = violationClass(v);
      if (std::find(originalClasses.begin(), originalClasses.end(), cls) ==
          originalClasses.end()) {
        originalClasses.push_back(cls);
      }
    }
  } catch (const std::exception&) {
    return result;  // not diagnosable at all; nothing to shrink
  }
  if (originalClasses.empty()) return result;  // passing scenario

  auto tryReduce = [&](Scenario candidate) {
    if (result.attempted >= options.maxAttempts) return false;
    if (!pruneStaleProbes(candidate)) return false;
    ++result.attempted;
    if (!reproduces(candidate, oracle, originalClasses)) return false;
    result.scenario = std::move(candidate);
    ++result.accepted;
    return true;
  };

  bool changed = true;
  while (changed && result.attempted < options.maxAttempts) {
    changed = false;

    // 1. Depth: halve first (logarithmic progress), then decrement.
    while (result.scenario.topology.depth > 1) {
      Scenario c = result.scenario;
      c.topology.depth /= 2;
      if (c.topology.depth == result.scenario.topology.depth) break;
      if (!tryReduce(c)) break;
      changed = true;
    }
    while (result.scenario.topology.depth > 1) {
      Scenario c = result.scenario;
      --c.topology.depth;
      if (!tryReduce(c)) break;
      changed = true;
    }

    // 2. Width.
    while (result.scenario.topology.width > 1) {
      Scenario c = result.scenario;
      --c.topology.width;
      if (!tryReduce(c)) break;
      changed = true;
    }

    // 3. Probes: drop one at a time, keeping at least one.
    for (std::size_t i = 0; result.scenario.probes.size() > 1 &&
                            i < result.scenario.probes.size();) {
      Scenario c = result.scenario;
      c.probes.erase(c.probes.begin() + static_cast<std::ptrdiff_t>(i));
      if (tryReduce(c)) {
        changed = true;  // same index now names the next probe
      } else {
        ++i;
      }
    }

    // 4. Components: drop everything droppable, one at a time. Sources and
    // the culprit stay (dropping the culprit changes the question, and the
    // bench needs power).
    const circuit::Netlist net = [&] {
      try {
        return buildNetlist(result.scenario);
      } catch (const std::exception&) {
        return circuit::Netlist{};
      }
    }();
    for (const Component& comp : net.components()) {
      if (comp.kind == ComponentKind::kVSource) continue;
      if (comp.name == result.scenario.fault.component) continue;
      if (std::find(result.scenario.dropped.begin(),
                    result.scenario.dropped.end(),
                    comp.name) != result.scenario.dropped.end()) {
        continue;
      }
      Scenario c = result.scenario;
      c.dropped.push_back(comp.name);
      if (tryReduce(c)) changed = true;
    }
  }

  // Dropped names referring to components outside the final (possibly
  // depth-reduced) topology are dead weight in the repro file; prune them.
  try {
    const Topology topo = buildTopology(result.scenario.topology);
    auto& dropped = result.scenario.dropped;
    dropped.erase(std::remove_if(dropped.begin(), dropped.end(),
                                 [&](const std::string& name) {
                                   return !topo.net.hasComponent(name);
                                 }),
                  dropped.end());
  } catch (const std::exception&) {
    // Unbuildable final topology would have failed reproduces(); keep as-is.
  }

  return result;
}

}  // namespace flames::scenario
