#include "scenario/scenario.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "circuit/mna.h"

namespace flames::scenario {

using circuit::Component;
using circuit::ComponentKind;
using circuit::Fault;
using circuit::FaultKind;
using circuit::Netlist;

circuit::Netlist buildNetlist(const Scenario& s) {
  Topology t = buildTopology(s.topology);
  if (s.dropped.empty()) {
    if (!t.net.hasComponent(s.fault.component)) {
      throw std::invalid_argument("scenario fault targets missing component " +
                                  s.fault.component);
    }
    return std::move(t.net);
  }
  // Rebuild without the dropped components. Netlist has no erase (nodes are
  // interned), so copy the survivors into a fresh netlist with the same
  // node names.
  Netlist out;
  for (const Component& c : t.net.components()) {
    if (std::find(s.dropped.begin(), s.dropped.end(), c.name) !=
        s.dropped.end()) {
      continue;
    }
    Component copy = c;
    std::vector<circuit::NodeId> pins;
    pins.reserve(copy.pins.size());
    for (circuit::NodeId pin : copy.pins) {
      pins.push_back(out.node(t.net.nodeName(pin)));
    }
    copy.pins = std::move(pins);
    out.components().push_back(std::move(copy));
  }
  if (!out.hasComponent(s.fault.component)) {
    throw std::invalid_argument("scenario fault targets missing component " +
                                s.fault.component);
  }
  return out;
}

std::vector<workload::ProbeReading> synthesize(const Scenario& s) {
  const Netlist net = buildNetlist(s);
  return workload::simulateMeasurements(net, {s.fault}, s.probes);
}

namespace {

/// Menu of injectable faults for one component (mirrors the bench's common
/// defect classes: hard opens/shorts for resistors, parameter drift for
/// resistors and gain blocks; sources are trusted equipment).
std::vector<Fault> faultMenu(const Component& c,
                             const GeneratorOptions& options) {
  std::vector<Fault> menu;
  switch (c.kind) {
    case ComponentKind::kResistor:
      if (options.includeOpens) menu.push_back(Fault::open(c.name));
      if (options.includeShorts) menu.push_back(Fault::shortCircuit(c.name));
      for (double f : options.resistorScales) {
        menu.push_back(Fault::paramScale(c.name, f));
      }
      break;
    case ComponentKind::kGain:
      for (double f : options.gainScales) {
        menu.push_back(Fault::paramScale(c.name, f));
      }
      break;
    default:
      break;
  }
  return menu;
}

/// True when the faulted operating point moves some probe observably.
bool observable(const Netlist& net, const Fault& fault,
                const std::vector<std::string>& probes, double minRel) {
  const auto nominal = circuit::DcSolver(net).solve();
  if (!nominal.converged) return false;
  circuit::Netlist faultedNet = circuit::applyFaults(net, {fault});
  circuit::OperatingPoint faulted;
  try {
    faulted = circuit::DcSolver(faultedNet).solve();
  } catch (const std::runtime_error&) {
    return false;
  }
  if (!faulted.converged) return false;
  for (const std::string& p : probes) {
    const double vn = nominal.v(net.findNode(p));
    const double vf = faulted.v(faultedNet.findNode(p));
    const double scale = std::max(std::abs(vn), 1.0);
    if (std::abs(vf - vn) / scale >= minRel) return true;
  }
  return false;
}

}  // namespace

Scenario sampleScenario(std::uint32_t seed, const GeneratorOptions& options) {
  std::mt19937 rng(seed);
  for (std::size_t t = 0; t < options.topologyAttempts; ++t) {
    const TopologySpec spec = sampleSpec(rng, options.topology);
    Topology topo = buildTopology(spec);

    // Faultable pool: everything with a non-empty menu.
    std::vector<std::size_t> pool;
    for (std::size_t i = 0; i < topo.net.components().size(); ++i) {
      if (!faultMenu(topo.net.components()[i], options).empty()) {
        pool.push_back(i);
      }
    }
    if (pool.empty()) continue;

    std::uniform_int_distribution<std::size_t> pickComp(0, pool.size() - 1);
    for (std::size_t a = 0; a < options.faultAttemptsPerTopology; ++a) {
      const Component& c = topo.net.components()[pool[pickComp(rng)]];
      const auto menu = faultMenu(c, options);
      std::uniform_int_distribution<std::size_t> pickFault(0, menu.size() - 1);
      const Fault fault = menu[pickFault(rng)];
      if (!observable(topo.net, fault, topo.probes,
                      options.minRelativeDeviation)) {
        continue;
      }
      Scenario s;
      s.seed = seed;
      s.topology = spec;
      s.fault = fault;
      s.probes = topo.probes;
      s.measurementSpread = options.measurementSpread;
      return s;
    }
  }
  throw std::runtime_error("sampleScenario: attempt budget exhausted for seed " +
                           std::to_string(seed));
}

// --- serialization -----------------------------------------------------------

std::string serialize(const Scenario& s) {
  std::ostringstream os;
  os.precision(17);
  os << "# flames scenario v1\n";
  os << "seed " << s.seed << "\n";
  os << "family " << familyName(s.topology.family) << "\n";
  os << "depth " << s.topology.depth << "\n";
  os << "width " << s.topology.width << "\n";
  os << "values " << s.topology.valueSeed << "\n";
  os << "spread " << s.measurementSpread << "\n";
  os << "fault " << s.fault.component << " "
     << circuit::faultKindName(s.fault.kind) << " " << s.fault.param << "\n";
  for (const std::string& p : s.probes) os << "probe " << p << "\n";
  for (const std::string& d : s.dropped) os << "drop " << d << "\n";
  return os.str();
}

namespace {

circuit::FaultKind faultKindFromName(const std::string& name) {
  for (FaultKind k :
       {FaultKind::kOpen, FaultKind::kShort, FaultKind::kParamExact,
        FaultKind::kParamScale, FaultKind::kPinOpen}) {
    if (circuit::faultKindName(k) == name) return k;
  }
  throw std::runtime_error("unknown fault kind: " + name);
}

}  // namespace

Scenario parseScenario(const std::string& text) {
  Scenario s;
  bool sawFault = false;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    // Strip comments and whitespace-only lines.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    try {
      if (key == "seed") {
        ls >> s.seed;
      } else if (key == "family") {
        std::string name;
        ls >> name;
        s.topology.family = familyFromName(name);
      } else if (key == "depth") {
        ls >> s.topology.depth;
      } else if (key == "width") {
        ls >> s.topology.width;
      } else if (key == "values") {
        ls >> s.topology.valueSeed;
      } else if (key == "spread") {
        ls >> s.measurementSpread;
      } else if (key == "fault") {
        std::string comp, kind;
        double param = 0.0;
        if (!(ls >> comp >> kind >> param)) {
          throw std::runtime_error("expected: fault <component> <kind> <param>");
        }
        s.fault = {comp, faultKindFromName(kind), param};
        sawFault = true;
      } else if (key == "probe") {
        std::string p;
        ls >> p;
        s.probes.push_back(p);
      } else if (key == "drop") {
        std::string d;
        ls >> d;
        s.dropped.push_back(d);
      } else {
        throw std::runtime_error("unknown key '" + key + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("scenario line " + std::to_string(lineNo) +
                               ": " + e.what());
    } catch (const std::runtime_error& e) {
      throw std::runtime_error("scenario line " + std::to_string(lineNo) +
                               ": " + e.what());
    }
    if (ls.fail()) {
      throw std::runtime_error("scenario line " + std::to_string(lineNo) +
                               ": malformed value for '" + key + "'");
    }
  }
  if (!sawFault) {
    throw std::runtime_error("scenario file has no 'fault' line");
  }
  if (s.probes.empty()) {
    throw std::runtime_error("scenario file has no 'probe' lines");
  }
  return s;
}

void writeScenarioFile(const std::string& path, const Scenario& s) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write scenario file " + path);
  out << serialize(s);
}

Scenario loadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseScenario(buf.str());
}

std::string describe(const Scenario& s) {
  std::ostringstream os;
  os << "seed " << s.seed << ": " << familyName(s.topology.family) << " d"
     << s.topology.depth;
  if (s.topology.width > 1) os << "w" << s.topology.width;
  os << " — " << s.fault.describe() << " (" << s.probes.size() << " probes";
  if (!s.dropped.empty()) os << ", " << s.dropped.size() << " dropped";
  os << ")";
  return os.str();
}

}  // namespace flames::scenario
