// The randomized scenario harness: sample N scenarios from a master seed,
// run the oracle on each, shrink failures, and write replayable `.scenario`
// repro files.
//
// Per-scenario seeds derive from the master seed via workload::deriveSeed,
// so `--seed S --count N` always replays the same N scenarios and scenario
// i can be regenerated alone from its recorded seed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "scenario/oracle.h"
#include "scenario/scenario.h"
#include "scenario/shrink.h"

namespace flames::scenario {

struct HarnessOptions {
  std::uint32_t seed = 1;
  std::size_t count = 100;
  GeneratorOptions generator;
  OracleOptions oracle;
  bool shrinkFailures = true;
  ShrinkOptions shrinkOptions;
  /// Directory for shrunk `.scenario` repro files; empty = do not write.
  std::string reproDir;
  /// Per-scenario progress lines on the log stream (harness summary prints
  /// regardless).
  bool verbose = false;
};

struct HarnessFailure {
  std::size_t index = 0;       ///< scenario index within the run
  std::uint32_t seed = 0;      ///< derived scenario seed
  Scenario shrunk;             ///< minimal repro (== original if no shrink)
  std::vector<std::string> violations;
  std::string reproPath;       ///< written file, empty if none
  /// Flight-recorder dump captured at failure time (service path only):
  /// the shared service's recent-job ring, written next to the repro as
  /// `<repro>.flightrec` so CI can upload both as one artifact.
  std::string flightDumpPath;
};

struct HarnessResult {
  std::size_t runs = 0;
  std::size_t passed = 0;
  std::vector<HarnessFailure> failures;
  /// Culprit-rank quality over passing runs.
  std::size_t rankFirst = 0;   ///< culprit ranked #1
  std::size_t rankTop3 = 0;    ///< culprit within the top 3
  double meanRank = 0.0;
  int worstRank = 0;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the harness. `log` (optional) receives progress and the summary.
/// When oracle.via == kService one shared single-service is used for every
/// scenario, exercising the batch path's cache and shared experience base.
[[nodiscard]] HarnessResult runHarness(const HarnessOptions& options,
                                       std::ostream* log = nullptr);

}  // namespace flames::scenario
