#include "scenario/harness.h"

#include <fstream>
#include <memory>
#include <ostream>

#include "service/service.h"
#include "workload/rng.h"

namespace flames::scenario {

HarnessResult runHarness(const HarnessOptions& options, std::ostream* log) {
  HarnessResult result;

  std::unique_ptr<service::DiagnosisService> svc;
  if (options.oracle.via == OracleVia::kService) {
    service::ServiceOptions sopts;
    sopts.workers = 1;
    svc = std::make_unique<service::DiagnosisService>(sopts);
  }

  double rankSum = 0.0;
  std::size_t ranked = 0;
  for (std::size_t i = 0; i < options.count; ++i) {
    const std::uint32_t scenarioSeed =
        workload::deriveSeed(options.seed, i);
    ++result.runs;

    Scenario s;
    OracleResult oracle;
    try {
      s = sampleScenario(scenarioSeed, options.generator);
      oracle = runOracle(s, options.oracle, svc.get());
    } catch (const std::exception& e) {
      HarnessFailure f;
      f.index = i;
      f.seed = scenarioSeed;
      f.shrunk = s;
      f.violations = {std::string("harness: ") + e.what()};
      result.failures.push_back(std::move(f));
      continue;
    }

    if (oracle.passed()) {
      ++result.passed;
      if (oracle.culpritRank > 0) {
        ++ranked;
        rankSum += oracle.culpritRank;
        result.worstRank = std::max(result.worstRank, oracle.culpritRank);
        if (oracle.culpritRank == 1) ++result.rankFirst;
        if (oracle.culpritRank <= 3) ++result.rankTop3;
      }
      if (options.verbose && log != nullptr) {
        *log << "  ok   " << describe(s) << " — rank " << oracle.culpritRank
             << " (degree " << oracle.culpritDegree << ")\n";
      }
      continue;
    }

    HarnessFailure f;
    f.index = i;
    f.seed = scenarioSeed;
    f.shrunk = s;
    f.violations = oracle.violations;
    if (options.shrinkFailures) {
      // A throwing shrink probe must not lose the failure: fall back to the
      // unshrunk scenario so the repro file below is still written.
      std::string shrinkError;
      try {
        const ShrinkResult sr = shrink(s, options.oracle, options.shrinkOptions);
        f.shrunk = sr.scenario;
      } catch (const std::exception& e) {
        f.shrunk = s;
        shrinkError = std::string("shrink threw: ") + e.what();
      }
      // Re-evaluate so the recorded violations describe the *minimal* repro.
      try {
        f.violations = runOracle(f.shrunk, options.oracle, svc.get()).violations;
        if (f.violations.empty()) f.violations = oracle.violations;
      } catch (const std::exception&) {
        f.violations = oracle.violations;
      }
      if (!shrinkError.empty()) f.violations.push_back(std::move(shrinkError));
    }
    if (!options.reproDir.empty()) {
      f.reproPath = options.reproDir + "/repro_" +
                    std::to_string(options.seed) + "_" + std::to_string(i) +
                    ".scenario";
      try {
        writeScenarioFile(f.reproPath, f.shrunk);
      } catch (const std::exception& e) {
        f.violations.push_back(std::string("repro write failed: ") + e.what());
        f.reproPath.clear();
      }
      // On the service path the shared flight recorder has just replayed
      // this failure (original run, shrink probes, re-evaluation): dump it
      // next to the repro so a red CI night uploads the service's view of
      // the failing jobs alongside the one-command reproduction.
      if (svc != nullptr) {
        const std::string dumpPath =
            (f.reproPath.empty()
                 ? options.reproDir + "/repro_" +
                       std::to_string(options.seed) + "_" + std::to_string(i)
                 : f.reproPath) +
            ".flightrec";
        try {
          std::ofstream dump(dumpPath);
          if (dump) {
            dump << svc->dumpFlightRecorder();
            f.flightDumpPath = dumpPath;
          }
        } catch (const std::exception&) {
          // A failed dump must never mask the scenario failure itself.
        }
      }
    }
    if (log != nullptr) {
      *log << "  FAIL " << describe(f.shrunk) << "\n";
      for (const std::string& v : f.violations) *log << "       " << v << "\n";
      if (!f.reproPath.empty()) *log << "       repro: " << f.reproPath << "\n";
      if (!f.flightDumpPath.empty()) {
        *log << "       flight recorder: " << f.flightDumpPath << "\n";
      }
    }
    result.failures.push_back(std::move(f));
  }

  result.meanRank = ranked == 0 ? 0.0 : rankSum / static_cast<double>(ranked);

  if (log != nullptr) {
    *log << "scenario harness: " << result.passed << "/" << result.runs
         << " passed";
    if (ranked != 0) {
      *log << "; culprit rank mean " << result.meanRank << ", worst "
           << result.worstRank << ", #1 in " << result.rankFirst
           << ", top-3 in " << result.rankTop3;
    }
    *log << "\n";
  }
  return result;
}

}  // namespace flames::scenario
