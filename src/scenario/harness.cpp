#include "scenario/harness.h"

#include <memory>
#include <ostream>

#include "service/service.h"
#include "workload/rng.h"

namespace flames::scenario {

HarnessResult runHarness(const HarnessOptions& options, std::ostream* log) {
  HarnessResult result;

  std::unique_ptr<service::DiagnosisService> svc;
  if (options.oracle.via == OracleVia::kService) {
    service::ServiceOptions sopts;
    sopts.workers = 1;
    svc = std::make_unique<service::DiagnosisService>(sopts);
  }

  double rankSum = 0.0;
  std::size_t ranked = 0;
  for (std::size_t i = 0; i < options.count; ++i) {
    const std::uint32_t scenarioSeed =
        workload::deriveSeed(options.seed, i);
    ++result.runs;

    Scenario s;
    OracleResult oracle;
    try {
      s = sampleScenario(scenarioSeed, options.generator);
      oracle = runOracle(s, options.oracle, svc.get());
    } catch (const std::exception& e) {
      HarnessFailure f;
      f.index = i;
      f.seed = scenarioSeed;
      f.shrunk = s;
      f.violations = {std::string("harness: ") + e.what()};
      result.failures.push_back(std::move(f));
      continue;
    }

    if (oracle.passed()) {
      ++result.passed;
      if (oracle.culpritRank > 0) {
        ++ranked;
        rankSum += oracle.culpritRank;
        result.worstRank = std::max(result.worstRank, oracle.culpritRank);
        if (oracle.culpritRank == 1) ++result.rankFirst;
        if (oracle.culpritRank <= 3) ++result.rankTop3;
      }
      if (options.verbose && log != nullptr) {
        *log << "  ok   " << describe(s) << " — rank " << oracle.culpritRank
             << " (degree " << oracle.culpritDegree << ")\n";
      }
      continue;
    }

    HarnessFailure f;
    f.index = i;
    f.seed = scenarioSeed;
    f.shrunk = s;
    f.violations = oracle.violations;
    if (options.shrinkFailures) {
      const ShrinkResult sr = shrink(s, options.oracle, options.shrinkOptions);
      f.shrunk = sr.scenario;
      // Re-evaluate so the recorded violations describe the *minimal* repro.
      try {
        f.violations = runOracle(f.shrunk, options.oracle, svc.get()).violations;
        if (f.violations.empty()) f.violations = oracle.violations;
      } catch (const std::exception&) {
        f.violations = oracle.violations;
      }
    }
    if (!options.reproDir.empty()) {
      f.reproPath = options.reproDir + "/repro_" +
                    std::to_string(options.seed) + "_" + std::to_string(i) +
                    ".scenario";
      try {
        writeScenarioFile(f.reproPath, f.shrunk);
      } catch (const std::exception& e) {
        f.violations.push_back(std::string("repro write failed: ") + e.what());
        f.reproPath.clear();
      }
    }
    if (log != nullptr) {
      *log << "  FAIL " << describe(f.shrunk) << "\n";
      for (const std::string& v : f.violations) *log << "       " << v << "\n";
      if (!f.reproPath.empty()) *log << "       repro: " << f.reproPath << "\n";
    }
    result.failures.push_back(std::move(f));
  }

  result.meanRank = ranked == 0 ? 0.0 : rankSum / static_cast<double>(ranked);

  if (log != nullptr) {
    *log << "scenario harness: " << result.passed << "/" << result.runs
         << " passed";
    if (ranked != 0) {
      *log << "; culprit rank mean " << result.meanRank << ", worst "
           << result.worstRank << ", #1 in " << result.rankFirst
           << ", top-3 in " << result.rankTop3;
    }
    *log << "\n";
  }
  return result;
}

}  // namespace flames::scenario
