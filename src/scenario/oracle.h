// The diagnosis oracle: runs the full pipeline over a scenario's synthetic
// measurements and checks (a) structural invariants every DiagnosisReport
// must satisfy and (b) that the injected culprit is recovered in the ranked
// candidate list.
//
// Report invariants (DESIGN.md §8):
//   I1  propagation completed within budget
//   I2  every Dc magnitude lies in [0, 1], |signedDc| == dc, and the sign
//       agrees with the recorded deviation direction
//   I3  nogood degrees lie in (0, 1]; nogood component sets are non-empty
//       and pairwise subset-minimal (no reported nogood strictly contains
//       another — the λ-cut subsumption contract of NogoodDb)
//   I4  candidate suspicion / plausibility / prior lie in [0, 1]; candidate
//       component sets are non-empty, duplicate-free, and pairwise distinct
//   I5  hitting-set coverage: every reported nogood is explained by (i.e.
//       intersects) at least one ranked candidate
//   I6  the per-component suspicion table lies in [0, 1]
//   I7  the generated netlist passes flames::lint with zero errors (the
//       generator must not emit degenerate topologies)
//   I8  soundness of the static envelope analysis (flames::analyze): the
//       post-propagation value hull of every quantity is contained in its
//       statically computed envelope
//   I9  soundness of the cost model: the observed propagation step count
//       never exceeds the certified step bound
//   I10 certificate replay: the run's provenance log, cut into a
//       certificate, replays clean through the independent checker
//       (flames::prov::checkCertificate) — every derivation recomputed via
//       the constraint's own solveFor, every nogood Dc via the fuzzy
//       primitives, every candidate re-verified as a minimal hitting set.
//       Strictly stronger than I3/I5: those check shape (degrees in range,
//       coverage), I10 re-derives the values themselves with no engine
//       code on the replay path.
//   I11 KB durability: feeding the run's symptom signature through a
//       durable flames::kb::KbStore (success + snapshot compaction +
//       failure + decay, so the state is a snapshot with a live WAL tail)
//       and reopening the directory reproduces the in-memory store's
//       canonical serialization byte for byte — WAL replay over the
//       snapshot loses nothing.
//   I12 incremental-replay equivalence and cone soundness: replaying the
//       same readings one at a time through the compiled-schedule
//       incremental path (FlamesEngine::addMeasurement) must reproduce the
//       batch diagnosis exactly — the same nogoods (components and degree),
//       the same candidates in the same rank order (components and
//       plausibility) and the same suspicion table; and each probe after
//       the first must stay inside its statically computed impact cone:
//       the quantities it touches are a subset of the cone's quantity set
//       and the kept entries it adds never exceed the cone's certified
//       step bound (checked at the applied entry cap).
//
// Culprit recovery: the faulted component must appear in some ranked
// candidate; its rank (1-based index of the first containing candidate) and
// that candidate's plausibility are recorded. `requireRankAtMost` tightens
// the check to the top-N — N = 1 is deliberately too strict for
// sign-ambiguous topologies and is the harness's built-in "broken oracle"
// used to demonstrate shrinking.
//
// Every violation message is prefixed with its class followed by ':' —
// "I1".."I12", "bench" (synthesis failed), "analyze" (static analysis
// threw), "diagnose"/"service" (pipeline threw), "detect" (no discrepancy
// raised), "recovery" (culprit absent), "rank" (requireRankAtMost
// exceeded). The shrinker keys on these prefixes to reject reductions that
// change the failure class.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include <optional>

#include "analyze/analyze.h"
#include "diagnosis/flames.h"
#include "scenario/scenario.h"

namespace flames::service {
class DiagnosisService;
}

namespace flames::scenario {

enum class OracleVia {
  kEngine,   ///< single-session FlamesEngine::diagnose()
  kService,  ///< DiagnosisService::submit() (the concurrent batch path)
};

/// Engine configuration for the oracle. Stock FlamesOptions: the per-model
/// propagation entry cap is no longer hardcoded here — runOracle derives it
/// from the static cost model (flames::analyze::recommendedEntryCap, floor
/// 6), which reproduces the old empirical tuning per topology instead of
/// globally: a propagation "step" fires a constraint over the cartesian
/// product of the other participants' value entries (cap^(arity-1)
/// derivations for a KCL constraint), and mesh topologies — the bridge
/// family's galvanometer-coupled cells — blow up at the stock 24 where
/// tree-shaped families do not. The derived cap keeps every family inside
/// the same work budget with the same detection verdict and culprit rank on
/// every corpus seed: the extra entries are redundant re-derivations of the
/// same quantities along longer mesh paths, which can only multiply nogoods
/// restating conflicts the capped run already found.
[[nodiscard]] diagnosis::FlamesOptions defaultOracleFlamesOptions();

struct OracleOptions {
  OracleVia via = OracleVia::kEngine;
  /// 0 = the culprit may sit anywhere in the candidate list; N > 0 requires
  /// it within the top N.
  std::size_t requireRankAtMost = 0;
  /// Engine configuration for the run (measurementSpread is overridden by
  /// the scenario's own spread).
  diagnosis::FlamesOptions flames = defaultOracleFlamesOptions();
  /// Replace flames.propagation.maxEntriesPerQuantity with the per-model
  /// cap the static cost analysis derives (never below its floor of 6).
  bool deriveEntryCap = true;
  /// Check the static-analysis soundness invariants I8 (value hulls inside
  /// envelopes) and I9 (steps within the certified bound).
  bool checkAnalysis = true;
  /// Check invariant I10: force provenance recording on and replay the
  /// run's certificate through the independent checker.
  bool checkCertificates = true;
  /// Check invariant I11: round-trip the run's symptom signature through a
  /// durable kb::KbStore in a scratch directory and verify that reopening
  /// (snapshot load + WAL replay) reproduces the in-memory state exactly.
  bool checkKbDurability = true;
  /// Check invariant I12: replay the readings probe by probe through the
  /// incremental path and verify batch equivalence plus per-probe impact-
  /// cone containment and step-bound soundness.
  bool checkIncremental = true;
};

struct OracleResult {
  std::vector<std::string> violations;
  /// 1-based rank of the first candidate containing the culprit; -1 absent.
  int culpritRank = -1;
  /// Plausibility of that candidate (0 when absent).
  double culpritDegree = 0.0;
  bool faultDetected = false;
  diagnosis::DiagnosisReport report;
  /// The pre-propagation static analysis (present unless both deriveEntryCap
  /// and checkAnalysis were off, or model construction failed).
  std::optional<analyze::AnalysisReport> analysis;
  /// The propagation entry cap the diagnosis actually ran with.
  std::size_t appliedEntryCap = 0;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Checks invariants I1-I6 on any report (I7 needs the netlist and is
/// checked by runOracle). Returns one message per violation; empty = clean.
[[nodiscard]] std::vector<std::string> checkReportInvariants(
    const diagnosis::DiagnosisReport& report);

/// Synthesizes the scenario's measurements, diagnoses them through the
/// chosen path and evaluates invariants + culprit recovery. A scenario
/// whose bench simulation fails to converge surfaces as a violation, not an
/// exception. `svc` is used when via == kService; if null, a temporary
/// single-worker service is spun up for the call.
[[nodiscard]] OracleResult runOracle(const Scenario& s,
                                     const OracleOptions& options = {},
                                     service::DiagnosisService* svc = nullptr);

}  // namespace flames::scenario
