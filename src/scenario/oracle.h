// The diagnosis oracle: runs the full pipeline over a scenario's synthetic
// measurements and checks (a) structural invariants every DiagnosisReport
// must satisfy and (b) that the injected culprit is recovered in the ranked
// candidate list.
//
// Report invariants (DESIGN.md §8):
//   I1  propagation completed within budget
//   I2  every Dc magnitude lies in [0, 1], |signedDc| == dc, and the sign
//       agrees with the recorded deviation direction
//   I3  nogood degrees lie in (0, 1]; nogood component sets are non-empty
//       and pairwise subset-minimal (no reported nogood strictly contains
//       another — the λ-cut subsumption contract of NogoodDb)
//   I4  candidate suspicion / plausibility / prior lie in [0, 1]; candidate
//       component sets are non-empty, duplicate-free, and pairwise distinct
//   I5  hitting-set coverage: every reported nogood is explained by (i.e.
//       intersects) at least one ranked candidate
//   I6  the per-component suspicion table lies in [0, 1]
//   I7  the generated netlist passes flames::lint with zero errors (the
//       generator must not emit degenerate topologies)
//
// Culprit recovery: the faulted component must appear in some ranked
// candidate; its rank (1-based index of the first containing candidate) and
// that candidate's plausibility are recorded. `requireRankAtMost` tightens
// the check to the top-N — N = 1 is deliberately too strict for
// sign-ambiguous topologies and is the harness's built-in "broken oracle"
// used to demonstrate shrinking.
//
// Every violation message is prefixed with its class followed by ':' —
// "I1".."I7", "bench" (synthesis failed), "diagnose"/"service" (pipeline
// threw), "detect" (no discrepancy raised), "recovery" (culprit absent),
// "rank" (requireRankAtMost exceeded). The shrinker keys on these prefixes
// to reject reductions that change the failure class.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "diagnosis/flames.h"
#include "scenario/scenario.h"

namespace flames::service {
class DiagnosisService;
}

namespace flames::scenario {

enum class OracleVia {
  kEngine,   ///< single-session FlamesEngine::diagnose()
  kService,  ///< DiagnosisService::submit() (the concurrent batch path)
};

/// Engine configuration tuned for fuzz throughput. Identical to the stock
/// FlamesOptions except maxEntriesPerQuantity is lowered from 24 to 6: a
/// propagation "step" fires a constraint over the cartesian product of the
/// other participants' value entries (cap^(arity-1) derivations for a KCL
/// constraint) and resolves each against every retained entry. Mesh
/// topologies — the bridge family's galvanometer-coupled cells — accumulate
/// entries along multiple derivation paths and hit minutes per diagnosis at
/// the stock cap, but stay sub-second at 6 with identical conflicts and
/// candidates on every corpus seed: the extra entries are redundant
/// re-derivations of the same quantities along longer mesh paths.
[[nodiscard]] diagnosis::FlamesOptions defaultOracleFlamesOptions();

struct OracleOptions {
  OracleVia via = OracleVia::kEngine;
  /// 0 = the culprit may sit anywhere in the candidate list; N > 0 requires
  /// it within the top N.
  std::size_t requireRankAtMost = 0;
  /// Engine configuration for the run (measurementSpread is overridden by
  /// the scenario's own spread).
  diagnosis::FlamesOptions flames = defaultOracleFlamesOptions();
};

struct OracleResult {
  std::vector<std::string> violations;
  /// 1-based rank of the first candidate containing the culprit; -1 absent.
  int culpritRank = -1;
  /// Plausibility of that candidate (0 when absent).
  double culpritDegree = 0.0;
  bool faultDetected = false;
  diagnosis::DiagnosisReport report;

  [[nodiscard]] bool passed() const { return violations.empty(); }
};

/// Checks invariants I1-I6 on any report (I7 needs the netlist and is
/// checked by runOracle). Returns one message per violation; empty = clean.
[[nodiscard]] std::vector<std::string> checkReportInvariants(
    const diagnosis::DiagnosisReport& report);

/// Synthesizes the scenario's measurements, diagnoses them through the
/// chosen path and evaluates invariants + culprit recovery. A scenario
/// whose bench simulation fails to converge surfaces as a violation, not an
/// exception. `svc` is used when via == kService; if null, a temporary
/// single-worker service is spun up for the call.
[[nodiscard]] OracleResult runOracle(const Scenario& s,
                                     const OracleOptions& options = {},
                                     service::DiagnosisService* svc = nullptr);

}  // namespace flames::scenario
