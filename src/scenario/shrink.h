// Greedy scenario shrinking: reduce a failing scenario to a minimal
// replayable repro while the oracle failure still reproduces.
//
// The reduction moves, tried round-robin until a full sweep changes
// nothing (QuickCheck-style greedy fixpoint):
//   1. depth reduction  — halve, then decrement, the topology depth
//   2. width reduction  — decrement the ampchain fan-out
//   3. probe removal    — drop one probe at a time (at least one stays)
//   4. component drops  — remove one non-source, non-culprit component
//
// A candidate reduction is accepted iff the oracle still fails on it *in a
// violation class the original failure exhibited* (message prefix up to the
// first ':' — "rank", "I3", "bench", ...). Matching on class prevents
// failure slippage: without it, a depth reduction that strands a probe
// trades the real violation for a self-inflicted bench error and the
// shrinker happily "minimizes" the wrong bug. Probes invalidated by a
// depth/width reduction are pruned from the candidate before it runs.
// Reductions that make the scenario unbuildable, unsolvable, or passing are
// rejected. Every accepted scenario is replayable from its serialized form,
// so the shrunk result is exactly what `flames_scenario --replay` takes.
#pragma once

#include <cstddef>

#include "scenario/oracle.h"
#include "scenario/scenario.h"

namespace flames::scenario {

struct ShrinkResult {
  Scenario scenario;       ///< the minimal failing scenario found
  std::size_t accepted = 0;  ///< reductions that kept the failure
  std::size_t attempted = 0; ///< oracle runs spent shrinking
};

struct ShrinkOptions {
  /// Upper bound on oracle evaluations (each is a full diagnose).
  std::size_t maxAttempts = 400;
};

/// Shrinks `failing` (which must fail `oracle` — callers pass the options
/// that produced the original failure). Returns the smallest still-failing
/// scenario reached; if `failing` actually passes, it is returned unchanged.
[[nodiscard]] ShrinkResult shrink(const Scenario& failing,
                                  const OracleOptions& oracle,
                                  const ShrinkOptions& options = {});

}  // namespace flames::scenario
