// One replayable fuzzing scenario: a generated topology, one injected
// fault, and the probes the bench reads.
//
// A scenario is *fully determined by its serialized form* — seed, topology
// spec, fault, probe list, optional dropped components — so any harness
// failure becomes a one-command repro:
//
//   flames_scenario --replay=failure.scenario
//
// Measurement synthesis plays the bench exactly like the rest of the repo:
// the fault is injected into a copy of the netlist (circuit/fault.h) and the
// faulted DC operating point is read at the probes
// (workload::simulateMeasurements); the diagnosis engine never sees the
// fault, only the readings.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <random>
#include <string>
#include <vector>

#include "circuit/fault.h"
#include "scenario/topology.h"
#include "workload/scenarios.h"

namespace flames::scenario {

/// A generated circuit/fault scenario. Value-semantic and fully replayable.
struct Scenario {
  /// The seed this scenario was sampled from (0 for hand-written files).
  std::uint32_t seed = 0;
  TopologySpec topology;
  circuit::Fault fault;
  /// Probe nodes the bench reads (subset of the topology's probe points
  /// after shrinking).
  std::vector<std::string> probes;
  /// Components removed from the generated netlist after generation (the
  /// shrinker's component-level reductions). Names absent from the current
  /// topology are ignored, so depth reductions stay composable with drops.
  std::vector<std::string> dropped;
  /// Equipment imprecision attached to each crisp reading.
  double measurementSpread = 0.05;

  friend bool operator==(const Scenario&, const Scenario&) = default;
};

/// Builds the scenario's nominal netlist: the generated topology minus the
/// dropped components. Throws std::invalid_argument if the fault's target
/// component does not exist in the result.
[[nodiscard]] circuit::Netlist buildNetlist(const Scenario& s);

/// Forward-simulates the faulted netlist and reads the scenario's probes.
/// Throws std::runtime_error when the faulted circuit cannot be solved.
[[nodiscard]] std::vector<workload::ProbeReading> synthesize(
    const Scenario& s);

/// Knobs for scenario sampling.
struct GeneratorOptions {
  TopologyOptions topology;
  /// Soft-deviation scale factors injectable into resistors.
  std::vector<double> resistorScales = {0.3, 0.5, 2.0, 3.0};
  /// Soft-deviation scale factors injectable into gain blocks.
  std::vector<double> gainScales = {0.1, 0.5, 1.6, 2.2};
  bool includeOpens = true;
  bool includeShorts = true;
  /// Observability gate: the faulted circuit must move at least one probe by
  /// `minRelativeDeviation` of max(|nominal|, 1 V); scenarios below the gate
  /// are resampled. Keeps the oracle's "culprit must be recovered" check
  /// meaningful — a fault nothing can see is not a diagnosis failure.
  double minRelativeDeviation = 0.10;
  /// Fault redraws per topology before a fresh topology is drawn.
  std::size_t faultAttemptsPerTopology = 8;
  /// Topology redraws before sampleScenario gives up.
  std::size_t topologyAttempts = 64;
  double measurementSpread = 0.05;
};

/// Deterministically samples one observable, solvable scenario from `seed`.
/// The sampler redraws (bounded by the options' attempt budgets) until the
/// faulted circuit converges and passes the observability gate; throws
/// std::runtime_error if the budget is exhausted (practically unreachable
/// with the default families).
[[nodiscard]] Scenario sampleScenario(std::uint32_t seed,
                                      const GeneratorOptions& options = {});

/// One line per field, `#` comments ignored; see DESIGN.md §8 for the
/// grammar. Round-trips exactly: parseScenario(serialize(s)) == s.
[[nodiscard]] std::string serialize(const Scenario& s);
[[nodiscard]] Scenario parseScenario(const std::string& text);

/// File convenience wrappers; load throws std::runtime_error on a missing
/// or malformed file (message carries the offending line).
void writeScenarioFile(const std::string& path, const Scenario& s);
[[nodiscard]] Scenario loadScenarioFile(const std::string& path);

/// Human-readable one-liner: "seed 7: ladder d4 — Rs2: open (3 probes)".
[[nodiscard]] std::string describe(const Scenario& s);

}  // namespace flames::scenario
