// flames::analyze — whole-model semantic analysis before any propagation.
//
// Aggregates the three static passes over a built diagnostic model:
//
//   envelope.h   static envelopes     (abstract interpretation, widening)
//   cost.h       propagation bounds   (certified step bound, derived cap)
//   decompose.h  structure            (subproblems, articulation points,
//                                      ambiguity groups)
//
// and distils their results into a semantic lint tier that extends the
// syntactic L1-L6 rules:
//
//   A1  unbounded static envelope: some derivation path can blow a quantity
//       up without bound (division through a zero-straddling fuzzy factor),
//       so no static guarantee covers its runtime values — warning. A
//       non-voltage quantity whose envelope is wider than the propagation
//       width cutoff is an info note: static knowledge there is weaker than
//       anything the propagator would even retain.
//   A2  intractability: the per-sweep work estimate exceeds the admission
//       budget even at the floor entry cap — error (the service submit gate
//       refuses such models). A derived cap below the stock cap is an info
//       note; a saturated certified step bound is a warning.
//   A3  structural ambiguity groups: component sets no probe set can
//       distinguish (see decompose.h) — warning with the suggested
//       splitting probe, downgraded to info when the group is inherent to
//       the topology (no node-voltage probe splits it), matching L6's
//       severity policy.
//
//   A4  propagation schedule: an inert constraint (no statically solvable
//       target — it consumes activations but can never derive) is a
//       warning; quantities whose impact cone spans their whole connected
//       component are an info note (every probe re-propagates everything
//       reachable, so incremental probes win through the delta discipline
//       only, not cone pruning).
//
// The findings reuse lint::Diagnostic / lint::LintReport so every existing
// rendering, merging and enforcement surface (--Werror, the service gate,
// obs counters) applies unchanged.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/cost.h"
#include "analyze/decompose.h"
#include "analyze/envelope.h"
#include "analyze/schedule.h"
#include "constraints/model_builder.h"
#include "lint/lint.h"

namespace flames::analyze {

struct AnalysisOptions {
  EnvelopeOptions envelope;
  CostOptions cost;
  bool runEnvelopes = true;
  bool runCost = true;
  bool runDecomposition = true;
  /// Compile the propagation schedule (watch sets, layers, impact cones).
  /// Runs after the cost pass so the cone step bounds are certified at the
  /// derived entry cap (the cap diagnosis actually applies).
  bool runSchedule = true;
  /// Node names the bench can probe, for the ambiguity analysis; empty =
  /// every voltage quantity (the L6 default). Names are netlist node names
  /// ("n3"), not quantity names.
  std::vector<std::string> probeNodes;
};

struct AnalysisReport {
  EnvelopeAnalysis envelopes;
  CostModel cost;
  Decomposition decomposition;
  /// The compiled propagation schedule plus its report summary. The
  /// runtime plan (schedule.plan) is what PropagatorOptions::schedule
  /// points at; it lives as long as this report.
  ScheduleAnalysis schedule;
  /// A1-A3 findings (severity-ordered, lint-compatible).
  lint::LintReport findings;

  /// No error-grade findings (mirrors lint::LintReport::ok()).
  [[nodiscard]] bool ok() const { return findings.ok(); }
};

/// Thrown by enforcement points (the service admission gate) when analysis
/// marks a model intractable. Carries the A2 message.
class AnalysisError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Maps the runtime propagation knobs onto the matching analysis knobs, so
/// the envelopes and cost bounds certify the configuration that actually
/// runs: depth limit, derivation width cutoff, step budget and the
/// requested (stock) entry cap are taken from the propagator options.
[[nodiscard]] AnalysisOptions analysisOptionsFor(
    const constraints::PropagatorOptions& propagation);

/// Runs the enabled passes over a built model.
[[nodiscard]] AnalysisReport analyzeModel(const constraints::BuiltModel& built,
                                          const AnalysisOptions& options = {});

/// The per-model propagation entry cap the analysis recommends, clamped to
/// [floor, requested]: min(requested, derivedEntryCap) but never below the
/// floor. `requested` is the cap the caller would otherwise use.
[[nodiscard]] std::size_t recommendedEntryCap(const AnalysisReport& report,
                                              std::size_t requested);

/// Human-readable rendering (envelope table, cost summary, structure,
/// findings).
[[nodiscard]] std::string renderAnalysisReport(const AnalysisReport& report);

/// Machine-readable rendering.
[[nodiscard]] std::string analysisReportJson(const AnalysisReport& report);

}  // namespace flames::analyze
