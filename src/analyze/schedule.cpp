#include "analyze/schedule.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <utility>

namespace flames::analyze {

namespace {

using constraints::PropagationSchedule;
using constraints::QuantityId;

std::uint64_t satAddU(std::uint64_t a, std::uint64_t b) {
  if (a >= kCostSaturated || b >= kCostSaturated || a > kCostSaturated - b) {
    return kCostSaturated;
  }
  return a + b;
}

/// Bipartite incidence graph with explicit edge ids (the biconnected-block
/// decomposition pops edges, so parallel edges — a constraint mentioning
/// the same quantity in two slots — must stay distinguishable). Vertices
/// [0, nq) are quantities, [nq, nq + nc) constraints.
struct Graph {
  std::size_t nq = 0;
  std::size_t nc = 0;
  /// adj[v]: (neighbour vertex, edge id).
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adj;
  std::size_t edgeCount = 0;

  [[nodiscard]] std::size_t size() const { return nq + nc; }
  [[nodiscard]] std::size_t constraintVertex(std::size_t ci) const {
    return nq + ci;
  }
};

Graph buildGraph(const constraints::Model& model) {
  Graph g;
  g.nq = model.quantityCount();
  g.nc = model.constraints().size();
  g.adj.resize(g.size());
  for (std::size_t ci = 0; ci < g.nc; ++ci) {
    const std::size_t cv = g.constraintVertex(ci);
    for (const QuantityId q : model.constraints()[ci]->variables()) {
      const std::size_t e = g.edgeCount++;
      g.adj[q].emplace_back(cv, e);
      g.adj[cv].emplace_back(q, e);
    }
  }
  return g;
}

/// Iterative Tarjan biconnected-component decomposition with an edge stack.
/// Returns the block id of every edge (same partition decompose.cpp counts,
/// but materialised: the layering needs block membership, not the count).
std::vector<int> biconnectedBlocks(const Graph& g, int& blockCount) {
  const std::size_t n = g.size();
  const std::size_t none = static_cast<std::size_t>(-1);
  std::vector<int> edgeBlock(g.edgeCount, -1);
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<std::size_t> parentEdge(n, none);
  std::vector<std::size_t> adjIdx(n, 0);
  std::vector<std::size_t> edgeStack;
  blockCount = 0;
  int dfsTime = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<std::size_t> stack = {root};
    disc[root] = low[root] = dfsTime++;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      if (adjIdx[u] < g.adj[u].size()) {
        const auto [w, e] = g.adj[u][adjIdx[u]++];
        if (disc[w] == -1) {
          edgeStack.push_back(e);
          parentEdge[w] = e;
          disc[w] = low[w] = dfsTime++;
          stack.push_back(w);
        } else if (e != parentEdge[u] && disc[w] < disc[u]) {
          edgeStack.push_back(e);
          low[u] = std::min(low[u], disc[w]);
        }
      } else {
        stack.pop_back();
        if (stack.empty()) continue;
        const std::size_t p = stack.back();
        low[p] = std::min(low[p], low[u]);
        if (low[u] >= disc[p]) {
          const int b = blockCount++;
          while (!edgeStack.empty()) {
            const std::size_t e = edgeStack.back();
            edgeStack.pop_back();
            edgeBlock[e] = b;
            if (e == parentEdge[u]) break;
          }
        }
      }
    }
  }
  return edgeBlock;
}

}  // namespace

ScheduleAnalysis computeSchedule(const constraints::Model& model,
                                 const ScheduleOptions& options) {
  ScheduleAnalysis out;
  out.entryCap = options.entryCap;
  const std::size_t nq = model.quantityCount();
  const std::size_t nc = model.constraints().size();
  PropagationSchedule& plan = out.plan;
  plan.constraints.resize(nc);
  plan.watchers.assign(nq, {});
  plan.cones.resize(nq);

  // --- Watch sets: probe solveFor once per (constraint, target). The
  // shipped constraint classes are solvable in a direction independently of
  // the input values (their constructors reject the degenerate constants
  // that would make a direction conditional), so one benign crisp probe
  // answers the static question; a direction that throws or abstains is
  // unsolvable and its target is pruned from the schedule.
  for (std::size_t ci = 0; ci < nc; ++ci) {
    const constraints::Constraint& c = *model.constraints()[ci];
    const std::size_t arity = c.variables().size();
    PropagationSchedule::ConstraintPlan& cp = plan.constraints[ci];
    cp.watchedSlots.assign(arity, 0);
    const std::vector<fuzzy::FuzzyInterval> probe(
        arity, fuzzy::FuzzyInterval::crisp(1.0));
    for (std::size_t t = 0; t < arity; ++t) {
      bool solvable = false;
      try {
        solvable = c.solveFor(t, probe).has_value();
      } catch (const std::exception&) {
        solvable = false;
      }
      if (solvable) cp.solvableTargets.push_back(t);
    }
    // A slot is watched iff a solvable target *other than itself* exists:
    // only then can an update there change an output.
    for (std::size_t s = 0; s < arity; ++s) {
      const bool watched =
          std::any_of(cp.solvableTargets.begin(), cp.solvableTargets.end(),
                      [&](std::size_t t) { return t != s; });
      cp.watchedSlots[s] = watched ? 1 : 0;
      ++out.totalSlotCount;
      if (watched) ++out.watchedSlotCount;
    }
    out.solvableTargetCount += cp.solvableTargets.size();
    if (cp.solvableTargets.empty()) {
      out.inertConstraints.push_back(c.name());
    }
    // Watcher lists, one entry per watching constraint per quantity.
    std::vector<QuantityId> seen;
    for (std::size_t s = 0; s < arity; ++s) {
      if (cp.watchedSlots[s] == 0) continue;
      const QuantityId q = c.variables()[s];
      if (std::find(seen.begin(), seen.end(), q) != seen.end()) continue;
      seen.push_back(q);
      plan.watchers[q].push_back(ci);
    }
  }

  // --- Layering: biconnected blocks BFS-ordered in the block-cut tree. ---
  const Graph g = buildGraph(model);
  int blockCount = 0;
  const std::vector<int> edgeBlock = biconnectedBlocks(g, blockCount);
  // Block membership per vertex (a cut vertex belongs to several blocks).
  std::vector<std::vector<int>> vertexBlocks(g.size());
  {
    std::size_t e = 0;
    for (std::size_t ci = 0; ci < nc; ++ci) {
      const std::size_t cv = g.constraintVertex(ci);
      for (const QuantityId q : model.constraints()[ci]->variables()) {
        const int b = edgeBlock[e++];
        if (b < 0) continue;
        vertexBlocks[q].push_back(b);
        vertexBlocks[cv].push_back(b);
      }
    }
    for (std::vector<int>& bs : vertexBlocks) {
      std::sort(bs.begin(), bs.end());
      bs.erase(std::unique(bs.begin(), bs.end()), bs.end());
    }
  }
  // Seeds: quantities that hold root entries before any constraint fires —
  // model predictions plus every measurable (voltage) quantity.
  std::vector<char> isSeed(nq, 0);
  for (const constraints::Model::Prediction& p : model.predictions()) {
    isSeed[p.quantity] = 1;
  }
  for (std::size_t q = 0; q < nq; ++q) {
    if (model.quantityInfo(static_cast<QuantityId>(q)).kind ==
        constraints::QuantityKind::kVoltage) {
      isSeed[q] = 1;
    }
  }
  // Multi-source BFS over the block-cut tree (blocks adjacent through
  // shared cut vertices). Blocks in seedless components keep depth 0.
  std::vector<int> blockDepth(static_cast<std::size_t>(blockCount), 0);
  {
    std::vector<char> visited(static_cast<std::size_t>(blockCount), 0);
    std::vector<int> frontier;
    for (std::size_t q = 0; q < nq; ++q) {
      if (!isSeed[q]) continue;
      for (const int b : vertexBlocks[q]) {
        if (visited[static_cast<std::size_t>(b)]) continue;
        visited[static_cast<std::size_t>(b)] = 1;
        blockDepth[static_cast<std::size_t>(b)] = 0;
        frontier.push_back(b);
      }
    }
    // Vertex-level visitation guard so shared cut vertices expand once.
    std::vector<char> vertexDone(g.size(), 0);
    std::vector<std::vector<std::size_t>> blockVertices(
        static_cast<std::size_t>(blockCount));
    for (std::size_t v = 0; v < g.size(); ++v) {
      for (const int b : vertexBlocks[v]) {
        blockVertices[static_cast<std::size_t>(b)].push_back(v);
      }
    }
    int depth = 0;
    while (!frontier.empty()) {
      std::vector<int> next;
      for (const int b : frontier) {
        for (const std::size_t v : blockVertices[static_cast<std::size_t>(b)]) {
          if (vertexDone[v]) continue;
          vertexDone[v] = 1;
          for (const int nb : vertexBlocks[v]) {
            if (visited[static_cast<std::size_t>(nb)]) continue;
            visited[static_cast<std::size_t>(nb)] = 1;
            blockDepth[static_cast<std::size_t>(nb)] = depth + 1;
            next.push_back(nb);
          }
        }
      }
      frontier = std::move(next);
      ++depth;
    }
  }
  std::size_t maxLayer = 0;
  for (std::size_t ci = 0; ci < nc; ++ci) {
    const std::vector<int>& bs = vertexBlocks[g.constraintVertex(ci)];
    int layer = 0;
    bool first = true;
    for (const int b : bs) {
      const int d = blockDepth[static_cast<std::size_t>(b)];
      layer = first ? d : std::min(layer, d);
      first = false;
    }
    plan.constraints[ci].layer = static_cast<std::size_t>(layer);
    maxLayer = std::max(maxLayer, plan.constraints[ci].layer);
  }
  plan.layerCount = nc == 0 ? 1 : maxLayer + 1;
  out.layerCount = plan.layerCount;
  out.constraintsPerLayer.assign(plan.layerCount, 0);
  for (std::size_t ci = 0; ci < nc; ++ci) {
    ++out.constraintsPerLayer[plan.constraints[ci].layer];
  }

  // --- Impact cones: directed reachability through solvable targets. ---
  // Undirected component sizes, for the whole-component flag.
  std::vector<int> compOf(g.size(), -1);
  std::vector<std::size_t> compQuantities;
  {
    int comp = 0;
    std::vector<std::size_t> stack;
    for (std::size_t v = 0; v < g.size(); ++v) {
      if (compOf[v] != -1) continue;
      compOf[v] = comp;
      stack.push_back(v);
      std::size_t quantities = 0;
      while (!stack.empty()) {
        const std::size_t u = stack.back();
        stack.pop_back();
        if (u < nq) ++quantities;
        for (const auto& [w, e] : g.adj[u]) {
          (void)e;
          if (compOf[w] != -1) continue;
          compOf[w] = comp;
          stack.push_back(w);
        }
      }
      compQuantities.push_back(quantities);
      ++comp;
    }
  }
  CostOptions costOptions;
  costOptions.assumedMeasurements = options.assumedMeasurements;
  const std::vector<std::uint64_t> retain =
      retentionBounds(model, options.entryCap, costOptions);
  std::vector<char> inCone(nq, 0);
  std::vector<char> coneConstraint(nc, 0);
  for (std::size_t q0 = 0; q0 < nq; ++q0) {
    PropagationSchedule::ImpactCone& cone = plan.cones[q0];
    std::fill(inCone.begin(), inCone.end(), 0);
    std::fill(coneConstraint.begin(), coneConstraint.end(), 0);
    std::vector<QuantityId> frontier = {static_cast<QuantityId>(q0)};
    inCone[q0] = 1;
    while (!frontier.empty()) {
      const QuantityId q = frontier.back();
      frontier.pop_back();
      for (const std::size_t ci : plan.watchers[q]) {
        coneConstraint[ci] = 1;
        const constraints::Constraint& c = *model.constraints()[ci];
        for (const std::size_t t : plan.constraints[ci].solvableTargets) {
          const QuantityId qt = c.variables()[t];
          if (qt == q || inCone[qt]) continue;
          inCone[qt] = 1;
          frontier.push_back(qt);
        }
      }
    }
    std::uint64_t bound = 0;
    for (std::size_t q = 0; q < nq; ++q) {
      if (!inCone[q]) continue;
      cone.quantities.push_back(static_cast<QuantityId>(q));
      bound = satAddU(bound, retain[q]);
    }
    for (std::size_t ci = 0; ci < nc; ++ci) {
      if (coneConstraint[ci]) cone.constraints.push_back(ci);
    }
    cone.stepBound = bound;
    cone.wholeComponent =
        cone.quantities.size() ==
        compQuantities[static_cast<std::size_t>(compOf[q0])];
    if (cone.wholeComponent) ++out.wholeComponentCones;

    ConeSummary row;
    row.quantity = model.quantityInfo(static_cast<QuantityId>(q0)).name;
    row.quantityCount = cone.quantities.size();
    row.constraintCount = cone.constraints.size();
    row.stepBound = cone.stepBound;
    row.wholeComponent = cone.wholeComponent;
    out.cones.push_back(std::move(row));
  }

  return out;
}

namespace {

void jsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void renderBound(std::ostream& os, std::uint64_t b) {
  if (b >= kCostSaturated) {
    os << "saturated";
  } else {
    os << b;
  }
}

}  // namespace

std::string renderScheduleReport(const ScheduleAnalysis& s) {
  std::ostringstream os;
  os << "  layers: " << s.layerCount << " (constraints per layer:";
  for (std::size_t l = 0; l < s.constraintsPerLayer.size(); ++l) {
    os << (l == 0 ? " " : ", ") << s.constraintsPerLayer[l];
  }
  os << ")\n";
  os << "  watched slots: " << s.watchedSlotCount << '/' << s.totalSlotCount
     << ", solvable targets: " << s.solvableTargetCount << '/'
     << s.totalSlotCount << ", inert constraints: "
     << s.inertConstraints.size() << '\n';
  for (const std::string& name : s.inertConstraints) {
    os << "  inert: " << name << '\n';
  }
  os << "  cone step bounds at entry cap " << s.entryCap << ":\n";
  for (const ConeSummary& c : s.cones) {
    os << "    " << c.quantity << ": " << c.quantityCount << " quantities, "
       << c.constraintCount << " constraints, step bound ";
    renderBound(os, c.stepBound);
    if (c.wholeComponent) os << " (whole component)";
    os << '\n';
  }
  os << "  whole-component cones: " << s.wholeComponentCones << '/'
     << s.cones.size() << '\n';
  return os.str();
}

std::string scheduleReportJson(const ScheduleAnalysis& s) {
  std::ostringstream os;
  os << "{\"entry_cap\":" << s.entryCap << ",\"layer_count\":" << s.layerCount
     << ",\"constraints_per_layer\":[";
  for (std::size_t l = 0; l < s.constraintsPerLayer.size(); ++l) {
    if (l != 0) os << ',';
    os << s.constraintsPerLayer[l];
  }
  os << "],\"watched_slots\":" << s.watchedSlotCount
     << ",\"total_slots\":" << s.totalSlotCount
     << ",\"solvable_targets\":" << s.solvableTargetCount
     << ",\"inert_constraints\":[";
  for (std::size_t i = 0; i < s.inertConstraints.size(); ++i) {
    if (i != 0) os << ',';
    jsonEscape(os, s.inertConstraints[i]);
  }
  os << "],\"whole_component_cones\":" << s.wholeComponentCones
     << ",\"cones\":[";
  for (std::size_t i = 0; i < s.cones.size(); ++i) {
    const ConeSummary& c = s.cones[i];
    if (i != 0) os << ',';
    os << "{\"quantity\":";
    jsonEscape(os, c.quantity);
    os << ",\"quantities\":" << c.quantityCount
       << ",\"constraints\":" << c.constraintCount << ",\"step_bound\":";
    if (c.stepBound >= kCostSaturated) {
      os << "\"saturated\"";
    } else {
      os << c.stepBound;
    }
    os << ",\"whole_component\":" << (c.wholeComponent ? "true" : "false")
       << '}';
  }
  os << "]}";
  return os.str();
}

}  // namespace flames::analyze
