// flames::analyze — compiled propagation schedules (the fourth static pass).
//
// From the bipartite constraint graph alone — no propagation — this pass
// compiles the constraints::PropagationSchedule the event-driven propagator
// consumes (constraints/schedule.h documents the runtime contract), plus the
// report-facing summary the A4 lint tier and --analyze render:
//
//   watch sets      per constraint, which target slots are statically
//                   solvable (probed once through solveFor with benign crisp
//                   inputs — solvability of the shipped constraint classes
//                   is value-independent, their constructors reject the
//                   degenerate constants) and hence which slots are watched.
//                   A constraint with *no* solvable target is inert: it
//                   consumes activations but can never derive — A4 warning.
//   layering        biconnected blocks of the quantity/constraint graph
//                   (the same decomposition decompose.cpp counts), arranged
//                   in a block-cut tree and BFS-layered from the blocks
//                   holding seeded quantities (predictions + measurable
//                   voltages). Constraints inside one block share a layer —
//                   cycles have no topological order, they re-activate
//                   within their layer until quiescent — while tree-like
//                   chains drain in topological order.
//   impact cones    per quantity, directed reachability through solvable
//                   directions, with the certified extra-step bound
//                   sum R(q') (cost.h retentionBounds) over the cone. In a
//                   connected analog model whose constraints are solvable
//                   in every direction the cone is the whole component —
//                   reported honestly (A4 info): the incremental win then
//                   comes from the watermarked delta discipline, not cone
//                   truncation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analyze/cost.h"
#include "constraints/propagator.h"
#include "constraints/schedule.h"

namespace flames::analyze {

struct ScheduleOptions {
  /// Entry cap the cone step bounds assume (R(q) = entryCap + roots(q)).
  /// The runtime bound is valid whenever the propagator's cap does not
  /// exceed this. analyzeModel passes the derived per-model cap.
  std::size_t entryCap = 24;
  /// Assumed measurements per voltage quantity when counting roots
  /// (mirrors CostOptions::assumedMeasurements).
  std::size_t assumedMeasurements = 1;
};

/// Report row for one quantity's impact cone.
struct ConeSummary {
  std::string quantity;
  std::size_t quantityCount = 0;
  std::size_t constraintCount = 0;
  std::uint64_t stepBound = 0;
  bool wholeComponent = false;
};

struct ScheduleAnalysis {
  /// The runtime schedule (PropagatorOptions::schedule points here).
  constraints::PropagationSchedule plan;
  /// The entry cap the cone bounds were certified at.
  std::size_t entryCap = 0;
  std::size_t layerCount = 0;
  /// constraintsPerLayer[l]: constraints assigned to layer l.
  std::vector<std::size_t> constraintsPerLayer;
  /// Watched slots over total slots (sum of arities).
  std::size_t watchedSlotCount = 0;
  std::size_t totalSlotCount = 0;
  /// Solvable targets over total targets (== total slots).
  std::size_t solvableTargetCount = 0;
  /// Constraint names with no solvable target (A4 warning material).
  std::vector<std::string> inertConstraints;
  /// One row per quantity, in quantity-id order.
  std::vector<ConeSummary> cones;
  /// Quantities whose cone spans their whole connected component.
  std::size_t wholeComponentCones = 0;
};

/// Compiles the schedule from the constraint graph (no propagation).
[[nodiscard]] ScheduleAnalysis computeSchedule(
    const constraints::Model& model, const ScheduleOptions& options = {});

/// Human-readable rendering (the "== schedule ==" section of --analyze).
[[nodiscard]] std::string renderScheduleReport(const ScheduleAnalysis& s);

/// Machine-readable rendering (the "schedule" key of --analyze --json).
[[nodiscard]] std::string scheduleReportJson(const ScheduleAnalysis& s);

}  // namespace flames::analyze
