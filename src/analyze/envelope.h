// flames::analyze — static envelope analysis (abstract interpretation).
//
// Computes, per quantity, a guaranteed crisp envelope [lo, hi] that contains
// the support of every value entry the Propagator can ever hold for that
// quantity, for ANY admissible measurement sequence. The abstract domain is
// the interval lattice with two distinguished elements:
//
//   bottom        no value can ever reach the quantity
//   [lo, hi]      every runtime support is contained in [lo, hi]
//   top (±inf)    unbounded — some derivation path divides by a
//                 zero-straddling fuzzy factor (or feeds an unbounded input)
//
// Seeding (the concretisation of "admissible"):
//   * every a-priori prediction contributes its support;
//   * every voltage quantity additionally receives the assumed instrument
//     range ±measurementRange, because measurements enter the network only
//     at voltage quantities (FlamesEngine::measure / crispMeasurement).
//
// Iteration strategy. Naive interval iteration diverges on analog models:
// the cycle V -> I -> V through Ohm's law is expansive (each round trip
// multiplies the interval width by ~Rmax/Rmin), so a classic fixpoint
// climbs to top everywhere and learns nothing. The concrete system is
// better-behaved than that, in two ways the analysis mirrors exactly:
//
//   * runtime derivations are depth-bounded (PropagatorOptions::maxDepth):
//     an entry of depth d is produced from entries of depth < d, so the
//     union of maxDepth transfer rounds over the seed already covers every
//     reachable value — no fixpoint is required for soundness;
//   * runtime derivations wider than PropagatorOptions::maxDerivedWidth are
//     discarded on arrival, and each constraint's fuzzy parameter forces a
//     support width that grows with the operating point (a kept
//     I = (Va-Vb)/R entry must satisfy |Va-Vb| * width(1/R) <= cutoff), so
//     the magnitude of retainable derivations is capped no matter how
//     narrow the concrete inputs are. Each abstract transfer is clipped to
//     that cap (Constraint::keptMagnitudeBound) — this is what keeps the
//     expansive cycles from mattering. Note the clip keys on the *concrete*
//     width a derivation must carry, not on the width of the abstract hull:
//     concrete inputs are narrower than the envelopes, so skipping on
//     abstract width would be unsound.
//
// On top of that, bounds still growing after `wideningDelay` rounds are
// widened onto a fixed magnitude ladder (…,1e3,1e6,1e9,1e12,∞) — the classic
// threshold-widening accelerator, which guarantees convergence in O(ladder)
// further rounds even if maxDepth is configured huge. The default delay is
// set above any realistic depth: within the depth bound the precise rounds
// are affordable, and widening mid-iteration would trade away exactly the
// precision the depth bound preserves.
//
// Transfer functions reuse the constraints' own solveFor() on the crisp
// hulls FuzzyInterval::crispInterval(lo, hi). Soundness rests on the
// inclusion monotonicity of the possibilistic arithmetic in the supports:
// +/-/negate/scaled are exact interval operations, and mul/div rebuild the
// trapezoid from the exact support-cut interval product, so widening every
// input to its envelope hull can only widen the derived support. Runtime
// pruning (entry caps, env-size limits, crisp intersection refinements)
// only ever discards or narrows values. A solveFor() that throws (division
// through a zero-straddling support, or interval arithmetic overflowing
// the trapezoid invariants) is conservatively treated as top — that is
// exactly the A1 finding.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "constraints/propagator.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::analyze {

/// One abstract value of the interval domain.
struct Envelope {
  /// True while no value can reach the quantity (the lattice bottom).
  bool bottom = true;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();

  [[nodiscard]] static Envelope top() {
    Envelope e;
    e.bottom = false;
    e.lo = -std::numeric_limits<double>::infinity();
    e.hi = std::numeric_limits<double>::infinity();
    return e;
  }

  [[nodiscard]] bool isTop() const {
    return !bottom && std::isinf(lo) && std::isinf(hi) && lo < 0 && hi > 0;
  }
  /// Finite on both sides (and not bottom).
  [[nodiscard]] bool bounded() const {
    return !bottom && std::isfinite(lo) && std::isfinite(hi);
  }
  [[nodiscard]] bool unbounded() const {
    return !bottom && (!std::isfinite(lo) || !std::isfinite(hi));
  }
  [[nodiscard]] double width() const { return bottom ? 0.0 : hi - lo; }

  /// Containment of a crisp support interval, with absolute + relative slack.
  [[nodiscard]] bool contains(const fuzzy::Cut& support, double absTol = 1e-6,
                              double relTol = 1e-9) const;

  /// Lattice join with [jlo, jhi]; returns true if this envelope grew.
  bool join(double jlo, double jhi);
};

struct EnvelopeOptions {
  /// Assumed instrument range: any measurement entered at a voltage
  /// quantity has support within ±measurementRange volts.
  double measurementRange = 1e3;
  /// Derivation depth limit to iterate to (PropagatorOptions::maxDepth).
  int maxDepth = 12;
  /// The runtime derivation width cutoff (PropagatorOptions::
  /// maxDerivedWidth): abstract derivations wider than this are skipped,
  /// exactly as the propagator discards their concrete counterparts.
  double maxDerivedWidth = 1e3;
  /// Rounds before still-growing bounds are widened onto the ladder. The
  /// iteration terminates after maxDepth rounds regardless, so widening is
  /// purely an accelerator for configurations with a huge maxDepth; the
  /// default delay sits above any realistic depth so that normal runs keep
  /// the full depth-bounded precision (additive growth — e.g. a voltage
  /// envelope gaining ~productCap per round through Ohm's law — would
  /// otherwise be snapped up the ladder to top in O(ladder) rounds).
  int wideningDelay = 64;
  /// Bounds beyond this magnitude are treated as infinite (top on that
  /// side). This is an overflow guard, not a precision knob: rounding a
  /// bound outward to ±inf is always sound, rounding inward never is. It
  /// must sit well above the depth-bounded worst case — KCL nodes have no
  /// fuzzy parameter to clip on, so current envelopes legitimately amplify
  /// by the node fan-in each round (fan^maxDepth * productCap can reach
  /// ~1e12 on dense meshes); a low threshold would snap those finite
  /// envelopes to top and cascade.
  double infinityThreshold = 1e30;
};

/// Per-quantity result row (indexed by QuantityId in EnvelopeAnalysis).
struct QuantityEnvelope {
  constraints::QuantityId quantity = 0;
  std::string name;
  constraints::QuantityKind kind = constraints::QuantityKind::kOther;
  Envelope envelope;
  /// True if the ladder widening fired for this quantity — its envelope is
  /// a widened over-approximation, not the tightest depth-bounded one.
  bool widened = false;
};

struct EnvelopeAnalysis {
  /// Indexed by QuantityId (size == model.quantityCount()).
  std::vector<QuantityEnvelope> quantities;
  std::size_t rounds = 0;     ///< Jacobi rounds executed
  std::size_t widenings = 0;  ///< ladder widenings applied

  [[nodiscard]] const Envelope& of(constraints::QuantityId q) const {
    return quantities.at(q).envelope;
  }
  [[nodiscard]] std::size_t unboundedCount() const;
};

/// Runs the abstract interpreter over the model.
[[nodiscard]] EnvelopeAnalysis computeEnvelopes(
    const constraints::Model& model, const EnvelopeOptions& options = {});

}  // namespace flames::analyze
