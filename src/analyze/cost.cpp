#include "analyze/cost.h"

#include <algorithm>
#include <cmath>

namespace flames::analyze {

namespace {

using constraints::QuantityId;

std::uint64_t satAdd(std::uint64_t a, std::uint64_t b) {
  if (a >= kCostSaturated || b >= kCostSaturated || a > kCostSaturated - b) {
    return kCostSaturated;
  }
  return a + b;
}

std::uint64_t satMul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a >= kCostSaturated || b >= kCostSaturated || a > kCostSaturated / b) {
    return kCostSaturated;
  }
  return a * b;
}

/// roots(q): predictions on q plus the assumed measurements on voltages.
std::vector<std::uint64_t> rootCounts(const constraints::Model& model,
                                      const CostOptions& options) {
  std::vector<std::uint64_t> roots(model.quantityCount(), 0);
  for (const constraints::Model::Prediction& p : model.predictions()) {
    ++roots[p.quantity];
  }
  for (std::size_t q = 0; q < roots.size(); ++q) {
    if (model.quantityInfo(static_cast<QuantityId>(q)).kind ==
        constraints::QuantityKind::kVoltage) {
      roots[q] += options.assumedMeasurements;
    }
  }
  return roots;
}

}  // namespace

double workEstimate(const constraints::Model& model, std::size_t entryCap,
                    const CostOptions& options) {
  const std::vector<std::uint64_t> roots = rootCounts(model, options);
  double total = 0.0;
  for (const constraints::ConstraintPtr& c : model.constraints()) {
    const std::vector<QuantityId>& vars = c->variables();
    for (std::size_t t = 0; t < vars.size(); ++t) {
      double prod = 1.0;
      for (std::size_t s = 0; s < vars.size(); ++s) {
        if (s == t) continue;
        prod *= static_cast<double>(entryCap + roots[vars[s]]);
      }
      total += prod;
    }
  }
  return total;
}

std::vector<std::uint64_t> retentionBounds(const constraints::Model& model,
                                           std::size_t entryCap,
                                           const CostOptions& options) {
  std::vector<std::uint64_t> bounds = rootCounts(model, options);
  for (std::uint64_t& b : bounds) {
    b = satAdd(b, static_cast<std::uint64_t>(entryCap));
  }
  return bounds;
}

std::uint64_t fixpointBound(const constraints::Model& model,
                            std::size_t entryCap, const CostOptions& options) {
  const std::size_t n = model.quantityCount();
  const std::vector<std::uint64_t> roots = rootCounts(model, options);
  std::vector<std::uint64_t> retain(n);
  for (std::size_t q = 0; q < n; ++q) {
    retain[q] = satAdd(static_cast<std::uint64_t>(entryCap), roots[q]);
  }

  std::vector<std::uint64_t> prev = roots;  // B_0
  std::vector<std::uint64_t> cur(n, 0);
  for (int d = 1; d <= options.maxDepth; ++d) {
    cur = roots;
    for (const constraints::ConstraintPtr& c : model.constraints()) {
      const std::vector<QuantityId>& vars = c->variables();
      for (std::size_t t = 0; t < vars.size(); ++t) {
        std::uint64_t contribution = 0;
        for (std::size_t s = 0; s < vars.size(); ++s) {
          if (s == t) continue;
          std::uint64_t term = prev[vars[s]];
          for (std::size_t o = 0; o < vars.size(); ++o) {
            if (o == t || o == s) continue;
            term = satMul(term, retain[vars[o]]);
          }
          contribution = satAdd(contribution, term);
        }
        cur[vars[t]] = satAdd(cur[vars[t]], contribution);
      }
    }
    // B is monotone in d by construction; once every quantity saturates
    // there is nothing left to refine.
    if (std::all_of(cur.begin(), cur.end(), [](std::uint64_t b) {
          return b >= kCostSaturated;
        })) {
      prev = cur;
      break;
    }
    prev = cur;
  }

  std::uint64_t total = 0;
  for (const std::uint64_t b : prev) total = satAdd(total, b);
  return total;
}

CostModel computeCostModel(const constraints::Model& model,
                           const CostOptions& options) {
  CostModel out;
  const std::vector<std::uint64_t> roots = rootCounts(model, options);

  // Cap selection: W is monotone in cap, so scan down from the stock cap.
  const std::size_t floorCap =
      std::min(options.floorEntryCap, options.stockEntryCap);
  std::size_t cap = options.stockEntryCap;
  while (cap > floorCap && workEstimate(model, cap, options) > options.workBudget) {
    --cap;
  }
  out.derivedEntryCap = cap;
  out.workEstimateAtStock = workEstimate(model, options.stockEntryCap, options);
  out.workEstimateAtDerived = workEstimate(model, cap, options);
  out.intractableAtFloor = out.workEstimateAtDerived > options.workBudget;

  out.fixpointBound = fixpointBound(model, cap, options);
  out.fixpointCertified = out.fixpointBound <= options.maxStepsBudget;
  out.stepBound = std::min<std::uint64_t>(
      out.fixpointBound, static_cast<std::uint64_t>(options.maxStepsBudget) + 1);

  for (std::size_t q = 0; q < model.quantityCount(); ++q) {
    out.maxRetainedEntries = satAdd(
        out.maxRetainedEntries,
        satAdd(static_cast<std::uint64_t>(cap), roots[q]));
  }

  const std::vector<constraints::ConstraintPtr>& cs = model.constraints();
  out.perConstraint.reserve(cs.size());
  for (std::size_t ci = 0; ci < cs.size(); ++ci) {
    const std::vector<QuantityId>& vars = cs[ci]->variables();
    double work = 0.0;
    for (std::size_t t = 0; t < vars.size(); ++t) {
      double prod = 1.0;
      for (std::size_t s = 0; s < vars.size(); ++s) {
        if (s == t) continue;
        prod *= static_cast<double>(cap + roots[vars[s]]);
      }
      work += prod;
    }
    out.perConstraint.push_back({ci, cs[ci]->name(), work});
  }
  std::stable_sort(out.perConstraint.begin(), out.perConstraint.end(),
                   [](const ConstraintCost& a, const ConstraintCost& b) {
                     return a.workPerSweep > b.workPerSweep;
                   });

  return out;
}

}  // namespace flames::analyze
