// flames::analyze — propagation-cost bounds (fan-in × entry-cap counting).
//
// The Propagator's cost is dominated by constraint firings: popping one
// entry of quantity q fires every constraint on q over the cartesian product
// of the *other* participants' retained entries — cap^(arity-1) derivations
// per firing for a KCL constraint (the explosion PR 4 found empirically and
// papered over with a hardcoded entry cap of 6). This pass derives the same
// conclusion statically, per model:
//
// Retention bound. addEntry() rejects derived entries once a quantity holds
// maxEntriesPerQuantity of them but always keeps roots (predictions and
// measurements), so a quantity never retains more than
//     R(q) = cap + roots(q)
// entries, where roots(q) counts the model's predictions on q plus one
// assumed measurement for each voltage quantity (measurements only enter
// there).
//
// Certified step bound. Propagator::steps() counts queue pops, and every
// pop corresponds to one previously kept entry, so steps <= total kept
// entries. A kept derived entry of depth d is produced by a firing whose
// popped input had depth <= d-1 (the entry's depth is 1 + the max input
// depth, and each retained entry is popped exactly once). Writing B_d(q)
// for a bound on the kept entries of depth <= d at q:
//
//   B_0(q) = roots(q)
//   B_d(q) = roots(q) + sum over constraints c and target slots t with
//            var_t == q of  sum over source slots s != t of
//              B_{d-1}(var_s) * prod over remaining slots o of R(var_o)
//
// iterated to the propagation depth limit; steps <= sum_q B_maxDepth(q).
// All arithmetic saturates. This *fixpoint bound* is doubly exponential in
// depth, so on cyclic constraint graphs it saturates — the honest reading
// is "reaching fixpoint is not certified below the step budget" — while on
// tree-shaped models (the ampchain family) it lands far under the runtime
// budget and certifies completion outright. Either way the runtime budget
// PropagatorOptions::maxSteps caps the observed count, so the *certified
// step bound* the oracle checks against is
//     stepBound = min(fixpointBound, maxStepsBudget + 1)
// (run() counts one extra step when it trips the budget). The bound
// certifies the fuzzy conflict policy; the crisp baseline policy
// additionally queues intersection refinements that this count does not
// model.
//
// Work estimate and the derived cap. The step bound is doubly exponential
// in depth and useless as an admission metric, so the gate uses the
// per-sweep work estimate
//     W(cap) = sum_c sum_t prod_{s != t} R(var_s)
// — the derivations performed if every constraint fired once in every
// direction with saturated entry lists. W is monotone in cap, so the
// derived per-model cap is simply the largest cap in [floor, stock] whose
// estimate fits the budget; a model whose estimate exceeds the budget even
// at the floor is flagged intractable (lint rule A2, error).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "constraints/propagator.h"

namespace flames::analyze {

/// Saturation ceiling for the certified bound ("at least this many").
inline constexpr std::uint64_t kCostSaturated = UINT64_C(1) << 62;

struct CostOptions {
  /// The stock PropagatorOptions entry cap — the ceiling for derivation.
  std::size_t stockEntryCap = 24;
  /// Never derive a cap below this (PR 4's empirically safe value).
  std::size_t floorEntryCap = 6;
  /// Assumed measurements per voltage quantity when counting roots.
  std::size_t assumedMeasurements = 1;
  /// Propagation depth limit the bound is iterated to.
  int maxDepth = 12;
  /// The runtime step budget (PropagatorOptions::maxSteps) the certified
  /// step bound folds in.
  std::size_t maxStepsBudget = 500000;
  /// Admission budget on the per-sweep work estimate W(cap).
  double workBudget = 1e5;
};

/// Per-constraint share of the work estimate (for the report's top list).
struct ConstraintCost {
  std::size_t constraintIndex = 0;
  std::string name;
  /// Derivations this constraint contributes to one full sweep, at the
  /// derived cap.
  double workPerSweep = 0.0;
};

struct CostModel {
  /// Recommended per-model entry cap in [floorEntryCap, stockEntryCap].
  std::size_t derivedEntryCap = 0;
  /// Certified upper bound on Propagator::steps() at derivedEntryCap:
  /// min(fixpointBound, maxStepsBudget + 1).
  std::uint64_t stepBound = 0;
  /// The layered derivation-count bound B (saturates at kCostSaturated).
  std::uint64_t fixpointBound = 0;
  /// True when fixpointBound <= maxStepsBudget: propagation provably
  /// reaches its fixpoint without tripping the runtime step budget.
  bool fixpointCertified = false;
  /// Per-sweep work estimates at the stock and derived caps.
  double workEstimateAtStock = 0.0;
  double workEstimateAtDerived = 0.0;
  /// True when even the floor cap exceeds the budget (A2 error).
  bool intractableAtFloor = false;
  /// Sum of retention bounds R(q) — the most entries the model can hold.
  std::uint64_t maxRetainedEntries = 0;
  /// Constraints sorted by descending workPerSweep (full list).
  std::vector<ConstraintCost> perConstraint;
};

/// The per-sweep work estimate W(cap) for a model (monotone in cap).
[[nodiscard]] double workEstimate(const constraints::Model& model,
                                  std::size_t entryCap,
                                  const CostOptions& options = {});

/// The layered fixpoint bound B at a specific entry cap (saturating).
[[nodiscard]] std::uint64_t fixpointBound(const constraints::Model& model,
                                          std::size_t entryCap,
                                          const CostOptions& options = {});

/// Per-quantity retention bounds R(q) = entryCap + roots(q) (saturating):
/// the most entries a quantity ever holds, where roots(q) counts the
/// model's predictions on q plus `assumedMeasurements` per voltage
/// quantity. The schedule pass sums these over an impact cone to certify
/// the step bound of an incremental probe (schedule.h).
[[nodiscard]] std::vector<std::uint64_t> retentionBounds(
    const constraints::Model& model, std::size_t entryCap,
    const CostOptions& options = {});

/// Derives the full cost model (cap selection + bound + top offenders).
[[nodiscard]] CostModel computeCostModel(const constraints::Model& model,
                                         const CostOptions& options = {});

}  // namespace flames::analyze
