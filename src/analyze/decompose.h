// flames::analyze — structural decomposition of the constraint network.
//
// Views the model as a bipartite graph: quantity vertices on one side,
// constraint vertices on the other, an edge where a constraint mentions a
// quantity. Three structural results fall out:
//
// Independent subproblems. Connected components of the graph partition the
// diagnosis: a conflict can only ever involve components whose constraints
// share a graph component with the measurements that raised it, so each
// graph component is an independently solvable diagnosis subproblem.
//
// Articulation quantities. Cut vertices (computed with the usual lowlink
// DFS, together with the biconnected block count) that are quantities.
// Removing such a quantity disconnects the network — these are the shared
// rails and coupling nodes whose measurement carves the model apart, and the
// natural probe suggestions.
//
// Ambiguity groups (lint rule A3 — the structural generalisation of L6's
// sensitivity-sign audit). A circuit component occupies a set of *sites*:
// the constraint vertices guarded by its correctness assumption plus the
// quantity vertices of predictions carrying it. A probe at quantity m can
// structurally discriminate component A from component B only through how
// their sites connect to the *other* probes once m itself is removed. The
// signature of a component is therefore, per probe m, the set of
// reachable-probe bitmasks of its sites in G \ {m}; components with equal
// signatures cannot be told apart by any subset of the probe set — no
// measurement outcome at any probe can implicate one without the other.
// This is a conservative (purely structural) notion: L6's sign analysis may
// still separate a pair the topology cannot. For each group the pass
// searches the non-probe voltage quantities for a *splitting probe* whose
// addition separates the most member pairs; a group with no splitting probe
// is inherent to the topology (reported as info, matching L6's policy).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "constraints/model_builder.h"

namespace flames::analyze {

struct AmbiguityGroup {
  /// Component names, sorted; always >= 2 members.
  std::vector<std::string> components;
  /// Voltage quantity whose addition as a probe separates the most member
  /// pairs; empty when the group is inherent (no node voltage splits it).
  std::string splittingProbe;
  /// Member pairs the splitting probe still cannot separate (0 when the
  /// probe fully resolves the group).
  std::size_t unresolvedPairs = 0;

  [[nodiscard]] bool inherent() const { return splittingProbe.empty(); }
};

struct Decomposition {
  /// Connected components of the bipartite quantity/constraint graph.
  std::size_t graphComponents = 0;
  /// Circuit components grouped by graph component (only groups that
  /// contain at least one circuit component; names sorted).
  std::vector<std::vector<std::string>> independentSubproblems;
  /// Quantity names that are articulation (cut) vertices, sorted.
  std::vector<std::string> articulationQuantities;
  std::size_t biconnectedBlocks = 0;
  /// Structurally indistinguishable component groups over the probe set.
  std::vector<AmbiguityGroup> ambiguityGroups;
};

struct DecomposeOptions {
  /// Quantity ids of the probe set for the ambiguity analysis; empty =
  /// every voltage quantity (matching lint L6's "every named node" default,
  /// under which any remaining group is inherent by construction).
  std::vector<constraints::QuantityId> probes;
};

[[nodiscard]] Decomposition computeDecomposition(
    const constraints::BuiltModel& built, const DecomposeOptions& options = {});

}  // namespace flames::analyze
