#include "analyze/decompose.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace flames::analyze {

namespace {

using constraints::QuantityId;

/// The bipartite quantity/constraint graph. Vertices [0, nq) are
/// quantities, [nq, nq + nc) are constraints.
struct Graph {
  std::size_t nq = 0;
  std::size_t nc = 0;
  std::vector<std::vector<std::size_t>> adj;

  [[nodiscard]] std::size_t size() const { return nq + nc; }
  [[nodiscard]] std::size_t constraintVertex(std::size_t ci) const {
    return nq + ci;
  }
};

Graph buildGraph(const constraints::Model& model) {
  Graph g;
  g.nq = model.quantityCount();
  g.nc = model.constraints().size();
  g.adj.resize(g.size());
  for (std::size_t ci = 0; ci < g.nc; ++ci) {
    const std::size_t cv = g.constraintVertex(ci);
    for (const QuantityId q : model.constraints()[ci]->variables()) {
      g.adj[q].push_back(cv);
      g.adj[cv].push_back(q);
    }
  }
  return g;
}

/// Labels connected components, optionally with one vertex removed
/// (skip == size() means no removal). Returns -1 for the removed vertex.
std::vector<int> componentLabels(const Graph& g, std::size_t skip) {
  std::vector<int> label(g.size(), -1);
  int next = 0;
  std::vector<std::size_t> stack;
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (v == skip || label[v] != -1) continue;
    label[v] = next;
    stack.push_back(v);
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      for (const std::size_t w : g.adj[u]) {
        if (w == skip || label[w] != -1) continue;
        label[w] = next;
        stack.push_back(w);
      }
    }
    ++next;
  }
  return label;
}

/// Iterative lowlink DFS: articulation vertices + biconnected block count.
void findArticulations(const Graph& g, std::vector<char>& isArticulation,
                       std::size_t& blocks) {
  const std::size_t n = g.size();
  isArticulation.assign(n, 0);
  blocks = 0;
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, 0);
  std::vector<std::size_t> parent(n, n);
  std::vector<std::size_t> childIndex(n, 0);
  int dfsTime = 0;

  for (std::size_t root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::size_t rootChildCount = 0;
    std::vector<std::size_t> stack = {root};
    disc[root] = low[root] = dfsTime++;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      if (childIndex[u] < g.adj[u].size()) {
        const std::size_t w = g.adj[u][childIndex[u]++];
        if (disc[w] == -1) {
          parent[w] = u;
          disc[w] = low[w] = dfsTime++;
          stack.push_back(w);
        } else if (w != parent[u]) {
          low[u] = std::min(low[u], disc[w]);
        }
      } else {
        stack.pop_back();
        if (!stack.empty()) {
          const std::size_t p = stack.back();
          low[p] = std::min(low[p], low[u]);
          if (low[u] >= disc[p]) {
            // The edge (p, u) closes a biconnected block.
            ++blocks;
            if (p != root) isArticulation[p] = 1;
          }
          if (p == root) ++rootChildCount;
        }
      }
    }
    if (rootChildCount >= 2) isArticulation[root] = 1;
  }
}

/// Site vertices of each circuit component: constraints guarded by its
/// assumption plus quantities whose predictions carry it.
std::map<std::string, std::vector<std::size_t>> componentSites(
    const constraints::BuiltModel& built, const Graph& g) {
  std::map<std::string, std::vector<std::size_t>> sites;
  const constraints::Model& model = built.model;
  for (const auto& [name, aid] : built.assumptionOf) {
    std::vector<std::size_t>& s = sites[name];
    for (std::size_t ci = 0; ci < model.constraints().size(); ++ci) {
      if (model.constraints()[ci]->validity().contains(aid)) {
        s.push_back(g.constraintVertex(ci));
      }
    }
    for (const constraints::Model::Prediction& p : model.predictions()) {
      if (p.env.contains(aid)) s.push_back(p.quantity);
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  return sites;
}

/// The structural signature of every component over a probe set: per probe
/// m, the set of reachable-probe index lists of the component's sites in
/// G \ {m} ("@" marks a site that *is* the removed probe). Serialized for
/// cheap grouping and comparison.
std::map<std::string, std::string> signatures(
    const Graph& g,
    const std::map<std::string, std::vector<std::size_t>>& sites,
    const std::vector<std::size_t>& probeVerts) {
  std::map<std::string, std::ostringstream> sigs;
  for (std::size_t mi = 0; mi < probeVerts.size(); ++mi) {
    const std::size_t m = probeVerts[mi];
    const std::vector<int> label = componentLabels(g, m);
    // Probe indices reachable within each graph component of G \ {m}.
    std::map<int, std::vector<std::size_t>> reach;
    for (std::size_t pi = 0; pi < probeVerts.size(); ++pi) {
      if (pi == mi) continue;
      reach[label[probeVerts[pi]]].push_back(pi);
    }
    for (const auto& [name, siteList] : sites) {
      std::set<std::string> parts;
      for (const std::size_t site : siteList) {
        if (site == m) {
          parts.insert("@");
          continue;
        }
        std::ostringstream part;
        const auto it = reach.find(label[site]);
        if (it != reach.end()) {
          for (const std::size_t pi : it->second) part << pi << ',';
        }
        parts.insert(part.str());
      }
      std::ostringstream& sig = sigs[name];
      for (const std::string& p : parts) sig << p << '|';
      sig << ';';
    }
  }
  std::map<std::string, std::string> out;
  for (auto& [name, os] : sigs) out[name] = os.str();
  // Components with no sites at all (possible only for assumption-less
  // models) still need an entry so grouping sees them.
  for (const auto& entry : sites) out.try_emplace(entry.first, "");
  return out;
}

}  // namespace

Decomposition computeDecomposition(const constraints::BuiltModel& built,
                                   const DecomposeOptions& options) {
  Decomposition out;
  const constraints::Model& model = built.model;
  const Graph g = buildGraph(model);

  // --- Connected components -> independent subproblems. ---
  const std::vector<int> label = componentLabels(g, g.size());
  int maxLabel = -1;
  for (const int l : label) maxLabel = std::max(maxLabel, l);
  out.graphComponents = static_cast<std::size_t>(maxLabel + 1);

  const std::map<std::string, std::vector<std::size_t>> sites =
      componentSites(built, g);
  std::map<int, std::vector<std::string>> byGraphComponent;
  for (const auto& [name, siteList] : sites) {
    if (siteList.empty()) continue;
    byGraphComponent[label[siteList.front()]].push_back(name);
  }
  for (auto& [l, names] : byGraphComponent) {
    std::sort(names.begin(), names.end());
    out.independentSubproblems.push_back(std::move(names));
  }

  // --- Articulation quantities + biconnected blocks. ---
  std::vector<char> isArticulation;
  findArticulations(g, isArticulation, out.biconnectedBlocks);
  for (std::size_t q = 0; q < g.nq; ++q) {
    if (isArticulation[q]) {
      out.articulationQuantities.push_back(
          model.quantityInfo(static_cast<QuantityId>(q)).name);
    }
  }
  std::sort(out.articulationQuantities.begin(),
            out.articulationQuantities.end());

  // --- Ambiguity groups over the probe set. ---
  std::vector<std::size_t> probeVerts;
  if (options.probes.empty()) {
    for (std::size_t q = 0; q < g.nq; ++q) {
      if (model.quantityInfo(static_cast<QuantityId>(q)).kind ==
          constraints::QuantityKind::kVoltage) {
        probeVerts.push_back(q);
      }
    }
  } else {
    for (const QuantityId q : options.probes) probeVerts.push_back(q);
    std::sort(probeVerts.begin(), probeVerts.end());
    probeVerts.erase(std::unique(probeVerts.begin(), probeVerts.end()),
                     probeVerts.end());
  }

  // With no probes at all, every component is vacuously indistinguishable;
  // that degenerate case is L2/L6 territory, not a useful A3 group list.
  if (probeVerts.empty()) return out;

  const std::map<std::string, std::string> sig =
      signatures(g, sites, probeVerts);
  std::map<std::string, std::vector<std::string>> groups;
  for (const auto& [name, s] : sig) groups[s].push_back(name);

  // Candidate splitting probes: voltage quantities outside the probe set.
  std::vector<std::size_t> candidates;
  for (std::size_t q = 0; q < g.nq; ++q) {
    if (model.quantityInfo(static_cast<QuantityId>(q)).kind !=
        constraints::QuantityKind::kVoltage) {
      continue;
    }
    if (!std::binary_search(probeVerts.begin(), probeVerts.end(), q)) {
      candidates.push_back(q);
    }
  }

  for (auto& [s, members] : groups) {
    if (members.size() < 2) continue;
    std::sort(members.begin(), members.end());
    AmbiguityGroup group;
    group.components = members;
    const std::size_t totalPairs = members.size() * (members.size() - 1) / 2;
    group.unresolvedPairs = totalPairs;

    std::size_t bestSeparated = 0;
    for (const std::size_t cand : candidates) {
      std::vector<std::size_t> extended = probeVerts;
      extended.push_back(cand);
      std::sort(extended.begin(), extended.end());
      const std::map<std::string, std::string> newSig =
          signatures(g, sites, extended);
      std::size_t separated = 0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (newSig.at(members[i]) != newSig.at(members[j])) ++separated;
        }
      }
      if (separated > bestSeparated) {
        bestSeparated = separated;
        group.splittingProbe =
            model.quantityInfo(static_cast<QuantityId>(cand)).name;
        group.unresolvedPairs = totalPairs - separated;
      }
    }
    out.ambiguityGroups.push_back(std::move(group));
  }
  std::sort(out.ambiguityGroups.begin(), out.ambiguityGroups.end(),
            [](const AmbiguityGroup& a, const AmbiguityGroup& b) {
              return a.components < b.components;
            });

  return out;
}

}  // namespace flames::analyze
