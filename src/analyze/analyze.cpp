#include "analyze/analyze.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace flames::analyze {

namespace {

std::string joinNames(const std::vector<std::string>& names) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) os << ',';
    os << names[i];
  }
  os << '}';
  return os.str();
}

std::string formatBound(double x) {
  std::ostringstream os;
  os << std::setprecision(6) << x;
  return os.str();
}

/// A1: envelope pathologies.
void envelopeFindings(const AnalysisReport& report, double maxDerivedWidth,
                      lint::LintReport& out) {
  for (const QuantityEnvelope& q : report.envelopes.quantities) {
    if (q.envelope.bottom) continue;
    if (q.envelope.unbounded()) {
      lint::Diagnostic d;
      d.rule = "A1";
      d.severity = lint::Severity::kWarning;
      d.location = "quantity " + q.name;
      d.message =
          "static envelope is unbounded: a derivation path divides by a "
          "zero-straddling fuzzy factor (or feeds an unbounded input), so no "
          "static bound covers the runtime values here";
      d.fixHint =
          "tighten the parameter tolerance so its support excludes zero, or "
          "add a rating prediction bounding " +
          q.name;
      out.diagnostics.push_back(std::move(d));
    } else if (q.kind != constraints::QuantityKind::kVoltage &&
               q.envelope.width() > maxDerivedWidth) {
      // Voltages are exempt: their envelopes are wide by the instrument-
      // range assumption, not by weak static knowledge.
      lint::Diagnostic d;
      d.rule = "A1";
      d.severity = lint::Severity::kInfo;
      d.location = "quantity " + q.name;
      d.message = "static envelope [" + formatBound(q.envelope.lo) + ", " +
                  formatBound(q.envelope.hi) +
                  "] is wider than the propagation width cutoff (" +
                  formatBound(maxDerivedWidth) +
                  "): static knowledge here is weaker than anything the "
                  "propagator would retain";
      out.diagnostics.push_back(std::move(d));
    }
  }
}

/// A2: tractability.
void costFindings(const AnalysisReport& report, const CostOptions& options,
                  lint::LintReport& out) {
  const CostModel& cost = report.cost;
  if (cost.intractableAtFloor) {
    lint::Diagnostic d;
    d.rule = "A2";
    d.severity = lint::Severity::kError;
    d.location = "model";
    d.message = "propagation work estimate " +
                formatBound(cost.workEstimateAtDerived) +
                " exceeds the admission budget " +
                formatBound(options.workBudget) +
                " even at the floor entry cap " +
                std::to_string(options.floorEntryCap) +
                ": the model is intractable for interactive diagnosis";
    if (!cost.perConstraint.empty()) {
      d.fixHint = "highest-fan-in constraint is " +
                  cost.perConstraint.front().name + " (" +
                  formatBound(cost.perConstraint.front().workPerSweep) +
                  " derivations per sweep); split that node or reduce its "
                  "degree";
    }
    out.diagnostics.push_back(std::move(d));
  } else if (cost.derivedEntryCap < options.stockEntryCap) {
    lint::Diagnostic d;
    d.rule = "A2";
    d.severity = lint::Severity::kInfo;
    d.location = "model";
    d.message = "derived entry cap " + std::to_string(cost.derivedEntryCap) +
                " (stock cap " + std::to_string(options.stockEntryCap) +
                " costs " + formatBound(cost.workEstimateAtStock) +
                " derivations per sweep, over the budget " +
                formatBound(options.workBudget) + ")";
    out.diagnostics.push_back(std::move(d));
  }
  if (!cost.fixpointCertified) {
    lint::Diagnostic d;
    d.rule = "A2";
    d.severity = lint::Severity::kInfo;
    d.location = "model";
    d.message =
        "fixpoint not certified within the step budget: the layered "
        "derivation bound exceeds maxSteps (" +
        std::to_string(options.maxStepsBudget) +
        "), so worst-case propagation is truncated by the runtime budget "
        "rather than guaranteed to converge";
    out.diagnostics.push_back(std::move(d));
  }
}

/// A3: structural ambiguity groups.
void structureFindings(const AnalysisReport& report, lint::LintReport& out) {
  for (const AmbiguityGroup& g : report.decomposition.ambiguityGroups) {
    lint::Diagnostic d;
    d.rule = "A3";
    d.location = "components " + joinNames(g.components);
    if (g.inherent()) {
      d.severity = lint::Severity::kInfo;
      d.message =
          "structurally indistinguishable from every probe set: no "
          "node-voltage probe separates these components (inherent to the "
          "topology)";
    } else {
      d.severity = lint::Severity::kWarning;
      d.message =
          "structurally indistinguishable from the declared probe set: no "
          "measurement outcome can implicate one of these components "
          "without the others";
      d.fixHint = "probe " + g.splittingProbe +
                  (g.unresolvedPairs == 0
                       ? " to fully separate the group"
                       : " to separate all but " +
                             std::to_string(g.unresolvedPairs) +
                             " member pair(s)");
    }
    out.diagnostics.push_back(std::move(d));
  }
}

/// A4: propagation-schedule pathologies.
void scheduleFindings(const AnalysisReport& report, lint::LintReport& out) {
  for (const std::string& name : report.schedule.inertConstraints) {
    lint::Diagnostic d;
    d.rule = "A4";
    d.severity = lint::Severity::kWarning;
    d.location = "constraint " + name;
    d.message =
        "inert constraint: no target slot is statically solvable, so it "
        "consumes activations but can never derive an entry";
    d.fixHint =
        "check the constraint's constants; a direction-blocking constant "
        "(zero coefficient, zero-straddling factor) makes every solve abstain";
    out.diagnostics.push_back(std::move(d));
  }
  if (report.schedule.wholeComponentCones > 0) {
    lint::Diagnostic d;
    d.rule = "A4";
    d.severity = lint::Severity::kInfo;
    d.location = "model";
    d.message = std::to_string(report.schedule.wholeComponentCones) + " of " +
                std::to_string(report.schedule.cones.size()) +
                " impact cones span their whole connected component: a probe "
                "there re-propagates everything reachable, so incremental "
                "probes win through the watermarked delta discipline rather "
                "than cone pruning";
    out.diagnostics.push_back(std::move(d));
  }
}

}  // namespace

AnalysisOptions analysisOptionsFor(
    const constraints::PropagatorOptions& propagation) {
  AnalysisOptions o;
  o.envelope.maxDepth = propagation.maxDepth;
  o.envelope.maxDerivedWidth = propagation.maxDerivedWidth;
  o.cost.maxDepth = propagation.maxDepth;
  o.cost.maxStepsBudget = propagation.maxSteps;
  o.cost.stockEntryCap = propagation.maxEntriesPerQuantity;
  return o;
}

AnalysisReport analyzeModel(const constraints::BuiltModel& built,
                            const AnalysisOptions& options) {
  AnalysisReport report;
  if (options.runEnvelopes) {
    report.envelopes = computeEnvelopes(built.model, options.envelope);
  }
  if (options.runCost) {
    report.cost = computeCostModel(built.model, options.cost);
  }
  if (options.runDecomposition) {
    DecomposeOptions d;
    for (const std::string& node : options.probeNodes) {
      const auto q = built.model.findQuantity(
          constraints::voltageQuantityName(node));
      if (q) d.probes.push_back(*q);
    }
    report.decomposition = computeDecomposition(built, d);
  }
  if (options.runSchedule) {
    // Certify the cone bounds at the cap diagnosis will actually apply:
    // the derived cap when the cost pass ran, the stock cap otherwise.
    ScheduleOptions s;
    s.entryCap = options.runCost && report.cost.derivedEntryCap > 0
                     ? report.cost.derivedEntryCap
                     : options.cost.stockEntryCap;
    s.assumedMeasurements = options.cost.assumedMeasurements;
    report.schedule = computeSchedule(built.model, s);
  }

  if (options.runEnvelopes) {
    envelopeFindings(report, options.envelope.maxDerivedWidth,
                     report.findings);
  }
  if (options.runCost) costFindings(report, options.cost, report.findings);
  if (options.runDecomposition) structureFindings(report, report.findings);
  if (options.runSchedule) scheduleFindings(report, report.findings);
  report.findings.normalize();
  return report;
}

std::size_t recommendedEntryCap(const AnalysisReport& report,
                                std::size_t requested) {
  if (report.cost.derivedEntryCap == 0) return requested;
  return std::min(requested, report.cost.derivedEntryCap);
}

std::string renderAnalysisReport(const AnalysisReport& report) {
  std::ostringstream os;

  os << "== static envelopes ==\n";
  std::size_t bottoms = 0;
  for (const QuantityEnvelope& q : report.envelopes.quantities) {
    if (q.envelope.bottom) {
      ++bottoms;
      continue;
    }
    os << "  " << q.name << ": [" << formatBound(q.envelope.lo) << ", "
       << formatBound(q.envelope.hi) << ']';
    if (q.widened) os << " (widened)";
    os << '\n';
  }
  os << "  " << report.envelopes.quantities.size() << " quantities, "
     << bottoms << " unreachable, " << report.envelopes.unboundedCount()
     << " unbounded; " << report.envelopes.rounds << " rounds, "
     << report.envelopes.widenings << " widenings\n";

  os << "== propagation cost ==\n";
  os << "  derived entry cap: " << report.cost.derivedEntryCap << '\n';
  os << "  certified step bound: " << report.cost.stepBound << '\n';
  os << "  fixpoint: ";
  if (report.cost.fixpointCertified) {
    os << "certified within budget (bound " << report.cost.fixpointBound
       << ")";
  } else if (report.cost.fixpointBound >= kCostSaturated) {
    os << "not certified (layered bound saturated)";
  } else {
    os << "not certified (layered bound " << report.cost.fixpointBound << ")";
  }
  os << '\n';
  os << "  work estimate/sweep: " << formatBound(report.cost.workEstimateAtDerived)
     << " at derived cap, " << formatBound(report.cost.workEstimateAtStock)
     << " at stock cap\n";
  os << "  max retained entries: " << report.cost.maxRetainedEntries << '\n';
  const std::size_t top = std::min<std::size_t>(3, report.cost.perConstraint.size());
  for (std::size_t i = 0; i < top; ++i) {
    const ConstraintCost& c = report.cost.perConstraint[i];
    os << "  hottest[" << i << "]: " << c.name << " ("
       << formatBound(c.workPerSweep) << " derivations/sweep)\n";
  }

  os << "== structure ==\n";
  os << "  graph components: " << report.decomposition.graphComponents
     << ", biconnected blocks: " << report.decomposition.biconnectedBlocks
     << '\n';
  for (const auto& sub : report.decomposition.independentSubproblems) {
    os << "  subproblem: " << joinNames(sub) << '\n';
  }
  if (!report.decomposition.articulationQuantities.empty()) {
    os << "  articulation quantities: "
       << joinNames(report.decomposition.articulationQuantities) << '\n';
  }
  for (const AmbiguityGroup& g : report.decomposition.ambiguityGroups) {
    os << "  ambiguity group " << joinNames(g.components);
    if (g.inherent()) {
      os << " (inherent)";
    } else {
      os << " (split with probe " << g.splittingProbe << ")";
    }
    os << '\n';
  }

  os << "== schedule ==\n" << renderScheduleReport(report.schedule);

  os << "== findings ==\n" << lint::renderLintReport(report.findings);
  return os.str();
}

namespace {

void jsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void jsonBound(std::ostream& os, double x) {
  if (std::isinf(x)) {
    os << (x < 0 ? "\"-inf\"" : "\"inf\"");
  } else {
    os << std::setprecision(17) << x;
  }
}

void jsonNames(std::ostream& os, const std::vector<std::string>& names) {
  os << '[';
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) os << ',';
    jsonEscape(os, names[i]);
  }
  os << ']';
}

}  // namespace

std::string analysisReportJson(const AnalysisReport& report) {
  std::ostringstream os;
  os << "{\"envelopes\":[";
  bool first = true;
  for (const QuantityEnvelope& q : report.envelopes.quantities) {
    if (!first) os << ',';
    first = false;
    os << "{\"quantity\":";
    jsonEscape(os, q.name);
    os << ",\"bottom\":" << (q.envelope.bottom ? "true" : "false");
    if (!q.envelope.bottom) {
      os << ",\"lo\":";
      jsonBound(os, q.envelope.lo);
      os << ",\"hi\":";
      jsonBound(os, q.envelope.hi);
    }
    os << ",\"widened\":" << (q.widened ? "true" : "false") << '}';
  }
  os << "],\"cost\":{\"derived_entry_cap\":" << report.cost.derivedEntryCap
     << ",\"step_bound\":" << report.cost.stepBound
     << ",\"fixpoint_bound\":" << report.cost.fixpointBound
     << ",\"fixpoint_certified\":"
     << (report.cost.fixpointCertified ? "true" : "false")
     << ",\"work_estimate_derived\":";
  jsonBound(os, report.cost.workEstimateAtDerived);
  os << ",\"work_estimate_stock\":";
  jsonBound(os, report.cost.workEstimateAtStock);
  os << ",\"intractable_at_floor\":"
     << (report.cost.intractableAtFloor ? "true" : "false")
     << ",\"max_retained_entries\":" << report.cost.maxRetainedEntries
     << "},\"structure\":{\"graph_components\":"
     << report.decomposition.graphComponents
     << ",\"biconnected_blocks\":" << report.decomposition.biconnectedBlocks
     << ",\"independent_subproblems\":[";
  first = true;
  for (const auto& sub : report.decomposition.independentSubproblems) {
    if (!first) os << ',';
    first = false;
    jsonNames(os, sub);
  }
  os << "],\"articulation_quantities\":";
  jsonNames(os, report.decomposition.articulationQuantities);
  os << ",\"ambiguity_groups\":[";
  first = true;
  for (const AmbiguityGroup& g : report.decomposition.ambiguityGroups) {
    if (!first) os << ',';
    first = false;
    os << "{\"components\":";
    jsonNames(os, g.components);
    os << ",\"splitting_probe\":";
    jsonEscape(os, g.splittingProbe);
    os << ",\"inherent\":" << (g.inherent() ? "true" : "false") << '}';
  }
  os << "]},\"schedule\":" << scheduleReportJson(report.schedule)
     << ",\"findings\":" << lint::lintReportJson(report.findings) << '}';
  return os.str();
}

}  // namespace flames::analyze
