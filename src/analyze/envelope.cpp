#include "analyze/envelope.h"

#include <algorithm>
#include <optional>
#include <stdexcept>

namespace flames::analyze {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The widening ladder: after the delay, a growing bound snaps outward onto
/// the nearest of these magnitudes (negated for the lower side), so each
/// bound can change only O(ladder) more times. Covers everything from
/// sub-microamp currents to the overflow clamp.
constexpr double kLadder[] = {0.0,  1e-9, 1e-6, 1e-3, 1e-2, 1e-1, 1.0,
                              10.0, 1e2,  1e3,  1e4,  1e6,  1e9,  1e12};

/// Rounds x outward (away from zero for the growing direction) onto the
/// ladder: the result w satisfies w <= x for lower bounds.
double widenDown(double x) {
  if (!std::isfinite(x)) return -kInf;
  if (x >= 0.0) {
    // A positive lower bound: largest ladder value <= x.
    double best = 0.0;
    for (double t : kLadder) {
      if (t <= x) best = t;
    }
    return best;
  }
  // Negative lower bound: -(smallest ladder value >= -x).
  for (double t : kLadder) {
    if (t >= -x) return -t;
  }
  return -kInf;
}

double widenUp(double x) { return -widenDown(-x); }

}  // namespace

bool Envelope::contains(const fuzzy::Cut& support, double absTol,
                        double relTol) const {
  if (bottom) return false;
  const double slackLo = absTol + relTol * std::abs(lo);
  const double slackHi = absTol + relTol * std::abs(hi);
  return support.lo >= lo - slackLo && support.hi <= hi + slackHi;
}

bool Envelope::join(double jlo, double jhi) {
  if (bottom) {
    bottom = false;
    lo = jlo;
    hi = jhi;
    return true;
  }
  bool grew = false;
  if (jlo < lo) {
    lo = jlo;
    grew = true;
  }
  if (jhi > hi) {
    hi = jhi;
    grew = true;
  }
  return grew;
}

std::size_t EnvelopeAnalysis::unboundedCount() const {
  std::size_t n = 0;
  for (const QuantityEnvelope& q : quantities) {
    if (q.envelope.unbounded()) ++n;
  }
  return n;
}

EnvelopeAnalysis computeEnvelopes(const constraints::Model& model,
                                  const EnvelopeOptions& options) {
  using constraints::QuantityId;

  EnvelopeAnalysis out;
  const std::size_t n = model.quantityCount();
  out.quantities.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    QuantityEnvelope& row = out.quantities[i];
    row.quantity = static_cast<QuantityId>(i);
    row.name = model.quantityInfo(row.quantity).name;
    row.kind = model.quantityInfo(row.quantity).kind;
  }

  // Clamps overflowing bounds to ±inf so solveFor never sees non-finite
  // inputs while the envelope still records the blow-up.
  auto clamp = [&](Envelope& e) {
    if (e.bottom) return;
    if (e.lo < -options.infinityThreshold) e.lo = -kInf;
    if (e.hi > options.infinityThreshold) e.hi = kInf;
  };

  // --- Seed: prediction supports plus the instrument range on voltages. ---
  // Seeds model root entries, which the propagator keeps unconditionally —
  // the derivation width cutoff below does not apply to them.
  for (const constraints::Model::Prediction& p : model.predictions()) {
    const fuzzy::Cut s = p.value.support();
    out.quantities[p.quantity].envelope.join(s.lo, s.hi);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (out.quantities[i].kind == constraints::QuantityKind::kVoltage) {
      out.quantities[i].envelope.join(-options.measurementRange,
                                      options.measurementRange);
    }
  }
  for (std::size_t i = 0; i < n; ++i) clamp(out.quantities[i].envelope);

  // --- Depth-bounded chaotic iteration. ---
  // Round d extends every envelope with all one-step derivations over the
  // current envelopes. Because envelopes only grow, after round d each one
  // contains every runtime entry of derivation depth <= d; the propagator
  // refuses to derive past maxDepth, so maxDepth rounds cover everything.
  // Reading the in-place (already partially updated) envelopes within a
  // round is sound — it can only widen inputs further.
  const std::vector<constraints::ConstraintPtr>& cs = model.constraints();
  const int rounds = std::max(options.maxDepth, 1);
  for (int round = 1; round <= rounds; ++round) {
    bool changed = false;
    ++out.rounds;

    for (const constraints::ConstraintPtr& cp : cs) {
      const constraints::Constraint& c = *cp;
      const std::vector<QuantityId>& vars = c.variables();
      for (std::size_t t = 0; t < vars.size(); ++t) {
        // Gather abstract inputs for every other slot.
        bool feasible = true;
        bool anyUnbounded = false;
        std::vector<fuzzy::FuzzyInterval> inputs(vars.size());
        std::vector<fuzzy::Cut> ranges(vars.size(), fuzzy::Cut{-kInf, kInf});
        for (std::size_t s = 0; s < vars.size() && feasible; ++s) {
          if (s == t) continue;
          const Envelope& in = out.quantities[vars[s]].envelope;
          if (in.bottom) {
            feasible = false;
          } else if (!in.bounded()) {
            anyUnbounded = true;
            ranges[s] = fuzzy::Cut{in.lo, in.hi};
          } else {
            inputs[s] = fuzzy::FuzzyInterval::crispInterval(in.lo, in.hi);
            ranges[s] = fuzzy::Cut{in.lo, in.hi};
          }
        }
        if (!feasible) continue;

        double jlo = -kInf;
        double jhi = kInf;
        if (!anyUnbounded) {
          try {
            const std::optional<fuzzy::FuzzyInterval> v = c.solveFor(t, inputs);
            if (!v) continue;
            const fuzzy::Cut s = v->support();
            jlo = s.lo;
            jhi = s.hi;
          } catch (const std::domain_error&) {
            // Division through a zero-straddling support. A concrete run
            // with narrower inputs might still divide cleanly, so the
            // abstraction stays at top (subject to the retention clip
            // below). This is the A1 blow-up finding.
          } catch (const std::invalid_argument&) {
            // Interval arithmetic overflowed the trapezoid invariants
            // (non-finite parameter): likewise top.
          }
        }
        // An unbounded input (or a blow-up above) leaves the *location* of
        // a derived entry unconstrained even though each concrete entry is
        // narrow. The retention cutoff still applies, though: the
        // propagator keeps a derivation only if its support width fits
        // maxDerivedWidth, and the constraint's fuzzy parameter forces a
        // width that grows with the operating point, which caps the
        // magnitude of keepable results no matter how narrow the concrete
        // inputs are. This clip is what tames the expansive V -> I -> V
        // cycles (and most top-cascades).
        const double keep =
            c.keptMagnitudeBound(t, ranges, options.maxDerivedWidth);
        jlo = std::max(jlo, -keep);
        jhi = std::min(jhi, keep);
        if (jlo > jhi) continue;  // nothing retainable from this direction

        Envelope& e = out.quantities[vars[t]].envelope;
        if (!e.join(jlo, jhi)) continue;
        changed = true;
        if (round > options.wideningDelay) {
          const double wlo = widenDown(e.lo);
          const double whi = widenUp(e.hi);
          if (wlo < e.lo || whi > e.hi) {
            e.lo = wlo;
            e.hi = whi;
            out.quantities[vars[t]].widened = true;
            ++out.widenings;
          }
        }
        clamp(e);
      }
    }

    if (!changed) break;  // converged before the depth limit
  }

  return out;
}

}  // namespace flames::analyze
