#include "lint/model_lint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace flames::lint {

using circuit::Netlist;
using circuit::NodeId;
using constraints::BuiltModel;
using constraints::QuantityId;

namespace {

std::string joinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

// Extracts "T1" from rule names of the form "region(T1)/on"; empty when the
// name carries no parenthesised component reference.
std::string parenthesizedName(const std::string& s) {
  const auto open = s.find('(');
  const auto close = s.find(')', open == std::string::npos ? 0 : open);
  if (open == std::string::npos || close == std::string::npos ||
      close <= open + 1) {
    return {};
  }
  return s.substr(open + 1, close - open - 1);
}

// The measurement points the L6 audit assumes, resolved against the
// netlist: explicit options win, otherwise every named non-ground node.
std::vector<std::string> resolveMeasurementPoints(
    const Netlist& net, const LintOptions& options) {
  if (!options.measurementPoints.empty()) return options.measurementPoints;
  std::vector<std::string> points;
  for (NodeId n = 1; n < net.nodeCount(); ++n) {
    points.push_back(net.nodeName(n));
  }
  return points;
}

}  // namespace

LintReport lintBuiltModel(const BuiltModel& built, const LintOptions& options) {
  LintReport report;
  if (!options.reachability) return report;

  std::set<QuantityId> predicted;
  for (const auto& p : built.model.predictions()) predicted.insert(p.quantity);

  for (QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    if (!built.model.constraintsOn(q).empty()) continue;
    if (predicted.count(q) != 0) continue;
    report.diagnostics.push_back(
        {"L2", Severity::kWarning,
         "quantity " + built.model.quantityInfo(q).name,
         "no constraint touches this quantity and no prediction seeds it; "
         "the model can never predict a value here, so measurements at this "
         "point can neither corroborate nor conflict (undiagnosable)",
         "check the wiring around the quantity or enable nominal "
         "predictions"});
  }
  report.normalize();
  return report;
}

LintReport lintKnowledgeBase(const diagnosis::KnowledgeBase& kb,
                             const BuiltModel& built, const Netlist& net,
                             const LintOptions& options) {
  LintReport report;
  if (!options.knowledgeBase) return report;

  for (const diagnosis::FuzzyRule& rule : kb.rules()) {
    for (const diagnosis::FuzzyProposition& p : rule.antecedents) {
      if (p.quantity >= built.model.quantityCount()) {
        report.diagnostics.push_back(
            {"L5", Severity::kError, "rule " + rule.name,
             "antecedent references quantity id " +
                 std::to_string(p.quantity) +
                 " which does not exist in this model (it has " +
                 std::to_string(built.model.quantityCount()) +
                 " quantities); evaluating the rule would fault",
             "rebuild the rule against this model's quantity ids"});
      }
    }
    // Region rules are named "region(<component>)/..." and conclude about
    // that component; a dangling reference means the rule was compiled for
    // a different netlist and can only mislead the expert.
    const std::string comp = parenthesizedName(rule.name);
    if (!comp.empty() && !net.hasComponent(comp)) {
      report.diagnostics.push_back(
          {"L5", Severity::kWarning, "rule " + rule.name,
           "rule references component '" + comp +
               "' which is not in the netlist; its conclusion points at "
               "nothing the candidate generator knows",
           "remove the rule or rename the component it targets"});
    }
  }
  report.normalize();
  return report;
}

LintReport lintExperience(const diagnosis::ExperienceBase& experience,
                          const BuiltModel& built, const Netlist& net,
                          const LintOptions& options) {
  LintReport report;
  if (!options.knowledgeBase) return report;

  for (const diagnosis::SymptomRule& rule : experience.rules()) {
    const std::string loc =
        "experience rule " + rule.component + "/" + rule.mode;
    if (!net.hasComponent(rule.component)) {
      report.diagnostics.push_back(
          {"L5", Severity::kWarning, loc,
           "learned rule blames component '" + rule.component +
               "' which is not in this netlist; the hint can never be acted "
               "on (experience file from another unit type?)",
           "load the experience base that matches this unit type"});
    }
    for (const diagnosis::Symptom& s : rule.symptoms) {
      if (!built.model.findQuantity(s.quantity).has_value()) {
        report.diagnostics.push_back(
            {"L5", Severity::kWarning, loc,
             "learned rule keys on quantity '" + s.quantity +
                 "' which this model does not define; the signature can "
                 "never match a session on this unit",
             "load the experience base that matches this unit type"});
      }
    }
  }
  report.normalize();
  return report;
}

LintReport lintDiagnosability(const Netlist& net,
                              const diagnosis::SensitivitySigns& signs,
                              const LintOptions& options) {
  LintReport report;
  if (!options.diagnosability) return report;

  const std::vector<std::string> points =
      resolveMeasurementPoints(net, options);
  std::vector<std::string> allNodes;
  for (NodeId n = 1; n < net.nodeCount(); ++n) {
    allNodes.push_back(net.nodeName(n));
  }

  // Sign column of each component over the declared measurement points.
  std::map<std::vector<int>, std::vector<std::string>> groups;
  for (const std::string& comp : signs.components()) {
    std::vector<int> column;
    column.reserve(points.size());
    bool visible = false;
    for (const std::string& node : points) {
      const int s = signs.sign(node, comp);
      column.push_back(s);
      if (s != 0) visible = true;
    }
    if (!visible) {
      // Detectability first: a fault nobody can see is worse than one that
      // is merely confusable with a neighbour.
      std::string probe;
      for (const std::string& node : allNodes) {
        if (signs.sign(node, comp) != 0) {
          probe = node;
          break;
        }
      }
      report.diagnostics.push_back(
          {"L6", Severity::kWarning, "component " + comp,
           "fault is invisible at the declared measurement points (zero "
           "sensitivity everywhere measured)",
           probe.empty()
               ? "no node-voltage probe sees this component; add a current "
                 "measurement or accept the coverage gap"
               : "probe V(" + probe + ") to make this fault visible"});
      continue;
    }
    groups[column].push_back(comp);
  }

  for (const auto& [column, members] : groups) {
    if (members.size() < 2) continue;
    // The minimal extra probe: one un-declared node that splits the most
    // member pairs; members with equal signs there stay confusable.
    std::string bestProbe;
    std::size_t bestSplits = 0;
    for (const std::string& node : allNodes) {
      if (std::find(points.begin(), points.end(), node) != points.end()) {
        continue;
      }
      std::size_t splits = 0;
      for (std::size_t i = 0; i < members.size(); ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (signs.sign(node, members[i]) != signs.sign(node, members[j])) {
            ++splits;
          }
        }
      }
      if (splits > bestSplits) {
        bestSplits = splits;
        bestProbe = node;
      }
    }
    Diagnostic d;
    d.rule = "L6";
    d.location = "component " + members.front();
    d.message = "components {" + joinNames(members) +
                "} have identical sensitivity-sign columns over the "
                "measurement points {" + joinNames(points) +
                "}; their faults are indistinguishable from those readings";
    if (!bestProbe.empty()) {
      d.severity = Severity::kWarning;
      d.fixHint = "probe V(" + bestProbe + ") to split the group (" +
                  std::to_string(bestSplits) + " pair(s) separated)";
    } else {
      // Nothing measurable separates them: an inherent ambiguity class of
      // the circuit, not a fixable gap in the declared probe set.
      d.severity = Severity::kInfo;
      d.fixHint = "no node-voltage probe separates these components; they "
                  "form an inherent ambiguity class";
    }
    report.diagnostics.push_back(std::move(d));
  }
  report.normalize();
  return report;
}

LintReport lintModel(const ModelLintInputs& inputs,
                     const LintOptions& options) {
  if (inputs.netlist == nullptr) {
    throw std::invalid_argument("lintModel: netlist input is required");
  }
  LintReport report = lintNetlist(*inputs.netlist, options);

  // Declared measurement points must name real nodes (L5): a typo here
  // silently hides every reading the bench takes at that point.
  if (options.knowledgeBase) {
    for (const std::string& point : options.measurementPoints) {
      bool found = point == "0" || point == "gnd" || point == "GND";
      for (NodeId n = 0; !found && n < inputs.netlist->nodeCount(); ++n) {
        found = inputs.netlist->nodeName(n) == point;
      }
      if (!found) {
        report.diagnostics.push_back(
            {"L5", Severity::kError, "measurement point " + point,
             "declared measurement point is not a node of the netlist",
             "fix the probe name or add the node"});
      }
    }
  }

  if (inputs.built != nullptr) {
    report.merge(lintBuiltModel(*inputs.built, options));
    if (inputs.kb != nullptr) {
      report.merge(
          lintKnowledgeBase(*inputs.kb, *inputs.built, *inputs.netlist,
                            options));
    }
    if (inputs.experience != nullptr) {
      report.merge(lintExperience(*inputs.experience, *inputs.built,
                                  *inputs.netlist, options));
    }
  }
  if (inputs.signs != nullptr) {
    report.merge(lintDiagnosability(*inputs.netlist, *inputs.signs, options));
  }
  report.normalize();
  return report;
}

}  // namespace flames::lint
