// flames::lint — static analysis of diagnostic models (netlist level).
//
// FLAMES only diagnoses well when the model it propagates over is
// well-formed: a floating node, an unconstrained quantity or a degenerate
// fuzzy nominal silently produces vacuous predictions and zero nogoods — the
// engine then reports "consistent" instead of "your model is broken". The
// lint pass runs *before* compilation and returns a structured report of
// diagnostics, each tagged with the rule that produced it:
//
//   L1  floating/dangling nodes; components with unconnected terminals;
//       subcircuits with no path to ground (the MNA reference)
//   L2  quantities reachable by no constraint and carrying no prediction
//       (unpredictable => undiagnosable) — model level, see model_lint.h
//   L3  ill-formed fuzzy values: parameters that would fuzzify to m1 > m2
//       or negative spreads, zero-area tolerance envelopes used as
//       nominals, rating/prediction envelopes that exclude the nominal
//   L4  duplicate/shadowed component and node names; unit-suffix parse
//       ambiguities in netlist source text
//   L5  knowledge-base / experience rules referencing quantities,
//       components or measurement points absent from the model — see
//       model_lint.h
//   L6  diagnosability audit: components indistinguishable from the
//       declared measurement points (identical sensitivity-sign columns),
//       with the minimal extra probe that would split them — see
//       model_lint.h
//
// This header holds the shared types and the rules that need only the
// netlist (L1, L3, L4); it deliberately depends on nothing above
// flames_circuit so that the model builder itself can gate on it.
// Model/KB/diagnosability rules live in lint/model_lint.h.
//
// Severity policy: *error* means the compiled model cannot produce
// meaningful diagnoses (or cannot be built at all); the build gate and the
// service submit path refuse such inputs with a typed LintError. *warning*
// means diagnosis will run but with degraded coverage or resolution; it is
// reported and counted but does not block (unless escalated via --Werror).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "circuit/netlist.h"

namespace flames::lint {

enum class Severity { kInfo, kWarning, kError };

[[nodiscard]] std::string_view severityName(Severity s);

/// One finding of the static analysis pass.
struct Diagnostic {
  /// Rule identifier, "L1" .. "L6".
  std::string rule;
  Severity severity = Severity::kWarning;
  /// What the finding is anchored to: "component R1", "node n3",
  /// "line 4", "rule conducting(T1)", ...
  std::string location;
  std::string message;
  /// Actionable remedy; empty when none is known.
  std::string fixHint;
};

/// Per-rule enable switches and thresholds for the whole pass. Every rule
/// is independently toggleable; entry points that lack the inputs a rule
/// needs (e.g. netlist-level lint cannot run L2) simply skip it.
struct LintOptions {
  bool connectivity = true;    ///< L1
  bool reachability = true;    ///< L2
  bool fuzzyValues = true;     ///< L3
  bool names = true;           ///< L4
  bool knowledgeBase = true;   ///< L5
  bool diagnosability = true;  ///< L6

  /// Node names the bench can actually probe, for the L6 audit; empty =
  /// every named non-ground node is considered measurable.
  std::vector<std::string> measurementPoints;

  /// Escalate warnings to errors at enforcement points (CLI --Werror,
  /// service submission gate). Does not change recorded severities.
  bool warningsAsErrors = false;
};

/// The result of a lint pass. Diagnostics are ordered errors-first, then by
/// rule, preserving discovery order within a rule.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] std::size_t count(Severity s) const;
  [[nodiscard]] std::size_t errors() const { return count(Severity::kError); }
  [[nodiscard]] std::size_t warnings() const {
    return count(Severity::kWarning);
  }
  /// No error-grade diagnostics (warnings allowed).
  [[nodiscard]] bool ok() const { return errors() == 0; }
  /// No diagnostics at all.
  [[nodiscard]] bool clean() const { return diagnostics.empty(); }

  /// Diagnostics produced by one rule, e.g. byRule("L3").
  [[nodiscard]] std::vector<const Diagnostic*> byRule(
      std::string_view rule) const;

  /// Appends another report's diagnostics and restores the severity order.
  void merge(LintReport other);
  /// Sorts errors-first (stable within a severity).
  void normalize();
};

/// Thrown by enforcement points (buildDiagnosticModel's lint gate, the
/// service submit gate) when a report contains error-grade diagnostics.
/// Carries the full report so callers can render every finding, not just
/// the first.
class LintError : public std::runtime_error {
 public:
  explicit LintError(LintReport report);
  [[nodiscard]] const LintReport& report() const { return report_; }

 private:
  LintReport report_;
};

/// Runs the netlist-level rules (L1 connectivity, L3 fuzzy-value sanity,
/// L4 name collisions) over a netlist.
[[nodiscard]] LintReport lintNetlist(const circuit::Netlist& net,
                                     const LintOptions& options = {});

/// Runs the source-level L4 checks over raw card text: unit-suffix parse
/// ambiguities (uppercase 'M' reads as mega here but milli in classic
/// SPICE), quoting the offending card. A card that fails to parse at all is
/// reported as an error-grade L4 diagnostic carrying the card text instead
/// of throwing.
[[nodiscard]] LintReport lintSource(const std::string& cardText,
                                    const LintOptions& options = {});

/// Human-readable rendering (one line per diagnostic plus a summary).
[[nodiscard]] std::string renderLintReport(const LintReport& report);

/// Machine-readable rendering: {"errors":N,"warnings":N,"diagnostics":[...]}.
[[nodiscard]] std::string lintReportJson(const LintReport& report);

/// Throws LintError if the report contains errors — or warnings, when
/// `warningsAsErrors` escalates them.
void enforce(const LintReport& report, bool warningsAsErrors = false);

/// Adds the report's error/warning counts to the flames::obs counters
/// "lint_errors_total" / "lint_warnings_total". Called by enforcement
/// surfaces (the service submit gate), not by the rules themselves, so one
/// report is counted exactly once however many passes produced it.
void recordObsCounters(const LintReport& report);

}  // namespace flames::lint
