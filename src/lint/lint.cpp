#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <sstream>

#include "circuit/parser.h"
#include "obs/obs.h"

namespace flames::lint {

using circuit::Component;
using circuit::ComponentKind;
using circuit::Netlist;
using circuit::NodeId;

std::string_view severityName(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::size_t LintReport::count(Severity s) const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [s](const Diagnostic& d) { return d.severity == s; }));
}

std::vector<const Diagnostic*> LintReport::byRule(std::string_view rule) const {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) out.push_back(&d);
  }
  return out;
}

void LintReport::merge(LintReport other) {
  diagnostics.insert(diagnostics.end(),
                     std::make_move_iterator(other.diagnostics.begin()),
                     std::make_move_iterator(other.diagnostics.end()));
  normalize();
}

void LintReport::normalize() {
  // Errors first, then warnings, then info; stable so discovery order (and
  // with it rule grouping) survives within a severity class.
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return static_cast<int>(a.severity) >
                            static_cast<int>(b.severity);
                   });
}

namespace {

std::string lintErrorMessage(const LintReport& report) {
  std::ostringstream os;
  os << "lint failed: " << report.errors() << " error(s), "
     << report.warnings() << " warning(s)";
  for (const Diagnostic& d : report.diagnostics) {
    if (d.severity == Severity::kError) {
      os << "; [" << d.rule << "] " << d.location << ": " << d.message;
      break;  // first error inline; the full report rides on the exception
    }
  }
  return os.str();
}

std::string joinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

std::string lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

// --- L1: connectivity ------------------------------------------------------

void lintConnectivity(const Netlist& net, LintReport& report) {
  auto& out = report.diagnostics;
  if (net.components().empty()) {
    out.push_back({"L1", Severity::kError, "netlist",
                   "netlist has no components; nothing can be diagnosed",
                   "add component cards before submitting"});
    return;
  }

  // Pin-touch count per node and union-find over component edges.
  std::vector<std::size_t> degree(net.nodeCount(), 0);
  std::vector<NodeId> parent(net.nodeCount());
  for (NodeId n = 0; n < net.nodeCount(); ++n) parent[n] = n;
  std::function<NodeId(NodeId)> find = [&](NodeId n) {
    while (parent[n] != n) {
      parent[n] = parent[parent[n]];
      n = parent[n];
    }
    return n;
  };

  for (const Component& c : net.components()) {
    bool allSame = true;
    for (NodeId pin : c.pins) {
      ++degree[pin];
      if (pin != c.pins[0]) allSame = false;
      parent[find(pin)] = find(c.pins[0]);
    }
    if (allSame) {
      out.push_back(
          {"L1", Severity::kWarning, "component " + c.name,
           std::string(circuit::kindName(c.kind)) +
               " has every terminal on node '" + net.nodeName(c.pins[0]) +
               "'; its behavioural constraint is vacuous",
           "connect the terminals to distinct nodes or remove the component"});
    }
  }

  for (NodeId n = 1; n < net.nodeCount(); ++n) {
    if (degree[n] == 0) {
      out.push_back({"L1", Severity::kWarning, "node " + net.nodeName(n),
                     "node is declared but no component terminal touches it",
                     "remove the node or wire a component to it"});
    } else if (degree[n] == 1) {
      out.push_back(
          {"L1", Severity::kWarning, "node " + net.nodeName(n),
           "dangling node: a single terminal touches it, so KCL there is "
           "uninformative and its voltage floats with the component",
           "connect a second terminal or declare the node a probe-only stub"});
    }
  }

  // Islands that cannot see the ground reference: every prediction there is
  // relative to an undefined potential, so the MNA solve is singular and the
  // model produces no usable nominal values.
  const NodeId groundRoot = find(circuit::kGround);
  std::map<NodeId, std::vector<std::string>> islandNodes;
  for (NodeId n = 1; n < net.nodeCount(); ++n) {
    if (degree[n] == 0) continue;  // already reported as unused
    const NodeId root = find(n);
    if (root != groundRoot) islandNodes[root].push_back(net.nodeName(n));
  }
  for (const auto& [root, nodes] : islandNodes) {
    out.push_back(
        {"L1", Severity::kError, "node " + nodes.front(),
         "floating subcircuit {" + joinNames(nodes) +
             "} has no path to ground (the MNA reference); node voltages "
             "there are undefined and every prediction is vacuous",
         "tie the subcircuit to ground or to a referenced net"});
  }
}

// --- L3: fuzzy-value sanity ------------------------------------------------

void lintFuzzyValues(const Netlist& net, LintReport& report) {
  auto& out = report.diagnostics;
  for (const Component& c : net.components()) {
    const std::string loc = "component " + c.name;
    if (c.relTol < 0.0) {
      out.push_back({"L3", Severity::kError, loc,
                     "negative tolerance " + std::to_string(c.relTol) +
                         " fuzzifies to a negative spread (m1 > m2)",
                     "use a tolerance >= 0"});
    }
    switch (c.kind) {
      case ComponentKind::kResistor:
      case ComponentKind::kCapacitor:
      case ComponentKind::kInductor:
        if (c.value <= 0.0) {
          out.push_back({"L3", Severity::kError, loc,
                         std::string(circuit::kindName(c.kind)) +
                             " value must be positive, got " +
                             std::to_string(c.value),
                         "fix the component value"});
        }
        break;
      case ComponentKind::kNpn:
        if (c.value <= 0.0) {
          out.push_back({"L3", Severity::kError, loc,
                         "beta must be positive, got " +
                             std::to_string(c.value),
                         "fix the transistor gain"});
        }
        if (c.vbeSpread < 0.0) {
          out.push_back({"L3", Severity::kError, loc,
                         "negative vbe spread " + std::to_string(c.vbeSpread),
                         "use vbespread >= 0"});
        }
        if (c.vbe <= 0.0) {
          out.push_back({"L3", Severity::kWarning, loc,
                         "non-positive Vbe " + std::to_string(c.vbe) +
                             " puts the junction model outside its validity",
                         "check the vbe= option"});
        }
        break;
      case ComponentKind::kGain:
        if (c.value == 0.0) {
          out.push_back({"L3", Severity::kWarning, loc,
                         "zero gain pins the output to 0 V regardless of the "
                         "input; downstream measurements carry no information",
                         "check the gain value"});
        }
        break;
      case ComponentKind::kDiode:
        if (c.value < 0.0) {
          out.push_back({"L3", Severity::kWarning, loc,
                         "negative forward drop " + std::to_string(c.value),
                         "check the Vf value"});
        }
        if (c.maxCurrent) {
          if (c.maxCurrent->area() == 0.0) {
            out.push_back(
                {"L3", Severity::kWarning, loc,
                 "current rating " + c.maxCurrent->str() +
                     " has zero area; any derived current conflicts at "
                     "degree 1, so the rating acts as a hard equality",
                 "give the rating a core width or spreads"});
          } else if (c.maxCurrent->support().hi <= 0.0) {
            out.push_back({"L3", Severity::kWarning, loc,
                           "current rating " + c.maxCurrent->str() +
                               " excludes every forward current; a "
                               "conducting diode always violates it",
                           "check the imax envelope"});
          }
        }
        break;
      case ComponentKind::kVSource:
        break;  // trusted equipment: crisp nominals are the normal case
    }
    // A crisp nominal on a toleranced component class: the prediction
    // envelope degenerates to a point, so the smallest real manufacturing
    // deviation reads as a full conflict instead of a partial one.
    if (c.relTol == 0.0 && c.kind != ComponentKind::kVSource &&
        c.kind != ComponentKind::kDiode && c.kind != ComponentKind::kGain) {
      out.push_back(
          {"L3", Severity::kWarning, "component " + c.name,
           "zero-area nominal: tolerance is 0, so the fuzzified value " +
               c.fuzzyValue().str() +
               " is crisp and any measured deviation conflicts at degree 1",
           "declare the component's real tolerance (e.g. tol=1%)"});
    }
  }
}

// --- L4: names and source ambiguities --------------------------------------

void lintNames(const Netlist& net, LintReport& report) {
  auto& out = report.diagnostics;
  // The Netlist container rejects exact duplicates at insertion, so the
  // remaining hazard is case-shadowing: "V1" and "v1" are distinct entities
  // to the library but one name to most humans and to classic SPICE.
  std::map<std::string, std::vector<std::string>> nodesByFold;
  for (NodeId n = 1; n < net.nodeCount(); ++n) {
    nodesByFold[lowered(net.nodeName(n))].push_back(net.nodeName(n));
  }
  for (const auto& [fold, names] : nodesByFold) {
    if (names.size() > 1) {
      out.push_back(
          {"L4", Severity::kWarning, "node " + names.front(),
           "node names {" + joinNames(names) +
               "} differ only by case; classic SPICE would merge them, this "
               "library keeps them as separate (possibly unintended) nets",
           "rename one of the nodes"});
    }
  }
  std::map<std::string, std::vector<std::string>> compsByFold;
  for (const Component& c : net.components()) {
    compsByFold[lowered(c.name)].push_back(c.name);
  }
  for (const auto& [fold, names] : compsByFold) {
    if (names.size() > 1) {
      out.push_back({"L4", Severity::kWarning, "component " + names.front(),
                     "component names {" + joinNames(names) +
                         "} differ only by case and shadow each other in "
                         "case-insensitive tooling",
                     "rename one of the components"});
    }
  }
}

// Tokenizer mirroring the parser's comment rules, for the source-level scan.
std::vector<std::string> sourceTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : line) {
    if (ch == '*' || ch == ';') break;
    if (std::isspace(static_cast<unsigned char>(ch))) {
      if (!current.empty()) tokens.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(ch);
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

// True for a token that is a number with a final uppercase-'M' suffix: this
// library reads it datasheet-style as mega while classic SPICE case-folds it
// to milli — a silent 1e9 disagreement when cards travel between tools.
bool hasAmbiguousMegaSuffix(const std::string& token) {
  if (token.size() < 2 || token.back() != 'M') return false;
  const std::string mantissa = token.substr(0, token.size() - 1);
  try {
    (void)circuit::parseEngineeringValue(mantissa);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return true;
}

}  // namespace

LintError::LintError(LintReport report)
    : std::runtime_error(lintErrorMessage(report)),
      report_(std::move(report)) {}

LintReport lintNetlist(const Netlist& net, const LintOptions& options) {
  LintReport report;
  if (options.connectivity) lintConnectivity(net, report);
  if (options.fuzzyValues) lintFuzzyValues(net, report);
  if (options.names) lintNames(net, report);
  report.normalize();
  return report;
}

LintReport lintSource(const std::string& cardText, const LintOptions& options) {
  LintReport report;
  if (!options.names) return report;

  std::istringstream is(cardText);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto tokens = sourceTokens(line);
    if (tokens.empty() || tokens[0][0] == '.') continue;
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      // Bare value fields and the value side of key=value options.
      std::string value = tokens[i];
      const auto eq = value.find('=');
      if (eq != std::string::npos) value = value.substr(eq + 1);
      if (hasAmbiguousMegaSuffix(value)) {
        report.diagnostics.push_back(
            {"L4", Severity::kWarning, "line " + std::to_string(lineNo),
             "unit suffix 'M' in '" + tokens[i] +
                 "' reads as mega (1e6) here but as milli (1e-3) in classic "
                 "SPICE; card: " + line,
             "write 'meg' for mega or 'm' for milli"});
      }
    }
  }

  try {
    (void)circuit::parseNetlistString(cardText);
  } catch (const circuit::ParseError& e) {
    Diagnostic d;
    d.rule = "L4";
    d.severity = Severity::kError;
    d.location = "line " + std::to_string(e.line());
    d.message = e.message();
    if (!e.card().empty()) d.message += "; card: " + e.card();
    d.fixHint = "fix the card so it parses";
    report.diagnostics.push_back(std::move(d));
  }
  report.normalize();
  return report;
}

std::string renderLintReport(const LintReport& report) {
  std::ostringstream os;
  for (const Diagnostic& d : report.diagnostics) {
    os << severityName(d.severity) << " [" << d.rule << "] " << d.location
       << ": " << d.message;
    if (!d.fixHint.empty()) os << "\n    fix: " << d.fixHint;
    os << '\n';
  }
  os << "lint: " << report.errors() << " error(s), " << report.warnings()
     << " warning(s), " << report.count(Severity::kInfo) << " note(s)\n";
  return os.str();
}

namespace {

void jsonEscape(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string lintReportJson(const LintReport& report) {
  std::ostringstream os;
  os << "{\"errors\":" << report.errors()
     << ",\"warnings\":" << report.warnings() << ",\"diagnostics\":[";
  bool first = true;
  for (const Diagnostic& d : report.diagnostics) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":";
    jsonEscape(os, d.rule);
    os << ",\"severity\":\"" << severityName(d.severity) << "\",\"location\":";
    jsonEscape(os, d.location);
    os << ",\"message\":";
    jsonEscape(os, d.message);
    os << ",\"fix_hint\":";
    jsonEscape(os, d.fixHint);
    os << '}';
  }
  os << "]}";
  return os.str();
}

void enforce(const LintReport& report, bool warningsAsErrors) {
  if (report.errors() > 0 || (warningsAsErrors && report.warnings() > 0)) {
    throw LintError(report);
  }
}

void recordObsCounters(const LintReport& report) {
  static obs::Counter& cErrors = obs::counter("lint_errors_total");
  static obs::Counter& cWarnings = obs::counter("lint_warnings_total");
  cErrors.add(report.errors());
  cWarnings.add(report.warnings());
}

}  // namespace flames::lint
