// flames::lint — model/KB/diagnosability rules (L2, L5, L6).
//
// These rules need more than the netlist: L2 walks the built constraint
// network's incidence index, L5 cross-checks knowledge-base and experience
// rules against the model and netlist they will run against, and L6 audits
// whether the declared measurement points can distinguish the component
// faults at all (identical sensitivity-sign columns = indistinguishable).
// They live apart from lint/lint.h so that flames_circuit-level consumers
// (the model builder's own gate) need not drag in the diagnosis layer.
//
// Cost note: L1-L5 are linear scans and safe to run on every compile; L6
// costs one bump simulation per component unless a prebuilt
// SensitivitySigns is supplied, which is why lintModel() skips L6 when
// `inputs.signs` is null — audit surfaces (CLI --lint) pass one explicitly.
#pragma once

#include "constraints/model_builder.h"
#include "diagnosis/deviation_analysis.h"
#include "diagnosis/knowledge_base.h"
#include "diagnosis/learning.h"
#include "lint/lint.h"

namespace flames::lint {

/// Everything the model-level pass may look at. `netlist` is required;
/// every other input is optional and its rules are skipped when null.
struct ModelLintInputs {
  const circuit::Netlist* netlist = nullptr;
  const constraints::BuiltModel* built = nullptr;        ///< L2, L5
  const diagnosis::KnowledgeBase* kb = nullptr;          ///< L5
  const diagnosis::ExperienceBase* experience = nullptr; ///< L5
  const diagnosis::SensitivitySigns* signs = nullptr;    ///< L6
};

/// L2: quantities that no constraint touches and no prediction seeds.
/// Such a quantity can never receive a predicted value, so measurements
/// there can never corroborate or conflict — the model is silently blind.
[[nodiscard]] LintReport lintBuiltModel(const constraints::BuiltModel& built,
                                        const LintOptions& options = {});

/// L5 (knowledge base): rules whose antecedents reference quantity ids
/// outside the model, or whose name/conclusion names a component absent
/// from the netlist. Such rules either crash rule evaluation or silently
/// never fire.
[[nodiscard]] LintReport lintKnowledgeBase(
    const diagnosis::KnowledgeBase& kb, const constraints::BuiltModel& built,
    const circuit::Netlist& net, const LintOptions& options = {});

/// L5 (experience base): learned rules whose symptom quantities or target
/// component do not exist in this model/netlist — they can never match and
/// usually indicate an experience file from a different unit type.
[[nodiscard]] LintReport lintExperience(
    const diagnosis::ExperienceBase& experience,
    const constraints::BuiltModel& built, const circuit::Netlist& net,
    const LintOptions& options = {});

/// L6: diagnosability audit. Components whose sensitivity-sign columns over
/// the measurement points (options.measurementPoints; empty = every named
/// non-ground node) are identical cannot be told apart by any measurement
/// there; the diagnostic reports the smallest extra probe that splits the
/// group, or downgrades to info when no node-voltage probe can.
[[nodiscard]] LintReport lintDiagnosability(
    const circuit::Netlist& net, const diagnosis::SensitivitySigns& signs,
    const LintOptions& options = {});

/// Runs the netlist rules (L1/L3/L4) plus every model-level rule whose
/// inputs are present, in one merged, severity-ordered report. Also checks
/// that every declared measurement point names a netlist node (L5).
[[nodiscard]] LintReport lintModel(const ModelLintInputs& inputs,
                                   const LintOptions& options = {});

}  // namespace flames::lint
