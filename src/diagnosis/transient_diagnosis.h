// Time-domain (step-response) diagnosis — the second half of "dynamic
// mode": where the AC engine reads transfer magnitudes, this one reads
// step-response *features* (10-90% rise time and settled level) at probe
// nodes. Reactive faults that barely move the DC operating point (a drifted
// capacitor) move the rise time directly.
//
// Same FLAMES pipeline: fuzzy nominal predictions per feature via tolerance
// sensitivity, Dc conflicts against measurements, λ-cut candidates, and
// fault-mode refinement by transient simulation matching.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/fault.h"
#include "circuit/netlist.h"
#include "circuit/transient.h"
#include "constraints/propagator.h"
#include "diagnosis/ac_diagnosis.h"
#include "diagnosis/flames.h"

namespace flames::diagnosis {

/// Which scalar feature of the step response a probe reads.
enum class StepFeature { kRiseTime, kFinalValue };

[[nodiscard]] std::string_view stepFeatureName(StepFeature f);

/// One time-domain probe.
struct StepProbe {
  std::string node;
  StepFeature feature = StepFeature::kRiseTime;
};

struct TransientDiagnosisOptions {
  circuit::TransientOptions transient;
  /// Step source level and duration of the acquisition window.
  double stepLevel = 1.0;
  double duration = 10.0;
  /// Relative spread attached to crisp measured features.
  double measurementRelSpread = 0.03;
  double sensitivityThreshold = 1e-9;
  double spreadScale = 1.0;
  /// Floor on nominal prediction spreads, relative to the nominal value —
  /// absorbs integration/truncation noise of the feature extraction.
  double minRelSpread = 0.01;
  double minNogoodDegree = 0.05;
  std::size_t maxFaultCardinality = 3;
  double simulationRelSpread = 0.05;
  bool refineWithFaultModes = true;
};

/// The time-domain engine (mirrors AcDiagnosisEngine).
class TransientDiagnosisEngine {
 public:
  /// Throws std::runtime_error if the nominal circuit cannot be simulated
  /// or a probe feature is undefined on the nominal response.
  TransientDiagnosisEngine(circuit::Netlist net, std::string stepSource,
                           std::vector<StepProbe> probes,
                           TransientDiagnosisOptions options = {});

  void measure(const StepProbe& probe, double value);
  void clearMeasurements();

  [[nodiscard]] AcDiagnosisReport diagnose();

  /// Quantity naming: "rise(V(<node>))" / "final(V(<node>))".
  [[nodiscard]] static std::string quantityName(const StepProbe& probe);

  /// Measures the configured probes on a (possibly faulted) copy of the
  /// netlist — the bench side; returns nullopt if the response never
  /// crosses the rise-time thresholds or the simulation fails.
  [[nodiscard]] std::optional<double> simulateFeature(
      const circuit::Netlist& board, const StepProbe& probe) const;

 private:
  void buildModel();

  circuit::Netlist net_;
  std::string stepSource_;
  std::vector<StepProbe> probes_;
  TransientDiagnosisOptions options_;
  constraints::Model model_;
  std::map<std::string, atms::AssumptionId> assumptionOf_;
  struct Obs {
    StepProbe probe;
    fuzzy::FuzzyInterval value;
  };
  std::vector<Obs> observations_;
};

}  // namespace flames::diagnosis
