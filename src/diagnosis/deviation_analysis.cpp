#include "diagnosis/deviation_analysis.h"

#include <algorithm>
#include <cmath>

#include "circuit/fault.h"
#include "circuit/mna.h"

namespace flames::diagnosis {

using circuit::Component;
using circuit::ComponentKind;
using circuit::DcSolver;
using circuit::Netlist;

std::string_view deviationDirectionName(DeviationDirection d) {
  return d == DeviationDirection::kHigh ? "high" : "low";
}

SensitivitySigns::SensitivitySigns(const Netlist& nominal,
                                   DeviationAnalysisOptions options) {
  circuit::OperatingPoint base;
  try {
    base = DcSolver(nominal).solve();
  } catch (const std::runtime_error&) {
    return;  // no signs available for unsolvable circuits
  }
  if (!base.converged) return;

  for (const Component& c : nominal.components()) {
    if (c.kind == ComponentKind::kVSource) continue;
    components_.push_back(c.name);

    Netlist bumped = nominal;
    bumped.component(c.name).value *= options.probeFactor;
    circuit::OperatingPoint op;
    try {
      op = DcSolver(bumped).solve();
    } catch (const std::runtime_error&) {
      continue;
    }
    if (!op.converged) continue;

    for (circuit::NodeId n = 1; n < nominal.nodeCount(); ++n) {
      const double delta = op.nodeVoltages[n] - base.nodeVoltages[n];
      int s = 0;
      if (delta > options.senseThreshold) s = 1;
      if (delta < -options.senseThreshold) s = -1;
      signs_[{nominal.nodeName(n), c.name}] = s;
    }
  }
}

int SensitivitySigns::sign(const std::string& node,
                           const std::string& component) const {
  const auto it = signs_.find({node, component});
  return it == signs_.end() ? 0 : it->second;
}

namespace {

// Extracts "<node>" from a "V(<node>)" quantity name; empty if not one.
std::string nodeOfQuantity(const std::string& quantity) {
  if (quantity.size() > 3 && quantity.rfind("V(", 0) == 0 &&
      quantity.back() == ')') {
    return quantity.substr(2, quantity.size() - 3);
  }
  return {};
}

}  // namespace

std::vector<DirectedHypothesis> explainBySigns(
    const SensitivitySigns& signs, const std::vector<Symptom>& signature,
    DeviationAnalysisOptions options) {
  // Deviating observables and their directions.
  struct Observed {
    std::string node;
    int direction;  // +1 above nominal, -1 below
  };
  std::vector<Observed> deviating;
  for (const Symptom& s : signature) {
    const std::string node = nodeOfQuantity(s.quantity);
    if (node.empty()) continue;
    if (std::abs(s.signedDc) >= options.deviationThreshold) continue;
    // Prefer the explicit direction; the signed Dc degenerates to +/-0 on
    // hard conflicts.
    const int dir =
        s.direction != 0 ? s.direction : (std::signbit(s.signedDc) ? -1 : 1);
    deviating.push_back({node, dir});
  }

  std::vector<DirectedHypothesis> out;
  for (const std::string& comp : signs.components()) {
    for (DeviationDirection dir :
         {DeviationDirection::kHigh, DeviationDirection::kLow}) {
      const int paramSign = dir == DeviationDirection::kHigh ? 1 : -1;
      std::size_t matched = 0;
      bool sensitiveSomewhere = false;
      for (const Observed& o : deviating) {
        const int s = signs.sign(o.node, comp);
        if (s == 0) continue;
        sensitiveSomewhere = true;
        if (s * paramSign == o.direction) ++matched;
      }
      DirectedHypothesis h;
      h.component = comp;
      h.direction = dir;
      h.symptomCount = deviating.size();
      h.agreement = (deviating.empty() || !sensitiveSomewhere)
                        ? 0.0
                        : static_cast<double>(matched) /
                              static_cast<double>(deviating.size());
      out.push_back(std::move(h));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DirectedHypothesis& a, const DirectedHypothesis& b) {
              if (a.agreement != b.agreement) return a.agreement > b.agreement;
              if (a.component != b.component) return a.component < b.component;
              return a.direction < b.direction;
            });
  return out;
}

}  // namespace flames::diagnosis
