// Guided diagnosis sessions (the control loop of the paper's Fig. 3).
//
// FLAMES is meant to be used interactively: enter the symptoms, look at the
// ranked candidates, ask the search-strategy unit for the best next test,
// probe it, repeat until one explanation dominates. DiagnosisSession
// codifies that loop against a probe oracle (on a real bench: the
// technician's meter; here: any callable, e.g. the fault simulator), with
// the stopping rule and the audit trail a tool needs.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "diagnosis/flames.h"

namespace flames::diagnosis {

/// Reads the voltage of a node on the actual unit under test.
using ProbeOracle = std::function<double(const std::string& node)>;

struct SessionOptions {
  /// Stop when the top candidate's plausibility is at least this and it
  /// leads the runner-up by `margin`.
  double plausibilityThreshold = 0.8;
  double margin = 0.05;
  /// Hard cap on guided probes (on top of the initial measurements).
  std::size_t maxProbes = 16;
  /// Route each guided probe through FlamesEngine::addMeasurement — the
  /// compiled-schedule incremental path that extends the existing entry
  /// lists, ATMS labels and nogoods inside the probe's impact cone instead
  /// of re-running diagnose() from scratch. Disable to reproduce the
  /// original batch behaviour probe for probe.
  bool incremental = true;
};

/// Why the session ended.
enum class SessionOutcome {
  kNoFault,     ///< initial measurements showed no discrepancy
  kIsolated,    ///< one candidate dominates
  kAmbiguous,   ///< probes exhausted with several candidates standing
  kProbesSpent, ///< maxProbes reached
};

[[nodiscard]] std::string_view sessionOutcomeName(SessionOutcome o);

/// One step of the audit trail.
struct SessionStep {
  std::string probedNode;   ///< empty for the initial diagnosis
  double measuredVolts = 0.0;
  std::size_t candidateCount = 0;
  double topPlausibility = 0.0;
  std::vector<std::string> topCandidate;
};

/// Result of a guided session.
struct SessionResult {
  SessionOutcome outcome = SessionOutcome::kAmbiguous;
  DiagnosisReport finalReport;
  std::vector<SessionStep> trail;
  std::size_t probesUsed = 0;
};

/// Runs the loop: diagnose, and while the stopping rule is unmet and probes
/// remain, ask recommendTests for the best unprobed node, read it through
/// the oracle, enter it, re-diagnose.
///
/// `engine` must already hold the initial measurements; `availableProbes`
/// are the nodes the technician may additionally touch.
[[nodiscard]] SessionResult runGuidedSession(
    FlamesEngine& engine, std::vector<TestPoint> availableProbes,
    const ProbeOracle& oracle, SessionOptions options = {});

}  // namespace flames::diagnosis
