#include "diagnosis/session.h"

#include <algorithm>
#include <string>

#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::diagnosis {

std::string_view sessionOutcomeName(SessionOutcome o) {
  switch (o) {
    case SessionOutcome::kNoFault: return "no-fault";
    case SessionOutcome::kIsolated: return "isolated";
    case SessionOutcome::kAmbiguous: return "ambiguous";
    case SessionOutcome::kProbesSpent: return "probes-spent";
  }
  return "unknown";
}

namespace {

// The stopping rule: one plausible candidate clearly ahead.
bool isolated(const DiagnosisReport& report, const SessionOptions& options) {
  if (report.candidates.empty()) return false;
  const double top = report.candidates.front().plausibility;
  if (top < options.plausibilityThreshold) return false;
  if (report.candidates.size() == 1) return true;
  return top - report.candidates[1].plausibility >= options.margin;
}

SessionStep snapshot(const DiagnosisReport& report, std::string probed,
                     double volts) {
  SessionStep step;
  step.probedNode = std::move(probed);
  step.measuredVolts = volts;
  step.candidateCount = report.candidates.size();
  if (!report.candidates.empty()) {
    step.topPlausibility = report.candidates.front().plausibility;
    step.topCandidate = report.candidates.front().components;
  }
  return step;
}

}  // namespace

SessionResult runGuidedSession(FlamesEngine& engine,
                               std::vector<TestPoint> availableProbes,
                               const ProbeOracle& oracle,
                               SessionOptions options) {
  obs::Span sessionSpan("guided_session", "session");
  static obs::Counter& cProbes = obs::counter("session.probes");
  SessionResult result;
  {
    obs::Span initialSpan("session.initial_diagnosis", "session");
    result.finalReport = engine.diagnose();
  }
  result.trail.push_back(snapshot(result.finalReport, {}, 0.0));

  if (!result.finalReport.faultDetected()) {
    result.outcome = SessionOutcome::kNoFault;
    return result;
  }

  while (!isolated(result.finalReport, options)) {
    if (availableProbes.empty()) {
      result.outcome = SessionOutcome::kAmbiguous;
      return result;
    }
    if (result.probesUsed >= options.maxProbes) {
      result.outcome = SessionOutcome::kProbesSpent;
      return result;
    }
    obs::Span iterationSpan(
        "session.iteration#" + std::to_string(result.probesUsed), "session");
    // Best next test per the search-strategy unit; fall back to the first
    // remaining probe if ranking produces nothing.
    const auto ranked =
        engine.recommendTests(availableProbes, result.finalReport);
    const std::string node =
        ranked.empty() ? availableProbes.front().node : ranked.front().node;
    availableProbes.erase(
        std::find_if(availableProbes.begin(), availableProbes.end(),
                     [&](const TestPoint& p) { return p.node == node; }));

    const double volts = oracle(node);
    ++result.probesUsed;
    cProbes.add();
    if (options.incremental) {
      result.finalReport = engine.addMeasurement(node, volts);
    } else {
      engine.measure(node, volts);
      result.finalReport = engine.diagnose();
    }
    result.trail.push_back(snapshot(result.finalReport, node, volts));
  }

  result.outcome = SessionOutcome::kIsolated;
  return result;
}

}  // namespace flames::diagnosis
