#include "diagnosis/knowledge_base.h"

#include <algorithm>

#include "constraints/model_builder.h"

namespace flames::diagnosis {

using constraints::Propagator;
using fuzzy::FuzzyInterval;

void KnowledgeBase::addRule(FuzzyRule rule) {
  rules_.push_back(std::move(rule));
}

double KnowledgeBase::activation(const FuzzyRule& rule,
                                 const Propagator& prop) const {
  double degree = rule.certainty;
  for (const FuzzyProposition& p : rule.antecedents) {
    const auto& entries = prop.values(p.quantity);
    // Possibilistic semantics: an antecedent holds to the degree it is
    // *necessary* under some supporting value. Wide derived estimates are
    // possibility-compatible with everything, but their necessity for any
    // specific set is ~0, so the max naturally selects the confident
    // evidence. Observation-rooted entries are preferred over nominal
    // predictions — rules describe the unit's *actual* state, and the
    // nominal would otherwise always re-assert the expected behaviour.
    double best = 0.0;
    bool sawObservation = false;
    for (const auto& e : entries) {
      if (!e.fromMeasurement) continue;
      sawObservation = true;
      best = std::max(best, fuzzy::necessity(e.value, p.set) * e.degree);
    }
    if (!sawObservation) {
      for (const auto& e : entries) {
        best = std::max(best, fuzzy::necessity(e.value, p.set) * e.degree);
      }
    }
    degree = fuzzy::tnorm(tnorm_, degree, best);
    if (degree == 0.0) break;
  }
  return degree;
}

std::vector<RuleActivation> KnowledgeBase::evaluate(
    const Propagator& prop) const {
  std::vector<RuleActivation> out;
  for (const FuzzyRule& r : rules_) {
    const double d = activation(r, prop);
    if (d > 0.0) out.push_back({r.name, r.conclusion, d});
  }
  std::sort(out.begin(), out.end(),
            [](const RuleActivation& a, const RuleActivation& b) {
              if (a.degree != b.degree) return a.degree > b.degree;
              return a.rule < b.rule;
            });
  return out;
}

FuzzyInterval KnowledgeBase::atLeast(double threshold, double width,
                                     double domainMax) {
  return FuzzyInterval::fromSupportCore(threshold - width, threshold,
                                        domainMax, domainMax);
}

FuzzyInterval KnowledgeBase::atMost(double threshold, double width,
                                    double domainMin) {
  return FuzzyInterval::fromSupportCore(domainMin, domainMin, threshold,
                                        threshold + width);
}

void addTransistorRegionRules(KnowledgeBase& kb, const circuit::Netlist& net,
                              const constraints::BuiltModel& built,
                              double certainty) {
  const constraints::Model& model = built.model;
  for (const circuit::Component& c : net.components()) {
    if (c.kind != circuit::ComponentKind::kNpn) continue;
    const std::string baseName = net.nodeName(c.pins[1]);
    const auto vb =
        model.findQuantity(constraints::voltageQuantityName(baseName));
    if (!vb) continue;

    // The paper states the rule on Vbe; our quantity space has node
    // voltages, so the rule is expressed on the base voltage with the
    // emitter's nominal operating-point voltage folded into the threshold.
    double emitterNominal = 0.0;
    if (c.pins[2] != circuit::kGround && built.nominalOp.converged &&
        c.pins[2] < built.nominalOp.nodeVoltages.size()) {
      emitterNominal = built.nominalOp.nodeVoltages[c.pins[2]];
    }
    const double threshold = 0.4 + emitterNominal;

    FuzzyRule conducting;
    conducting.name = "region(" + c.name + ")/on";
    conducting.conclusion = c.name + " conducting";
    conducting.certainty = certainty;
    conducting.antecedents.push_back(
        {*vb, KnowledgeBase::atLeast(threshold, 0.1)});
    kb.addRule(std::move(conducting));

    FuzzyRule cutoff;
    cutoff.name = "region(" + c.name + ")/off";
    cutoff.conclusion = c.name + " cut off";
    cutoff.certainty = certainty;
    cutoff.antecedents.push_back(
        {*vb, KnowledgeBase::atMost(threshold, 0.1)});
    kb.addRule(std::move(cutoff));
  }
}

void addDiodeRegionRules(KnowledgeBase& kb, const circuit::Netlist& net,
                         const constraints::BuiltModel& built,
                         double certainty) {
  const constraints::Model& model = built.model;
  for (const circuit::Component& c : net.components()) {
    if (c.kind != circuit::ComponentKind::kDiode) continue;
    const std::string anodeName = net.nodeName(c.pins[0]);
    const auto va =
        model.findQuantity(constraints::voltageQuantityName(anodeName));
    if (!va) continue;

    double cathodeNominal = 0.0;
    if (c.pins[1] != circuit::kGround && built.nominalOp.converged &&
        c.pins[1] < built.nominalOp.nodeVoltages.size()) {
      cathodeNominal = built.nominalOp.nodeVoltages[c.pins[1]];
    }
    // Conduction threshold a little below the full drop: a diode begins to
    // conduct appreciably around ~70% of Vf in this idealised model.
    const double threshold = cathodeNominal + 0.7 * c.value;
    const double width = std::max(0.25 * c.value, 1e-3);

    FuzzyRule conducting;
    conducting.name = "region(" + c.name + ")/on";
    conducting.conclusion = c.name + " conducting";
    conducting.certainty = certainty;
    conducting.antecedents.push_back(
        {*va, KnowledgeBase::atLeast(threshold, width)});
    kb.addRule(std::move(conducting));

    FuzzyRule blocking;
    blocking.name = "region(" + c.name + ")/off";
    blocking.conclusion = c.name + " blocking";
    blocking.certainty = certainty;
    blocking.antecedents.push_back(
        {*va, KnowledgeBase::atMost(threshold, width)});
    kb.addRule(std::move(blocking));
  }
}

}  // namespace flames::diagnosis
