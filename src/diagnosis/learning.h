// Learning from experience (paper §7).
//
// When a diagnosis session ends with a confirmed faulty component, FLAMES
// compiles the session into a *symptom-failure rule*: the signature of the
// observed discrepancies (which measured quantities deviated, how strongly —
// the signed Dc values) pointing at the confirmed component and fault mode,
// with a certainty degree. Repeated confirmations strengthen the rule;
// contradicting outcomes weaken it. In later sessions the experience base is
// consulted first: rules whose signature matches the current symptoms are
// surfaced to the expert as hints attached to the corresponding candidates.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace flames::diagnosis {

/// One symptom: a measured quantity and its signed degree of consistency
/// against the nominal prediction (-1..1; negative = below nominal).
/// `direction` carries the deviation side explicitly (-1 below, +1 above,
/// 0 none) because the signed Dc degenerates to +/-0 for hard conflicts,
/// where the sign of a floating-point zero is unreliable.
struct Symptom {
  std::string quantity;
  double signedDc = 1.0;
  int direction = 0;
};

/// A learned symptom -> failure rule.
struct SymptomRule {
  std::vector<Symptom> symptoms;  // sorted by quantity name
  std::string component;
  std::string mode;
  double certainty = 0.5;
  int confirmations = 1;
};

/// A matched hint for the current session.
struct ExperienceHint {
  std::string component;
  std::string mode;
  /// match quality in [0,1] x rule certainty.
  double score = 0.0;
  double certainty = 0.0;
};

struct LearningOptions {
  /// Signature similarity required before two signatures count as the same
  /// failure pattern.
  double mergeSimilarity = 0.85;
  /// Certainty reinforcement factor: c' = c + (1 - c) * reinforcement.
  double reinforcement = 0.3;
  /// Initial certainty of a freshly learned rule.
  double initialCertainty = 0.5;
  /// Route match()/recordSuccess() through the signature index: a hash
  /// probe on the sorted quantity-name set of the signature, scanning only
  /// rules over the *same* quantities. Exact — similarity() is 0 whenever
  /// the quantity sets differ, so the skipped rules could never have
  /// matched. The legacy O(rules) linear scan stays reachable with `false`
  /// for the A/B comparison in bench_kb.
  bool useSignatureIndex = true;
};

/// The experience base.
class ExperienceBase {
 public:
  explicit ExperienceBase(LearningOptions options = {});

  /// Records a confirmed diagnosis. If an existing rule for the same
  /// component/mode has a similar signature it is reinforced (and its
  /// signature averaged towards the new one); otherwise a new rule is
  /// stored.
  void recordSuccess(std::vector<Symptom> signature,
                     const std::string& component, const std::string& mode);

  /// Records that a rule's suggestion proved wrong: its certainty decays.
  void recordFailure(const std::string& component, const std::string& mode);

  /// Restores a rule verbatim (used by deserialisation; bypasses the
  /// merge-and-reinforce logic of recordSuccess).
  void restoreRule(SymptomRule rule);

  /// Similarity in [0,1] of two signatures: 0 if they disagree on which
  /// quantities deviate; otherwise 1 minus the mean signed-Dc distance / 2.
  [[nodiscard]] static double similarity(const std::vector<Symptom>& a,
                                         const std::vector<Symptom>& b);

  /// Rules matching the current symptoms, best first.
  [[nodiscard]] std::vector<ExperienceHint> match(
      const std::vector<Symptom>& current) const;

  /// Index key of a signature (must be sorted by quantity): the quantity
  /// names joined with an unprintable separator. Signatures over different
  /// quantity sets can never match (similarity() == 0), so bucketing rules
  /// by this key loses nothing.
  [[nodiscard]] static std::string quantityKey(
      const std::vector<Symptom>& sortedSignature);

  [[nodiscard]] const std::vector<SymptomRule>& rules() const {
    return rules_;
  }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  void clear() {
    rules_.clear();
    index_.clear();
  }

 private:
  void indexRule(std::size_t i);
  void rebuildIndex();

  LearningOptions options_;
  std::vector<SymptomRule> rules_;
  /// quantityKey -> indices into rules_ (insertion order preserved within a
  /// bucket, so the indexed paths visit candidates in the same order as the
  /// legacy scan). Maintained eagerly — never mutated from const methods,
  /// so concurrent match() calls under a shared lock stay race-free.
  std::unordered_map<std::string, std::vector<std::size_t>> index_;
};

}  // namespace flames::diagnosis
