// Dynamic-mode diagnosis: FLAMES over AC transfer-function measurements
// (paper §9 reports trials "either in dynamic mode or in static one").
//
// Each probe is a (node, frequency) pair whose measured quantity is the
// magnitude of the transfer function from the designated AC source. The
// diagnostic model consists of fuzzy nominal predictions obtained by
// sensitivity analysis (each component's tolerance is bumped and the AC
// response re-solved; the prediction's environment contains exactly the
// components the response is sensitive to). Conflicts come from the Dc of
// measured vs nominal magnitudes, candidates from the λ-cut hitting sets,
// and refinement from AC fault-mode simulation matching — the same FLAMES
// pipeline, driven by the dynamic substrate.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/ac.h"
#include "circuit/fault.h"
#include "circuit/netlist.h"
#include "constraints/propagator.h"
#include "diagnosis/fault_modes.h"
#include "diagnosis/flames.h"

namespace flames::diagnosis {

/// One dynamic-mode probe: transfer magnitude at a node and frequency.
struct AcProbe {
  std::string node;
  double hertz = 1.0;
};

/// One dynamic-mode observation.
struct AcObservation {
  AcProbe probe;
  fuzzy::FuzzyInterval magnitude;
};

struct AcDiagnosisOptions {
  circuit::AcOptions ac;
  /// Relative spread attached to crisp measured magnitudes.
  double measurementRelSpread = 0.02;
  /// Magnitude change below this does not count as sensitivity.
  double sensitivityThreshold = 1e-9;
  /// Scale on the summed sensitivity spread of nominal predictions.
  double spreadScale = 1.0;
  double minNogoodDegree = 0.05;
  std::size_t maxFaultCardinality = 3;
  /// Relative spread applied to simulated magnitudes in fault-mode matching.
  double simulationRelSpread = 0.05;
  bool refineWithFaultModes = true;
};

/// Dynamic-mode diagnosis result (same vocabulary as the DC report).
struct AcDiagnosisReport {
  std::vector<MeasurementSummary> measurements;
  std::vector<RankedNogood> nogoods;
  std::vector<RankedCandidate> candidates;
  std::map<std::string, double> suspicion;
  bool propagationCompleted = false;

  [[nodiscard]] bool faultDetected() const { return !nogoods.empty(); }
  [[nodiscard]] std::vector<std::string> bestCandidate() const {
    return candidates.empty() ? std::vector<std::string>{}
                              : candidates.front().components;
  }
};

/// The dynamic-mode engine.
class AcDiagnosisEngine {
 public:
  /// Builds the fuzzy AC model for the given probes. Throws
  /// std::runtime_error if the nominal circuit cannot be solved.
  AcDiagnosisEngine(circuit::Netlist net, std::string acSource,
                    std::vector<AcProbe> probes, AcDiagnosisOptions options = {});

  /// Enters a measured transfer magnitude for one of the configured probes
  /// (crisp value, fuzzified with the relative measurement spread).
  void measure(const std::string& node, double hertz, double magnitude);
  void measure(const AcProbe& probe, fuzzy::FuzzyInterval magnitude);
  void clearMeasurements();

  [[nodiscard]] AcDiagnosisReport diagnose();

  /// Quantity naming: "mag(V(<node>))@<hertz>Hz".
  [[nodiscard]] static std::string quantityName(const AcProbe& probe);

  [[nodiscard]] const constraints::Model& model() const { return model_; }
  [[nodiscard]] const circuit::Netlist& netlist() const { return net_; }

  /// Degree to which a fault hypothesis explains the AC observations.
  [[nodiscard]] double explanationDegreeAc(
      const circuit::Fault& fault,
      const std::vector<AcObservation>& observations) const;

 private:
  void buildModel();

  circuit::Netlist net_;
  std::string acSource_;
  std::vector<AcProbe> probes_;
  AcDiagnosisOptions options_;
  constraints::Model model_;
  std::map<std::string, atms::AssumptionId> assumptionOf_;
  std::vector<AcObservation> observations_;
};

}  // namespace flames::diagnosis
