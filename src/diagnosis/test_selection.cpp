#include "diagnosis/test_selection.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "circuit/mna.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::diagnosis {

using circuit::DcSolver;
using circuit::Fault;
using circuit::Netlist;
using fuzzy::FuzzyInterval;

TestSelector::TestSelector(const Netlist& nominal,
                           fuzzy::LinguisticScale scale,
                           TestSelectorOptions options)
    : nominal_(nominal), scale_(std::move(scale)), options_(options) {}

std::vector<ComponentEstimation> TestSelector::estimationsFromSuspicion(
    const std::map<std::string, double>& suspicion) const {
  std::vector<ComponentEstimation> out;
  for (const circuit::Component& c : nominal_.components()) {
    double s = 0.0;
    const auto it = suspicion.find(c.name);
    if (it != suspicion.end()) s = std::clamp(it->second, 0.0, 1.0);
    const fuzzy::LinguisticTerm& term = scale_.classify(s);
    out.push_back({c.name, term.meaning, term.name});
  }
  return out;
}

FuzzyInterval TestSelector::systemEntropy(
    const std::vector<ComponentEstimation>& estimations) const {
  static obs::Counter& cEntropy =
      obs::counter("test_selection.entropy_evaluations");
  cEntropy.add();
  std::vector<FuzzyInterval> fs;
  fs.reserve(estimations.size());
  for (const ComponentEstimation& e : estimations) fs.push_back(e.faultiness);
  return fuzzy::fuzzyEntropy(fs, options_.entropySemantics);
}

std::vector<TestRecommendation> TestSelector::rankTests(
    const std::vector<TestPoint>& probes,
    const std::vector<ComponentEstimation>& estimations,
    const std::map<std::string, Fault>& hypotheses) const {
  obs::Span span("test_selection.rank", "pipeline");
  static obs::Counter& cRanked = obs::counter("test_selection.probes_ranked");
  cRanked.add(probes.size());
  // Identify the suspects: components estimated away from "correct".
  const FuzzyInterval correct = scale_.terms().front().meaning;
  std::vector<std::size_t> suspects;
  for (std::size_t i = 0; i < estimations.size(); ++i) {
    if (estimations[i].faultiness.centroid() > correct.centroid() + 0.05) {
      suspects.push_back(i);
    }
  }

  std::vector<TestRecommendation> out;
  for (const TestPoint& probe : probes) {
    TestRecommendation rec;
    rec.node = probe.node;

    // Predicted probe value under each suspect's fault hypothesis.
    struct Outcome {
      double value = 0.0;
      std::vector<std::size_t> suspects;
    };
    std::vector<Outcome> clusters;
    std::vector<std::size_t> unsimulatable;
    for (std::size_t sIdx : suspects) {
      const std::string& comp = estimations[sIdx].component;
      const auto hIt = hypotheses.find(comp);
      std::optional<double> predicted;
      if (hIt != hypotheses.end()) {
        try {
          const Netlist faulted = circuit::applyFaults(nominal_, {hIt->second});
          const auto op = DcSolver(faulted).solve();
          if (op.converged) predicted = op.v(faulted.findNode(probe.node));
        } catch (const std::exception&) {
          predicted.reset();
        }
      }
      if (!predicted) {
        unsimulatable.push_back(sIdx);
        continue;
      }
      bool placed = false;
      for (Outcome& o : clusters) {
        if (std::abs(o.value - *predicted) <= options_.clusterTolerance) {
          o.suspects.push_back(sIdx);
          placed = true;
          break;
        }
      }
      if (!placed) clusters.push_back({*predicted, {sIdx}});
    }
    // Suspects whose hypothesis cannot be simulated stay suspicious under
    // every outcome: append them to every cluster (worst case — the probe
    // cannot discriminate them).
    for (Outcome& o : clusters) {
      for (std::size_t u : unsimulatable) o.suspects.push_back(u);
    }
    if (clusters.empty()) {
      // No discriminating information at all: expected entropy = current.
      rec.expectedEntropy = systemEntropy(estimations);
      rec.outcomeClusters = 0;
      rec.score = rec.expectedEntropy.centroid() * probe.cost;
      out.push_back(std::move(rec));
      continue;
    }

    // Outcome weights: faultiness mass of the cluster's suspects.
    double total = 0.0;
    std::vector<double> weights;
    for (const Outcome& o : clusters) {
      double w = 0.0;
      for (std::size_t sIdx : o.suspects) {
        w += estimations[sIdx].faultiness.centroid();
      }
      weights.push_back(w);
      total += w;
    }
    if (total <= 0.0) total = 1.0;

    // Expected entropy: under outcome K, suspects outside K become
    // "correct"; suspects inside keep their estimation.
    FuzzyInterval expected = FuzzyInterval::crisp(0.0);
    for (std::size_t k = 0; k < clusters.size(); ++k) {
      std::vector<ComponentEstimation> conditioned = estimations;
      for (std::size_t sIdx : suspects) {
        const bool inCluster =
            std::find(clusters[k].suspects.begin(), clusters[k].suspects.end(),
                      sIdx) != clusters[k].suspects.end();
        if (!inCluster) {
          conditioned[sIdx].faultiness = correct;
          conditioned[sIdx].term = scale_.terms().front().name;
        }
      }
      expected = expected.add(
          systemEntropy(conditioned).scaled(weights[k] / total));
    }
    rec.expectedEntropy = expected;
    rec.outcomeClusters = clusters.size();
    rec.score = expected.centroid() * probe.cost;
    out.push_back(std::move(rec));
  }

  std::sort(out.begin(), out.end(),
            [](const TestRecommendation& a, const TestRecommendation& b) {
              if (a.score != b.score) return a.score < b.score;
              return a.node < b.node;
            });
  return out;
}

}  // namespace flames::diagnosis
