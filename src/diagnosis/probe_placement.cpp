#include "diagnosis/probe_placement.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "circuit/mna.h"

namespace flames::diagnosis {

using circuit::DcSolver;
using circuit::Fault;
using circuit::Netlist;

ProbePlacement placeProbes(const Netlist& nominal,
                           const std::vector<Fault>& faults,
                           std::size_t budget,
                           std::vector<std::string> candidateNodes,
                           ProbePlacementOptions options) {
  ProbePlacement result;

  if (candidateNodes.empty()) {
    for (circuit::NodeId n = 1; n < nominal.nodeCount(); ++n) {
      candidateNodes.push_back(nominal.nodeName(n));
    }
  }

  const auto base = DcSolver(nominal).solve();
  if (!base.converged) {
    throw std::runtime_error("placeProbes: nominal circuit did not converge");
  }

  // Deviation matrix: dev[f][n] = v_fault(node) - v_nominal(node), NaN when
  // the faulted circuit cannot be solved.
  const double kNan = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> dev(
      faults.size(), std::vector<double>(candidateNodes.size(), kNan));
  for (std::size_t f = 0; f < faults.size(); ++f) {
    Netlist faulted = circuit::applyFaults(nominal, {faults[f]});
    circuit::OperatingPoint op;
    try {
      op = DcSolver(faulted).solve();
    } catch (const std::runtime_error&) {
      continue;
    }
    if (!op.converged) continue;
    for (std::size_t n = 0; n < candidateNodes.size(); ++n) {
      dev[f][n] = op.v(faulted.findNode(candidateNodes[n])) -
                  base.v(nominal.findNode(candidateNodes[n]));
    }
  }

  auto visible = [&](std::size_t f, std::size_t n) {
    return !std::isnan(dev[f][n]) &&
           std::abs(dev[f][n]) > options.visibilityThreshold;
  };
  auto separated = [&](std::size_t f, std::size_t g, std::size_t n) {
    if (std::isnan(dev[f][n]) || std::isnan(dev[g][n])) return false;
    return std::abs(dev[f][n] - dev[g][n]) > options.separationThreshold;
  };

  // Per-node diagnostics.
  for (std::size_t n = 0; n < candidateNodes.size(); ++n) {
    ProbeScore s;
    s.node = candidateNodes[n];
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (visible(f, n)) ++s.detects;
      for (std::size_t g = f + 1; g < faults.size(); ++g) {
        if (separated(f, g, n)) ++s.separates;
      }
    }
    result.scores.push_back(std::move(s));
  }

  // Undetectable faults (no candidate node sees them).
  for (std::size_t f = 0; f < faults.size(); ++f) {
    bool any = false;
    for (std::size_t n = 0; n < candidateNodes.size(); ++n) {
      if (visible(f, n)) any = true;
    }
    if (!any) result.undetectable.push_back(f);
  }

  // Greedy cover: objective = newly separated pairs + newly detected faults.
  std::set<std::pair<std::size_t, std::size_t>> pairsLeft;
  for (std::size_t f = 0; f < faults.size(); ++f) {
    for (std::size_t g = f + 1; g < faults.size(); ++g) {
      pairsLeft.insert({f, g});
    }
  }
  std::set<std::size_t> faultsLeft;
  for (std::size_t f = 0; f < faults.size(); ++f) faultsLeft.insert(f);
  std::vector<bool> used(candidateNodes.size(), false);

  while (result.probes.size() < budget) {
    std::size_t bestNode = candidateNodes.size();
    std::size_t bestGain = 0;
    for (std::size_t n = 0; n < candidateNodes.size(); ++n) {
      if (used[n]) continue;
      std::size_t gain = 0;
      for (const auto& pr : pairsLeft) {
        if (separated(pr.first, pr.second, n)) ++gain;
      }
      for (std::size_t f : faultsLeft) {
        if (visible(f, n)) ++gain;
      }
      if (gain > bestGain) {
        bestGain = gain;
        bestNode = n;
      }
    }
    if (bestNode == candidateNodes.size() || bestGain == 0) break;
    used[bestNode] = true;
    result.probes.push_back(candidateNodes[bestNode]);
    for (auto it = pairsLeft.begin(); it != pairsLeft.end();) {
      it = separated(it->first, it->second, bestNode) ? pairsLeft.erase(it)
                                                      : std::next(it);
    }
    for (auto it = faultsLeft.begin(); it != faultsLeft.end();) {
      it = visible(*it, bestNode) ? faultsLeft.erase(it) : std::next(it);
    }
  }

  result.ambiguous.assign(pairsLeft.begin(), pairsLeft.end());
  return result;
}

}  // namespace flames::diagnosis
