#include "diagnosis/fault_modes.h"

#include <cmath>

#include "fuzzy/consistency.h"

namespace flames::diagnosis {

using circuit::Component;
using circuit::ComponentKind;
using circuit::DcSolver;
using circuit::Fault;
using circuit::Netlist;
using fuzzy::FuzzyInterval;

std::vector<FaultMode> standardModesFor(const Component& c) {
  std::vector<FaultMode> modes;
  switch (c.kind) {
    case ComponentKind::kResistor:
      modes.push_back({"open", Fault::open(c.name)});
      modes.push_back({"short", Fault::shortCircuit(c.name)});
      modes.push_back({"high", Fault::paramScale(c.name, 2.0)});
      modes.push_back({"low", Fault::paramScale(c.name, 0.5)});
      break;
    case ComponentKind::kDiode:
      modes.push_back({"open", Fault::open(c.name)});
      modes.push_back({"short", Fault::shortCircuit(c.name)});
      break;
    case ComponentKind::kNpn:
      modes.push_back({"dead", Fault::open(c.name)});
      modes.push_back({"beta-low", Fault::paramScale(c.name, 0.5)});
      modes.push_back({"beta-high", Fault::paramScale(c.name, 2.0)});
      break;
    case ComponentKind::kGain:
      modes.push_back({"dead", Fault::paramScale(c.name, 1e-6)});
      modes.push_back({"gain-low", Fault::paramScale(c.name, 0.5)});
      modes.push_back({"gain-high", Fault::paramScale(c.name, 2.0)});
      break;
    case ComponentKind::kVSource:
      modes.push_back({"dead", Fault::paramExact(c.name, 0.0)});
      modes.push_back({"low", Fault::paramScale(c.name, 0.5)});
      break;
    case ComponentKind::kCapacitor:
    case ComponentKind::kInductor:
      modes.push_back({"open", Fault::open(c.name)});
      modes.push_back({"short", Fault::shortCircuit(c.name)});
      break;
  }
  return modes;
}

double explanationDegree(const Netlist& nominal, const Fault& fault,
                         const std::vector<Observation>& observations,
                         double simulationSpread) {
  if (observations.empty()) return 0.0;
  Netlist faulted = circuit::applyFaults(nominal, {fault});
  circuit::OperatingPoint op;
  try {
    op = DcSolver(faulted).solve();
  } catch (const std::runtime_error&) {
    return 0.0;
  }
  if (!op.converged) return 0.0;

  double degree = 1.0;
  for (const Observation& obs : observations) {
    double simulated = 0.0;
    try {
      simulated = op.v(faulted.findNode(obs.node));
    } catch (const std::out_of_range&) {
      return 0.0;
    }
    const FuzzyInterval simValue =
        FuzzyInterval::about(simulated, std::max(simulationSpread, 1e-9));
    const auto cons = fuzzy::degreeOfConsistency(obs.value, simValue);
    degree = std::min(degree, cons.dc);
    if (degree == 0.0) break;
  }
  return degree;
}

namespace {

// Continuous parameter estimation over a log-scale deviation factor.
//
// The Dc match degree is flat-zero away from the optimum, so the search
// minimises a smooth surrogate instead — the summed squared error between
// the simulated and measured observable centroids — with a coarse log-scan
// followed by golden-section refinement; the final match degree is then the
// Dc at the located optimum.
FaultModeMatch estimateParameter(const Netlist& nominal,
                                 const std::string& component,
                                 const std::vector<Observation>& observations,
                                 const FaultModeOptions& options) {
  FaultModeMatch best;
  best.component = component;
  best.mode = "estimated";

  constexpr double kUnsolvable = 1e18;
  auto error = [&](double logScale) {
    Netlist faulted = circuit::applyFaults(
        nominal, {Fault::paramScale(component, std::exp(logScale))});
    circuit::OperatingPoint op;
    try {
      op = DcSolver(faulted).solve();
    } catch (const std::runtime_error&) {
      return kUnsolvable;
    }
    if (!op.converged) return kUnsolvable;
    double sum = 0.0;
    for (const Observation& obs : observations) {
      try {
        const double sim = op.v(faulted.findNode(obs.node));
        const double d = sim - obs.value.centroid();
        sum += d * d;
      } catch (const std::out_of_range&) {
        return kUnsolvable;
      }
    }
    return sum;
  };

  const double lo = std::log(options.minScale);
  const double hi = std::log(options.maxScale);
  // Dense coarse scan to bracket the global basin.
  const int kScan = 128;
  double bestLog = 0.0;
  double bestErr = error(0.0);  // scale 1 (nominal) as baseline
  for (int i = 0; i <= kScan; ++i) {
    const double x = lo + (hi - lo) * i / kScan;
    const double e = error(x);
    if (e < bestErr) {
      bestErr = e;
      bestLog = x;
    }
  }
  // Golden-section refinement around the best scan point.
  const double step = (hi - lo) / kScan;
  double a = bestLog - step, b = bestLog + step;
  const double invPhi = 0.6180339887498949;
  double c = b - invPhi * (b - a);
  double d = a + invPhi * (b - a);
  double fc = error(c), fd = error(d);
  for (int i = 0; i < options.estimationIterations; ++i) {
    if (fc <= fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - invPhi * (b - a);
      fc = error(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + invPhi * (b - a);
      fd = error(d);
    }
  }
  double finalLog = fc <= fd ? c : d;
  if (std::min(fc, fd) > bestErr) finalLog = bestLog;

  best.matchDegree = explanationDegree(
      nominal, Fault::paramScale(component, std::exp(finalLog)), observations,
      options.simulationSpread);
  best.estimatedValue = nominal.component(component).value * std::exp(finalLog);
  return best;
}

}  // namespace

FaultModeMatch bestFaultMode(const Netlist& nominal,
                             const std::string& component,
                             const std::vector<Observation>& observations,
                             FaultModeOptions options) {
  FaultModeMatch best;
  best.component = component;
  best.mode = "none";
  best.matchDegree = 0.0;

  const Component& c = nominal.component(component);
  for (const FaultMode& mode : standardModesFor(c)) {
    const double d = explanationDegree(nominal, mode.fault, observations,
                                       options.simulationSpread);
    if (d > best.matchDegree) {
      best.matchDegree = d;
      best.mode = mode.name;
      best.estimatedValue.reset();
    }
  }

  // Continuous parameter estimation for parameterised components. A located
  // value that still lies inside the component's toleranced nominal is not a
  // fault explanation (every component of a healthy circuit "estimates" to
  // its nominal), so the estimated mode is discounted by the abnormality of
  // the estimate: 1 - membership in the fuzzy nominal.
  if (c.kind == ComponentKind::kResistor || c.kind == ComponentKind::kNpn ||
      c.kind == ComponentKind::kGain) {
    FaultModeMatch est =
        estimateParameter(nominal, component, observations, options);
    if (est.estimatedValue) {
      const double abnormality =
          1.0 - c.fuzzyValue().membership(*est.estimatedValue);
      est.matchDegree *= abnormality;
    }
    if (est.matchDegree > best.matchDegree) best = est;
  }
  return best;
}

}  // namespace flames::diagnosis
