// Design-for-test probe placement.
//
// The paper's motivating literature (its ref [1], Novak et al., enhancing
// design-for-test for analog filters) asks the dual question of test
// selection: not "which of the available probes should the technician touch
// next" but "which nodes are worth making accessible at design time". This
// module answers it with the same machinery: simulate every anticipated
// fault, build the node-by-fault deviation signature matrix, and greedily
// pick the probe set that maximises the number of fault pairs it can
// distinguish (plus detection of each fault at all).
#pragma once

#include <string>
#include <vector>

#include "circuit/fault.h"
#include "circuit/netlist.h"

namespace flames::diagnosis {

struct ProbePlacementOptions {
  /// |voltage deviation| below this does not count as visible (volt).
  double visibilityThreshold = 0.05;
  /// Two faults count as distinguished at a node when their deviations
  /// there differ by more than this (volt).
  double separationThreshold = 0.05;
};

/// One candidate probe node with its contribution.
struct ProbeScore {
  std::string node;
  /// Faults whose deviation is visible at this node.
  std::size_t detects = 0;
  /// Fault pairs separated by this node alone.
  std::size_t separates = 0;
};

/// Result of a placement run.
struct ProbePlacement {
  /// Chosen nodes, in greedy selection order.
  std::vector<std::string> probes;
  /// Faults (indices into the fault list) that no candidate node detects.
  std::vector<std::size_t> undetectable;
  /// Fault pairs left indistinguishable by the chosen set.
  std::vector<std::pair<std::size_t, std::size_t>> ambiguous;
  /// Per-node diagnostics for all candidate nodes.
  std::vector<ProbeScore> scores;
};

/// Greedily selects up to `budget` probe nodes from `candidateNodes` (all
/// non-ground nodes if empty) so that as many of `faults` as possible are
/// detected and pairwise distinguished. Faults whose circuits cannot be
/// simulated are reported undetectable.
[[nodiscard]] ProbePlacement placeProbes(
    const circuit::Netlist& nominal, const std::vector<circuit::Fault>& faults,
    std::size_t budget, std::vector<std::string> candidateNodes = {},
    ProbePlacementOptions options = {});

}  // namespace flames::diagnosis
