#include "diagnosis/transient_diagnosis.h"

#include <algorithm>
#include <cmath>

#include "atms/candidates.h"

namespace flames::diagnosis {

using atms::Environment;
using circuit::Component;
using circuit::ComponentKind;
using circuit::Netlist;
using circuit::TransientSolver;
using constraints::Propagator;
using constraints::PropagatorOptions;
using constraints::QuantityId;
using fuzzy::FuzzyInterval;

std::string_view stepFeatureName(StepFeature f) {
  return f == StepFeature::kRiseTime ? "rise" : "final";
}

std::string TransientDiagnosisEngine::quantityName(const StepProbe& probe) {
  return std::string(stepFeatureName(probe.feature)) + "(V(" + probe.node +
         "))";
}

TransientDiagnosisEngine::TransientDiagnosisEngine(
    Netlist net, std::string stepSource, std::vector<StepProbe> probes,
    TransientDiagnosisOptions options)
    : net_(std::move(net)),
      stepSource_(std::move(stepSource)),
      probes_(std::move(probes)),
      options_(options) {
  buildModel();
}

std::optional<double> TransientDiagnosisEngine::simulateFeature(
    const Netlist& board, const StepProbe& probe) const {
  try {
    TransientSolver solver(board, options_.transient);
    const double level = options_.stepLevel;
    solver.setWaveform(stepSource_,
                       [level](double t) { return t > 0.0 ? level : 0.0; });
    const auto result = solver.run(options_.duration);
    const auto& wave = result.waveform(board.findNode(probe.node));
    if (probe.feature == StepFeature::kFinalValue) return wave.back();
    const double tr = circuit::riseTime(result.time, wave);
    if (tr < 0.0) return std::nullopt;
    return tr;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void TransientDiagnosisEngine::buildModel() {
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kVSource) continue;
    assumptionOf_[c.name] = model_.addAssumption(c.name);
  }

  std::vector<double> nominal(probes_.size(), 0.0);
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    const auto v = simulateFeature(net_, probes_[p]);
    if (!v) {
      throw std::runtime_error(
          "TransientDiagnosisEngine: nominal feature undefined for " +
          quantityName(probes_[p]));
    }
    nominal[p] = *v;
    model_.addQuantity(quantityName(probes_[p]));
  }

  std::vector<double> spread(probes_.size(), 0.0);
  std::vector<Environment> envs(probes_.size());
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kVSource || c.relTol <= 0.0) continue;
    const Environment env = Environment::of({assumptionOf_.at(c.name)});
    for (double factor : {1.0 + c.relTol, 1.0 - c.relTol}) {
      Netlist bumped = net_;
      bumped.component(c.name).value *= factor;
      for (std::size_t p = 0; p < probes_.size(); ++p) {
        const auto v = simulateFeature(bumped, probes_[p]);
        const double delta =
            v ? std::abs(*v - nominal[p])
              : std::abs(nominal[p]) * c.relTol;  // broken bias: blame fully
        if (delta > options_.sensitivityThreshold) {
          spread[p] += delta * 0.5;
          envs[p] = envs[p].unionWith(env);
        }
      }
    }
  }

  for (std::size_t p = 0; p < probes_.size(); ++p) {
    const QuantityId q = model_.quantity(quantityName(probes_[p]));
    const double s =
        std::max({spread[p] * options_.spreadScale,
                  std::abs(nominal[p]) * options_.minRelSpread, 1e-12});
    model_.addPrediction(q, FuzzyInterval::about(nominal[p], s), envs[p]);
  }
}

void TransientDiagnosisEngine::measure(const StepProbe& probe, double value) {
  (void)model_.quantity(quantityName(probe));  // validate
  const double s =
      std::max(std::abs(value) * options_.measurementRelSpread, 1e-12);
  observations_.push_back({probe, FuzzyInterval::about(value, s)});
}

void TransientDiagnosisEngine::clearMeasurements() { observations_.clear(); }

AcDiagnosisReport TransientDiagnosisEngine::diagnose() {
  AcDiagnosisReport report;

  PropagatorOptions popts;
  popts.minNogoodDegree = options_.minNogoodDegree;
  Propagator prop(model_, popts);
  for (const Obs& obs : observations_) {
    prop.addMeasurement(model_.quantity(quantityName(obs.probe)), obs.value);
  }
  prop.run();
  report.propagationCompleted = prop.completed();

  for (const Obs& obs : observations_) {
    const QuantityId q = model_.quantity(quantityName(obs.probe));
    MeasurementSummary ms;
    ms.quantity = model_.quantityInfo(q).name;
    ms.measured = obs.value;
    if (const auto worst = prop.worstCoincidence(q)) {
      ms.nominal = worst->nominalSide;
      ms.dc = worst->consistency.dc;
      ms.signedDc = worst->consistency.signedDc();
    }
    report.measurements.push_back(std::move(ms));
  }

  const auto& db = prop.nogoods();
  for (const atms::Nogood& n : db.minimalNogoods(options_.minNogoodDegree)) {
    RankedNogood rn;
    rn.degree = n.degree;
    rn.note = n.note;
    for (atms::AssumptionId id : n.env.ids()) {
      rn.components.push_back(model_.assumptionName(id));
    }
    report.nogoods.push_back(std::move(rn));
  }
  for (const auto& [id, s] : atms::componentSuspicion(db)) {
    report.suspicion[model_.assumptionName(id)] = s;
  }

  const auto candidates = atms::candidatesAt(db, options_.minNogoodDegree,
                                             options_.maxFaultCardinality);
  for (const atms::Candidate& c : candidates) {
    RankedCandidate rc;
    rc.suspicion = c.suspicion;
    for (atms::AssumptionId id : c.members) {
      rc.components.push_back(model_.assumptionName(id));
    }
    if (options_.refineWithFaultModes && rc.components.size() == 1) {
      const std::string& comp = rc.components.front();
      auto matchDegreeOf = [&](const circuit::Fault& fault) {
        const Netlist faulted = circuit::applyFaults(net_, {fault});
        double degree = 1.0;
        for (const Obs& obs : observations_) {
          const auto sim = simulateFeature(faulted, obs.probe);
          if (!sim) return 0.0;
          const double s =
              std::max(std::abs(*sim) * options_.simulationRelSpread, 1e-9);
          degree = std::min(degree,
                            fuzzy::degreeOfConsistency(
                                obs.value, FuzzyInterval::about(*sim, s))
                                .dc);
          if (degree == 0.0) break;
        }
        return degree;
      };

      FaultModeMatch best;
      best.component = comp;
      best.mode = "none";
      for (const FaultMode& mode : standardModesFor(net_.component(comp))) {
        const double degree = matchDegreeOf(mode.fault);
        if (degree > best.matchDegree) {
          best.matchDegree = degree;
          best.mode = mode.name;
        }
      }
      // Continuous drift estimation. The Dc objective is flat-zero away
      // from the optimum, so the search minimises the summed squared
      // relative feature error (smooth), refines with golden section, and
      // only then scores the located value by Dc — discounted by how
      // abnormal it is relative to the tolerance (a nominal-valued
      // "estimate" is no fault explanation).
      const Component& comprec = net_.component(comp);
      if (comprec.kind != ComponentKind::kVSource) {
        auto error = [&](double logF) {
          const Netlist faulted = circuit::applyFaults(
              net_, {circuit::Fault::paramScale(comp, std::exp(logF))});
          double sum = 0.0;
          for (const Obs& obs : observations_) {
            const auto sim = simulateFeature(faulted, obs.probe);
            if (!sim) return 1e18;
            const double m = obs.value.centroid();
            const double denom = std::max(std::abs(m), 1e-9);
            const double d = (*sim - m) / denom;
            sum += d * d;
          }
          return sum;
        };
        const double lo = std::log(0.05), hi = std::log(20.0);
        double bestLog = 0.0, bestErr = error(0.0);
        for (int i = 0; i <= 18; ++i) {
          const double x = lo + (hi - lo) * i / 18.0;
          const double e = error(x);
          if (e < bestErr) {
            bestErr = e;
            bestLog = x;
          }
        }
        double a = bestLog - (hi - lo) / 18.0, b = bestLog + (hi - lo) / 18.0;
        const double invPhi = 0.6180339887498949;
        double c1 = b - invPhi * (b - a), d1 = a + invPhi * (b - a);
        double fc = error(c1), fd = error(d1);
        for (int i = 0; i < 24; ++i) {
          if (fc <= fd) {
            b = d1;
            d1 = c1;
            fd = fc;
            c1 = b - invPhi * (b - a);
            fc = error(c1);
          } else {
            a = c1;
            c1 = d1;
            fc = fd;
            d1 = a + invPhi * (b - a);
            fd = error(d1);
          }
        }
        const double finalLog = fc <= fd ? c1 : d1;
        const double f = std::exp(std::min(fc, fd) <= bestErr ? finalLog
                                                              : bestLog);
        const double raw = matchDegreeOf(circuit::Fault::paramScale(comp, f));
        const double abnormality =
            1.0 - comprec.fuzzyValue().membership(comprec.value * f);
        const double degree = raw * abnormality;
        if (degree > best.matchDegree) {
          best.matchDegree = degree;
          best.mode = "estimated";
          best.estimatedValue = comprec.value * f;
        }
      }
      rc.modeMatch = best;
      rc.plausibility = best.matchDegree;
    } else {
      rc.plausibility = 0.5 * rc.suspicion;
    }
    report.candidates.push_back(std::move(rc));
  }
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.plausibility != b.plausibility) {
                return a.plausibility > b.plausibility;
              }
              if (a.components.size() != b.components.size()) {
                return a.components.size() < b.components.size();
              }
              return a.components < b.components;
            });
  return report;
}

}  // namespace flames::diagnosis
