#include "diagnosis/report.h"

#include <iomanip>
#include <sstream>

namespace flames::diagnosis {

std::string renderComponents(const std::vector<std::string>& components) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i != 0) os << ',';
    os << components[i];
  }
  os << '}';
  return os.str();
}

std::string renderReport(const DiagnosisReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);

  os << "=== FLAMES diagnosis report ===\n";
  os << "propagation: " << (report.propagationCompleted ? "complete" : "BUDGET EXHAUSTED")
     << " (" << report.propagationSteps << " steps)\n";

  if (report.stats) {
    const PipelineStats& s = *report.stats;
    os << "-- pipeline stats (" << s.totalNanos / 1000 << " us total) --\n";
    for (const StageTiming& t : s.stages) {
      os << "  stage " << t.stage << ": " << t.nanos / 1000 << " us\n";
    }
    os << "  coincidences " << s.coincidences << ", nogoods "
       << s.nogoodsRecorded << ", candidates " << s.candidatesGenerated
       << ", fault-mode screens " << s.faultModeScreens << '\n';
  }

  os << "-- measurements (Dc vs nominal) --\n";
  for (const MeasurementSummary& m : report.measurements) {
    os << "  " << m.quantity << " = " << m.measured.str()
       << "  nominal " << m.nominal.str() << "  Dc = " << m.signedDc << '\n';
  }

  os << "-- nogoods (by degree) --\n";
  if (report.nogoods.empty()) os << "  (none: no discrepancy detected)\n";
  for (const RankedNogood& n : report.nogoods) {
    os << "  " << renderComponents(n.components) << "  degree " << n.degree;
    if (!n.note.empty()) os << "  [" << n.note << "]";
    os << '\n';
  }

  os << "-- candidates (ranked) --\n";
  if (report.candidates.empty()) os << "  (none)\n";
  for (const RankedCandidate& c : report.candidates) {
    os << "  " << renderComponents(c.components) << "  plausibility "
       << c.plausibility << "  suspicion " << c.suspicion;
    if (c.modeMatch) {
      os << "  mode=" << c.modeMatch->mode;
      if (c.modeMatch->estimatedValue) {
        os << " (value ~ " << *c.modeMatch->estimatedValue << ')';
      }
      os << " match " << c.modeMatch->matchDegree;
    }
    if (!c.hints.empty()) {
      os << "  hints:";
      for (const ExperienceHint& h : c.hints) {
        os << ' ' << h.mode << '(' << h.score << ')';
      }
    }
    os << '\n';
  }

  if (!report.directedHypotheses.empty()) {
    os << "-- deviation-sign explanations (Dc signs) --\n";
    std::size_t shown = 0;
    for (const DirectedHypothesis& h : report.directedHypotheses) {
      if (++shown > 6) break;
      os << "  " << h.component << ' ' << deviationDirectionName(h.direction)
         << "  agreement " << h.agreement << " (" << h.symptomCount
         << " symptoms)\n";
    }
  }

  if (!report.ruleActivations.empty()) {
    os << "-- rule activations --\n";
    for (const RuleActivation& r : report.ruleActivations) {
      os << "  " << r.conclusion << "  degree " << r.degree << "  [" << r.rule
         << "]\n";
    }
  }

  if (!report.hints.empty()) {
    os << "-- experience hints --\n";
    for (const ExperienceHint& h : report.hints) {
      os << "  " << h.component << " / " << h.mode << "  score " << h.score
         << '\n';
    }
  }
  return os.str();
}

std::string renderAcReport(const AcDiagnosisReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "=== FLAMES dynamic-mode report ===\n";
  os << "-- measurements (Dc vs nominal) --\n";
  for (const MeasurementSummary& m : report.measurements) {
    os << "  " << m.quantity << " = " << m.measured.str() << "  nominal "
       << m.nominal.str() << "  Dc = " << m.signedDc << '\n';
  }
  os << "-- nogoods (by degree) --\n";
  if (report.nogoods.empty()) os << "  (none: no discrepancy detected)\n";
  for (const RankedNogood& n : report.nogoods) {
    os << "  " << renderComponents(n.components) << "  degree " << n.degree
       << '\n';
  }
  os << "-- candidates (ranked) --\n";
  if (report.candidates.empty()) os << "  (none)\n";
  for (const RankedCandidate& c : report.candidates) {
    os << "  " << renderComponents(c.components) << "  plausibility "
       << c.plausibility;
    if (c.modeMatch) {
      os << "  mode=" << c.modeMatch->mode;
      if (c.modeMatch->estimatedValue) {
        os << " (value ~ " << *c.modeMatch->estimatedValue << ')';
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string summarizeReport(const DiagnosisReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (!report.faultDetected()) {
    os << "no fault detected";
    return os.str();
  }
  os << "fault detected; ";
  if (report.candidates.empty()) {
    os << "no candidate explains the conflicts";
    return os.str();
  }
  const RankedCandidate& best = report.candidates.front();
  os << "best candidate " << renderComponents(best.components);
  if (best.modeMatch) {
    os << " (" << best.modeMatch->mode << ", " << best.plausibility << ")";
  }
  return os.str();
}

}  // namespace flames::diagnosis
