#include "diagnosis/report.h"

#include <iomanip>
#include <sstream>

namespace flames::diagnosis {

std::string renderComponents(const std::vector<std::string>& components) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (i != 0) os << ',';
    os << components[i];
  }
  os << '}';
  return os.str();
}

std::string renderReport(const DiagnosisReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);

  os << "=== FLAMES diagnosis report ===\n";
  os << "propagation: " << (report.propagationCompleted ? "complete" : "BUDGET EXHAUSTED")
     << " (" << report.propagationSteps << " steps)\n";

  if (report.stats) {
    const PipelineStats& s = *report.stats;
    os << "-- pipeline stats (" << s.totalNanos / 1000 << " us total) --\n";
    for (const StageTiming& t : s.stages) {
      os << "  stage " << t.stage << ": " << t.nanos / 1000 << " us\n";
    }
    os << "  coincidences " << s.coincidences << ", nogoods "
       << s.nogoodsRecorded << ", candidates " << s.candidatesGenerated
       << ", fault-mode screens " << s.faultModeScreens << '\n';
  }

  os << "-- measurements (Dc vs nominal) --\n";
  for (const MeasurementSummary& m : report.measurements) {
    os << "  " << m.quantity << " = " << m.measured.str()
       << "  nominal " << m.nominal.str() << "  Dc = " << m.signedDc << '\n';
  }

  os << "-- nogoods (by degree) --\n";
  if (report.nogoods.empty()) os << "  (none: no discrepancy detected)\n";
  for (const RankedNogood& n : report.nogoods) {
    os << "  " << renderComponents(n.components) << "  degree " << n.degree;
    if (!n.note.empty()) os << "  [" << n.note << "]";
    os << '\n';
  }

  os << "-- candidates (ranked) --\n";
  if (report.candidates.empty()) os << "  (none)\n";
  for (const RankedCandidate& c : report.candidates) {
    os << "  " << renderComponents(c.components) << "  plausibility "
       << c.plausibility << "  suspicion " << c.suspicion;
    if (c.modeMatch) {
      os << "  mode=" << c.modeMatch->mode;
      if (c.modeMatch->estimatedValue) {
        os << " (value ~ " << *c.modeMatch->estimatedValue << ')';
      }
      os << " match " << c.modeMatch->matchDegree;
    }
    if (!c.hints.empty()) {
      os << "  hints:";
      for (const ExperienceHint& h : c.hints) {
        os << ' ' << h.mode << '(' << h.score << ')';
      }
    }
    os << '\n';
  }

  if (!report.directedHypotheses.empty()) {
    os << "-- deviation-sign explanations (Dc signs) --\n";
    std::size_t shown = 0;
    for (const DirectedHypothesis& h : report.directedHypotheses) {
      if (++shown > 6) break;
      os << "  " << h.component << ' ' << deviationDirectionName(h.direction)
         << "  agreement " << h.agreement << " (" << h.symptomCount
         << " symptoms)\n";
    }
  }

  if (!report.ruleActivations.empty()) {
    os << "-- rule activations --\n";
    for (const RuleActivation& r : report.ruleActivations) {
      os << "  " << r.conclusion << "  degree " << r.degree << "  [" << r.rule
         << "]\n";
    }
  }

  if (!report.hints.empty()) {
    os << "-- experience hints --\n";
    for (const ExperienceHint& h : report.hints) {
      os << "  " << h.component << " / " << h.mode << "  score " << h.score
         << '\n';
    }
  }
  return os.str();
}

std::string renderAcReport(const AcDiagnosisReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(4);
  os << "=== FLAMES dynamic-mode report ===\n";
  os << "-- measurements (Dc vs nominal) --\n";
  for (const MeasurementSummary& m : report.measurements) {
    os << "  " << m.quantity << " = " << m.measured.str() << "  nominal "
       << m.nominal.str() << "  Dc = " << m.signedDc << '\n';
  }
  os << "-- nogoods (by degree) --\n";
  if (report.nogoods.empty()) os << "  (none: no discrepancy detected)\n";
  for (const RankedNogood& n : report.nogoods) {
    os << "  " << renderComponents(n.components) << "  degree " << n.degree
       << '\n';
  }
  os << "-- candidates (ranked) --\n";
  if (report.candidates.empty()) os << "  (none)\n";
  for (const RankedCandidate& c : report.candidates) {
    os << "  " << renderComponents(c.components) << "  plausibility "
       << c.plausibility;
    if (c.modeMatch) {
      os << "  mode=" << c.modeMatch->mode;
      if (c.modeMatch->estimatedValue) {
        os << " (value ~ " << *c.modeMatch->estimatedValue << ')';
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string summarizeReport(const DiagnosisReport& report) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (!report.faultDetected()) {
    os << "no fault detected";
    return os.str();
  }
  os << "fault detected; ";
  if (report.candidates.empty()) {
    os << "no candidate explains the conflicts";
    return os.str();
  }
  const RankedCandidate& best = report.candidates.front();
  os << "best candidate " << renderComponents(best.components);
  if (best.modeMatch) {
    os << " (" << best.modeMatch->mode << ", " << best.plausibility << ")";
  }
  return os.str();
}

namespace {

// Minimal JSON writer for the golden files: values the tests compare are
// strings, bools, integers and 6-decimal numbers, so no general-purpose
// serializer is needed. Rounding happens in the *text*, which is what gets
// diffed, so equal-to-1e-6 reports produce byte-identical goldens.

void jsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void jsonNumber(std::ostream& os, double x) {
  // -0.0 and 0.0 must render identically.
  if (x == 0.0) x = 0.0;
  std::ostringstream tmp;
  tmp << std::fixed << std::setprecision(6) << x;
  os << tmp.str();
}

void jsonStringArray(std::ostream& os, const std::vector<std::string>& xs) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) os << ',';
    jsonString(os, xs[i]);
  }
  os << ']';
}

void jsonInterval(std::ostream& os, const fuzzy::FuzzyInterval& v) {
  os << "{\"m1\":";
  jsonNumber(os, v.m1());
  os << ",\"m2\":";
  jsonNumber(os, v.m2());
  os << ",\"alpha\":";
  jsonNumber(os, v.alpha());
  os << ",\"beta\":";
  jsonNumber(os, v.beta());
  os << '}';
}

}  // namespace

std::string reportJson(const DiagnosisReport& report) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"propagationCompleted\": "
     << (report.propagationCompleted ? "true" : "false") << ",\n";
  os << "  \"faultDetected\": " << (report.faultDetected() ? "true" : "false")
     << ",\n";

  os << "  \"measurements\": [";
  for (std::size_t i = 0; i < report.measurements.size(); ++i) {
    const MeasurementSummary& m = report.measurements[i];
    os << (i ? ",\n    " : "\n    ") << "{\"quantity\":";
    jsonString(os, m.quantity);
    os << ",\"measured\":";
    jsonInterval(os, m.measured);
    os << ",\"nominal\":";
    jsonInterval(os, m.nominal);
    os << ",\"dc\":";
    jsonNumber(os, m.dc);
    os << ",\"signedDc\":";
    jsonNumber(os, m.signedDc);
    os << ",\"direction\":" << m.direction << '}';
  }
  os << (report.measurements.empty() ? "]" : "\n  ]") << ",\n";

  os << "  \"nogoods\": [";
  for (std::size_t i = 0; i < report.nogoods.size(); ++i) {
    const RankedNogood& n = report.nogoods[i];
    os << (i ? ",\n    " : "\n    ") << "{\"components\":";
    jsonStringArray(os, n.components);
    os << ",\"degree\":";
    jsonNumber(os, n.degree);
    os << '}';
  }
  os << (report.nogoods.empty() ? "]" : "\n  ]") << ",\n";

  os << "  \"candidates\": [";
  for (std::size_t i = 0; i < report.candidates.size(); ++i) {
    const RankedCandidate& c = report.candidates[i];
    os << (i ? ",\n    " : "\n    ") << "{\"components\":";
    jsonStringArray(os, c.components);
    os << ",\"suspicion\":";
    jsonNumber(os, c.suspicion);
    os << ",\"plausibility\":";
    jsonNumber(os, c.plausibility);
    if (c.modeMatch) {
      os << ",\"mode\":";
      jsonString(os, c.modeMatch->mode);
      os << ",\"matchDegree\":";
      jsonNumber(os, c.modeMatch->matchDegree);
      if (c.modeMatch->estimatedValue) {
        os << ",\"estimatedValue\":";
        jsonNumber(os, *c.modeMatch->estimatedValue);
      }
    }
    os << '}';
  }
  os << (report.candidates.empty() ? "]" : "\n  ]") << ",\n";

  os << "  \"suspicion\": {";
  std::size_t i = 0;
  for (const auto& [comp, s] : report.suspicion) {
    os << (i++ ? ",\n    " : "\n    ");
    jsonString(os, comp);
    os << ": ";
    jsonNumber(os, s);
  }
  os << (report.suspicion.empty() ? "}" : "\n  }") << ",\n";

  os << "  \"directedHypotheses\": [";
  for (std::size_t h = 0; h < report.directedHypotheses.size(); ++h) {
    const DirectedHypothesis& d = report.directedHypotheses[h];
    os << (h ? ",\n    " : "\n    ") << "{\"component\":";
    jsonString(os, d.component);
    os << ",\"direction\":";
    jsonString(os, std::string(deviationDirectionName(d.direction)));
    os << ",\"agreement\":";
    jsonNumber(os, d.agreement);
    os << ",\"symptomCount\":" << d.symptomCount << '}';
  }
  os << (report.directedHypotheses.empty() ? "]" : "\n  ]") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace flames::diagnosis
