// FLAMES engine façade (paper §5, Fig. 3).
//
// One diagnosis session over a unit under test:
//
//   netlist -> diagnostic model (constraints + assumptions + fuzzy nominal
//   predictions) -> enter measurements -> fuzzy propagation -> ranked
//   nogoods & Dc table -> candidate generation (λ-cut hitting sets) ->
//   fault-mode refinement (§7) -> knowledge-base rule activations (§6.2) ->
//   experience hints (§7) -> best-test recommendation (§8).
//
// The engine owns the knowledge base and the experience base so they persist
// across sessions on the same unit type (that is what "learning from
// experience" means in the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analyze/schedule.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "constraints/provenance.h"
#include "diagnosis/deviation_analysis.h"
#include "diagnosis/fault_modes.h"
#include "diagnosis/knowledge_base.h"
#include "diagnosis/learning.h"
#include "diagnosis/test_selection.h"
#include "lint/lint.h"

namespace flames::diagnosis {

struct FlamesOptions {
  constraints::ModelBuildOptions model;
  /// Rule toggles for the static-analysis pass. `model.lintBeforeBuild`
  /// controls *whether* the build gate runs; this controls *which* rules
  /// any lint surface (build gate, compile cache, service submit) applies.
  lint::LintOptions lint;
  constraints::PropagatorOptions propagation;
  FaultModeOptions faultModes;
  TestSelectorOptions testSelection;
  LearningOptions learning;
  /// Absolute spread attached to crisp measured voltages (the measuring
  /// equipment's imprecision — §4.2 distinguishes it from component
  /// tolerances).
  double measurementSpread = 0.05;
  std::size_t maxFaultCardinality = 3;
  /// Run the §7 fault-mode refinement on single-component candidates.
  bool refineWithFaultModes = true;
  /// Install the §6.2 transistor operating-region rules automatically.
  bool installRegionRules = true;
  /// Run the Dc-sign deviation analysis (Fig. 7 commentary) when a fault
  /// is detected.
  bool analyzeDeviationSigns = true;
  DeviationAnalysisOptions deviationAnalysis;
  /// Expert a-priori faultiness estimations, component name -> linguistic
  /// term of the default faultiness scale ("correct" ... "faulty"). Used to
  /// break ties between equally plausible candidates and to seed the
  /// test-selection estimations (paper §5, §6.3: "he can use the a priori
  /// estimations of faults to decide").
  std::map<std::string, std::string> expertPriors;
  /// Consult the experience base *before* propagation: the pre-propagation
  /// signature (each measurement's signed Dc against the model's nominal
  /// prediction, no constraint network involved) is matched against the
  /// learned rules, and when the best hint scores at least
  /// `hintGuidedThreshold` the propagation entry cap is clamped down to
  /// `hintGuidedEntryCap` (never raised). A warmed KB thus turns the
  /// exhaustive derivation sweep into a confirmation pass — measurably
  /// fewer propagation steps on repeat sessions (bench_kb) — while a cold
  /// or unconvinced KB leaves the run untouched. The cap floor mirrors the
  /// static analysis floor (DESIGN.md §9): the dropped entries re-derive
  /// the same quantities along longer paths. Off by default.
  bool hintGuidedPropagation = false;
  /// Minimum hint score (signature similarity x rule certainty) before the
  /// guidance engages. 0.45 = a once-confirmed rule (certainty 0.5) with a
  /// near-exact signature match qualifies; weak or dissimilar rules do not.
  double hintGuidedThreshold = 0.45;
  /// The clamped entry cap used when guidance engages.
  std::size_t hintGuidedEntryCap = 6;
  /// Record the full derivation provenance of the run into
  /// DiagnosisReport::provenance: every kept value entry (which constraint
  /// fired, which parents it consumed), every recorded nogood with its Dc,
  /// and the λ-cut hitting-set candidates. Consumed by flames::prov
  /// (explanations, certificates, the independent checker). Off by default;
  /// recording costs a few percent of propagation time plus the log memory.
  bool recordProvenance = false;
};

/// A conflict set rendered with component names.
struct RankedNogood {
  std::vector<std::string> components;
  double degree = 1.0;
  std::string note;
};

/// A candidate diagnosis with its refinement results.
struct RankedCandidate {
  std::vector<std::string> components;
  double suspicion = 0.0;     ///< min over members of member suspicion
  double plausibility = 0.0;  ///< after fault-mode refinement
  double prior = 0.5;         ///< expert a-priori faultiness (tie-breaker)
  std::optional<FaultModeMatch> modeMatch;  ///< singletons only
  std::vector<ExperienceHint> hints;        ///< matching learned rules
};

/// Crisp hull of every value entry a quantity held after propagation.
/// This is the runtime counterpart of the static envelope flames::analyze
/// computes: soundness (oracle invariant I8) says hull ⊆ envelope. Only
/// quantities that held at least one entry appear.
struct QuantityValueHull {
  std::string quantity;
  double lo = 0.0;
  double hi = 0.0;
  std::size_t entries = 0;  ///< entries retained after propagation
};

/// Per-measurement consistency summary (the Fig. 7 Dc row).
struct MeasurementSummary {
  std::string quantity;
  fuzzy::FuzzyInterval measured;
  fuzzy::FuzzyInterval nominal;
  double dc = 1.0;        ///< magnitude in [0, 1]
  double signedDc = 1.0;  ///< negative when measured below nominal
  int direction = 0;      ///< -1 below nominal, +1 above, 0 none
};

/// Wall-clock duration of one pipeline stage of diagnose().
struct StageTiming {
  std::string stage;
  std::uint64_t nanos = 0;
};

/// Work accounting for one diagnose() call. Captured only while the obs
/// layer (src/obs/) is enabled; the header stays obs-free so that consumers
/// of the report need not know the instrumentation exists.
struct PipelineStats {
  /// Fig. 3 stages in execution order (propagation, conflict_recording,
  /// candidate_generation, refinement, ...).
  std::vector<StageTiming> stages;
  std::uint64_t totalNanos = 0;
  std::size_t propagationSteps = 0;
  std::size_t coincidences = 0;      ///< resolved value coincidences
  std::size_t nogoodsRecorded = 0;   ///< Dc-table conflicts kept after subsumption
  std::size_t dcTableRows = 0;       ///< per-measurement summaries produced
  std::size_t candidatesGenerated = 0;
  std::size_t faultModeScreens = 0;  ///< fault-mode simulations run
};

/// The raw material flames::prov consumers (explanation renderer,
/// certificate builder, flames_check) need to reconstruct *why* the report
/// says what it says. Shared out of the report so report copies stay cheap.
struct DiagnosisProvenance {
  constraints::ProvenanceLog log;
  /// The λ-cut hitting-set candidates exactly as generated (assumption
  /// names, member-sorted as emitted), captured *before* fault-mode rescue
  /// appends screened candidates that are not hitting sets.
  std::vector<std::vector<std::string>> hittingSets;
  double lambda = 0.0;             ///< the λ-cut used (minNogoodDegree)
  std::size_t maxCardinality = 0;  ///< candidate cardinality bound
  constraints::ConflictPolicy policy = constraints::ConflictPolicy::kFuzzy;
  bool crispifyValues = false;
};

/// Everything a session produces.
struct DiagnosisReport {
  bool propagationCompleted = false;
  std::size_t propagationSteps = 0;
  /// True when FlamesOptions::hintGuidedPropagation found a confident
  /// experience hint and ran with the clamped entry cap.
  bool hintGuided = false;
  std::vector<MeasurementSummary> measurements;
  /// Post-propagation value hulls, one per quantity that held a value
  /// (sorted by quantity id). Checked against the static envelopes by the
  /// scenario oracle; deliberately absent from reportJson() so the golden
  /// corpus does not churn.
  std::vector<QuantityValueHull> valueHulls;
  std::vector<RankedNogood> nogoods;       ///< sorted by degree desc
  std::vector<RankedCandidate> candidates; ///< best explanation first
  std::map<std::string, double> suspicion; ///< per-component
  std::vector<RuleActivation> ruleActivations;
  std::vector<Symptom> signature;          ///< for the learning unit
  std::vector<ExperienceHint> hints;       ///< session-level hints
  /// Directed qualitative explanations from the Dc signs (the Fig. 7
  /// "R2 is very low or R3 is very high" reasoning), best first.
  std::vector<DirectedHypothesis> directedHypotheses;

  /// Per-stage timings and work counters; present iff flames::obs was
  /// enabled during diagnose().
  std::optional<PipelineStats> stats;

  /// Derivation provenance; present iff FlamesOptions::recordProvenance.
  /// Deliberately absent from reportJson() (the golden corpus must not
  /// churn); rendered on demand by flames::prov.
  std::shared_ptr<const DiagnosisProvenance> provenance;

  /// True if some discrepancy was detected at all.
  [[nodiscard]] bool faultDetected() const { return !nogoods.empty(); }

  /// The components of the top-ranked candidate (empty if none).
  [[nodiscard]] std::vector<std::string> bestCandidate() const {
    return candidates.empty() ? std::vector<std::string>{}
                              : candidates.front().components;
  }
};

/// Everything one diagnosis run needs, by reference. The pointed-to state is
/// only *read* during diagnoseWith(), so any number of calls may run
/// concurrently against the same context — this is the re-entrant core the
/// batch service fans out over (FlamesEngine::diagnose() is the
/// single-session wrapper). Shared mutable state (an experience base that
/// other threads may be writing) is reached only through the hook functions,
/// which the owner synchronises.
struct DiagnosisContext {
  const circuit::Netlist* net = nullptr;
  const constraints::BuiltModel* built = nullptr;
  /// Rules to evaluate against the propagation result; null = skip.
  const KnowledgeBase* kb = nullptr;
  const FlamesOptions* options = nullptr;
  /// Maps the session signature to experience hints; null = no hints.
  /// Owners sharing an experience base across threads lock inside the hook.
  std::function<std::vector<ExperienceHint>(const std::vector<Symptom>&)>
      hintSource;
  /// Supplies the sensitivity-sign matrix for deviation analysis; null =
  /// build a throwaway matrix on demand (one bump simulation per component,
  /// so callers that diagnose the same netlist repeatedly should cache it).
  std::function<const SensitivitySigns&()> signsProvider;
};

/// Runs the full Fig. 3 pipeline over the observations. Throws
/// constraints::CancelledError if options->propagation.cancelCheck reports
/// cancellation (checked every propagation step and between stages).
[[nodiscard]] DiagnosisReport diagnoseWith(
    const DiagnosisContext& ctx, const std::vector<Observation>& observations);

/// An interactive probe session: one persistent scheduled propagator that
/// measurements extend *incrementally*. begin() seeds and propagates the
/// initial observations from scratch; each addMeasurement() then enters one
/// more observation and re-propagates only inside its impact cone — the
/// compiled schedule's watch/watermark discipline skips every input
/// combination earlier probes already consumed. Both calls produce the same
/// full DiagnosisReport diagnoseWith() would (ranked nogoods, candidates,
/// rules, hints...), rebuilt from the accumulated propagation state.
///
/// Exactness guard: the delta extension is provably order-independent only
/// while no derivation is ever discarded at the entry cap (confluence — see
/// DESIGN.md §12). The session watches Propagator::saturatedDiscards();
/// the moment any run hits the cap it transparently re-diagnoses from
/// scratch through the batch pipeline (and stays in batch mode — the same
/// cap pressure would recur on every later probe), so addMeasurement()
/// always returns exactly what measure() + diagnose() would. Callers can
/// tell which path produced the last report via lastIncremental().
///
/// Two FlamesOptions knobs are deliberately ignored on this path:
/// hintGuidedPropagation (the cap clamp would change the propagation state
/// mid-session, invalidating the incremental premise) and recordProvenance
/// (the provenance log spans the whole session, not one report; use the
/// batch path when certificates are needed).
///
/// The context's pointed-to state and the schedule must outlive the session.
class IncrementalSession {
 public:
  IncrementalSession(const DiagnosisContext& ctx,
                     const constraints::PropagationSchedule& schedule);

  /// From-scratch propagation over the initial observations.
  [[nodiscard]] DiagnosisReport begin(
      const std::vector<Observation>& observations);
  /// Extends the session with one more observation (incremental).
  [[nodiscard]] DiagnosisReport addMeasurement(const Observation& obs);

  /// Kept entries added by the last begin()/addMeasurement() call — the
  /// quantity the oracle checks against the cone's certified step bound.
  [[nodiscard]] std::size_t lastStepsDelta() const { return lastStepsDelta_; }
  /// Quantities whose entry lists changed during the last call (checked
  /// against the static impact cone — oracle invariant I12).
  [[nodiscard]] const std::vector<constraints::QuantityId>& lastTouched()
      const {
    return lastTouched_;
  }
  /// True when the last report came from a delta extension that stayed
  /// exact (no entry-cap saturation); false for begin(), and for any call
  /// the exactness guard re-ran through the batch pipeline. The cone checks
  /// (I12) only apply to incremental extensions.
  [[nodiscard]] bool lastIncremental() const { return lastIncremental_; }
  [[nodiscard]] const std::vector<Observation>& observations() const {
    return observations_;
  }
  [[nodiscard]] const constraints::Propagator& propagator() const {
    return *prop_;
  }

 private:
  DiagnosisReport propagateAndFinish(bool delta);
  /// The exactness-guard fallback: re-runs the batch pipeline (no schedule,
  /// all observations seeded up front) so the result is identical to
  /// measure() + diagnose(). The session stays in batch mode afterwards.
  DiagnosisReport restart();

  DiagnosisContext ctx_;
  constraints::PropagatorOptions propOptions_;
  std::optional<constraints::Propagator> prop_;
  std::vector<Observation> observations_;
  std::size_t pendingFrom_ = 0;  ///< observations not yet propagated
  std::size_t lastStepsDelta_ = 0;
  std::vector<constraints::QuantityId> lastTouched_;
  bool exact_ = true;  ///< no saturation seen; delta extensions are exact
  bool lastIncremental_ = false;
};

/// The expert system.
class FlamesEngine {
 public:
  explicit FlamesEngine(circuit::Netlist net, FlamesOptions options = {});

  /// Enters a crisp measured node voltage (fuzzified with the equipment
  /// spread) for the next diagnose() call.
  void measure(const std::string& node, double volts);
  /// Enters an already-fuzzy measured node voltage.
  void measure(const std::string& node, fuzzy::FuzzyInterval value);
  void clearMeasurements();

  /// Runs a full diagnosis over the current measurements.
  [[nodiscard]] DiagnosisReport diagnose();

  /// Enters one more measurement and re-diagnoses *incrementally*: the
  /// first call propagates all current observations from scratch through a
  /// persistent scheduled propagator, later calls extend it inside the new
  /// measurement's impact cone only (IncrementalSession). measure() and
  /// clearMeasurements() invalidate the session — the next addMeasurement()
  /// starts over from the accumulated observations.
  [[nodiscard]] DiagnosisReport addMeasurement(const std::string& node,
                                               double volts);
  [[nodiscard]] DiagnosisReport addMeasurement(const std::string& node,
                                               fuzzy::FuzzyInterval value);

  /// The compiled propagation schedule for this model (computed once at
  /// the configured entry cap, cached).
  [[nodiscard]] const analyze::ScheduleAnalysis& schedule();

  /// The live incremental session, if addMeasurement() started one.
  [[nodiscard]] const IncrementalSession* incrementalSession() const {
    return session_.get();
  }

  /// Confirms the true culprit of the last session: compiles a
  /// symptom-failure rule into the experience base (§7).
  void confirm(const DiagnosisReport& report, const std::string& component,
               const std::string& mode);

  /// Ranks candidate probe points given the current report (§8).
  [[nodiscard]] std::vector<TestRecommendation> recommendTests(
      const std::vector<TestPoint>& probes, const DiagnosisReport& report);

  [[nodiscard]] const circuit::Netlist& netlist() const { return net_; }
  [[nodiscard]] const constraints::BuiltModel& builtModel() const {
    return built_;
  }
  [[nodiscard]] KnowledgeBase& knowledgeBase() { return kb_; }
  [[nodiscard]] ExperienceBase& experience() { return experience_; }
  [[nodiscard]] const FlamesOptions& options() const { return options_; }

  /// The observations entered so far (node + fuzzy value).
  [[nodiscard]] const std::vector<Observation>& observations() const {
    return observations_;
  }

 private:
  circuit::Netlist net_;
  FlamesOptions options_;
  constraints::BuiltModel built_;
  KnowledgeBase kb_;
  ExperienceBase experience_;
  std::vector<Observation> observations_;
  /// Lazily built sensitivity-sign matrix (one bump simulation per
  /// component, reused across sessions).
  std::optional<SensitivitySigns> sensitivitySigns_;
  /// Compiled propagation schedule, cached for the incremental path.
  std::optional<analyze::ScheduleAnalysis> schedule_;
  /// Live incremental probe session (addMeasurement), reset by measure()
  /// and clearMeasurements().
  std::unique_ptr<IncrementalSession> session_;

  [[nodiscard]] DiagnosisContext context();
};

}  // namespace flames::diagnosis
