// Fuzzy qualitative rules (paper §5, §6.2).
//
// The knowledge-base unit holds fuzzy production rules of the form
//
//   IF  q1 is S1  AND  q2 is S2 ...  THEN  <conclusion>   (certainty c)
//
// where each Si is a fuzzy set over the quantity's domain. The paper's
// example: "If the transistor T is correct and Vbe(T) >= ~0.4 then it should
// be in an ON state" — the threshold is fuzzy, so the conclusion carries a
// membership degree. Rules are evaluated against the value entries produced
// by propagation: the activation of an antecedent is the *necessity* (in the
// possibilistic sense) that the quantity satisfies its fuzzy set under the
// best supporting value entry, antecedents combine through a t-norm, and the
// conclusion degree is capped by the rule certainty.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "fuzzy/fuzzy_interval.h"
#include "fuzzy/tnorm.h"

namespace flames::diagnosis {

/// "quantity is in set".
struct FuzzyProposition {
  constraints::QuantityId quantity = 0;
  fuzzy::FuzzyInterval set;
};

/// A fuzzy production rule.
struct FuzzyRule {
  std::string name;
  std::vector<FuzzyProposition> antecedents;
  std::string conclusion;
  double certainty = 1.0;
};

/// A fired rule with its activation degree.
struct RuleActivation {
  std::string rule;
  std::string conclusion;
  double degree = 0.0;
};

/// The knowledge-base unit.
class KnowledgeBase {
 public:
  explicit KnowledgeBase(fuzzy::TNorm tnorm = fuzzy::TNorm::kMin)
      : tnorm_(tnorm) {}

  void addRule(FuzzyRule rule);
  [[nodiscard]] const std::vector<FuzzyRule>& rules() const { return rules_; }
  [[nodiscard]] std::size_t size() const { return rules_.size(); }

  /// Activation of one rule against the current value entries: each
  /// antecedent's degree is the best (max over entries) necessity of the
  /// quantity lying in the antecedent set; degrees combine by the t-norm and
  /// are capped by the rule certainty. A quantity with no values yields 0.
  [[nodiscard]] double activation(const FuzzyRule& rule,
                                  const constraints::Propagator& prop) const;

  /// Evaluates every rule; results sorted by degree descending, rules with
  /// zero activation omitted.
  [[nodiscard]] std::vector<RuleActivation> evaluate(
      const constraints::Propagator& prop) const;

  /// Helper: a fuzzy ">= threshold" set (soft lower bound with the given
  /// transition width), e.g. atLeast(0.4, 0.1) for the paper's Vbe rule.
  [[nodiscard]] static fuzzy::FuzzyInterval atLeast(double threshold,
                                                    double width,
                                                    double domainMax = 1e6);

  /// Helper: a fuzzy "<= threshold" set.
  [[nodiscard]] static fuzzy::FuzzyInterval atMost(double threshold,
                                                   double width,
                                                   double domainMin = -1e6);

 private:
  fuzzy::TNorm tnorm_;
  std::vector<FuzzyRule> rules_;
};

/// Installs the transistor operating-region rules of §6.2 for every BJT in
/// the netlist: conducting if Vbe >= ~0.4, cut off if Vbe <= ~0.4 (each
/// guarded by the transistor-correct proposition implicitly via certainty).
/// For transistors whose emitter is not grounded the rule threshold is
/// shifted by the emitter's nominal voltage from the built model.
void addTransistorRegionRules(KnowledgeBase& kb,
                              const circuit::Netlist& net,
                              const constraints::BuiltModel& built,
                              double certainty = 0.9);

/// Installs analogous operating-region rules for every diode: conducting if
/// the anode clears the cathode's nominal by ~Vf, blocking otherwise.
void addDiodeRegionRules(KnowledgeBase& kb, const circuit::Netlist& net,
                         const constraints::BuiltModel& built,
                         double certainty = 0.9);

}  // namespace flames::diagnosis
