#include "diagnosis/flames.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "atms/candidates.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::diagnosis {

using atms::AssumptionId;
using constraints::Propagator;
using constraints::QuantityId;
using constraints::ValueEntry;
using fuzzy::FuzzyInterval;

namespace {

// Tracks the Fig. 3 pipeline stages of one diagnose() call sequentially:
// each stage(...) call closes the previous stage (recording its trace span,
// its StageTiming row and a duration histogram sample) and opens the next.
class PipelineClock {
 public:
  explicit PipelineClock(PipelineStats* stats) : stats_(stats) {}
  ~PipelineClock() { close(); }
  PipelineClock(const PipelineClock&) = delete;
  PipelineClock& operator=(const PipelineClock&) = delete;

  void stage(const char* name) {
    close();
    name_ = name;
    span_ = std::make_unique<obs::Span>(name, "pipeline");
    if (stats_) start_ = obs::monotonicNanos();
  }

  void close() {
    if (stats_ && name_ != nullptr) {
      const std::uint64_t ns = obs::monotonicNanos() - start_;
      stats_->stages.push_back({name_, ns});
      obs::histogram(std::string("pipeline.") + name_ + ".ns").record(ns);
    }
    name_ = nullptr;
    span_.reset();
  }

 private:
  PipelineStats* stats_;
  const char* name_ = nullptr;
  std::unique_ptr<obs::Span> span_;
  std::uint64_t start_ = 0;
};

// Everything downstream of propagation: value hulls, the Dc table, ranked
// nogoods, candidates with refinement and rescue, ranking, rule evaluation,
// deviation analysis, experience hints and the stats totals. Shared by the
// batch pipeline (diagnoseWith) and the incremental probe session, which
// reach this point with differently-driven propagators but identical
// obligations. Expects clock to be inside its "propagation" stage.
void finishDiagnosis(const DiagnosisContext& ctx,
                     const std::vector<Observation>& observations,
                     Propagator& prop,
                     std::shared_ptr<DiagnosisProvenance> prov,
                     DiagnosisReport& report, PipelineClock& clock,
                     PipelineStats* stats, std::uint64_t wallStart) {
  const circuit::Netlist& net = *ctx.net;
  const constraints::BuiltModel& built = *ctx.built;
  const FlamesOptions& options = *ctx.options;
  const auto checkCancel = [&options] {
    if (options.propagation.cancelCheck && options.propagation.cancelCheck()) {
      throw constraints::CancelledError("diagnosis cancelled");
    }
  };

  report.propagationCompleted = prop.completed();
  report.propagationSteps = prop.steps();
  if (stats) {
    stats->propagationSteps = prop.steps();
    stats->coincidences = prop.coincidences().size();
  }
  for (std::size_t q = 0; q < built.model.quantityCount(); ++q) {
    const auto& entries = prop.values(static_cast<QuantityId>(q));
    if (entries.empty()) continue;
    QuantityValueHull hull;
    hull.quantity = built.model.quantityInfo(static_cast<QuantityId>(q)).name;
    hull.lo = std::numeric_limits<double>::infinity();
    hull.hi = -hull.lo;
    hull.entries = entries.size();
    for (const ValueEntry& e : entries) {
      const fuzzy::Cut s = e.value.support();
      hull.lo = std::min(hull.lo, s.lo);
      hull.hi = std::max(hull.hi, s.hi);
    }
    report.valueHulls.push_back(std::move(hull));
  }

  // --- per-measurement Dc summaries (the Fig. 7 table rows) ---
  clock.stage("conflict_recording");
  for (const Observation& obs : observations) {
    const auto q = built.voltage(obs.node);
    MeasurementSummary ms;
    ms.quantity = built.model.quantityInfo(q).name;
    ms.measured = obs.value;
    if (const auto worst = prop.worstCoincidence(q)) {
      ms.nominal = worst->nominalSide;
      ms.dc = worst->consistency.dc;
      ms.signedDc = worst->consistency.signedDc();
      switch (worst->consistency.deviation) {
        case fuzzy::Deviation::kBelow: ms.direction = -1; break;
        case fuzzy::Deviation::kAbove: ms.direction = 1; break;
        case fuzzy::Deviation::kNone: ms.direction = 0; break;
      }
    }
    report.measurements.push_back(std::move(ms));
    report.signature.push_back({report.measurements.back().quantity,
                                report.measurements.back().signedDc,
                                report.measurements.back().direction});
  }

  // --- ranked nogoods ---
  const auto& db = prop.nogoods();
  for (const atms::Nogood& n :
       db.minimalNogoods(options.propagation.minNogoodDegree)) {
    RankedNogood rn;
    rn.degree = n.degree;
    rn.note = n.note;
    for (AssumptionId id : n.env.ids()) {
      rn.components.push_back(built.model.assumptionName(id));
    }
    report.nogoods.push_back(std::move(rn));
  }

  // --- component suspicion ---
  for (const auto& [id, s] : atms::componentSuspicion(db)) {
    report.suspicion[built.model.assumptionName(id)] = s;
  }

  // --- candidates (λ at the weakest recorded conflict => all conflicts
  // explained) with fault-mode refinement ---
  clock.stage("candidate_generation");
  const auto scale = fuzzy::LinguisticScale::defaultFaultiness();
  auto priorOf = [&](const std::vector<std::string>& comps) {
    // Prior of a candidate: the largest expert faultiness among members;
    // components without a stated prior are neutral.
    double best = 0.5;
    bool any = false;
    for (const std::string& comp : comps) {
      const auto it = options.expertPriors.find(comp);
      if (it == options.expertPriors.end()) continue;
      const double p = scale.meaningOf(it->second).centroid();
      best = any ? std::max(best, p) : p;
      any = true;
    }
    return best;
  };

  const auto candidates =
      atms::candidatesAt(db, options.propagation.minNogoodDegree,
                         options.maxFaultCardinality);
  if (stats) stats->candidatesGenerated = candidates.size();
  if (prov) {
    for (const atms::Candidate& c : candidates) {
      std::vector<std::string> members;
      members.reserve(c.members.size());
      for (AssumptionId id : c.members) {
        members.push_back(built.model.assumptionName(id));
      }
      prov->hittingSets.push_back(std::move(members));
    }
  }

  clock.stage("refinement");
  for (const atms::Candidate& c : candidates) {
    RankedCandidate rc;
    rc.suspicion = c.suspicion;
    for (AssumptionId id : c.members) {
      rc.components.push_back(built.model.assumptionName(id));
    }
    rc.prior = priorOf(rc.components);
    if (options.refineWithFaultModes && rc.components.size() == 1) {
      checkCancel();
      if (stats) ++stats->faultModeScreens;
      rc.modeMatch = bestFaultMode(net, rc.components.front(), observations,
                                   options.faultModes);
      // A candidate that admits a fault mode reproducing every measurement
      // is a strong explanation; one that admits none is implausible.
      rc.plausibility = rc.modeMatch->matchDegree;
    } else {
      // Unverified (multi-component or unrefined) candidates are capped at
      // 0.5: a verified single-fault explanation outranks them, but they
      // surface when no single fault reproduces the measurements.
      rc.plausibility = 0.5 * rc.suspicion;
    }
    report.candidates.push_back(std::move(rc));
  }
  // Fault-model rescue (paper §5: fault models "can help the diagnosis
  // process"). When a secondary model violation subsumes the informative
  // conflict — e.g. an open collector load drives the next stage's
  // operating-region assumption false, and that tiny nogood hides the
  // stage's own components — the hitting sets contain only candidates no
  // fault mode can confirm. In that case screen every modelled component
  // against the observations and admit those whose fault modes reproduce
  // them.
  if (options.refineWithFaultModes && !report.nogoods.empty()) {
    double bestPlausibility = 0.0;
    for (const RankedCandidate& rc : report.candidates) {
      bestPlausibility = std::max(bestPlausibility, rc.plausibility);
    }
    if (bestPlausibility < 0.5) {
      for (const auto& [comp, id] : built.assumptionOf) {
        (void)id;
        bool already = false;
        for (const RankedCandidate& rc : report.candidates) {
          if (rc.components.size() == 1 && rc.components.front() == comp) {
            already = true;
          }
        }
        if (already) continue;
        checkCancel();
        if (stats) ++stats->faultModeScreens;
        auto match =
            bestFaultMode(net, comp, observations, options.faultModes);
        if (match.matchDegree >= 0.5) {
          RankedCandidate rc;
          rc.components = {comp};
          rc.suspicion = report.suspicion.count(comp) != 0
                             ? report.suspicion.at(comp)
                             : 0.0;
          rc.plausibility = match.matchDegree;
          rc.prior = priorOf(rc.components);
          rc.modeMatch = std::move(match);
          report.candidates.push_back(std::move(rc));
        }
      }
    }
  }

  // Plausibilities within this band count as tied: fault-mode match scores
  // carry simulation noise at the 1e-2 level and must not mask the expert's
  // a-priori preference between otherwise equivalent explanations.
  clock.stage("ranking");
  constexpr double kPlausibilityBand = 0.02;
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.plausibility != b.plausibility) {
                return a.plausibility > b.plausibility;
              }
              if (a.components.size() != b.components.size()) {
                return a.components.size() < b.components.size();
              }
              if (a.suspicion != b.suspicion) return a.suspicion > b.suspicion;
              return a.components < b.components;
            });
  // Within each band of near-equal plausibility (anchored at the band
  // leader), let the expert's a-priori estimation reorder — stably, so the
  // no-priors ranking is untouched.
  for (std::size_t begin = 0; begin < report.candidates.size();) {
    std::size_t end = begin + 1;
    while (end < report.candidates.size() &&
           report.candidates[begin].plausibility -
                   report.candidates[end].plausibility <=
               kPlausibilityBand) {
      ++end;
    }
    std::stable_sort(report.candidates.begin() + static_cast<long>(begin),
                     report.candidates.begin() + static_cast<long>(end),
                     [](const RankedCandidate& a, const RankedCandidate& b) {
                       return a.prior > b.prior;
                     });
    begin = end;
  }

  // --- knowledge-base rules ---
  clock.stage("rule_evaluation");
  if (ctx.kb != nullptr) report.ruleActivations = ctx.kb->evaluate(prop);

  // --- Dc-sign deviation analysis (Fig. 7 commentary) ---
  clock.stage("deviation_analysis");
  if (options.analyzeDeviationSigns && !report.nogoods.empty()) {
    checkCancel();
    std::optional<SensitivitySigns> localSigns;
    const SensitivitySigns& signs =
        ctx.signsProvider
            ? ctx.signsProvider()
            : localSigns.emplace(net, options.deviationAnalysis);
    report.directedHypotheses =
        explainBySigns(signs, report.signature, options.deviationAnalysis);
    // Drop non-explanations to keep the report focused.
    report.directedHypotheses.erase(
        std::remove_if(report.directedHypotheses.begin(),
                       report.directedHypotheses.end(),
                       [](const DirectedHypothesis& h) {
                         return h.agreement <= 0.0;
                       }),
        report.directedHypotheses.end());
  }

  // --- experience hints ---
  clock.stage("experience_hints");
  if (ctx.hintSource) report.hints = ctx.hintSource(report.signature);
  for (RankedCandidate& rc : report.candidates) {
    for (const ExperienceHint& h : report.hints) {
      if (rc.components.size() == 1 && rc.components.front() == h.component) {
        rc.hints.push_back(h);
      }
    }
  }

  clock.close();
  report.provenance = std::move(prov);
  if (stats) {
    stats->nogoodsRecorded = prop.nogoods().size();
    stats->dcTableRows = report.measurements.size();
    stats->totalNanos = obs::monotonicNanos() - wallStart;
  }
}

}  // namespace

FlamesEngine::FlamesEngine(circuit::Netlist net, FlamesOptions options)
    : net_(std::move(net)),
      options_(options),
      built_(constraints::buildDiagnosticModel(net_, options.model)),
      experience_(options.learning) {
  if (options_.installRegionRules) {
    addTransistorRegionRules(kb_, net_, built_);
  }
}

void FlamesEngine::measure(const std::string& node, double volts) {
  measure(node, FuzzyInterval::about(
                    volts, std::max(options_.measurementSpread, 1e-12)));
}

void FlamesEngine::measure(const std::string& node, FuzzyInterval value) {
  (void)net_.findNode(node);  // validate early
  observations_.push_back({node, std::move(value)});
  session_.reset();  // batch edits invalidate the incremental session
}

void FlamesEngine::clearMeasurements() {
  observations_.clear();
  session_.reset();
}

DiagnosisReport diagnoseWith(const DiagnosisContext& ctx,
                             const std::vector<Observation>& observations) {
  const constraints::BuiltModel& built = *ctx.built;
  const FlamesOptions& options = *ctx.options;

  DiagnosisReport report;

  obs::Span diagnoseSpan("diagnose", "pipeline");
  static obs::Counter& cDiagnoseCalls = obs::counter("flames.diagnose_calls");
  cDiagnoseCalls.add();
  std::uint64_t wallStart = 0;
  if (obs::enabled()) {
    report.stats.emplace();
    wallStart = obs::monotonicNanos();
  }
  PipelineStats* stats = report.stats ? &*report.stats : nullptr;
  PipelineClock clock(stats);

  clock.stage("propagation");
  std::shared_ptr<DiagnosisProvenance> prov;
  constraints::PropagatorOptions propOptions = options.propagation;
  if (options.hintGuidedPropagation && ctx.hintSource) {
    // Pre-propagation signature: each measurement scored directly against
    // the model's nominal prediction. Cheap (no constraint network), and
    // close enough to the post-propagation signature learned rules were
    // recorded from for similarity matching to work.
    std::vector<Symptom> pre;
    for (const Observation& obs : observations) {
      const QuantityId q = built.voltage(obs.node);
      const constraints::Model::Prediction* nominal = nullptr;
      for (const auto& p : built.model.predictions()) {
        if (p.quantity == q) {
          nominal = &p;
          break;
        }
      }
      if (nominal == nullptr) continue;
      const fuzzy::Consistency c =
          fuzzy::degreeOfConsistency(obs.value, nominal->value);
      int direction = 0;
      switch (c.deviation) {
        case fuzzy::Deviation::kBelow: direction = -1; break;
        case fuzzy::Deviation::kAbove: direction = 1; break;
        case fuzzy::Deviation::kNone: direction = 0; break;
      }
      pre.push_back(
          {built.model.quantityInfo(q).name, c.signedDc(), direction});
    }
    if (!pre.empty()) {
      const std::vector<ExperienceHint> hints = ctx.hintSource(pre);
      if (!hints.empty() &&
          hints.front().score >= options.hintGuidedThreshold) {
        propOptions.maxEntriesPerQuantity = std::min(
            propOptions.maxEntriesPerQuantity, options.hintGuidedEntryCap);
        report.hintGuided = true;
        static obs::Counter& cGuided = obs::counter("kb.hint_guided_runs");
        cGuided.add();
      }
    }
  }
  if (options.recordProvenance) {
    prov = std::make_shared<DiagnosisProvenance>();
    prov->lambda = propOptions.minNogoodDegree;
    prov->maxCardinality = options.maxFaultCardinality;
    prov->policy = propOptions.policy;
    prov->crispifyValues = propOptions.crispifyValues;
    propOptions.provenance = &prov->log;
  }
  Propagator prop(built.model, propOptions);
  for (const Observation& obs : observations) {
    prop.addMeasurement(built.voltage(obs.node), obs.value);
  }
  prop.run();
  finishDiagnosis(ctx, observations, prop, std::move(prov), report, clock,
                  stats, wallStart);
  return report;
}

// --- IncrementalSession ------------------------------------------------------

IncrementalSession::IncrementalSession(
    const DiagnosisContext& ctx, const constraints::PropagationSchedule& schedule)
    : ctx_(ctx), propOptions_(ctx.options->propagation) {
  propOptions_.schedule = &schedule;
  // Provenance and hint-guided cap clamping are batch-path features: the
  // log would span the whole session, and a mid-session cap change would
  // invalidate the incremental premise (see the class comment).
  propOptions_.provenance = nullptr;
}

DiagnosisReport IncrementalSession::begin(
    const std::vector<Observation>& observations) {
  observations_ = observations;
  pendingFrom_ = 0;
  exact_ = true;
  prop_.emplace(ctx_.built->model, propOptions_);
  return propagateAndFinish(/*delta=*/false);
}

DiagnosisReport IncrementalSession::addMeasurement(const Observation& obs) {
  if (!prop_) return begin({obs});
  observations_.push_back(obs);
  if (!exact_) return restart();  // batch mode: cap pressure already seen
  return propagateAndFinish(/*delta=*/true);
}

DiagnosisReport IncrementalSession::propagateAndFinish(bool delta) {
  DiagnosisReport report;
  obs::Span diagnoseSpan("diagnose_incremental", "pipeline");
  static obs::Counter& cProbes = obs::counter("flames.incremental_probes");
  cProbes.add();
  std::uint64_t wallStart = 0;
  if (obs::enabled()) {
    report.stats.emplace();
    wallStart = obs::monotonicNanos();
  }
  PipelineStats* stats = report.stats ? &*report.stats : nullptr;
  PipelineClock clock(stats);

  clock.stage("propagation");
  prop_->markClean();
  const std::size_t stepsBefore = prop_->steps();
  for (; pendingFrom_ < observations_.size(); ++pendingFrom_) {
    const Observation& o = observations_[pendingFrom_];
    prop_->addMeasurement(ctx_.built->voltage(o.node), o.value);
  }
  prop_->run();
  if (prop_->saturatedDiscards() > 0) {
    // The entry cap bit: some derivation was discarded, so the state now
    // depends on arrival order and a value lost today could have coincided
    // with a probe arriving tomorrow. Recompute exactly.
    return restart();
  }
  lastStepsDelta_ = prop_->steps() - stepsBefore;
  lastTouched_ = prop_->touchedQuantities();
  lastIncremental_ = delta;
  finishDiagnosis(ctx_, observations_, *prop_, nullptr, report, clock, stats,
                  wallStart);
  return report;
}

DiagnosisReport IncrementalSession::restart() {
  // Exactness-guard fallback: one batch-ordered run over all observations,
  // identical to measure() + diagnose() by construction (same seeding order,
  // same sweep engine). The session stays in batch mode — the cap pressure
  // that forced this recompute would recur on every later probe.
  exact_ = false;
  lastIncremental_ = false;
  static obs::Counter& cFallbacks =
      obs::counter("flames.incremental_fallbacks");
  cFallbacks.add();

  DiagnosisReport report;
  obs::Span diagnoseSpan("diagnose_incremental_fallback", "pipeline");
  std::uint64_t wallStart = 0;
  if (obs::enabled()) {
    report.stats.emplace();
    wallStart = obs::monotonicNanos();
  }
  PipelineStats* stats = report.stats ? &*report.stats : nullptr;
  PipelineClock clock(stats);

  clock.stage("propagation");
  constraints::PropagatorOptions batchOptions = propOptions_;
  batchOptions.schedule = nullptr;
  prop_.emplace(ctx_.built->model, batchOptions);
  prop_->markClean();
  for (const Observation& o : observations_) {
    prop_->addMeasurement(ctx_.built->voltage(o.node), o.value);
  }
  pendingFrom_ = observations_.size();
  prop_->run();
  lastStepsDelta_ = prop_->steps();
  lastTouched_ = prop_->touchedQuantities();
  finishDiagnosis(ctx_, observations_, *prop_, nullptr, report, clock, stats,
                  wallStart);
  return report;
}

// --- FlamesEngine ------------------------------------------------------------

DiagnosisContext FlamesEngine::context() {
  DiagnosisContext ctx;
  ctx.net = &net_;
  ctx.built = &built_;
  ctx.kb = &kb_;
  ctx.options = &options_;
  ctx.hintSource = [this](const std::vector<Symptom>& signature) {
    return experience_.match(signature);
  };
  ctx.signsProvider = [this]() -> const SensitivitySigns& {
    if (!sensitivitySigns_) {
      sensitivitySigns_.emplace(net_, options_.deviationAnalysis);
    }
    return *sensitivitySigns_;
  };
  return ctx;
}

DiagnosisReport FlamesEngine::diagnose() {
  return diagnoseWith(context(), observations_);
}

const analyze::ScheduleAnalysis& FlamesEngine::schedule() {
  if (!schedule_) {
    analyze::ScheduleOptions o;
    o.entryCap = options_.propagation.maxEntriesPerQuantity;
    schedule_ = analyze::computeSchedule(built_.model, o);
  }
  return *schedule_;
}

DiagnosisReport FlamesEngine::addMeasurement(const std::string& node,
                                             double volts) {
  return addMeasurement(
      node, FuzzyInterval::about(volts,
                                 std::max(options_.measurementSpread, 1e-12)));
}

DiagnosisReport FlamesEngine::addMeasurement(const std::string& node,
                                             FuzzyInterval value) {
  (void)net_.findNode(node);  // validate early
  observations_.push_back({node, std::move(value)});
  if (!session_) {
    session_ = std::make_unique<IncrementalSession>(context(),
                                                    schedule().plan);
    return session_->begin(observations_);
  }
  return session_->addMeasurement(observations_.back());
}

void FlamesEngine::confirm(const DiagnosisReport& report,
                           const std::string& component,
                           const std::string& mode) {
  experience_.recordSuccess(report.signature, component, mode);
}

std::vector<TestRecommendation> FlamesEngine::recommendTests(
    const std::vector<TestPoint>& probes, const DiagnosisReport& report) {
  obs::Span span("test_selection", "pipeline");
  TestSelector selector(net_, fuzzy::LinguisticScale::defaultFaultiness(),
                        options_.testSelection);
  // Expert priors seed the estimations: a component the expert already
  // distrusts stays in the suspect pool even before evidence implicates it.
  std::map<std::string, double> suspicion = report.suspicion;
  const auto& scale = selector.scale();
  for (const auto& [comp, term] : options_.expertPriors) {
    const double p = scale.meaningOf(term).centroid();
    auto [it, inserted] = suspicion.emplace(comp, p);
    if (!inserted) it->second = std::max(it->second, p);
  }
  const auto estimations = selector.estimationsFromSuspicion(suspicion);

  // Hypothesis per suspected component: its best fault mode so far.
  std::map<std::string, circuit::Fault> hypotheses;
  for (const RankedCandidate& rc : report.candidates) {
    if (rc.components.size() != 1) continue;
    const std::string& comp = rc.components.front();
    if (hypotheses.count(comp) != 0) continue;
    if (rc.modeMatch && rc.modeMatch->mode != "none") {
      if (rc.modeMatch->estimatedValue) {
        hypotheses.emplace(
            comp, circuit::Fault::paramExact(comp,
                                             *rc.modeMatch->estimatedValue));
      } else {
        for (const FaultMode& m : standardModesFor(net_.component(comp))) {
          if (m.name == rc.modeMatch->mode) {
            hypotheses.emplace(comp, m.fault);
            break;
          }
        }
      }
    } else {
      // Fall back to the most disruptive standard mode.
      const auto modes = standardModesFor(net_.component(comp));
      if (!modes.empty()) hypotheses.emplace(comp, modes.front().fault);
    }
  }
  return selector.rankTests(probes, estimations, hypotheses);
}

}  // namespace flames::diagnosis
