// Qualitative deviation analysis from the signs of Dc (paper §6.1.2, Fig. 7).
//
// Fig. 7's commentary resolves the "open circuit in N1" row "thanks to the
// sign of Dc: ... R2 is very low or R3 is very high": the *direction* of
// each measured deviation, combined with the sign of each observable's
// sensitivity to each component parameter, picks out which parameter
// deviations are qualitatively able to explain the symptom pattern.
//
// This module computes the sensitivity-sign matrix S[node][component] from
// the simulator (+1 if raising the parameter raises the node voltage, -1 if
// it lowers it, 0 if insensitive) and scores directed hypotheses
// ("component high" / "component low") against the observed signed-Dc
// signature. It complements the fault-mode unit: deviation analysis is
// cheap and qualitative (one simulation per component), fault-mode matching
// is quantitative (a search per candidate).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "diagnosis/learning.h"

namespace flames::diagnosis {

/// Direction of a hypothesised parameter deviation.
enum class DeviationDirection { kHigh, kLow };

[[nodiscard]] std::string_view deviationDirectionName(DeviationDirection d);

/// A directed explanation hypothesis with its qualitative score.
struct DirectedHypothesis {
  std::string component;
  DeviationDirection direction = DeviationDirection::kHigh;
  /// Fraction of deviating observables whose sign the hypothesis predicts
  /// correctly, in [0, 1]; 1 = every deviation sign matches.
  double agreement = 0.0;
  /// Number of observables that actually deviate (|signedDc| < 1 bound).
  std::size_t symptomCount = 0;
};

struct DeviationAnalysisOptions {
  /// Relative parameter bump used to probe sensitivity signs.
  double probeFactor = 1.05;
  /// |voltage change| below this counts as insensitive (volt).
  double senseThreshold = 1e-7;
  /// A measurement counts as deviating when its Dc magnitude drops below
  /// this (1 - epsilon keeps corroborations out).
  double deviationThreshold = 0.999;
};

/// The sensitivity-sign matrix of a netlist: for every non-source component
/// and every named node, the sign (-1/0/+1) of d V(node) / d parameter.
class SensitivitySigns {
 public:
  SensitivitySigns(const circuit::Netlist& nominal,
                   DeviationAnalysisOptions options = {});

  /// Sign of d V(node) / d param(component); 0 for unknown pairs.
  [[nodiscard]] int sign(const std::string& node,
                         const std::string& component) const;

  [[nodiscard]] const std::vector<std::string>& components() const {
    return components_;
  }

 private:
  std::vector<std::string> components_;
  std::map<std::pair<std::string, std::string>, int> signs_;  // (node, comp)
};

/// Scores every directed single-deviation hypothesis against the signed-Dc
/// signature of a diagnosis session (Symptom.quantity is "V(<node>)").
/// Hypotheses are returned best-first; ties break alphabetically. Components
/// with zero sensitivity to every deviating node score 0.
[[nodiscard]] std::vector<DirectedHypothesis> explainBySigns(
    const SensitivitySigns& signs, const std::vector<Symptom>& signature,
    DeviationAnalysisOptions options = {});

}  // namespace flames::diagnosis
