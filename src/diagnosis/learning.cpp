#include "diagnosis/learning.h"

#include <algorithm>
#include <cmath>

namespace flames::diagnosis {

namespace {

void sortSignature(std::vector<Symptom>& s) {
  std::sort(s.begin(), s.end(), [](const Symptom& a, const Symptom& b) {
    return a.quantity < b.quantity;
  });
}

}  // namespace

ExperienceBase::ExperienceBase(LearningOptions options) : options_(options) {}

double ExperienceBase::similarity(const std::vector<Symptom>& a,
                                  const std::vector<Symptom>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].quantity != b[i].quantity) return 0.0;
    // Signed Dc lives in [-1, 1]; distance normalised to [0, 1].
    sum += std::abs(a[i].signedDc - b[i].signedDc) / 2.0;
  }
  return 1.0 - sum / static_cast<double>(a.size());
}

void ExperienceBase::recordSuccess(std::vector<Symptom> signature,
                                   const std::string& component,
                                   const std::string& mode) {
  sortSignature(signature);
  for (SymptomRule& r : rules_) {
    if (r.component != component || r.mode != mode) continue;
    const double sim = similarity(r.symptoms, signature);
    if (sim >= options_.mergeSimilarity) {
      // Reinforce and pull the stored signature towards the new evidence.
      r.certainty += (1.0 - r.certainty) * options_.reinforcement;
      const double w = 1.0 / (r.confirmations + 1.0);
      for (std::size_t i = 0; i < r.symptoms.size(); ++i) {
        r.symptoms[i].signedDc =
            (1.0 - w) * r.symptoms[i].signedDc + w * signature[i].signedDc;
      }
      ++r.confirmations;
      return;
    }
  }
  SymptomRule rule;
  rule.symptoms = std::move(signature);
  rule.component = component;
  rule.mode = mode;
  rule.certainty = options_.initialCertainty;
  rule.confirmations = 1;
  rules_.push_back(std::move(rule));
}

void ExperienceBase::recordFailure(const std::string& component,
                                   const std::string& mode) {
  for (SymptomRule& r : rules_) {
    if (r.component == component && r.mode == mode) {
      r.certainty *= 1.0 - options_.reinforcement;
    }
  }
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [](const SymptomRule& r) {
                                return r.certainty < 0.05;
                              }),
               rules_.end());
}

void ExperienceBase::restoreRule(SymptomRule rule) {
  sortSignature(rule.symptoms);
  rules_.push_back(std::move(rule));
}

std::vector<ExperienceHint> ExperienceBase::match(
    const std::vector<Symptom>& current) const {
  std::vector<Symptom> sorted = current;
  sortSignature(sorted);
  std::vector<ExperienceHint> hints;
  for (const SymptomRule& r : rules_) {
    const double sim = similarity(r.symptoms, sorted);
    if (sim <= 0.0) continue;
    hints.push_back({r.component, r.mode, sim * r.certainty, r.certainty});
  }
  std::sort(hints.begin(), hints.end(),
            [](const ExperienceHint& a, const ExperienceHint& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.component < b.component;
            });
  return hints;
}

}  // namespace flames::diagnosis
