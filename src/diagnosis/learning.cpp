#include "diagnosis/learning.h"

#include <algorithm>
#include <cmath>

namespace flames::diagnosis {

namespace {

void sortSignature(std::vector<Symptom>& s) {
  std::sort(s.begin(), s.end(), [](const Symptom& a, const Symptom& b) {
    return a.quantity < b.quantity;
  });
}

}  // namespace

ExperienceBase::ExperienceBase(LearningOptions options) : options_(options) {}

double ExperienceBase::similarity(const std::vector<Symptom>& a,
                                  const std::vector<Symptom>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].quantity != b[i].quantity) return 0.0;
    // Signed Dc lives in [-1, 1]; distance normalised to [0, 1].
    sum += std::abs(a[i].signedDc - b[i].signedDc) / 2.0;
  }
  return 1.0 - sum / static_cast<double>(a.size());
}

std::string ExperienceBase::quantityKey(
    const std::vector<Symptom>& sortedSignature) {
  std::string key;
  for (const Symptom& s : sortedSignature) {
    key += s.quantity;
    key += '\x1f';
  }
  return key;
}

void ExperienceBase::indexRule(std::size_t i) {
  index_[quantityKey(rules_[i].symptoms)].push_back(i);
}

void ExperienceBase::rebuildIndex() {
  index_.clear();
  for (std::size_t i = 0; i < rules_.size(); ++i) indexRule(i);
}

void ExperienceBase::recordSuccess(std::vector<Symptom> signature,
                                   const std::string& component,
                                   const std::string& mode) {
  sortSignature(signature);

  const auto reinforce = [&](SymptomRule& r) {
    // Reinforce and pull the stored signature towards the new evidence.
    r.certainty += (1.0 - r.certainty) * options_.reinforcement;
    const double w = 1.0 / (r.confirmations + 1.0);
    for (std::size_t i = 0; i < r.symptoms.size(); ++i) {
      r.symptoms[i].signedDc =
          (1.0 - w) * r.symptoms[i].signedDc + w * signature[i].signedDc;
    }
    ++r.confirmations;
  };

  if (options_.useSignatureIndex) {
    const auto bucket = index_.find(quantityKey(signature));
    if (bucket != index_.end()) {
      for (const std::size_t i : bucket->second) {
        SymptomRule& r = rules_[i];
        if (r.component != component || r.mode != mode) continue;
        if (similarity(r.symptoms, signature) >= options_.mergeSimilarity) {
          reinforce(r);
          return;
        }
      }
    }
  } else {
    for (SymptomRule& r : rules_) {
      if (r.component != component || r.mode != mode) continue;
      if (similarity(r.symptoms, signature) >= options_.mergeSimilarity) {
        reinforce(r);
        return;
      }
    }
  }

  SymptomRule rule;
  rule.symptoms = std::move(signature);
  rule.component = component;
  rule.mode = mode;
  rule.certainty = options_.initialCertainty;
  rule.confirmations = 1;
  rules_.push_back(std::move(rule));
  indexRule(rules_.size() - 1);
}

void ExperienceBase::recordFailure(const std::string& component,
                                   const std::string& mode) {
  for (SymptomRule& r : rules_) {
    if (r.component == component && r.mode == mode) {
      r.certainty *= 1.0 - options_.reinforcement;
    }
  }
  const std::size_t before = rules_.size();
  rules_.erase(std::remove_if(rules_.begin(), rules_.end(),
                              [](const SymptomRule& r) {
                                return r.certainty < 0.05;
                              }),
               rules_.end());
  // Erasure shifts rule indices; the index must never go stale (match()
  // reads it under a shared lock and cannot rebuild lazily).
  if (rules_.size() != before) rebuildIndex();
}

void ExperienceBase::restoreRule(SymptomRule rule) {
  sortSignature(rule.symptoms);
  rules_.push_back(std::move(rule));
  indexRule(rules_.size() - 1);
}

std::vector<ExperienceHint> ExperienceBase::match(
    const std::vector<Symptom>& current) const {
  std::vector<Symptom> sorted = current;
  sortSignature(sorted);
  std::vector<ExperienceHint> hints;

  const auto consider = [&](const SymptomRule& r) {
    const double sim = similarity(r.symptoms, sorted);
    if (sim <= 0.0) return;
    hints.push_back({r.component, r.mode, sim * r.certainty, r.certainty});
  };

  if (options_.useSignatureIndex) {
    const auto bucket = index_.find(quantityKey(sorted));
    if (bucket != index_.end()) {
      for (const std::size_t i : bucket->second) consider(rules_[i]);
    }
  } else {
    for (const SymptomRule& r : rules_) consider(r);
  }

  std::sort(hints.begin(), hints.end(),
            [](const ExperienceHint& a, const ExperienceHint& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.component != b.component) return a.component < b.component;
              // Mode tie-break: makes the order independent of rule
              // insertion order, so the indexed and legacy paths agree.
              return a.mode < b.mode;
            });
  return hints;
}

}  // namespace flames::diagnosis
