#include "diagnosis/experience_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace flames::diagnosis {

void saveExperience(const ExperienceBase& base, std::ostream& os) {
  os << "# FLAMES experience base v1\n";
  for (const SymptomRule& r : base.rules()) {
    os << "rule " << r.component << ' ' << r.mode << ' ' << r.certainty << ' '
       << r.confirmations << ' ' << r.symptoms.size() << '\n';
    for (const Symptom& s : r.symptoms) {
      os << "sym " << s.quantity << ' ' << s.signedDc << ' ' << s.direction
         << '\n';
    }
  }
}

std::size_t loadExperience(ExperienceBase& base, std::istream& is) {
  std::size_t loaded = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "rule") {
      throw std::runtime_error("loadExperience: expected 'rule', got '" +
                               tag + "'");
    }
    SymptomRule rule;
    std::size_t nSymptoms = 0;
    if (!(ls >> rule.component >> rule.mode >> rule.certainty >>
          rule.confirmations >> nSymptoms)) {
      throw std::runtime_error("loadExperience: malformed rule line");
    }
    for (std::size_t i = 0; i < nSymptoms; ++i) {
      if (!std::getline(is, line)) {
        throw std::runtime_error("loadExperience: truncated rule body");
      }
      std::istringstream ss(line);
      std::string symTag;
      Symptom sym;
      if (!(ss >> symTag >> sym.quantity >> sym.signedDc) || symTag != "sym") {
        throw std::runtime_error("loadExperience: malformed symptom line");
      }
      // Direction is optional for backwards compatibility with v1 files.
      if (!(ss >> sym.direction)) sym.direction = 0;
      rule.symptoms.push_back(std::move(sym));
    }
    base.restoreRule(std::move(rule));
    ++loaded;
  }
  return loaded;
}

void saveExperienceFile(const ExperienceBase& base, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("saveExperienceFile: cannot open " + path);
  saveExperience(base, os);
  if (!os) throw std::runtime_error("saveExperienceFile: write failed");
}

std::size_t loadExperienceFile(ExperienceBase& base, const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("loadExperienceFile: cannot open " + path);
  return loadExperience(base, is);
}

std::optional<std::size_t> loadExperienceFileIfExists(ExperienceBase& base,
                                                      const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  return loadExperienceFile(base, path);
}

}  // namespace flames::diagnosis
