#include "diagnosis/experience_io.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace flames::diagnosis {

namespace {

constexpr std::string_view kHeaderPrefix = "# FLAMES experience base v";
constexpr int kFormatVersion = 2;

std::string fmt17(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Parses the complete token as a double; rejects trailing junk.
bool parseDoubleTok(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace

void saveExperience(const ExperienceBase& base, std::ostream& os) {
  os << kHeaderPrefix << kFormatVersion << '\n';
  for (const SymptomRule& r : base.rules()) {
    os << "rule " << r.component << ' ' << r.mode << ' ' << fmt17(r.certainty)
       << ' ' << r.confirmations << ' ' << r.symptoms.size() << '\n';
    for (const Symptom& s : r.symptoms) {
      os << "sym " << s.quantity << ' ' << fmt17(s.signedDc) << ' '
         << s.direction << '\n';
    }
  }
}

std::size_t loadExperience(ExperienceBase& base, std::istream& is) {
  std::size_t loaded = 0;
  std::string line;
  std::size_t lineNo = 0;
  // v1 files may carry no header at all (or a "# ..." comment that is not
  // a version marker); everything they omit gets the lenient treatment.
  int version = 1;
  bool sawContent = false;

  while (std::getline(is, line)) {
    ++lineNo;
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (!sawContent && line.rfind(kHeaderPrefix, 0) == 0) {
        const std::string tok(line.substr(kHeaderPrefix.size()));
        char* end = nullptr;
        const long v = std::strtol(tok.c_str(), &end, 10);
        if (tok.empty() || end == nullptr || *end != '\0' || v < 1) {
          throw ExperienceFormatError(lineNo, "malformed version header");
        }
        if (v > kFormatVersion) {
          throw ExperienceFormatError(
              lineNo, "unsupported experience format version " + tok);
        }
        version = static_cast<int>(v);
      }
      continue;
    }
    sawContent = true;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "rule") {
      throw ExperienceFormatError(lineNo, "expected 'rule', got '" + tag +
                                              "'");
    }
    SymptomRule rule;
    std::size_t nSymptoms = 0;
    std::string cert;
    if (!(ls >> rule.component >> rule.mode >> cert >> rule.confirmations >>
          nSymptoms) ||
        !parseDoubleTok(cert, rule.certainty)) {
      throw ExperienceFormatError(lineNo, "malformed rule line");
    }
    for (std::size_t i = 0; i < nSymptoms; ++i) {
      if (!std::getline(is, line)) {
        throw ExperienceFormatError(lineNo, "truncated rule body");
      }
      ++lineNo;
      std::istringstream ss(line);
      std::string symTag;
      std::string dc;
      Symptom sym;
      if (!(ss >> symTag >> sym.quantity >> dc) || symTag != "sym" ||
          !parseDoubleTok(dc, sym.signedDc)) {
        throw ExperienceFormatError(lineNo, "malformed symptom line");
      }
      if (!(ss >> sym.direction)) {
        // Direction is optional only in v1 files (it predates the column).
        if (version >= 2) {
          throw ExperienceFormatError(lineNo,
                                      "missing symptom direction (v2)");
        }
        sym.direction = 0;
      }
      rule.symptoms.push_back(std::move(sym));
    }
    base.restoreRule(std::move(rule));
    ++loaded;
  }
  return loaded;
}

void saveExperienceFile(const ExperienceBase& base, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("saveExperienceFile: cannot open " + path);
  saveExperience(base, os);
  if (!os) throw std::runtime_error("saveExperienceFile: write failed");
}

std::size_t loadExperienceFile(ExperienceBase& base, const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("loadExperienceFile: cannot open " + path);
  return loadExperience(base, is);
}

std::optional<std::size_t> loadExperienceFileIfExists(ExperienceBase& base,
                                                      const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) return std::nullopt;
  return loadExperienceFile(base, path);
}

}  // namespace flames::diagnosis
