// Human-readable rendering of diagnosis reports (the Fig. 7 table format).
#pragma once

#include <string>

#include "diagnosis/ac_diagnosis.h"
#include "diagnosis/flames.h"

namespace flames::diagnosis {

/// Renders a dynamic-mode (AC or step-response) report.
[[nodiscard]] std::string renderAcReport(const AcDiagnosisReport& report);

/// Renders the full report: Dc table, ranked nogoods, ranked candidates with
/// fault modes, rule activations and experience hints.
[[nodiscard]] std::string renderReport(const DiagnosisReport& report);

/// One-line summary: "fault detected; best candidate {R2} (short, 0.97)".
[[nodiscard]] std::string summarizeReport(const DiagnosisReport& report);

/// Deterministic JSON rendering for golden-file regression tests: stable
/// key order, every number rounded to 6 decimals (so LU-pivot-order noise
/// below 1e-6 does not churn the goldens), wall-clock stats omitted.
[[nodiscard]] std::string reportJson(const DiagnosisReport& report);

/// Renders a component list like "{R1,R2,T1}".
[[nodiscard]] std::string renderComponents(
    const std::vector<std::string>& components);

}  // namespace flames::diagnosis
