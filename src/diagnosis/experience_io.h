// Persistence for the experience base (paper §7).
//
// Learning from experience is only useful if it survives the session: the
// symptom-failure rules are serialised to a small line-oriented text format
//
//   # FLAMES experience base v2
//   rule <component> <mode> <certainty> <confirmations> <n>
//   sym <quantity> <signedDc> <direction>     (n times)
//
// chosen for diffability and hand-editability (an expert can curate the
// rule base, which the paper explicitly wants to allow). The header line
// is a *versioned* format marker: v2 writes doubles with 17 significant
// digits (certainties round-trip bit-exactly, matching the certificate
// format of src/prov) and requires the symptom direction column; v1 files
// (default stream precision, optional direction) still load. Parse errors
// carry the 1-based line number of the offending line.
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "diagnosis/learning.h"

namespace flames::diagnosis {

/// Malformed experience stream; `line()` is the 1-based source line.
class ExperienceFormatError : public std::runtime_error {
 public:
  ExperienceFormatError(std::size_t line, const std::string& what)
      : std::runtime_error("loadExperience: line " + std::to_string(line) +
                           ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Writes every rule of the base to the stream.
void saveExperience(const ExperienceBase& base, std::ostream& os);

/// Parses rules from the stream into `base` (appended via the base's
/// merge-or-add logic is NOT used — rules are restored verbatim). Accepts
/// v1 and v2 files; an unknown format version is an error. Returns the
/// number of rules loaded; throws ExperienceFormatError (a
/// std::runtime_error) on a malformed stream, with the offending line
/// number.
std::size_t loadExperience(ExperienceBase& base, std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void saveExperienceFile(const ExperienceBase& base, const std::string& path);
std::size_t loadExperienceFile(ExperienceBase& base, const std::string& path);

/// Like loadExperienceFile, but a *missing* file is a normal first run:
/// returns std::nullopt and leaves `base` untouched. A file that exists but
/// cannot be opened or parsed still throws — silently replacing a corrupt
/// rule base with an empty one would destroy curated experience on the
/// next save.
std::optional<std::size_t> loadExperienceFileIfExists(ExperienceBase& base,
                                                      const std::string& path);

}  // namespace flames::diagnosis
