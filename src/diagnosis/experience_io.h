// Persistence for the experience base (paper §7).
//
// Learning from experience is only useful if it survives the session: the
// symptom-failure rules are serialised to a small line-oriented text format
//
//   rule <component> <mode> <certainty> <confirmations> <n>
//   sym <quantity> <signedDc> <direction>     (n times)
//
// chosen for diffability and hand-editability (an expert can curate the
// rule base, which the paper explicitly wants to allow).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "diagnosis/learning.h"

namespace flames::diagnosis {

/// Writes every rule of the base to the stream.
void saveExperience(const ExperienceBase& base, std::ostream& os);

/// Parses rules from the stream into `base` (appended via the base's
/// merge-or-add logic is NOT used — rules are restored verbatim).
/// Returns the number of rules loaded; throws std::runtime_error on a
/// malformed stream.
std::size_t loadExperience(ExperienceBase& base, std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void saveExperienceFile(const ExperienceBase& base, const std::string& path);
std::size_t loadExperienceFile(ExperienceBase& base, const std::string& path);

/// Like loadExperienceFile, but a *missing* file is a normal first run:
/// returns std::nullopt and leaves `base` untouched. A file that exists but
/// cannot be opened or parsed still throws — silently replacing a corrupt
/// rule base with an empty one would destroy curated experience on the
/// next save.
std::optional<std::size_t> loadExperienceFileIfExists(ExperienceBase& base,
                                                      const std::string& path);

}  // namespace flames::diagnosis
