#include "diagnosis/ac_diagnosis.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "atms/candidates.h"

namespace flames::diagnosis {

using atms::Environment;
using circuit::AcSolver;
using circuit::Component;
using circuit::ComponentKind;
using circuit::Netlist;
using constraints::Propagator;
using constraints::PropagatorOptions;
using constraints::QuantityId;
using fuzzy::FuzzyInterval;

std::string AcDiagnosisEngine::quantityName(const AcProbe& probe) {
  std::ostringstream os;
  os << "mag(V(" << probe.node << "))@" << probe.hertz << "Hz";
  return os.str();
}

AcDiagnosisEngine::AcDiagnosisEngine(Netlist net, std::string acSource,
                                     std::vector<AcProbe> probes,
                                     AcDiagnosisOptions options)
    : net_(std::move(net)),
      acSource_(std::move(acSource)),
      probes_(std::move(probes)),
      options_(options) {
  buildModel();
}

void AcDiagnosisEngine::buildModel() {
  // Assumptions per non-source component.
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kVSource) continue;
    assumptionOf_[c.name] = model_.addAssumption(c.name);
  }

  // Nominal responses.
  const AcSolver nominalSolver(net_, options_.ac);
  std::vector<double> nominal(probes_.size(), 0.0);
  for (std::size_t p = 0; p < probes_.size(); ++p) {
    nominal[p] = nominalSolver.gainMagnitude(probes_[p].hertz, acSource_,
                                             probes_[p].node);
    model_.addQuantity(quantityName(probes_[p]));
  }

  // Sensitivity analysis: bump each toleranced parameter, re-solve the AC
  // response, accumulate per-probe spreads and environments.
  std::vector<double> spread(probes_.size(), 0.0);
  std::vector<Environment> envs(probes_.size());
  for (const Component& c : net_.components()) {
    if (c.kind == ComponentKind::kVSource || c.relTol <= 0.0) continue;
    const Environment env = Environment::of({assumptionOf_.at(c.name)});
    for (double factor : {1.0 + c.relTol, 1.0 - c.relTol}) {
      Netlist bumped = net_;
      bumped.component(c.name).value *= factor;
      try {
        const AcSolver solver(bumped, options_.ac);
        for (std::size_t p = 0; p < probes_.size(); ++p) {
          const double m = solver.gainMagnitude(probes_[p].hertz, acSource_,
                                                probes_[p].node);
          const double delta = std::abs(m - nominal[p]);
          if (delta > options_.sensitivityThreshold) {
            spread[p] += delta * 0.5;  // average the +/- contributions
            envs[p] = envs[p].unionWith(env);
          }
        }
      } catch (const std::runtime_error&) {
        // A bump that breaks the bias is itself strong sensitivity; blame
        // the component across all probes with a generous spread.
        for (std::size_t p = 0; p < probes_.size(); ++p) {
          spread[p] += std::abs(nominal[p]) * c.relTol;
          envs[p] = envs[p].unionWith(env);
        }
      }
    }
  }

  for (std::size_t p = 0; p < probes_.size(); ++p) {
    const QuantityId q = model_.quantity(quantityName(probes_[p]));
    const double s =
        std::max(spread[p] * options_.spreadScale, 1e-12);
    model_.addPrediction(q, FuzzyInterval::about(nominal[p], s), envs[p]);
  }
}

void AcDiagnosisEngine::measure(const std::string& node, double hertz,
                                double magnitude) {
  const double s =
      std::max(std::abs(magnitude) * options_.measurementRelSpread, 1e-12);
  measure({node, hertz}, FuzzyInterval::about(magnitude, s));
}

void AcDiagnosisEngine::measure(const AcProbe& probe,
                                FuzzyInterval magnitude) {
  (void)model_.quantity(quantityName(probe));  // validates the probe
  observations_.push_back({probe, std::move(magnitude)});
}

void AcDiagnosisEngine::clearMeasurements() { observations_.clear(); }

double AcDiagnosisEngine::explanationDegreeAc(
    const circuit::Fault& fault,
    const std::vector<AcObservation>& observations) const {
  if (observations.empty()) return 0.0;
  const Netlist faulted = circuit::applyFaults(net_, {fault});
  double degree = 1.0;
  try {
    const AcSolver solver(faulted, options_.ac);
    for (const AcObservation& obs : observations) {
      const double sim = solver.gainMagnitude(obs.probe.hertz, acSource_,
                                              obs.probe.node);
      const double s =
          std::max(std::abs(sim) * options_.simulationRelSpread, 1e-9);
      const auto cons = fuzzy::degreeOfConsistency(
          obs.magnitude, FuzzyInterval::about(sim, s));
      degree = std::min(degree, cons.dc);
      if (degree == 0.0) break;
    }
  } catch (const std::runtime_error&) {
    return 0.0;
  }
  return degree;
}

AcDiagnosisReport AcDiagnosisEngine::diagnose() {
  AcDiagnosisReport report;

  PropagatorOptions popts;
  popts.minNogoodDegree = options_.minNogoodDegree;
  Propagator prop(model_, popts);
  for (const AcObservation& obs : observations_) {
    prop.addMeasurement(model_.quantity(quantityName(obs.probe)),
                        obs.magnitude);
  }
  prop.run();
  report.propagationCompleted = prop.completed();

  for (const AcObservation& obs : observations_) {
    const QuantityId q = model_.quantity(quantityName(obs.probe));
    MeasurementSummary ms;
    ms.quantity = model_.quantityInfo(q).name;
    ms.measured = obs.magnitude;
    if (const auto worst = prop.worstCoincidence(q)) {
      ms.nominal = worst->nominalSide;
      ms.dc = worst->consistency.dc;
      ms.signedDc = worst->consistency.signedDc();
    }
    report.measurements.push_back(std::move(ms));
  }

  const auto& db = prop.nogoods();
  for (const atms::Nogood& n : db.minimalNogoods(options_.minNogoodDegree)) {
    RankedNogood rn;
    rn.degree = n.degree;
    rn.note = n.note;
    for (atms::AssumptionId id : n.env.ids()) {
      rn.components.push_back(model_.assumptionName(id));
    }
    report.nogoods.push_back(std::move(rn));
  }
  for (const auto& [id, s] : atms::componentSuspicion(db)) {
    report.suspicion[model_.assumptionName(id)] = s;
  }

  const auto candidates = atms::candidatesAt(db, options_.minNogoodDegree,
                                             options_.maxFaultCardinality);
  for (const atms::Candidate& c : candidates) {
    RankedCandidate rc;
    rc.suspicion = c.suspicion;
    for (atms::AssumptionId id : c.members) {
      rc.components.push_back(model_.assumptionName(id));
    }
    if (options_.refineWithFaultModes && rc.components.size() == 1) {
      // Best AC-matching fault mode of the suspect.
      FaultModeMatch best;
      best.component = rc.components.front();
      best.mode = "none";
      for (const FaultMode& mode :
           standardModesFor(net_.component(rc.components.front()))) {
        const double d = explanationDegreeAc(mode.fault, observations_);
        if (d > best.matchDegree) {
          best.matchDegree = d;
          best.mode = mode.name;
        }
      }
      rc.modeMatch = best;
      rc.plausibility = best.matchDegree;
    } else {
      rc.plausibility = 0.5 * rc.suspicion;
    }
    report.candidates.push_back(std::move(rc));
  }
  std::sort(report.candidates.begin(), report.candidates.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              if (a.plausibility != b.plausibility) {
                return a.plausibility > b.plausibility;
              }
              if (a.components.size() != b.components.size()) {
                return a.components.size() < b.components.size();
              }
              return a.components < b.components;
            });
  return report;
}

}  // namespace flames::diagnosis
