// Best-test strategies with fuzzy estimations and fuzzy entropy (paper §8).
//
// The module under test is viewed as a system of components with fuzzy
// faultiness estimations expressed on a linguistic scale ("correct",
// "likely-correct", ... — §8.1). The uncertainty of the whole system is the
// fuzzy entropy Ent(S) = (+) F_i (*) log2(1 (/) F_i) (§8.2). To pick the
// next probe, each available test point is scored by its *expected* entropy:
// the fault hypotheses of the current suspects are simulated, suspects are
// clustered by the value the probe would read under their hypothesis, and
// each cluster ("outcome") contributes the entropy of the estimation vector
// it would leave behind, weighted by the cluster's faultiness mass. The
// recommended test minimises expected entropy per unit cost.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/fault.h"
#include "circuit/netlist.h"
#include "fuzzy/entropy.h"
#include "fuzzy/linguistic.h"

namespace flames::diagnosis {

/// A component with its fuzzy faultiness estimation.
struct ComponentEstimation {
  std::string component;
  fuzzy::FuzzyInterval faultiness;  ///< fuzzy subset of [0, 1]
  std::string term;                 ///< linguistic rendering
};

/// One probe point that could be measured next.
struct TestPoint {
  std::string node;
  double cost = 1.0;
};

/// A scored probe recommendation.
struct TestRecommendation {
  std::string node;
  fuzzy::FuzzyInterval expectedEntropy;
  double score = 0.0;  ///< defuzzified expected entropy x cost (lower wins)
  std::size_t outcomeClusters = 0;
};

struct TestSelectorOptions {
  /// Simulated probe values closer than this land in one outcome cluster.
  double clusterTolerance = 0.15;
  fuzzy::EntropyTermSemantics entropySemantics =
      fuzzy::EntropyTermSemantics::kTied;
};

/// Best-test recommendation engine.
class TestSelector {
 public:
  TestSelector(const circuit::Netlist& nominal,
               fuzzy::LinguisticScale scale =
                   fuzzy::LinguisticScale::defaultFaultiness(),
               TestSelectorOptions options = {});

  /// Builds linguistic estimations from component suspicion degrees
  /// (components absent from the map are estimated "correct").
  [[nodiscard]] std::vector<ComponentEstimation> estimationsFromSuspicion(
      const std::map<std::string, double>& suspicion) const;

  /// Fuzzy entropy of an estimation vector.
  [[nodiscard]] fuzzy::FuzzyInterval systemEntropy(
      const std::vector<ComponentEstimation>& estimations) const;

  /// Scores every probe point; results sorted best (lowest score) first.
  /// `hypotheses` maps each suspected component to its current best fault
  /// hypothesis (from the fault-mode unit); suspects without a simulatable
  /// hypothesis are treated as indistinguishable.
  [[nodiscard]] std::vector<TestRecommendation> rankTests(
      const std::vector<TestPoint>& probes,
      const std::vector<ComponentEstimation>& estimations,
      const std::map<std::string, circuit::Fault>& hypotheses) const;

  [[nodiscard]] const fuzzy::LinguisticScale& scale() const { return scale_; }

 private:
  const circuit::Netlist& nominal_;
  fuzzy::LinguisticScale scale_;
  TestSelectorOptions options_;
};

}  // namespace flames::diagnosis
