// Fuzzy fault modes and candidate refinement (paper §7).
//
// Common fault modes (open, short, high, low for resistors; open/short for
// diodes; dead / low-beta for transistors) are defined as fuzzy deviations
// of the component parameter. They are applied "only as a last step in order
// to refine candidate sets": for each suspected component, every fault mode
// is injected into the simulator and the resulting operating point is
// compared with the actual measurements through the degree of consistency;
// a component with a well-matching mode is a much stronger candidate than
// one with none. A continuous parameter-estimation mode (golden-section
// search on the deviation factor) covers soft faults like "R2 slightly
// high", reproducing the paper's Fig. 7 commentary ("R2 is very low or R3
// is very high").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "circuit/fault.h"
#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "fuzzy/fuzzy_interval.h"

namespace flames::diagnosis {

/// One candidate fault mode of a component.
struct FaultMode {
  std::string name;            ///< "open", "short", "high", "low", ...
  circuit::Fault fault;        ///< the injection realising the mode
};

/// The standard mode library for a component kind (paper §7's examples).
[[nodiscard]] std::vector<FaultMode> standardModesFor(
    const circuit::Component& c);

/// One observation to match against (node name + measured fuzzy value).
struct Observation {
  std::string node;
  fuzzy::FuzzyInterval value;
};

/// Result of matching one component's fault modes against the observations.
struct FaultModeMatch {
  std::string component;
  std::string mode;            ///< best-matching mode ("estimated" for the
                               ///< continuous parameter search)
  double matchDegree = 0.0;    ///< min-over-observations Dc in [0, 1]
  std::optional<double> estimatedValue;  ///< for the continuous mode
};

struct FaultModeOptions {
  /// Spread added to each simulated observable before the Dc comparison
  /// (absolute; models residual tolerance noise).
  double simulationSpread = 0.05;
  /// Golden-section iterations for the continuous parameter search.
  int estimationIterations = 48;
  /// Parameter scale-factor search range (log-uniform).
  double minScale = 1e-4;
  double maxScale = 1e4;
};

/// Matches every fault mode of `component` (plus the continuous estimation
/// mode for parameterised components) against the observations; returns the
/// best match. Simulation failures (non-convergent faulted circuits) score 0.
[[nodiscard]] FaultModeMatch bestFaultMode(
    const circuit::Netlist& nominal, const std::string& component,
    const std::vector<Observation>& observations, FaultModeOptions options = {});

/// Degree to which a specific fault hypothesis explains the observations:
/// min over observations of Dc(measured, simulated-with-fault).
[[nodiscard]] double explanationDegree(const circuit::Netlist& nominal,
                                       const circuit::Fault& fault,
                                       const std::vector<Observation>& observations,
                                       double simulationSpread);

}  // namespace flames::diagnosis
