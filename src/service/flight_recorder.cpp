#include "service/flight_recorder.h"

#include <iomanip>
#include <sstream>

namespace flames::service {

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {}

void FlightRecorder::record(FlightRecord rec) {
  if (capacity_ == 0) return;
  util::MutexLock lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(rec));
    next_ = ring_.size() % capacity_;
    return;
  }
  ring_[next_] = std::move(rec);
  next_ = (next_ + 1) % capacity_;
}

std::vector<FlightRecord> FlightRecorder::snapshot() const {
  util::MutexLock lock(mutex_);
  std::vector<FlightRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
    return out;
  }
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::recorded() const {
  util::MutexLock lock(mutex_);
  return total_;
}

std::string renderFlightRecords(const std::vector<FlightRecord>& records,
                                std::uint64_t totalRecorded) {
  std::ostringstream os;
  os << "=== flames flight recorder: " << records.size() << " of "
     << totalRecorded << " job(s) retained ===\n";
  os << std::fixed << std::setprecision(3);
  for (const FlightRecord& r : records) {
    os << "job " << r.jobId << ' ' << r.event;
    if (!r.error.empty()) os << " (" << r.error << ")";
    os << " queue=" << static_cast<double>(r.queueNanos) / 1e6
       << "ms run=" << static_cast<double>(r.runNanos) / 1e6 << "ms";
    if (r.entryCapUsed != 0) {
      os << " cap=" << r.entryCapUsed << (r.modelCacheHit ? " (cached)" : "");
    }
    if (r.provenanceSampled) {
      os << " | prov: " << r.provEntries << " entries, " << r.provNogoods
         << " nogoods";
      if (r.provNogoods != 0) {
        os << " (worst degree " << r.worstNogoodDegree << ")";
      }
      if (!r.candidates.empty()) {
        os << ", candidates";
        for (const std::string& c : r.candidates) os << ' ' << c;
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace flames::service
