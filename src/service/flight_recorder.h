// Per-service flight recorder: the last N jobs' outcome + provenance
// summaries in a bounded ring buffer.
//
// The service records one FlightRecord per resolved job (and one per
// cost-gate rejection). Records are cheap — outcome, timings, and, for
// jobs whose provenance was sampled, the counts and the hitting sets — so
// the buffer can stay on in production. When a job ends anomalously
// (failure, cancellation, deadline expiry, cost rejection) the service
// renders the whole buffer through ServiceOptions::flightDumpSink, giving
// the postmortem the context of what the workers were doing *around* the
// anomaly, not just the anomaly itself. On-demand:
// DiagnosisService::dumpFlightRecorder().
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_safety.h"

namespace flames::service {

/// One recorded job outcome.
struct FlightRecord {
  std::uint64_t jobId = 0;
  /// Outcome: done | failed | cancelled | deadline_exceeded | cost_rejected.
  std::string event;
  std::string error;  ///< failure detail, if any
  std::uint64_t queueNanos = 0;
  std::uint64_t runNanos = 0;
  bool modelCacheHit = false;
  std::size_t entryCapUsed = 0;
  /// Provenance summary — meaningful iff provenanceSampled.
  bool provenanceSampled = false;
  std::size_t provEntries = 0;
  std::size_t provNogoods = 0;
  double worstNogoodDegree = 0.0;
  /// The λ-cut hitting sets, rendered "{R2,R3}".
  std::vector<std::string> candidates;
};

/// Bounded, thread-safe ring buffer of FlightRecords. Capacity 0 disables
/// recording entirely (record() returns immediately).
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  void record(FlightRecord rec);

  /// The retained records, oldest first.
  [[nodiscard]] std::vector<FlightRecord> snapshot() const;

  /// Total records ever offered (including those since overwritten).
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::vector<FlightRecord> ring_ FLAMES_GUARDED_BY(mutex_);
  std::size_t next_ FLAMES_GUARDED_BY(mutex_) = 0;  ///< ring write cursor
  std::uint64_t total_ FLAMES_GUARDED_BY(mutex_) = 0;
};

/// Human-readable dump, one line per record, oldest first.
[[nodiscard]] std::string renderFlightRecords(
    const std::vector<FlightRecord>& records, std::uint64_t totalRecorded);

}  // namespace flames::service
