#include "service/model_cache.h"

#include <chrono>
#include <iomanip>
#include <sstream>

#include "obs/obs.h"

namespace flames::service {

namespace {

obs::Counter& cHits() {
  static obs::Counter& c = obs::counter("service.model_cache.hits");
  return c;
}
obs::Counter& cMisses() {
  static obs::Counter& c = obs::counter("service.model_cache.misses");
  return c;
}
obs::Counter& cEvictions() {
  static obs::Counter& c = obs::counter("service.model_cache.evictions");
  return c;
}
obs::Histogram& hBuildNs() {
  static obs::Histogram& h = obs::histogram("service.model_cache.build_ns");
  return h;
}
obs::Counter& cPeekHits() {
  static obs::Counter& c = obs::counter("service.model_cache.peek_hits");
  return c;
}
obs::Counter& cPeekMisses() {
  static obs::Counter& c = obs::counter("service.model_cache.peek_misses");
  return c;
}
obs::Histogram& hAnalyzeNs() {
  static obs::Histogram& h = obs::histogram("service.model_cache.analyze_ns");
  return h;
}

void putDouble(std::ostream& os, double v) {
  // max_digits10 round-trips every double, so distinct parameters can never
  // serialize to the same key.
  os << std::setprecision(17) << v << ';';
}

}  // namespace

CompiledModel::CompiledModel(std::shared_ptr<const circuit::Netlist> net,
                             const diagnosis::FlamesOptions& options)
    : net_(std::move(net)),
      built_(constraints::buildDiagnosticModel(*net_, options.model)) {
  if (options.installRegionRules) {
    diagnosis::addTransistorRegionRules(kb_, *net_, built_);
  }
  // One lint pass per compiled unit type, cached alongside the model. L6
  // (signs == nullptr) is deliberately left out: its per-component bump
  // simulations would dominate the compile and the build gate has already
  // guaranteed there are no error-grade netlist findings.
  lint::ModelLintInputs lintInputs;
  lintInputs.netlist = net_.get();
  lintInputs.built = &built_;
  lintInputs.kb = &kb_;
  lint_ = lint::lintModel(lintInputs, options.lint);
}

const diagnosis::SensitivitySigns& CompiledModel::sensitivitySigns(
    const diagnosis::DeviationAnalysisOptions& options) const {
  std::call_once(signsOnce_, [&] { signs_.emplace(*net_, options); });
  return *signs_;
}

const analyze::AnalysisReport& CompiledModel::analysis(
    const constraints::PropagatorOptions& propagation) const {
  std::call_once(analysisOnce_, [&] {
    const std::uint64_t start = obs::monotonicNanos();
    analysis_ = analyze::analyzeModel(built_,
                                      analyze::analysisOptionsFor(propagation));
    hAnalyzeNs().record(obs::monotonicNanos() - start);
  });
  return *analysis_;
}

std::string modelCacheKey(const circuit::Netlist& net,
                          const diagnosis::FlamesOptions& options) {
  std::ostringstream os;
  for (const circuit::Component& c : net.components()) {
    os << c.name << '|' << circuit::kindName(c.kind) << '|';
    for (circuit::NodeId pin : c.pins) os << net.nodeName(pin) << ',';
    os << '|';
    putDouble(os, c.value);
    putDouble(os, c.relTol);
    putDouble(os, c.vbe);
    putDouble(os, c.vbeSpread);
    if (c.maxCurrent) {
      putDouble(os, c.maxCurrent->m1());
      putDouble(os, c.maxCurrent->m2());
      putDouble(os, c.maxCurrent->alpha());
      putDouble(os, c.maxCurrent->beta());
    }
    os << '\n';
  }
  os << "opts|" << options.model.trustSources << '|'
     << options.model.addNominalPredictions << '|';
  putDouble(os, options.model.sensitivityThreshold);
  putDouble(os, options.model.spreadScale);
  os << '|' << options.installRegionRules << '|'
     << options.model.lintBeforeBuild;
  // The cached lint report depends on the rule toggles, so they are part of
  // the model identity too.
  os << '|' << options.lint.connectivity << options.lint.reachability
     << options.lint.fuzzyValues << options.lint.names
     << options.lint.knowledgeBase;
  return os.str();
}

std::uint64_t modelKeyDigest(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

ModelCache::ModelCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const CompiledModel> ModelCache::get(
    std::shared_ptr<const circuit::Netlist> net,
    const diagnosis::FlamesOptions& options, bool* cacheHit) {
  const std::string key = modelCacheKey(*net, options);

  std::promise<std::shared_ptr<const CompiledModel>> promise;
  ModelFuture future;
  std::uint64_t slotId = 0;
  bool builder = false;
  {
    util::MutexLock lock(mutex_);
    auto it = slots_.find(key);
    if (it != slots_.end()) {
      ++hits_;
      cHits().add();
      lru_.splice(lru_.begin(), lru_, it->second.lruIt);
      future = it->second.future;
    } else {
      ++misses_;
      cMisses().add();
      future = promise.get_future().share();
      lru_.push_front(key);
      slotId = nextSlotId_++;
      slots_.emplace(key, Slot{future, lru_.begin(), slotId});
      builder = true;
      // Evict least-recently-used entries beyond capacity (never the slot
      // just inserted at the front). Waiters on an evicted in-flight build
      // keep their shared_future, so eviction is always safe.
      while (slots_.size() > capacity_ && lru_.back() != key) {
        slots_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
        cEvictions().add();
      }
    }
    if (cacheHit != nullptr) *cacheHit = !builder;
  }

  if (builder) {
    try {
      const std::uint64_t start = obs::monotonicNanos();
      auto model = std::make_shared<const CompiledModel>(std::move(net),
                                                         options);
      hBuildNs().record(obs::monotonicNanos() - start);
      promise.set_value(std::move(model));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Drop the failed slot (unless eviction already did, or a retry
      // replaced it) so the next request for this key can try again.
      util::MutexLock lock(mutex_);
      auto it = slots_.find(key);
      if (it != slots_.end() && it->second.id == slotId) {
        lru_.erase(it->second.lruIt);
        slots_.erase(it);
      }
    }
  }
  return future.get();  // rethrows the builder's exception for every waiter
}

std::shared_ptr<const CompiledModel> ModelCache::peek(
    const circuit::Netlist& net,
    const diagnosis::FlamesOptions& options) const {
  const std::string key = modelCacheKey(net, options);
  ModelFuture future;
  {
    util::MutexLock lock(mutex_);
    auto it = slots_.find(key);
    if (it != slots_.end()) future = it->second.future;
  }
  // The readiness probe happens outside the lock: wait_for(0) on a future
  // another thread is still fulfilling is fine, blocking the cache on it
  // would not be.
  if (future.valid() &&
      future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    try {
      std::shared_ptr<const CompiledModel> model = future.get();
      cPeekHits().add();
      return model;
    } catch (...) {
      // A failed build: the owner is cleaning the slot up; report a miss.
    }
  }
  cPeekMisses().add();
  return nullptr;
}

ModelCacheStats ModelCache::stats() const {
  util::MutexLock lock(mutex_);
  ModelCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = slots_.size();
  s.capacity = capacity_;
  return s;
}

void ModelCache::clear() {
  util::MutexLock lock(mutex_);
  slots_.clear();
  lru_.clear();
}

}  // namespace flames::service
