// Compiled-model cache for the batch-diagnosis service.
//
// Building a diagnostic model is the dominant fixed cost of a diagnosis:
// the MNA nominal solve, per-component sensitivity perturbations, constraint
// stamping and prediction construction all happen before the first
// measurement is looked at. In the service workload (a stream of units of
// the same few types crossing the bench) that cost is paid once per *unit
// type*, not once per unit: CompiledModels are cached under a content hash
// of the netlist plus the build options, shared read-only across workers,
// and evicted LRU. Concurrent requests for an uncached key are deduplicated
// so exactly one thread builds while the rest block on the same future.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <future>
#include <string>
#include <unordered_map>

#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "diagnosis/deviation_analysis.h"
#include "diagnosis/flames.h"
#include "diagnosis/knowledge_base.h"
#include "lint/model_lint.h"

namespace flames::service {

/// One unit type compiled for diagnosis: the constraint/prediction model,
/// the per-netlist knowledge base (operating-region rules — rule quantity
/// ids are only meaningful against this model, which is why the KB lives
/// here and not service-wide), and a lazily built sensitivity-sign matrix.
/// Immutable after construction except the sign matrix, whose one-time
/// build is serialized by call_once; a CompiledModel therefore backs any
/// number of concurrent diagnoses.
class CompiledModel {
 public:
  CompiledModel(std::shared_ptr<const circuit::Netlist> net,
                const diagnosis::FlamesOptions& options);

  [[nodiscard]] const circuit::Netlist& netlist() const { return *net_; }
  [[nodiscard]] std::shared_ptr<const circuit::Netlist> netlistPtr() const {
    return net_;
  }
  [[nodiscard]] const constraints::BuiltModel& built() const { return built_; }
  [[nodiscard]] const diagnosis::KnowledgeBase& knowledgeBase() const {
    return kb_;
  }

  /// The static-analysis report for this unit type (rules L1-L5; L6 is
  /// excluded because it costs one bump simulation per component — audit
  /// surfaces run it explicitly). Computed once at compile time and shared
  /// by every job that hits this cache entry, so per-job lint cost on a
  /// cache hit is zero.
  [[nodiscard]] const lint::LintReport& lintReport() const { return lint_; }

  /// The sensitivity-sign matrix (one bump simulation per component), built
  /// on first use and reused by every later job on this unit type. The
  /// first caller's options win; requests sharing a cache entry share their
  /// build options by construction, and deviation options do not vary
  /// within a unit type in practice.
  [[nodiscard]] const diagnosis::SensitivitySigns& sensitivitySigns(
      const diagnosis::DeviationAnalysisOptions& options) const;

 private:
  std::shared_ptr<const circuit::Netlist> net_;
  constraints::BuiltModel built_;
  diagnosis::KnowledgeBase kb_;
  lint::LintReport lint_;
  mutable std::once_flag signsOnce_;
  mutable std::optional<diagnosis::SensitivitySigns> signs_;
};

/// Canonical content key of (netlist, model build options, region-rule
/// switch). Two requests with equal keys compile to interchangeable models;
/// the full serialization is used as the map key so hash collisions cannot
/// alias distinct circuits.
[[nodiscard]] std::string modelCacheKey(
    const circuit::Netlist& net, const diagnosis::FlamesOptions& options);

/// FNV-1a digest of a key, for compact logging.
[[nodiscard]] std::uint64_t modelKeyDigest(const std::string& key);

struct ModelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// LRU cache of CompiledModels keyed by content. get() blocks until the
/// model is available (building it on this thread if the key is new);
/// failures propagate to every waiter and the slot is removed so a later
/// request can retry. Mirrors hit/miss/eviction counts into flames::obs
/// ("service.model_cache.*") on top of its always-on local stats.
class ModelCache {
 public:
  explicit ModelCache(std::size_t capacity = 16);

  /// Returns the compiled model for this netlist + options, building it if
  /// absent. `cacheHit` (optional) reports whether an existing entry (or an
  /// in-flight build started by another thread) was reused.
  [[nodiscard]] std::shared_ptr<const CompiledModel> get(
      std::shared_ptr<const circuit::Netlist> net,
      const diagnosis::FlamesOptions& options, bool* cacheHit = nullptr);

  [[nodiscard]] ModelCacheStats stats() const;
  void clear();

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const CompiledModel>>;
  struct Slot {
    ModelFuture future;
    std::list<std::string>::iterator lruIt;
    std::uint64_t id = 0;  ///< generation tag for failure cleanup
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::unordered_map<std::string, Slot> slots_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::uint64_t nextSlotId_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace flames::service
