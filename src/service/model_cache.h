// Compiled-model cache for the batch-diagnosis service.
//
// Building a diagnostic model is the dominant fixed cost of a diagnosis:
// the MNA nominal solve, per-component sensitivity perturbations, constraint
// stamping and prediction construction all happen before the first
// measurement is looked at. In the service workload (a stream of units of
// the same few types crossing the bench) that cost is paid once per *unit
// type*, not once per unit: CompiledModels are cached under a content hash
// of the netlist plus the build options, shared read-only across workers,
// and evicted LRU. Concurrent requests for an uncached key are deduplicated
// so exactly one thread builds while the rest block on the same future.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <future>
#include <string>
#include <unordered_map>

#include "util/thread_safety.h"

#include "analyze/analyze.h"
#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "diagnosis/deviation_analysis.h"
#include "diagnosis/flames.h"
#include "diagnosis/knowledge_base.h"
#include "lint/model_lint.h"

namespace flames::service {

/// One unit type compiled for diagnosis: the constraint/prediction model,
/// the per-netlist knowledge base (operating-region rules — rule quantity
/// ids are only meaningful against this model, which is why the KB lives
/// here and not service-wide), and a lazily built sensitivity-sign matrix.
/// Immutable after construction except the sign matrix, whose one-time
/// build is serialized by call_once; a CompiledModel therefore backs any
/// number of concurrent diagnoses.
class CompiledModel {
 public:
  CompiledModel(std::shared_ptr<const circuit::Netlist> net,
                const diagnosis::FlamesOptions& options);

  [[nodiscard]] const circuit::Netlist& netlist() const { return *net_; }
  [[nodiscard]] std::shared_ptr<const circuit::Netlist> netlistPtr() const {
    return net_;
  }
  [[nodiscard]] const constraints::BuiltModel& built() const { return built_; }
  [[nodiscard]] const diagnosis::KnowledgeBase& knowledgeBase() const {
    return kb_;
  }

  /// The static-analysis report for this unit type (rules L1-L5; L6 is
  /// excluded because it costs one bump simulation per component — audit
  /// surfaces run it explicitly). Computed once at compile time and shared
  /// by every job that hits this cache entry, so per-job lint cost on a
  /// cache hit is zero.
  [[nodiscard]] const lint::LintReport& lintReport() const { return lint_; }

  /// The sensitivity-sign matrix (one bump simulation per component), built
  /// on first use and reused by every later job on this unit type. The
  /// first caller's options win; requests sharing a cache entry share their
  /// build options by construction, and deviation options do not vary
  /// within a unit type in practice.
  [[nodiscard]] const diagnosis::SensitivitySigns& sensitivitySigns(
      const diagnosis::DeviationAnalysisOptions& options) const;

  /// The pre-propagation static analysis (flames::analyze): envelopes, cost
  /// bounds, derived entry cap and A1-A3 findings for this unit type. Built
  /// on first use from the caller's propagation knobs and shared by every
  /// later job on this cache entry — the same first-caller-wins policy as
  /// sensitivitySigns(), and for the same reason: propagation options do
  /// not vary within a unit type in practice, and the certificates only
  /// need to cover the configuration the service actually runs.
  [[nodiscard]] const analyze::AnalysisReport& analysis(
      const constraints::PropagatorOptions& propagation) const;

 private:
  std::shared_ptr<const circuit::Netlist> net_;
  constraints::BuiltModel built_;
  diagnosis::KnowledgeBase kb_;
  lint::LintReport lint_;
  mutable std::once_flag signsOnce_;
  mutable std::optional<diagnosis::SensitivitySigns> signs_;
  mutable std::once_flag analysisOnce_;
  mutable std::optional<analyze::AnalysisReport> analysis_;
};

/// Canonical content key of (netlist, model build options, region-rule
/// switch). Two requests with equal keys compile to interchangeable models;
/// the full serialization is used as the map key so hash collisions cannot
/// alias distinct circuits.
[[nodiscard]] std::string modelCacheKey(
    const circuit::Netlist& net, const diagnosis::FlamesOptions& options);

/// FNV-1a digest of a key, for compact logging.
[[nodiscard]] std::uint64_t modelKeyDigest(const std::string& key);

struct ModelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  std::size_t capacity = 0;
};

/// LRU cache of CompiledModels keyed by content. get() blocks until the
/// model is available (building it on this thread if the key is new);
/// failures propagate to every waiter and the slot is removed so a later
/// request can retry. Mirrors hit/miss/eviction counts into flames::obs
/// ("service.model_cache.*") on top of its always-on local stats.
class ModelCache {
 public:
  explicit ModelCache(std::size_t capacity = 16);

  /// Returns the compiled model for this netlist + options, building it if
  /// absent. `cacheHit` (optional) reports whether an existing entry (or an
  /// in-flight build started by another thread) was reused.
  [[nodiscard]] std::shared_ptr<const CompiledModel> get(
      std::shared_ptr<const circuit::Netlist> net,
      const diagnosis::FlamesOptions& options, bool* cacheHit = nullptr);

  /// Non-blocking lookup: the compiled model if this key is cached and its
  /// build already finished, nullptr otherwise (absent, still building, or
  /// build failed). Never builds, never blocks on a build, and leaves the
  /// LRU order and hit/miss stats untouched — intended for intake-path
  /// consumers (the submit cost gate) that must not pay compile latency.
  /// Mirrored into obs as "service.model_cache.peek_{hits,misses}".
  [[nodiscard]] std::shared_ptr<const CompiledModel> peek(
      const circuit::Netlist& net,
      const diagnosis::FlamesOptions& options) const;

  [[nodiscard]] ModelCacheStats stats() const;
  void clear();

 private:
  using ModelFuture = std::shared_future<std::shared_ptr<const CompiledModel>>;
  struct Slot {
    ModelFuture future;
    std::list<std::string>::iterator lruIt;
    std::uint64_t id = 0;  ///< generation tag for failure cleanup
  };

  mutable util::Mutex mutex_;
  std::size_t capacity_;  ///< immutable after construction
  std::unordered_map<std::string, Slot> slots_ FLAMES_GUARDED_BY(mutex_);
  /// front = most recently used
  std::list<std::string> lru_ FLAMES_GUARDED_BY(mutex_);
  std::uint64_t nextSlotId_ FLAMES_GUARDED_BY(mutex_) = 1;
  std::uint64_t hits_ FLAMES_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ FLAMES_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ FLAMES_GUARDED_BY(mutex_) = 0;
};

}  // namespace flames::service
