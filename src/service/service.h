// flames::service — concurrent batch-diagnosis engine.
//
// The ROADMAP workload is a *stream* of diagnosis requests against a shared
// knowledge base (one ATE bench feeding many units under test through the
// Fig. 3 pipeline). DiagnosisService runs that stream on a fixed worker
// pool:
//
//   * a bounded work queue with backpressure — submit() blocks while the
//     queue is full, trySubmit() refuses instead;
//   * per-job deadlines and cooperative cancellation, polled at
//     propagator-step granularity through PropagatorOptions::cancelCheck;
//   * the compiled-model cache (service/model_cache.h), so repeated
//     requests against one unit type skip the MNA solve and model build;
//   * a service-wide experience base shared by all workers: diagnoses read
//     it under a shared lock, confirm() writes under an exclusive lock, so
//     what one job learns is visible to every later job without races.
//
// Results come back through a shared_future on the JobHandle; every job
// also carries queue/run timings and whether it hit the model cache.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "diagnosis/flames.h"
#include "diagnosis/learning.h"
#include "kb/store.h"
#include "service/flight_recorder.h"
#include "service/model_cache.h"
#include "util/thread_safety.h"

namespace flames::service {

/// One unit of work: which board, what was measured, how to diagnose it.
struct DiagnosisRequest {
  std::shared_ptr<const circuit::Netlist> netlist;
  std::vector<diagnosis::Observation> measurements;
  /// Follow-up probes applied one at a time *after* the initial
  /// measurements, through the compiled-schedule incremental path
  /// (diagnosis::IncrementalSession): each probe extends the existing entry
  /// lists, ATMS labels and nogoods inside its impact cone instead of
  /// re-propagating from scratch. The job's report reflects the state after
  /// the last probe. Empty = the ordinary single-shot diagnosis.
  std::vector<diagnosis::Observation> probeSequence;
  diagnosis::FlamesOptions options;
  /// Wall-clock budget measured from submit; 0 = the service default (which
  /// itself defaults to "no deadline"). An expired job is abandoned at the
  /// next cancellation point — or before it starts, if it expired queued.
  std::chrono::nanoseconds deadline{0};
};

/// Fuzzifies a crisp meter reading exactly like FlamesEngine::measure().
[[nodiscard]] diagnosis::Observation crispMeasurement(std::string node,
                                                      double volts,
                                                      double spread = 0.05);

enum class JobStatus {
  kQueued,
  kRunning,
  kDone,
  kCancelled,
  kDeadlineExceeded,
  kFailed,
};

[[nodiscard]] std::string_view jobStatusName(JobStatus s);

struct JobResult {
  JobStatus status = JobStatus::kFailed;
  /// Service-assigned id, correlating this result with the flight recorder
  /// and with trace spans (Chrome trace "args.job").
  std::uint64_t jobId = 0;
  diagnosis::DiagnosisReport report;  ///< meaningful iff status == kDone
  std::string error;                  ///< iff status == kFailed
  bool modelCacheHit = false;
  /// The propagation entry cap the job actually ran with — the requested
  /// cap, lowered to the analysis-derived one when
  /// ServiceOptions::applyDerivedEntryCap is set.
  std::size_t entryCapUsed = 0;
  /// Probes from DiagnosisRequest::probeSequence that ran through the
  /// incremental session (0 for single-shot jobs).
  std::size_t incrementalProbes = 0;
  std::uint64_t queueNanos = 0;  ///< submit -> worker pickup
  std::uint64_t runNanos = 0;    ///< pickup -> completion
};

class DiagnosisService;

/// Handle to a submitted job. cancel() is cooperative: a queued job
/// resolves kCancelled without running; a running job stops at its next
/// cancellation check (every propagation step, every fault-mode screen).
class Job {
 public:
  [[nodiscard]] std::shared_future<JobResult> future() const {
    return future_;
  }
  /// Blocks until the job resolves. The reference is into the job's shared
  /// state: it stays valid only while a JobHandle (or a copy of future())
  /// is alive — keep the handle, don't call through a temporary.
  [[nodiscard]] const JobResult& wait() const { return future_.get(); }
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelRequested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  /// Service-assigned id (1, 2, ...), stable across the job's lifetime.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  friend class DiagnosisService;
  std::uint64_t id_ = 0;
  DiagnosisRequest request_;
  std::promise<JobResult> promise_;
  std::shared_future<JobResult> future_;
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point submitted_;
  std::chrono::steady_clock::time_point deadlineAt_{};  ///< epoch = none
};

using JobHandle = std::shared_ptr<Job>;

struct ServiceOptions {
  /// 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// Queue slots before submit() blocks (backpressure bound).
  std::size_t queueCapacity = 256;
  std::size_t modelCacheCapacity = 16;
  /// Applied to requests that carry no deadline of their own; 0 = none.
  std::chrono::nanoseconds defaultDeadline{0};
  diagnosis::LearningOptions learning;
  /// Configuration of the persistent experience store (src/kb) every
  /// worker shares: durability directory (empty = in-memory), this
  /// instance's origin id for cross-instance merges, fusion policy, decay
  /// policy, auto-snapshot cadence, crash-injection hooks. `kb.learning`
  /// is ignored — `learning` above is authoritative for both.
  kb::KbOptions kb;
  /// Run the cheap netlist-level lint rules at submit() and reject
  /// error-grade requests with lint::LintError before they ever reach the
  /// worker pool — a job against a broken netlist would only fail later,
  /// after occupying a queue slot and a worker. Findings are mirrored into
  /// the obs counters lint_errors_total / lint_warnings_total. The rule
  /// toggles come from each request's options.lint.
  bool lintOnSubmit = true;
  /// Gate submissions on the static cost analysis: a request whose unit
  /// type is already compiled and whose cost model is intractable even at
  /// the floor entry cap (the A2 error) is rejected with
  /// analyze::AnalysisError before it costs a queue slot or a worker.
  /// Only a non-blocking cache peek is consulted — the gate never compiles
  /// a model on the intake path, so the first job of a type always runs
  /// (bounded by maxSteps) and later submissions of a hopeless type are
  /// refused. Rejections count into
  /// "service.analyze.cost_rejections_total".
  bool analyzeOnSubmit = true;
  /// Cap each job's maxEntriesPerQuantity at the analysis-derived
  /// per-model cap (analyze::recommendedEntryCap, never below the floor):
  /// mesh-dense unit types run with a tighter cap so their propagation
  /// work fits the admission budget, tree-shaped ones keep the requested
  /// cap. Clamps count into "service.analyze.cap_clamped_total".
  bool applyDerivedEntryCap = true;
  /// Flight-recorder ring capacity (recent job records retained for
  /// postmortems); 0 disables the recorder.
  std::size_t flightRecorderCapacity = 64;
  /// Sample full derivation provenance on every Nth job (by job id) so the
  /// flight recorder carries derivation summaries without paying the
  /// recording cost on every job. 1 = every job, 0 = never. A request that
  /// itself sets options.recordProvenance is always recorded.
  std::uint64_t provenanceSampleEvery = 16;
  /// Sink for automatic flight-recorder dumps, invoked with the rendered
  /// buffer whenever a job resolves anomalously (failed, cancelled,
  /// deadline exceeded) or a submission is rejected by the cost gate.
  /// Null (default) disables automatic dumps; dumpFlightRecorder() always
  /// works. Called from worker (or submitting) threads — keep it cheap and
  /// thread-safe.
  std::function<void(const std::string&)> flightDumpSink;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadlineExceeded = 0;
  /// Submissions refused by the static cost gate (analyzeOnSubmit).
  std::uint64_t costRejections = 0;
  std::size_t queueDepth = 0;
  std::size_t workers = 0;
  std::size_t experienceRules = 0;
  /// Persistent-store accounting (rules, tombstones, WAL depth,
  /// compactions, merges — see kb::KbStats).
  kb::KbStats kb;
  ModelCacheStats modelCache;
};

/// The batch-diagnosis engine. Thread-safe; one instance serves any number
/// of submitting threads. Destruction stops intake, drains queued jobs and
/// joins the workers.
class DiagnosisService {
 public:
  explicit DiagnosisService(ServiceOptions options = {});
  ~DiagnosisService();
  DiagnosisService(const DiagnosisService&) = delete;
  DiagnosisService& operator=(const DiagnosisService&) = delete;

  /// Enqueues a job, blocking while the queue is full (backpressure).
  /// Throws std::runtime_error after shutdown began, lint::LintError when
  /// ServiceOptions::lintOnSubmit finds error-grade netlist problems (the
  /// job is rejected without touching the queue or the worker pool).
  JobHandle submit(DiagnosisRequest request);

  /// Non-blocking variant: returns nullptr instead of waiting for a slot.
  JobHandle trySubmit(DiagnosisRequest request);

  /// Records a confirmed diagnosis into the shared experience store (§7
  /// learning; WAL-logged when the store is durable). Takes the exclusive
  /// lock; every job submitted afterwards sees the new rule.
  void confirm(const diagnosis::DiagnosisReport& report,
               const std::string& component, const std::string& mode);

  /// Records that a learned rule's suggestion proved wrong: every rule for
  /// this component/mode decays (and is evicted below the floor).
  void recordFailure(const std::string& component, const std::string& mode);

  /// Copy of the *fused* experience view (for persistence via
  /// experience_io): one rule per signature with certainties fused across
  /// origins per the store's FusionPolicy.
  [[nodiscard]] diagnosis::ExperienceBase snapshotExperience() const;

  /// Destructively replaces the experience store's content with `base`
  /// (for loading legacy persisted rules; kb-native flows use
  /// mergeExperienceFrom / the durability directory instead).
  void seedExperience(diagnosis::ExperienceBase base);

  /// Canonical serialization of the experience store — the merge payload
  /// and the convergence witness: two stores with equal state export
  /// byte-identical strings.
  [[nodiscard]] std::string exportExperienceState() const;

  /// Joins a peer instance's experience into this one (order-independent:
  /// a.mergeExperienceFrom(b) and b.mergeExperienceFrom(a) converge to the
  /// identical store). Durable stores compact immediately so the merge is
  /// atomic on disk.
  void mergeExperienceFrom(const DiagnosisService& other);
  void mergeExperienceState(const std::string& state);

  /// Forces a snapshot compaction of a durable experience store.
  void compactExperience();

  /// One age-based decay sweep over this instance's learned rules.
  void decayExperience();

  /// Blocks until every job submitted so far has resolved.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t workerCount() const { return workers_.size(); }

  /// Renders the flight recorder's current contents (on-demand postmortem;
  /// the automatic path goes through ServiceOptions::flightDumpSink).
  [[nodiscard]] std::string dumpFlightRecorder() const;
  /// The raw retained records, oldest first.
  [[nodiscard]] std::vector<FlightRecord> flightRecords() const {
    return recorder_.snapshot();
  }

 private:
  void workerLoop();
  void runJob(Job& job);
  void finish(Job& job, JobResult result);

  ServiceOptions options_;
  ModelCache cache_;
  FlightRecorder recorder_;
  std::atomic<std::uint64_t> nextJobId_{1};

  mutable util::Mutex queueMutex_;
  util::CondVar notEmpty_;
  util::CondVar notFull_;
  util::CondVar idle_;
  std::deque<JobHandle> queue_ FLAMES_GUARDED_BY(queueMutex_);
  std::size_t activeJobs_ FLAMES_GUARDED_BY(queueMutex_) = 0;
  bool stopping_ FLAMES_GUARDED_BY(queueMutex_) = false;

  mutable util::SharedMutex experienceMutex_;
  kb::KbStore experience_ FLAMES_GUARDED_BY(experienceMutex_);

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadlineExceeded_{0};
  std::atomic<std::uint64_t> costRejections_{0};

  std::vector<std::thread> workers_;
};

}  // namespace flames::service
