#include "service/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "analyze/analyze.h"
#include "lint/lint.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::service {

namespace {

obs::Counter& cSubmitted() {
  static obs::Counter& c = obs::counter("service.jobs.submitted");
  return c;
}
obs::Counter& cCompleted() {
  static obs::Counter& c = obs::counter("service.jobs.completed");
  return c;
}
obs::Counter& cFailed() {
  static obs::Counter& c = obs::counter("service.jobs.failed");
  return c;
}
obs::Counter& cCancelled() {
  static obs::Counter& c = obs::counter("service.jobs.cancelled");
  return c;
}
obs::Counter& cDeadline() {
  static obs::Counter& c = obs::counter("service.jobs.deadline_exceeded");
  return c;
}
obs::Histogram& hQueueNs() {
  static obs::Histogram& h = obs::histogram("service.job.queue_ns");
  return h;
}
obs::Histogram& hRunNs() {
  static obs::Histogram& h = obs::histogram("service.job.run_ns");
  return h;
}
obs::Counter& cCostRejections() {
  static obs::Counter& c =
      obs::counter("service.analyze.cost_rejections_total");
  return c;
}
obs::Counter& cCapClamped() {
  static obs::Counter& c = obs::counter("service.analyze.cap_clamped_total");
  return c;
}

std::uint64_t nanosBetween(std::chrono::steady_clock::time_point from,
                           std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

diagnosis::Observation crispMeasurement(std::string node, double volts,
                                        double spread) {
  return {std::move(node),
          fuzzy::FuzzyInterval::about(volts, std::max(spread, 1e-12))};
}

std::string_view jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::kQueued: return "queued";
    case JobStatus::kRunning: return "running";
    case JobStatus::kDone: return "done";
    case JobStatus::kCancelled: return "cancelled";
    case JobStatus::kDeadlineExceeded: return "deadline_exceeded";
    case JobStatus::kFailed: return "failed";
  }
  return "?";
}

namespace {

kb::KbOptions mergedKbOptions(const ServiceOptions& options) {
  kb::KbOptions ko = options.kb;
  ko.learning = options.learning;  // ServiceOptions::learning is authoritative
  return ko;
}

}  // namespace

DiagnosisService::DiagnosisService(ServiceOptions options)
    : options_(options),
      cache_(options.modelCacheCapacity),
      recorder_(options.flightRecorderCapacity),
      experience_(mergedKbOptions(options)) {
  std::size_t n = options_.workers;
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

DiagnosisService::~DiagnosisService() {
  {
    util::MutexLock lock(queueMutex_);
    stopping_ = true;
  }
  notEmpty_.notifyAll();
  notFull_.notifyAll();
  for (std::thread& w : workers_) w.join();
}

JobHandle DiagnosisService::submit(DiagnosisRequest request) {
  if (options_.lintOnSubmit && request.netlist != nullptr) {
    // Netlist-level rules only (L1/L3/L4): cheap enough for the intake
    // path, and the model-level rules run once per unit type inside the
    // compile cache anyway. Error-grade findings reject the job here,
    // before it costs a queue slot.
    const lint::LintReport report =
        lint::lintNetlist(*request.netlist, request.options.lint);
    lint::recordObsCounters(report);
    lint::enforce(report, request.options.lint.warningsAsErrors);
  }
  if (options_.analyzeOnSubmit && request.netlist != nullptr) {
    // Static cost gate. Consult only the non-blocking cache peek: the gate
    // must not compile on the intake path, so an uncached type passes (its
    // first job compiles in a worker, bounded by maxSteps) and every later
    // submission of a type known to be intractable is refused here.
    if (const std::shared_ptr<const CompiledModel> model =
            cache_.peek(*request.netlist, request.options)) {
      const analyze::AnalysisReport& analysis =
          model->analysis(request.options.propagation);
      if (analysis.cost.intractableAtFloor) {
        costRejections_.fetch_add(1, std::memory_order_relaxed);
        cCostRejections().add();
        std::string message =
            "DiagnosisService: model rejected by the static cost gate";
        for (const lint::Diagnostic& d : analysis.findings.diagnostics) {
          if (d.severity == lint::Severity::kError) {
            message += ": " + d.rule + " " + d.message;
            break;
          }
        }
        FlightRecord rec;
        rec.jobId = nextJobId_.fetch_add(1, std::memory_order_relaxed);
        rec.event = "cost_rejected";
        rec.error = message;
        recorder_.record(std::move(rec));
        if (options_.flightDumpSink) {
          options_.flightDumpSink(dumpFlightRecorder());
        }
        throw analyze::AnalysisError(message);
      }
    }
  }
  auto job = std::make_shared<Job>();
  job->id_ = nextJobId_.fetch_add(1, std::memory_order_relaxed);
  job->request_ = std::move(request);
  job->future_ = job->promise_.get_future().share();
  {
    util::MutexLock lock(queueMutex_);
    while (!stopping_ && queue_.size() >= options_.queueCapacity) {
      notFull_.wait(queueMutex_);
    }
    if (stopping_) {
      throw std::runtime_error("DiagnosisService: submit after shutdown");
    }
    job->submitted_ = std::chrono::steady_clock::now();
    const auto deadline = job->request_.deadline.count() != 0
                              ? job->request_.deadline
                              : options_.defaultDeadline;
    if (deadline.count() != 0) job->deadlineAt_ = job->submitted_ + deadline;
    queue_.push_back(job);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  cSubmitted().add();
  notEmpty_.notifyOne();
  return job;
}

JobHandle DiagnosisService::trySubmit(DiagnosisRequest request) {
  {
    util::MutexLock lock(queueMutex_);
    if (stopping_) {
      throw std::runtime_error("DiagnosisService: submit after shutdown");
    }
    if (queue_.size() >= options_.queueCapacity) return nullptr;
  }
  // The queue may have refilled between the check and submit(), in which
  // case submit blocks briefly; capacity races resolve towards blocking,
  // not towards unbounded growth.
  return submit(std::move(request));
}

void DiagnosisService::confirm(const diagnosis::DiagnosisReport& report,
                               const std::string& component,
                               const std::string& mode) {
  util::WriterLock lock(experienceMutex_);
  experience_.recordSuccess(report.signature, component, mode);
}

void DiagnosisService::recordFailure(const std::string& component,
                                     const std::string& mode) {
  util::WriterLock lock(experienceMutex_);
  experience_.recordFailure(component, mode);
}

diagnosis::ExperienceBase DiagnosisService::snapshotExperience() const {
  util::ReaderLock lock(experienceMutex_);
  return experience_.materialized();
}

void DiagnosisService::seedExperience(diagnosis::ExperienceBase base) {
  util::WriterLock lock(experienceMutex_);
  experience_.seed(base);
}

std::string DiagnosisService::exportExperienceState() const {
  util::ReaderLock lock(experienceMutex_);
  return experience_.serialize();
}

void DiagnosisService::mergeExperienceFrom(const DiagnosisService& other) {
  // Two-phase to keep lock acquisition strictly sequential: copy the peer
  // state under *its* reader lock, then join under *our* writer lock. Safe
  // for concurrent a.mergeExperienceFrom(b) / b.mergeExperienceFrom(a).
  mergeExperienceState(other.exportExperienceState());
}

void DiagnosisService::mergeExperienceState(const std::string& state) {
  util::WriterLock lock(experienceMutex_);
  experience_.mergeState(state);
}

void DiagnosisService::compactExperience() {
  util::WriterLock lock(experienceMutex_);
  experience_.compact();
}

void DiagnosisService::decayExperience() {
  util::WriterLock lock(experienceMutex_);
  experience_.decay();
}

void DiagnosisService::drain() {
  util::MutexLock lock(queueMutex_);
  while (!queue_.empty() || activeJobs_ != 0) idle_.wait(queueMutex_);
}

ServiceStats DiagnosisService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.deadlineExceeded = deadlineExceeded_.load(std::memory_order_relaxed);
  s.costRejections = costRejections_.load(std::memory_order_relaxed);
  {
    util::MutexLock lock(queueMutex_);
    s.queueDepth = queue_.size();
  }
  s.workers = workers_.size();
  {
    util::ReaderLock lock(experienceMutex_);
    s.experienceRules = experience_.materialized().size();
    s.kb = experience_.stats();
  }
  s.modelCache = cache_.stats();
  return s;
}

void DiagnosisService::workerLoop() {
  for (;;) {
    JobHandle job;
    {
      util::MutexLock lock(queueMutex_);
      while (!stopping_ && queue_.empty()) notEmpty_.wait(queueMutex_);
      if (queue_.empty()) return;  // stopping and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++activeJobs_;
    }
    notFull_.notifyOne();
    runJob(*job);
    {
      util::MutexLock lock(queueMutex_);
      --activeJobs_;
      if (queue_.empty() && activeJobs_ == 0) idle_.notifyAll();
    }
  }
}

void DiagnosisService::runJob(Job& job) {
  // Every span the job produces (propagation stages, cache compiles, ...)
  // carries the job id, so a Chrome trace filters to one job's timeline.
  obs::JobScope jobScope(job.id_);
  obs::Span span("service.job", "service");
  const auto pickup = std::chrono::steady_clock::now();
  JobResult result;
  result.jobId = job.id_;
  result.queueNanos = nanosBetween(job.submitted_, pickup);

  const bool hasDeadline =
      job.deadlineAt_ != std::chrono::steady_clock::time_point{};
  const auto deadlineExpired = [&job, hasDeadline] {
    return hasDeadline && std::chrono::steady_clock::now() >= job.deadlineAt_;
  };

  if (job.cancelRequested()) {
    result.status = JobStatus::kCancelled;
    finish(job, std::move(result));
    return;
  }
  if (deadlineExpired()) {
    result.status = JobStatus::kDeadlineExceeded;
    finish(job, std::move(result));
    return;
  }

  try {
    bool hit = false;
    const std::shared_ptr<const CompiledModel> model =
        cache_.get(job.request_.netlist, job.request_.options, &hit);
    result.modelCacheHit = hit;

    // The job's options plus the cancellation hook the propagator polls.
    diagnosis::FlamesOptions opts = job.request_.options;
    if (options_.applyDerivedEntryCap) {
      const std::size_t requested = opts.propagation.maxEntriesPerQuantity;
      opts.propagation.maxEntriesPerQuantity = analyze::recommendedEntryCap(
          model->analysis(opts.propagation), requested);
      if (opts.propagation.maxEntriesPerQuantity < requested) {
        cCapClamped().add();
      }
    }
    result.entryCapUsed = opts.propagation.maxEntriesPerQuantity;
    // Provenance sampling: every Nth job pays the recording cost so the
    // flight recorder carries derivation summaries under sustained load.
    if (options_.provenanceSampleEvery != 0 &&
        job.id_ % options_.provenanceSampleEvery == 0) {
      opts.recordProvenance = true;
    }
    Job* jobPtr = &job;
    opts.propagation.cancelCheck = [jobPtr, deadlineExpired] {
      return jobPtr->cancelRequested() || deadlineExpired();
    };

    diagnosis::DiagnosisContext ctx;
    ctx.net = &model->netlist();
    ctx.built = &model->built();
    ctx.kb = &model->knowledgeBase();
    ctx.options = &opts;
    ctx.hintSource = [this](const std::vector<diagnosis::Symptom>& signature) {
      util::ReaderLock lock(experienceMutex_);
      return experience_.match(signature);
    };
    const CompiledModel* modelPtr = model.get();
    const diagnosis::DeviationAnalysisOptions devOpts = opts.deviationAnalysis;
    ctx.signsProvider =
        [modelPtr, devOpts]() -> const diagnosis::SensitivitySigns& {
      return modelPtr->sensitivitySigns(devOpts);
    };

    if (job.request_.probeSequence.empty()) {
      result.report = diagnoseWith(ctx, job.request_.measurements);
    } else {
      // Probe-sequence jobs replay through the incremental session: one
      // from-scratch propagation over the initial measurements, then each
      // probe extends the state inside its impact cone. The compiled
      // schedule comes from the unit type's cached analysis (its plan
      // depends only on model shape, not on the entry cap).
      diagnosis::IncrementalSession session(
          ctx, model->analysis(opts.propagation).schedule.plan);
      result.report = session.begin(job.request_.measurements);
      for (const diagnosis::Observation& probe : job.request_.probeSequence) {
        result.report = session.addMeasurement(probe);
        ++result.incrementalProbes;
      }
    }
    result.status = JobStatus::kDone;
  } catch (const constraints::CancelledError&) {
    result.status = job.cancelRequested() ? JobStatus::kCancelled
                                          : JobStatus::kDeadlineExceeded;
  } catch (const std::exception& e) {
    result.status = JobStatus::kFailed;
    result.error = e.what();
  }
  result.runNanos = nanosBetween(pickup, std::chrono::steady_clock::now());
  finish(job, std::move(result));
}

void DiagnosisService::finish(Job& job, JobResult result) {
  switch (result.status) {
    case JobStatus::kDone:
      completed_.fetch_add(1, std::memory_order_relaxed);
      cCompleted().add();
      break;
    case JobStatus::kFailed:
      failed_.fetch_add(1, std::memory_order_relaxed);
      cFailed().add();
      break;
    case JobStatus::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      cCancelled().add();
      break;
    case JobStatus::kDeadlineExceeded:
      deadlineExceeded_.fetch_add(1, std::memory_order_relaxed);
      cDeadline().add();
      break;
    case JobStatus::kQueued:
    case JobStatus::kRunning:
      break;  // never finished with an in-flight status
  }
  hQueueNs().record(result.queueNanos);
  hRunNs().record(result.runNanos);

  FlightRecord rec;
  rec.jobId = job.id_;
  rec.event = std::string(jobStatusName(result.status));
  rec.error = result.error;
  rec.queueNanos = result.queueNanos;
  rec.runNanos = result.runNanos;
  rec.modelCacheHit = result.modelCacheHit;
  rec.entryCapUsed = result.entryCapUsed;
  if (result.report.provenance) {
    const diagnosis::DiagnosisProvenance& p = *result.report.provenance;
    rec.provenanceSampled = true;
    rec.provEntries = p.log.entries().size();
    rec.provNogoods = p.log.nogoods().size();
    for (const constraints::ProvNogood& n : p.log.nogoods()) {
      rec.worstNogoodDegree = std::max(rec.worstNogoodDegree, n.degree);
    }
    for (const std::vector<std::string>& hs : p.hittingSets) {
      std::string rendered = "{";
      for (std::size_t i = 0; i < hs.size(); ++i) {
        rendered += (i ? "," : "") + hs[i];
      }
      rec.candidates.push_back(rendered + "}");
    }
  }
  const bool anomaly = result.status != JobStatus::kDone;
  recorder_.record(std::move(rec));

  job.promise_.set_value(std::move(result));
  if (anomaly && options_.flightDumpSink) {
    options_.flightDumpSink(dumpFlightRecorder());
  }
}

std::string DiagnosisService::dumpFlightRecorder() const {
  return renderFlightRecords(recorder_.snapshot(), recorder_.recorded());
}

}  // namespace flames::service
