#include "obs/obs.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "util/thread_safety.h"

namespace flames::obs {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void setEnabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::uint64_t monotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Histogram ---------------------------------------------------------------

void Histogram::record(std::uint64_t sample) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  // min/max via CAS loops; contention is negligible at probe-point rates.
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (sample < cur &&
         !min_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (sample > cur &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
  const std::size_t bucket =
      std::min<std::size_t>(std::bit_width(sample), kBuckets - 1);
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = s.count == 0 ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

// --- Registry ----------------------------------------------------------------

// std::map keeps iteration (and therefore every metrics dump) sorted by
// name; node-based storage keeps handle addresses stable across inserts.
struct Registry::Impl {
  mutable util::Mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters
      FLAMES_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms
      FLAMES_GUARDED_BY(mutex);
};

Registry& Registry::global() {
  // Intentionally leaked: counter/histogram handles are cached in
  // function-local statics all over the engine, and atexit hooks (the
  // bench opt-in summary) read the registry after static destruction
  // would have run. An immortal registry makes both safe.
  static Registry* r = new Registry();
  return *r;
}

Registry::Impl& Registry::impl() {
  // Leaked alongside Registry::global(): this is the actual state; if it
  // were destroyed at exit, atexit exporters would walk freed maps.
  static Impl* i = new Impl();
  return *i;
}

const Registry::Impl& Registry::impl() const {
  return const_cast<Registry*>(this)->impl();
}

Counter& Registry::counter(std::string_view name) {
  Impl& i = impl();
  util::MutexLock lock(i.mutex);
  auto it = i.counters.find(name);
  if (it == i.counters.end()) {
    it = i.counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  Impl& i = impl();
  util::MutexLock lock(i.mutex);
  auto it = i.histograms.find(name);
  if (it == i.histograms.end()) {
    it = i.histograms
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<const Counter*> Registry::counters() const {
  const Impl& i = impl();
  util::MutexLock lock(i.mutex);
  std::vector<const Counter*> out;
  out.reserve(i.counters.size());
  for (const auto& [name, c] : i.counters) out.push_back(c.get());
  return out;
}

std::vector<const Histogram*> Registry::histograms() const {
  const Impl& i = impl();
  util::MutexLock lock(i.mutex);
  std::vector<const Histogram*> out;
  out.reserve(i.histograms.size());
  for (const auto& [name, h] : i.histograms) out.push_back(h.get());
  return out;
}

void Registry::resetAll() {
  Impl& i = impl();
  util::MutexLock lock(i.mutex);
  for (auto& [name, c] : i.counters) c->reset();
  for (auto& [name, h] : i.histograms) h->reset();
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

}  // namespace flames::obs
