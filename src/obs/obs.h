// flames::obs — lightweight observability for the diagnosis pipeline.
//
// The engine's hot loops (fuzzy propagation, ATMS label maintenance,
// candidate generation) run millions of times per diagnosis under load, so
// the instrumentation contract is strict: when the layer is disabled (the
// default) every probe point costs one relaxed atomic load and a predicted
// branch — no locks, no allocation, no syscalls. When enabled, counters and
// histograms accumulate into lock-free atomics owned by a global registry,
// and scoped spans (obs/trace.h) record a hierarchical timeline exportable
// as Chrome trace_event JSON (obs/export.h).
//
// Usage at a probe point:
//
//   static obs::Counter& cSteps = obs::counter("propagator.steps");
//   cSteps.add();                       // no-op unless obs::setEnabled(true)
//
// Counter/histogram handles are stable for the process lifetime; looking one
// up once into a function-local static keeps the hot path map-free.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flames::obs {

/// Global kill switch for counters and histograms. Off by default.
[[nodiscard]] bool enabled();
void setEnabled(bool on);

/// Monotonic clock in nanoseconds (steady_clock; never goes backwards).
[[nodiscard]] std::uint64_t monotonicNanos();

/// A named monotonically increasing counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

/// A named histogram over non-negative integer samples (durations in
/// nanoseconds, queue depths, set sizes). Power-of-two buckets: bucket k
/// holds samples whose bit width is k, i.e. [2^(k-1), 2^k).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  explicit Histogram(std::string name) : name_(std::move(name)) {}

  void record(std::uint64_t sample);

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};
    [[nodiscard]] double mean() const {
      return count == 0 ? 0.0 : static_cast<double>(sum) / count;
    }
  };
  [[nodiscard]] Snapshot snapshot() const;
  void reset();
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Owns all counters and histograms. Handles returned by counter() /
/// histogram() stay valid for the registry's lifetime (the global registry
/// lives for the whole process).
class Registry {
 public:
  static Registry& global();

  /// Finds or creates; thread-safe.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] std::vector<const Counter*> counters() const;
  [[nodiscard]] std::vector<const Histogram*> histograms() const;

  /// Zeroes every counter and histogram (handles stay valid).
  void resetAll();

 private:
  Registry() = default;
  struct Impl;
  Impl& impl();
  const Impl& impl() const;
};

/// Convenience lookups against the global registry.
Counter& counter(std::string_view name);
Histogram& histogram(std::string_view name);

/// Records the time from construction to destruction into a histogram
/// (nanoseconds). Captures nothing when the layer is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : hist_(enabled() ? &h : nullptr),
        start_(hist_ ? monotonicNanos() : 0) {}
  ~ScopedTimer() {
    if (hist_) hist_->record(monotonicNanos() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::uint64_t start_;
};

}  // namespace flames::obs
