#include "obs/trace.h"

#include <atomic>

namespace flames::obs {

namespace {

std::atomic<bool> g_tracing{false};

// Small stable per-thread ids (0, 1, 2, ...) instead of opaque native
// handles, so traces from repeated runs line up.
std::uint64_t threadIndex() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_depth = 0;
thread_local std::uint64_t t_jobId = 0;

}  // namespace

JobScope::JobScope(std::uint64_t jobId) : previous_(t_jobId) {
  t_jobId = jobId;
}

JobScope::~JobScope() { t_jobId = previous_; }

std::uint64_t JobScope::current() { return t_jobId; }

bool tracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void setTracing(bool on) {
  g_tracing.store(on, std::memory_order_relaxed);
  if (on) setEnabled(true);
}

Tracer& Tracer::global() {
  // Immortal for the same reason as Registry::global(): spans and atexit
  // exporters may outlive any particular static-destruction order.
  static Tracer* t = new Tracer();
  return *t;
}

void Tracer::record(TraceEvent event) {
  util::MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::snapshot() const {
  util::MutexLock lock(mutex_);
  return events_;
}

std::size_t Tracer::size() const {
  util::MutexLock lock(mutex_);
  return events_.size();
}

void Tracer::clear() {
  util::MutexLock lock(mutex_);
  events_.clear();
}

Span::Span(std::string_view name, std::string_view category)
    : active_(tracingEnabled()) {
  if (!active_) return;
  name_ = name;
  category_ = category;
  depth_ = t_depth++;
  start_ = monotonicNanos();
}

Span::~Span() {
  if (!active_) return;
  --t_depth;
  TraceEvent e;
  e.name = std::move(name_);
  e.category = std::move(category_);
  e.startNs = start_;
  e.durationNs = monotonicNanos() - start_;
  e.depth = depth_;
  e.tid = threadIndex();
  e.jobId = t_jobId;
  Tracer::global().record(std::move(e));
}

}  // namespace flames::obs
