#include "obs/export.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace flames::obs {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          std::ostringstream esc;
          esc << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c));
          out += esc.str();
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string renderMetrics(const Registry& registry) {
  std::ostringstream os;
  os << "=== flames::obs metrics ===\n";
  for (const Counter* c : registry.counters()) {
    os << "counter " << std::left << std::setw(48) << c->name() << ' '
       << c->value() << '\n';
  }
  os << std::right;
  for (const Histogram* h : registry.histograms()) {
    const Histogram::Snapshot s = h->snapshot();
    os << "hist    " << std::left << std::setw(48) << h->name() << std::right
       << " count=" << s.count << " sum=" << s.sum << " min=" << s.min
       << " mean=" << std::fixed << std::setprecision(1) << s.mean()
       << " max=" << s.max << '\n';
    os.unsetf(std::ios::fixed);
  }
  return os.str();
}

std::string renderMetricsJson(const Registry& registry) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"counters\":{";
  bool first = true;
  for (const Counter* c : registry.counters()) {
    os << (first ? "" : ",") << '"' << jsonEscape(std::string(c->name()))
       << "\":" << c->value();
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const Histogram* h : registry.histograms()) {
    const Histogram::Snapshot s = h->snapshot();
    os << (first ? "" : ",") << '"' << jsonEscape(std::string(h->name()))
       << "\":{\"count\":" << s.count << ",\"sum\":" << s.sum
       << ",\"min\":" << (s.count == 0 ? 0.0 : s.min)
       << ",\"mean\":" << s.mean() << ",\"max\":" << s.max << '}';
    first = false;
  }
  os << "}}";
  return os.str();
}

void writeChromeTrace(std::ostream& os, const Tracer& tracer) {
  const std::vector<TraceEvent> events = tracer.snapshot();
  os << "[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  comma();
  os << R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
     << R"("args":{"name":"flames"}})";
  // Timestamps are the raw monotonic clock scaled to microseconds; viewers
  // normalise to the earliest event themselves.
  os << std::fixed << std::setprecision(3);
  for (const TraceEvent& e : events) {
    comma();
    os << "{\"name\":\"" << jsonEscape(e.name) << "\",\"cat\":\""
       << jsonEscape(e.category) << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
       << e.tid << ",\"ts\":" << static_cast<double>(e.startNs) / 1e3
       << ",\"dur\":" << static_cast<double>(e.durationNs) / 1e3
       << ",\"args\":{\"depth\":" << e.depth;
    if (e.jobId != 0) os << ",\"job\":" << e.jobId;
    os << "}}";
  }
  os << "\n]\n";
}

void writeChromeTraceFile(const std::string& path, const Tracer& tracer) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("obs: cannot open trace file: " + path);
  writeChromeTrace(os, tracer);
}

}  // namespace flames::obs
