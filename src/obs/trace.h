// Hierarchical span tracing for the diagnosis pipeline (paper Fig. 3).
//
// A Span marks one stage (propagation, candidate generation, a probe
// iteration, ...) from construction to destruction. Nesting is tracked per
// thread, so a trace of diagnose() reads as a tree: the "diagnose" span
// contains one child per pipeline stage. Completed spans accumulate in the
// global Tracer and export as Chrome trace_event JSON (obs/export.h),
// loadable in chrome://tracing or Perfetto.
//
// Tracing has its own switch on top of obs::enabled(): counters are cheap
// enough for production, a growing event buffer is not. A disabled Span
// costs one relaxed atomic load.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"
#include "util/thread_safety.h"

namespace flames::obs {

/// Whether spans record into the global tracer. Off by default; turning it
/// on also enables the counter/histogram layer (a trace without its
/// counters is half a picture).
[[nodiscard]] bool tracingEnabled();
void setTracing(bool on);

/// One completed span.
struct TraceEvent {
  std::string name;
  std::string category;
  std::uint64_t startNs = 0;  ///< monotonic clock
  std::uint64_t durationNs = 0;
  int depth = 0;          ///< nesting level at the recording thread
  std::uint64_t tid = 0;  ///< recording thread (stable small index)
  std::uint64_t jobId = 0;  ///< enclosing service job, 0 = none
};

/// Tags every span ended on this thread while in scope with a service job
/// id, so Chrome traces can be filtered per job ("args.job == 17"). Scopes
/// nest; the innermost wins. Cost when tracing is off: nothing beyond the
/// thread_local store/restore.
class JobScope {
 public:
  explicit JobScope(std::uint64_t jobId);
  ~JobScope();
  JobScope(const JobScope&) = delete;
  JobScope& operator=(const JobScope&) = delete;

  /// The job id spans on this thread are currently tagged with (0 = none).
  [[nodiscard]] static std::uint64_t current();

 private:
  std::uint64_t previous_;
};

/// Collects completed spans. Thread-safe; events are appended on span end.
class Tracer {
 public:
  static Tracer& global();

  void record(TraceEvent event);
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  Tracer() = default;
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ FLAMES_GUARDED_BY(mutex_);
};

/// RAII span. Records into Tracer::global() iff tracing was enabled at
/// construction time.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view category = "flames");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is actually recording.
  [[nodiscard]] bool active() const { return active_; }

 private:
  bool active_;
  int depth_ = 0;
  std::uint64_t start_ = 0;
  std::string name_;
  std::string category_;
};

}  // namespace flames::obs
