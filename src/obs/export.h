// Exporters for the obs layer: a human-readable metrics dump and Chrome
// trace_event JSON (the array-of-"X"-phase-events dialect understood by
// chrome://tracing and Perfetto).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::obs {

/// Renders every counter and histogram of the registry, sorted by name.
/// Counters print as `counter <name> <value>`; histograms as
/// `hist <name> count=<n> sum=<s> min=<m> mean=<..> max=<M>`.
[[nodiscard]] std::string renderMetrics(
    const Registry& registry = Registry::global());

/// The same registry snapshot as machine-readable JSON:
///   {"counters":{"<name>":<value>,...},
///    "histograms":{"<name>":{"count":N,"sum":S,"min":m,"mean":M,"max":X}}}
/// Names are sorted; doubles render at full precision.
[[nodiscard]] std::string renderMetricsJson(
    const Registry& registry = Registry::global());

/// Writes the tracer's events as Chrome trace_event JSON: a single array of
/// complete ("ph":"X") events with microsecond timestamps. Also appends one
/// metadata event naming the process.
void writeChromeTrace(std::ostream& os, const Tracer& tracer = Tracer::global());

/// writeChromeTrace to a file; throws std::runtime_error if it cannot open.
void writeChromeTraceFile(const std::string& path,
                          const Tracer& tracer = Tracer::global());

/// JSON string escaping (exposed for tests).
[[nodiscard]] std::string jsonEscape(const std::string& s);

}  // namespace flames::obs
