// DIANA-style crisp-interval diagnosis baseline (paper §2.1, §4.2, Fig. 5).
//
// The comparator the paper argues against: values are crisp intervals
// (supports only), propagation is interval arithmetic, and a coincidence is
// a conflict only when the intersection is empty — there are no degrees, so
// every nogood and every candidate carries the same weight. Running the same
// model through this baseline and through the fuzzy engine reproduces the
// paper's comparisons: the crisp engine misses slight (soft) faults that the
// fuzzy Dc flags (Fig. 2 masking example), and it cannot rank candidates
// (Fig. 5).
#pragma once

#include <string>
#include <vector>

#include "atms/candidates.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"

namespace flames::baselines {

/// One observation fed to the baseline.
struct CrispMeasurement {
  constraints::QuantityId quantity;
  fuzzy::FuzzyInterval value;  // widened to its support internally
};

/// Result of a crisp diagnosis run.
struct CrispDiagnosis {
  bool propagationCompleted = false;
  /// Minimal conflict sets (all degree 1 by construction).
  std::vector<std::vector<std::string>> nogoods;
  /// Minimal hitting sets — unranked, as the crisp approach cannot order
  /// them (paper §6.3: "we can only suspect the three components with the
  /// same weight").
  std::vector<std::vector<std::string>> candidates;
  std::size_t steps = 0;
};

/// Runs crisp-interval propagation + classic candidate generation over a
/// diagnostic model.
[[nodiscard]] CrispDiagnosis diagnoseCrisp(
    const constraints::Model& model,
    const std::vector<CrispMeasurement>& measurements,
    std::size_t maxFaultCardinality = 3,
    constraints::PropagatorOptions baseOptions = {});

}  // namespace flames::baselines
