#include "baselines/crisp_diagnosis.h"

namespace flames::baselines {

using constraints::ConflictPolicy;
using constraints::Model;
using constraints::Propagator;
using constraints::PropagatorOptions;

CrispDiagnosis diagnoseCrisp(const Model& model,
                             const std::vector<CrispMeasurement>& measurements,
                             std::size_t maxFaultCardinality,
                             PropagatorOptions baseOptions) {
  PropagatorOptions options = baseOptions;
  options.policy = ConflictPolicy::kCrisp;
  options.crispifyValues = true;

  Propagator prop(model, options);
  for (const CrispMeasurement& m : measurements) {
    prop.addMeasurement(m.quantity, m.value);
  }
  prop.run();

  CrispDiagnosis result;
  result.propagationCompleted = prop.completed();
  result.steps = prop.steps();

  const auto minimal = prop.nogoods().minimalNogoods(1.0);
  std::vector<std::vector<atms::AssumptionId>> sets;
  for (const atms::Nogood& n : minimal) {
    std::vector<std::string> names;
    for (atms::AssumptionId id : n.env.ids()) {
      names.push_back(model.assumptionName(id));
    }
    result.nogoods.push_back(std::move(names));
    sets.push_back(n.env.ids());
  }

  for (const auto& hit :
       atms::minimalHittingSets(sets, maxFaultCardinality)) {
    std::vector<std::string> names;
    for (atms::AssumptionId id : hit) names.push_back(model.assumptionName(id));
    result.candidates.push_back(std::move(names));
  }
  return result;
}

}  // namespace flames::baselines
