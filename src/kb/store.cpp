#include "kb/store.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "obs/obs.h"

namespace flames::kb {

namespace fs = std::filesystem;

namespace {

void sortSignature(std::vector<diagnosis::Symptom>& s) {
  std::sort(s.begin(), s.end(),
            [](const diagnosis::Symptom& a, const diagnosis::Symptom& b) {
              return a.quantity < b.quantity;
            });
}

std::string readFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw KbIoError("kb: cannot open " + path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

/// Canonical rendering of one slot line (trailing newline included). Also
/// the deterministic tie-break for merge conflicts between equal versions.
std::string renderSlot(const std::string& origin, const OriginSlot& slot) {
  std::ostringstream os;
  os << "slot " << origin << ' ' << slot.version << ' '
     << formatDouble(slot.certainty) << ' ' << slot.confirmations << ' '
     << slot.failures << ' ' << slot.lastEvent << ' ' << (slot.evicted ? 1 : 0)
     << ' ' << slot.symptoms.size();
  for (const diagnosis::Symptom& s : slot.symptoms) {
    os << ' ' << s.quantity << ' ' << formatDouble(s.signedDc) << ' '
       << s.direction;
  }
  os << '\n';
  return os.str();
}

bool parseDoubleTok(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

struct ParsedState {
  std::map<std::string, std::uint64_t> ticks;
  std::map<RuleKey, std::map<std::string, OriginSlot>> rules;
};

/// Parses a serialize() payload. Throws KbFormatError with the 1-based
/// line number of the first problem.
ParsedState parseState(const std::string& bytes) {
  std::istringstream is(bytes);
  std::string line;
  std::size_t lineNo = 0;
  const auto next = [&]() -> bool {
    ++lineNo;
    return static_cast<bool>(std::getline(is, line));
  };
  const auto fail = [&](const std::string& what) -> KbFormatError {
    return {lineNo, what};
  };

  if (!next() || line != "flames-kb-snapshot v1") {
    throw fail("expected 'flames-kb-snapshot v1' header");
  }

  ParsedState state;
  std::size_t nTicks = 0;
  {
    if (!next()) throw fail("missing 'ticks' section");
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> nTicks) || tag != "ticks") {
      throw fail("expected 'ticks <count>'");
    }
  }
  for (std::size_t i = 0; i < nTicks; ++i) {
    if (!next()) throw fail("truncated ticks section");
    std::istringstream ls(line);
    std::string tag;
    std::string origin;
    std::uint64_t tick = 0;
    if (!(ls >> tag >> origin >> tick) || tag != "tick") {
      throw fail("expected 'tick <origin> <value>'");
    }
    if (!state.ticks.emplace(origin, tick).second) {
      throw fail("duplicate origin in ticks section");
    }
  }

  std::size_t nRules = 0;
  {
    if (!next()) throw fail("missing 'rules' section");
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> nRules) || tag != "rules") {
      throw fail("expected 'rules <count>'");
    }
  }
  for (std::size_t i = 0; i < nRules; ++i) {
    if (!next()) throw fail("truncated rules section");
    RuleKey key;
    {
      std::istringstream ls(line);
      std::string tag;
      std::string extra;
      if (!(ls >> tag >> key.component >> key.mode >> key.shape) ||
          tag != "rule" || (ls >> extra)) {
        throw fail("expected 'rule <component> <mode> <shape>'");
      }
    }
    auto [ruleIt, fresh] = state.rules.emplace(
        std::move(key), std::map<std::string, OriginSlot>{});
    if (!fresh) throw fail("duplicate rule key");
    // Slot lines until the next 'rule'/'end'.
    while (is.peek() == 's') {
      if (!next()) break;
      std::istringstream ls(line);
      std::string tag;
      std::string origin;
      std::string cert;
      int evicted = 0;
      std::size_t nSyms = 0;
      OriginSlot slot;
      if (!(ls >> tag >> origin >> slot.version >> cert >>
            slot.confirmations >> slot.failures >> slot.lastEvent >> evicted >>
            nSyms) ||
          tag != "slot" || !parseDoubleTok(cert, slot.certainty) ||
          (evicted != 0 && evicted != 1) || slot.version == 0) {
        throw fail("malformed slot line");
      }
      slot.evicted = evicted == 1;
      for (std::size_t j = 0; j < nSyms; ++j) {
        diagnosis::Symptom sym;
        std::string dc;
        if (!(ls >> sym.quantity >> dc >> sym.direction) ||
            !parseDoubleTok(dc, sym.signedDc)) {
          throw fail("malformed slot symptoms");
        }
        slot.symptoms.push_back(std::move(sym));
      }
      std::string extra;
      if (ls >> extra) throw fail("trailing tokens on slot line");
      if (!ruleIt->second.emplace(std::move(origin), std::move(slot)).second) {
        throw fail("duplicate origin slot for rule");
      }
    }
    if (ruleIt->second.empty()) throw fail("rule without slots");
  }
  if (!next() || line != "end") throw fail("expected 'end' trailer");
  if (next()) throw fail("trailing content after 'end'");
  return state;
}

obs::Counter& eventsCounter() {
  static obs::Counter& c = obs::counter("kb.events_total");
  return c;
}

}  // namespace

std::string_view fusionPolicyName(FusionPolicy p) {
  switch (p) {
    case FusionPolicy::kMax: return "max";
    case FusionPolicy::kMin: return "min";
  }
  return "?";
}

std::string signatureShape(std::vector<diagnosis::Symptom> signature) {
  sortSignature(signature);
  std::string shape;
  for (const diagnosis::Symptom& s : signature) {
    if (!shape.empty()) shape += '|';
    const double clamped = std::clamp(s.signedDc, -1.0, 1.0);
    const long bucket = std::lround(clamped * 4.0);
    shape += s.quantity;
    shape += '~';
    shape += std::to_string(s.direction);
    shape += '~';
    shape += std::to_string(bucket);
  }
  return shape;
}

KbStore::KbStore(KbOptions options)
    : options_(std::move(options)), view_(options_.learning) {
  // Origins are embedded as whitespace-delimited tokens in the WAL header
  // and the snapshot's tick/slot lines.
  if (options_.origin.empty() ||
      options_.origin.find_first_of(" \t\r\n") != std::string::npos) {
    throw KbError("kb: origin must be non-empty and whitespace-free: '" +
                  options_.origin + "'");
  }
  open();
}

std::string KbStore::snapshotPath() const {
  return (fs::path(options_.dir) / "snapshot.kb").string();
}

std::string KbStore::walPath() const {
  return (fs::path(options_.dir) / "wal.log").string();
}

bool KbStore::injectedCrash(std::string_view stage) const {
  return options_.hooks.failAt && options_.hooks.failAt(stage);
}

void KbStore::open() {
  if (!durable()) {
    rebuildView();
    return;
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) throw KbIoError("kb: cannot create " + options_.dir);
  // Orphaned temporaries from a crash mid-compaction are dead weight.
  fs::remove(snapshotPath() + ".tmp", ec);
  fs::remove(walPath() + ".tmp", ec);

  if (fs::exists(snapshotPath())) {
    const std::string bytes = readFileBytes(snapshotPath());
    // A corrupt snapshot is fatal by design (mirrors experience_io: silently
    // starting fresh would destroy learned experience on the next save).
    ParsedState state = parseState(bytes);
    ticks_ = std::move(state.ticks);
    rules_ = std::move(state.rules);
    hasSnapshot_ = true;
    snapshotCrc_ = crc32(bytes);
  }

  static obs::Counter& cRecoveries = obs::counter("kb.wal_recoveries_total");
  if (fs::exists(walPath())) {
    const std::string bytes = readFileBytes(walPath());
    const WalReadResult wal = readWal(bytes);
    // The directory's durable identity wins over the requested one: WAL
    // records are local events of whoever wrote them, and replaying them
    // under a different origin would re-attribute history (the canonical
    // state must not depend on who opens the store). Adopt it even when the
    // snapshot binding below rejects the events — the identity is header
    // data, not event data.
    if (wal.headerOk) options_.origin = wal.origin;
    if (!wal.headerOk || wal.boundToSnapshot != hasSnapshot_ ||
        (wal.boundToSnapshot && wal.snapshotCrc != snapshotCrc_)) {
      // A log from another snapshot generation: either the pre-compaction
      // log whose events the (renamed-into-place) snapshot already holds,
      // or garbage. Discard it.
      resetWal();
      if (!bytes.empty()) {
        walRecoveredTail_ = true;
        cRecoveries.add();
      }
    } else {
      // Byte offset of the end of the last *accepted* record: recovery
      // truncates everything after it.
      std::size_t durableBytes =
          renderWalHeader(options_.origin, snapshotCrc_, hasSnapshot_).size();
      bool tornTail = !wal.cleanTail;
      for (const WalEvent& ev : wal.events) {
        const auto tickIt = ticks_.find(options_.origin);
        const std::uint64_t tick = tickIt == ticks_.end() ? 0 : tickIt->second;
        if (ev.tick != tick + 1) {
          // The log does not continue the snapshot's clock: everything from
          // this record on is a stale or spliced tail.
          tornTail = true;
          break;
        }
        applyLocal(ev);
        ++walReplayed_;
        ++walEvents_;
        durableBytes = ev.endOffset;
      }
      if (tornTail) {
        fs::resize_file(walPath(), durableBytes, ec);
        if (ec) throw KbIoError("kb: cannot truncate corrupt WAL tail");
        walRecoveredTail_ = true;
        cRecoveries.add();
      }
    }
  } else {
    resetWal();
  }
  rebuildView();
}

void KbStore::appendWal(const WalEvent& ev) {
  const std::string line = renderWalEvent(ev);
  std::ofstream os(walPath(), std::ios::binary | std::ios::app);
  if (!os) throw KbIoError("kb: cannot append to " + walPath());
  if (injectedCrash("wal_append")) {
    // Die mid-record: half the bytes reach the disk, no newline — exactly
    // the torn tail recovery must truncate.
    os.write(line.data(), static_cast<std::streamsize>(line.size() / 2));
    os.flush();
    throw KbIoError("kb: injected crash at wal_append");
  }
  os.write(line.data(), static_cast<std::streamsize>(line.size()));
  os.flush();
  if (!os) throw KbIoError("kb: WAL append failed");
}

void KbStore::resetWal() {
  if (injectedCrash("wal_reset")) {
    throw KbIoError("kb: injected crash at wal_reset");
  }
  const std::string tmp = walPath() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw KbIoError("kb: cannot write " + tmp);
    const std::string header =
        renderWalHeader(options_.origin, snapshotCrc_, hasSnapshot_);
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    os.flush();
    if (!os) throw KbIoError("kb: WAL header write failed");
  }
  std::error_code ec;
  fs::rename(tmp, walPath(), ec);
  if (ec) throw KbIoError("kb: cannot replace " + walPath());
  walEvents_ = 0;
}

void KbStore::compact() {
  if (!durable()) return;
  const std::string state = serialize();
  const std::string tmp = snapshotPath() + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw KbIoError("kb: cannot write " + tmp);
    if (injectedCrash("snapshot_write")) {
      os.write(state.data(), static_cast<std::streamsize>(state.size() / 2));
      os.flush();
      throw KbIoError("kb: injected crash at snapshot_write");
    }
    os.write(state.data(), static_cast<std::streamsize>(state.size()));
    os.flush();
    if (!os) throw KbIoError("kb: snapshot write failed");
  }
  if (injectedCrash("snapshot_rename")) {
    throw KbIoError("kb: injected crash at snapshot_rename");
  }
  std::error_code ec;
  fs::rename(tmp, snapshotPath(), ec);
  if (ec) throw KbIoError("kb: cannot replace " + snapshotPath());
  hasSnapshot_ = true;
  snapshotCrc_ = crc32(state);
  // Crash window: the snapshot is in place but the WAL still belongs to the
  // previous generation. resetWal() throwing here is safe — open() sees the
  // CRC mismatch and discards the old log, whose events the new snapshot
  // already contains.
  resetWal();
  ++compactions_;
  static obs::Counter& c = obs::counter("kb.compactions_total");
  c.add();
}

void KbStore::applyLocal(const WalEvent& ev) {
  const std::string& origin = options_.origin;
  ticks_[origin] = ev.tick;
  static obs::Counter& cEvict = obs::counter("kb.evictions_total");
  const auto evict = [&](OriginSlot& slot) {
    slot.evicted = true;
    slot.symptoms.clear();
    ++evictions_;
    cEvict.add();
  };

  switch (ev.kind) {
    case WalEventKind::kSuccess: {
      std::vector<diagnosis::Symptom> symptoms = ev.symptoms;
      sortSignature(symptoms);
      const RuleKey key{ev.component, ev.mode, signatureShape(symptoms)};
      OriginSlot& slot = rules_[key][origin];
      if (slot.version == 0 || slot.evicted) {
        // Fresh rule (or resurrection of a tombstone — the failure count
        // survives as history).
        ++slot.version;
        slot.certainty = options_.learning.initialCertainty;
        slot.confirmations = 1;
        slot.evicted = false;
        slot.symptoms = std::move(symptoms);
      } else {
        slot.certainty +=
            (1.0 - slot.certainty) * options_.learning.reinforcement;
        const double w = 1.0 / (slot.confirmations + 1.0);
        for (std::size_t i = 0; i < slot.symptoms.size(); ++i) {
          slot.symptoms[i].signedDc = (1.0 - w) * slot.symptoms[i].signedDc +
                                      w * symptoms[i].signedDc;
        }
        ++slot.confirmations;
        ++slot.version;
      }
      slot.lastEvent = ev.tick;
      break;
    }
    case WalEventKind::kFailure: {
      for (auto& [key, slots] : rules_) {
        if (key.component != ev.component || key.mode != ev.mode) continue;
        auto it = slots.find(origin);
        if (it == slots.end() || it->second.version == 0 ||
            it->second.evicted) {
          continue;
        }
        OriginSlot& slot = it->second;
        slot.certainty *= 1.0 - options_.learning.reinforcement;
        ++slot.failures;
        ++slot.version;
        slot.lastEvent = ev.tick;
        if (slot.certainty < options_.decay.evictBelow) evict(slot);
      }
      break;
    }
    case WalEventKind::kDecay: {
      for (auto& [key, slots] : rules_) {
        auto it = slots.find(origin);
        if (it == slots.end() || it->second.version == 0 ||
            it->second.evicted) {
          continue;
        }
        OriginSlot& slot = it->second;
        const std::uint64_t horizon =
            options_.decay.staleAfterEvents +
            slot.confirmations * options_.decay.horizonPerConfirmation;
        if (ev.tick - slot.lastEvent < horizon) continue;
        slot.certainty *= options_.decay.factor;
        ++slot.version;
        if (slot.certainty < options_.decay.evictBelow) evict(slot);
      }
      break;
    }
    case WalEventKind::kRestore: {
      std::vector<diagnosis::Symptom> symptoms = ev.symptoms;
      sortSignature(symptoms);
      const RuleKey key{ev.component, ev.mode, signatureShape(symptoms)};
      OriginSlot& slot = rules_[key][origin];
      ++slot.version;
      slot.certainty = ev.certainty;
      slot.confirmations = ev.confirmations;
      slot.failures = ev.failures;
      slot.evicted = false;
      slot.symptoms = std::move(symptoms);
      slot.lastEvent = ev.tick;
      break;
    }
  }
}

void KbStore::commitLocal(WalEvent ev) {
  // Look up (not operator[]) so a failed append leaves ticks_ untouched —
  // the in-memory state must stay exactly pre-crash when the WAL rejects.
  const auto tickIt = ticks_.find(options_.origin);
  ev.tick = (tickIt == ticks_.end() ? 0 : tickIt->second) + 1;
  if (durable()) {
    appendWal(ev);
    ++walEvents_;
  }
  applyLocal(ev);
  rebuildView();
  eventsCounter().add();
  if (durable() && options_.snapshotEveryEvents > 0 &&
      walEvents_ >= options_.snapshotEveryEvents) {
    compact();
  }
}

void KbStore::recordSuccess(std::vector<diagnosis::Symptom> signature,
                            const std::string& component,
                            const std::string& mode) {
  if (signature.empty()) return;  // no symptoms, nothing to key the rule on
  WalEvent ev;
  ev.kind = WalEventKind::kSuccess;
  ev.component = component;
  ev.mode = mode;
  ev.symptoms = std::move(signature);
  commitLocal(std::move(ev));
}

void KbStore::recordFailure(const std::string& component,
                            const std::string& mode) {
  WalEvent ev;
  ev.kind = WalEventKind::kFailure;
  ev.component = component;
  ev.mode = mode;
  commitLocal(std::move(ev));
}

void KbStore::decay() {
  WalEvent ev;
  ev.kind = WalEventKind::kDecay;
  commitLocal(std::move(ev));
}

void KbStore::seed(const diagnosis::ExperienceBase& base) {
  ticks_.clear();
  rules_.clear();
  if (durable()) compact();  // the clear must be durable before the restores
  for (const diagnosis::SymptomRule& r : base.rules()) {
    if (r.symptoms.empty()) continue;
    WalEvent ev;
    ev.kind = WalEventKind::kRestore;
    ev.component = r.component;
    ev.mode = r.mode;
    ev.symptoms = r.symptoms;
    ev.certainty = r.certainty;
    ev.confirmations = static_cast<std::uint32_t>(std::max(0, r.confirmations));
    ev.failures = 0;
    commitLocal(std::move(ev));
  }
  rebuildView();
}

std::string KbStore::serialize() const {
  std::ostringstream os;
  os << "flames-kb-snapshot v1\n";
  os << "ticks " << ticks_.size() << '\n';
  for (const auto& [origin, tick] : ticks_) {
    os << "tick " << origin << ' ' << tick << '\n';
  }
  os << "rules " << rules_.size() << '\n';
  for (const auto& [key, slots] : rules_) {
    os << "rule " << key.component << ' ' << key.mode << ' ' << key.shape
       << '\n';
    for (const auto& [origin, slot] : slots) os << renderSlot(origin, slot);
  }
  os << "end\n";
  return os.str();
}

void KbStore::mergeState(const std::string& canonicalState) {
  ParsedState other = parseState(canonicalState);
  for (const auto& [origin, tick] : other.ticks) {
    std::uint64_t& mine = ticks_[origin];
    mine = std::max(mine, tick);
  }
  for (auto& [key, slots] : other.rules) {
    auto& mine = rules_[key];
    for (auto& [origin, slot] : slots) {
      OriginSlot& current = mine[origin];
      if (slot.version > current.version ||
          (slot.version == current.version &&
           renderSlot(origin, slot) > renderSlot(origin, current))) {
        current = std::move(slot);
      }
    }
  }
  ++merges_;
  static obs::Counter& c = obs::counter("kb.merges_total");
  c.add();
  rebuildView();
  // A merge is a bulk state change the event log cannot express: make it
  // durable (and atomic on disk) by folding it straight into a snapshot.
  if (durable()) compact();
}

void KbStore::rebuildView() {
  diagnosis::ExperienceBase view(options_.learning);
  for (const auto& [key, slots] : rules_) {
    diagnosis::SymptomRule rule;
    rule.component = key.component;
    rule.mode = key.mode;
    bool any = false;
    double fused = 0.0;
    std::uint64_t confirmations = 0;
    double weightSum = 0.0;
    std::vector<double> dcSum;
    std::vector<std::array<double, 3>> dirWeight;
    for (const auto& [origin, slot] : slots) {
      if (slot.version == 0 || slot.evicted) continue;
      const double w = std::max<std::uint32_t>(1, slot.confirmations);
      if (!any) {
        fused = slot.certainty;
        rule.symptoms = slot.symptoms;  // quantity template (shared shape)
        dcSum.assign(slot.symptoms.size(), 0.0);
        dirWeight.assign(slot.symptoms.size(), {0.0, 0.0, 0.0});
        any = true;
      } else {
        fused = options_.fusion == FusionPolicy::kMax
                    ? std::max(fused, slot.certainty)
                    : std::min(fused, slot.certainty);
      }
      confirmations += slot.confirmations;
      weightSum += w;
      for (std::size_t i = 0;
           i < slot.symptoms.size() && i < dcSum.size(); ++i) {
        dcSum[i] += w * slot.symptoms[i].signedDc;
        const int d = std::clamp(slot.symptoms[i].direction, -1, 1);
        dirWeight[i][static_cast<std::size_t>(d + 1)] += w;
      }
    }
    if (!any) continue;
    for (std::size_t i = 0; i < rule.symptoms.size(); ++i) {
      rule.symptoms[i].signedDc = dcSum[i] / weightSum;
      // Deterministic argmax by weight, ties towards the larger direction.
      int dir = -1;
      for (int d = 0; d <= 1; ++d) {
        if (dirWeight[i][static_cast<std::size_t>(d + 1)] >=
            dirWeight[i][static_cast<std::size_t>(dir + 1)]) {
          dir = d;
        }
      }
      rule.symptoms[i].direction = dir;
    }
    rule.certainty = fused;
    rule.confirmations = static_cast<int>(std::min<std::uint64_t>(
        confirmations, std::numeric_limits<int>::max()));
    view.restoreRule(std::move(rule));
  }
  view_ = std::move(view);
}

KbStats KbStore::stats() const {
  KbStats s;
  s.rules = rules_.size();
  for (const auto& [key, slots] : rules_) {
    bool live = false;
    for (const auto& [origin, slot] : slots) {
      if (slot.evicted) {
        ++s.tombstoneSlots;
      } else if (slot.version > 0) {
        live = true;
      }
    }
    if (live) ++s.liveRules;
  }
  s.origins = ticks_.size();
  const auto it = ticks_.find(options_.origin);
  s.localTick = it == ticks_.end() ? 0 : it->second;
  s.walEvents = walEvents_;
  s.walReplayed = walReplayed_;
  s.walRecoveredTail = walRecoveredTail_;
  s.compactions = compactions_;
  s.evictions = evictions_;
  s.merges = merges_;
  return s;
}

}  // namespace flames::kb
