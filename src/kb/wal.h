// Write-ahead log for the persistent experience store (src/kb/store.h).
//
// Every local mutation of a KbStore — recordSuccess, recordFailure, decay,
// restore (seeding) — is appended to `wal.log` as one self-checksummed text
// line *before* it is applied in memory, so a crash at any instant loses at
// most the record being written. The line format is
//
//   ev <tick> <kind> <payload...> crc=<8 hex digits>
//
// where the CRC-32 covers everything before " crc=". Records carry the
// store's local event tick (1, 2, ...) so replay can detect reordered or
// spliced logs. Recovery scans from the top and stops at the first record
// that fails its checksum, is truncated (no trailing newline), or breaks
// the tick sequence: everything before that byte offset is the durable
// prefix, everything after is discarded — exactly the state an append-crash
// leaves behind.
//
// The header line records the directory's owning origin and binds the log
// to one snapshot *generation*:
//
//   flames-kb-wal v1 origin <id> snap <crc|none>
//
// WAL records carry no origin of their own — they are by definition local
// events of the directory's owner — so the owner's id must live in the
// header: replaying the log under any other identity would re-attribute its
// events and make the store's canonical state depend on who opened it
// (breaking merge convergence). open() adopts the recorded origin; the
// KbOptions origin only names stores whose directory is fresh.
//
// `crc` is the CRC-32 of the snapshot file the log's events apply on top of
// ("none" for a fresh store). Compaction writes the new snapshot first
// (tmp + atomic rename) and only then resets the log; a crash between the
// two leaves a log bound to the *old* snapshot CRC, which open() detects
// and discards — its events are already folded into the new snapshot.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "diagnosis/learning.h"

namespace flames::kb {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG one) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// Shortest round-trip decimal rendering of a double (printf %.17g):
/// parsing the result with strtod restores the exact bit pattern.
[[nodiscard]] std::string formatDouble(double v);

enum class WalEventKind {
  kSuccess,  ///< ExperienceBase::recordSuccess — confirmed diagnosis
  kFailure,  ///< recordFailure — a rule's suggestion proved wrong
  kDecay,    ///< age-based decay sweep over stale local rules
  kRestore,  ///< verbatim rule restore (seeding from a legacy experience file)
};

[[nodiscard]] std::string_view walEventKindName(WalEventKind k);

/// One logged mutation. `tick` is the store's local event counter *after*
/// applying this event (the first event of a fresh store has tick 1).
struct WalEvent {
  WalEventKind kind = WalEventKind::kSuccess;
  std::uint64_t tick = 0;
  /// Set by readWal: byte offset just past this record's newline, so a
  /// caller that rejects the record (e.g. a tick that does not continue the
  /// snapshot's clock) can truncate the file right before it.
  std::size_t endOffset = 0;
  std::string component;                       ///< success/failure/restore
  std::string mode;                            ///< success/failure/restore
  std::vector<diagnosis::Symptom> symptoms;    ///< success/restore
  double certainty = 0.0;                      ///< restore only
  std::uint32_t confirmations = 0;             ///< restore only
  std::uint32_t failures = 0;                  ///< restore only
};

/// Renders the header line (including the trailing newline).
/// `hasSnapshot` false renders "snap none". `origin` must be non-empty and
/// whitespace-free (KbStore validates this at construction).
[[nodiscard]] std::string renderWalHeader(std::string_view origin,
                                          std::uint32_t snapshotCrc,
                                          bool hasSnapshot);

/// Renders one event as a checksummed line (including the trailing newline).
[[nodiscard]] std::string renderWalEvent(const WalEvent& ev);

struct WalReadResult {
  /// False if the header line is missing or malformed — the whole log is
  /// untrusted and must be discarded (the events are unusable without
  /// knowing which snapshot they apply to).
  bool headerOk = false;
  /// The directory's owning origin, from the header.
  std::string origin;
  /// Snapshot binding from the header.
  bool boundToSnapshot = false;
  std::uint32_t snapshotCrc = 0;
  /// Events of the durable prefix, in order.
  std::vector<WalEvent> events;
  /// False when a corrupt/truncated tail was found after the good prefix.
  bool cleanTail = true;
  /// Byte offset of the first non-durable byte: truncating the file here
  /// removes the corrupt tail while keeping every good record.
  std::size_t goodBytes = 0;
  /// Human-readable description of the tail problem (empty when clean).
  std::string tailError;
};

/// Parses a WAL image. Never throws: corruption is data, not an error —
/// the caller decides whether to truncate, discard, or refuse.
[[nodiscard]] WalReadResult readWal(std::string_view bytes);

}  // namespace flames::kb
