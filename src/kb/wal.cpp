#include "kb/wal.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace flames::kb {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[n] = c;
  }
  return table;
}

constexpr std::string_view kHeaderPrefix = "flames-kb-wal v1 origin ";
constexpr std::string_view kSnapMarker = " snap ";
constexpr std::string_view kCrcMarker = " crc=";

std::string crcHex(std::uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", crc);
  return buf;
}

/// Parses the complete token as a double; returns false on trailing junk.
bool parseDoubleToken(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool parseU64Token(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtoull(tok.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

/// Parses the body of one record (the part before " crc=") into `ev`.
bool parseEventBody(const std::string& body, WalEvent& ev) {
  std::istringstream is(body);
  std::string tag;
  std::string tick;
  std::string kind;
  if (!(is >> tag >> tick >> kind) || tag != "ev") return false;
  if (!parseU64Token(tick, ev.tick)) return false;

  const auto readSymptoms = [&is, &ev](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      diagnosis::Symptom s;
      std::string dc;
      if (!(is >> s.quantity >> dc >> s.direction)) return false;
      if (!parseDoubleToken(dc, s.signedDc)) return false;
      ev.symptoms.push_back(std::move(s));
    }
    return true;
  };
  const auto atEnd = [&is] {
    std::string extra;
    return !(is >> extra);
  };

  if (kind == "success") {
    ev.kind = WalEventKind::kSuccess;
    std::size_t n = 0;
    if (!(is >> ev.component >> ev.mode >> n)) return false;
    return readSymptoms(n) && atEnd();
  }
  if (kind == "failure") {
    ev.kind = WalEventKind::kFailure;
    return static_cast<bool>(is >> ev.component >> ev.mode) && atEnd();
  }
  if (kind == "decay") {
    ev.kind = WalEventKind::kDecay;
    return atEnd();
  }
  if (kind == "restore") {
    ev.kind = WalEventKind::kRestore;
    std::size_t n = 0;
    std::string cert;
    if (!(is >> ev.component >> ev.mode >> cert >> ev.confirmations >>
          ev.failures >> n)) {
      return false;
    }
    if (!parseDoubleToken(cert, ev.certainty)) return false;
    return readSymptoms(n) && atEnd();
  }
  return false;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t c = 0xFFFFFFFFU;
  for (const char ch : bytes) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string formatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string_view walEventKindName(WalEventKind k) {
  switch (k) {
    case WalEventKind::kSuccess: return "success";
    case WalEventKind::kFailure: return "failure";
    case WalEventKind::kDecay: return "decay";
    case WalEventKind::kRestore: return "restore";
  }
  return "?";
}

std::string renderWalHeader(std::string_view origin,
                            std::uint32_t snapshotCrc, bool hasSnapshot) {
  std::string line(kHeaderPrefix);
  line += origin;
  line += kSnapMarker;
  line += hasSnapshot ? crcHex(snapshotCrc) : "none";
  line += '\n';
  return line;
}

std::string renderWalEvent(const WalEvent& ev) {
  std::ostringstream os;
  os << "ev " << ev.tick << ' ' << walEventKindName(ev.kind);
  switch (ev.kind) {
    case WalEventKind::kSuccess:
      os << ' ' << ev.component << ' ' << ev.mode << ' ' << ev.symptoms.size();
      break;
    case WalEventKind::kFailure:
      os << ' ' << ev.component << ' ' << ev.mode;
      break;
    case WalEventKind::kDecay:
      break;
    case WalEventKind::kRestore:
      os << ' ' << ev.component << ' ' << ev.mode << ' '
         << formatDouble(ev.certainty) << ' ' << ev.confirmations << ' '
         << ev.failures << ' ' << ev.symptoms.size();
      break;
  }
  if (ev.kind == WalEventKind::kSuccess || ev.kind == WalEventKind::kRestore) {
    for (const diagnosis::Symptom& s : ev.symptoms) {
      os << ' ' << s.quantity << ' ' << formatDouble(s.signedDc) << ' '
         << s.direction;
    }
  }
  std::string body = os.str();
  const std::uint32_t crc = crc32(body);
  body += kCrcMarker;
  body += crcHex(crc);
  body += '\n';
  return body;
}

WalReadResult readWal(std::string_view bytes) {
  WalReadResult result;

  // --- header ---
  const std::size_t headerEnd = bytes.find('\n');
  if (headerEnd == std::string_view::npos) return result;
  const std::string_view header = bytes.substr(0, headerEnd);
  if (header.substr(0, kHeaderPrefix.size()) != kHeaderPrefix) return result;
  const std::string_view rest = header.substr(kHeaderPrefix.size());
  const std::size_t snapAt = rest.find(kSnapMarker);
  if (snapAt == std::string_view::npos || snapAt == 0) return result;
  const std::string_view origin = rest.substr(0, snapAt);
  if (origin.find_first_of(" \t") != std::string_view::npos) return result;
  const std::string snap(rest.substr(snapAt + kSnapMarker.size()));
  if (snap == "none") {
    result.boundToSnapshot = false;
  } else {
    char* end = nullptr;
    const unsigned long v = std::strtoul(snap.c_str(), &end, 16);
    if (snap.empty() || end == nullptr || *end != '\0') return result;
    result.boundToSnapshot = true;
    result.snapshotCrc = static_cast<std::uint32_t>(v);
  }
  result.origin = std::string(origin);
  result.headerOk = true;
  result.goodBytes = headerEnd + 1;

  // --- records ---
  std::uint64_t expectedTick = 0;
  std::size_t pos = headerEnd + 1;
  while (pos < bytes.size()) {
    const std::size_t eol = bytes.find('\n', pos);
    if (eol == std::string_view::npos) {
      result.cleanTail = false;
      result.tailError = "truncated record (no trailing newline)";
      return result;
    }
    const std::string line(bytes.substr(pos, eol - pos));
    const std::size_t crcAt = line.rfind(kCrcMarker);
    if (crcAt == std::string::npos) {
      result.cleanTail = false;
      result.tailError = "record without checksum";
      return result;
    }
    const std::string body = line.substr(0, crcAt);
    const std::string crcTok = line.substr(crcAt + kCrcMarker.size());
    char* end = nullptr;
    const unsigned long stored = std::strtoul(crcTok.c_str(), &end, 16);
    if (crcTok.size() != 8 || end == nullptr || *end != '\0' ||
        static_cast<std::uint32_t>(stored) != crc32(body)) {
      result.cleanTail = false;
      result.tailError = "checksum mismatch";
      return result;
    }
    WalEvent ev;
    if (!parseEventBody(body, ev)) {
      result.cleanTail = false;
      result.tailError = "malformed record body";
      return result;
    }
    if (ev.tick != expectedTick + 1 && !(expectedTick == 0 && ev.tick > 0)) {
      // The first record may start above 1 (events after a seed/compaction
      // carry the store's running tick); later records must be sequential.
      result.cleanTail = false;
      result.tailError = "tick sequence break";
      return result;
    }
    expectedTick = ev.tick;
    pos = eol + 1;
    ev.endOffset = pos;
    result.events.push_back(std::move(ev));
    result.goodBytes = pos;
  }
  return result;
}

}  // namespace flames::kb
