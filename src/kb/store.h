// flames::kb — a durable, mergeable, fleet-scale experience store.
//
// Paper §7's learning compounds with traffic, but one in-memory
// ExperienceBase dies with its process and cannot be combined across
// service instances. KbStore wraps the learning semantics in a
// durability/replication layer:
//
//   * every mutation is a write-ahead-log record (kb/wal.h) applied to an
//     in-memory state that snapshot compaction (tmp file + atomic rename +
//     WAL reset) folds into `snapshot.kb`; a crash at any instant recovers
//     to the durable prefix;
//   * the state is a join-semilattice so merging two stores is
//     commutative, associative and idempotent **by construction**: rules
//     are keyed by their quantized symptom signature, and each rule holds
//     one slot per *origin* (service instance). A store only ever mutates
//     its own origin's slots, bumping a per-slot version; merge takes, per
//     (rule, origin), the slot with the higher version. Two instances that
//     learned from disjoint scenario streams therefore converge to the
//     identical rule set — and because serialize() is canonical (sorted
//     keys, sorted origins, 17-digit doubles), to byte-identical
//     snapshots — regardless of merge order;
//   * certainty degrees from different origins are *fused* at read time
//     with a possibilistic combination rule (Monai & Chehire's possibilistic
//     ATMS data fusion): the disjunctive max (some source is right) or the
//     conjunctive min (consensus of reliable sources). Both are idempotent
//     t-(co)norms, so fusion never manufactures certainty from repetition —
//     merging the same evidence twice is a no-op;
//   * stale rules decay: a decay() sweep multiplies the certainty of local
//     slots that have not been touched for an age horizon that *grows* with
//     the slot's confirmation count (often-hit rules age slower), and
//     tombstones slots that fall below the eviction floor. Tombstones carry
//     versions so an eviction survives merges instead of being resurrected
//     by a peer's stale copy. Because decay touches only local slots, it
//     commutes with merge: merge-then-decay == decay-then-merge.
//
// Lookups go through a cached, fused ExperienceBase view (rebuilt eagerly
// on mutation), which itself uses the signature index — the hot path is a
// hash probe over rules sharing the symptom's quantity set, not a linear
// scan. KbStore is not internally synchronized; DiagnosisService wraps it
// in its experience lock (reads shared, writes exclusive).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "diagnosis/learning.h"
#include "kb/wal.h"

namespace flames::kb {

/// How certainty degrees of the *same* rule learned by different origins
/// combine into the effective certainty served to the diagnosis pipeline.
enum class FusionPolicy {
  /// Disjunctive (possibilistic max): believe the most convinced source.
  kMax,
  /// Conjunctive (possibilistic min): only believe what every source that
  /// has seen the rule agrees on.
  kMin,
};

[[nodiscard]] std::string_view fusionPolicyName(FusionPolicy p);

/// Age- and hit-count-weighted staleness policy for decay() sweeps.
struct DecayPolicy {
  /// Certainty multiplier applied to a stale slot per decay() call.
  double factor = 0.8;
  /// Base staleness horizon: a local slot untouched for this many local
  /// events is stale...
  std::uint64_t staleAfterEvents = 64;
  /// ...except that every confirmation extends its horizon by this many
  /// events — rules that keep getting hit stay fresh longer.
  std::uint64_t horizonPerConfirmation = 16;
  /// Slots decayed below this certainty are tombstoned (evicted).
  double evictBelow = 0.05;
};

/// Crash-injection hooks for tests and the CI crash-recovery job. `failAt`
/// is consulted at the named stages of the durability protocol —
/// "wal_append", "snapshot_write", "snapshot_rename", "wal_reset" —
/// and returning true makes the store die mid-operation (KbIoError) leaving
/// exactly the on-disk state a process crash at that point would leave
/// (partial record, orphaned tmp file, snapshot/WAL generation mismatch).
struct IoHooks {
  std::function<bool(std::string_view stage)> failAt;
};

struct KbOptions {
  /// Durability directory (snapshot.kb + wal.log). Empty = in-memory only.
  std::string dir;
  /// This instance's origin id — non-empty, whitespace-free. Every local
  /// mutation lands in this origin's slots; instances that will merge with
  /// each other MUST use distinct origins (convergence is per-origin
  /// single-writer). Names only a *fresh* store: a directory that already
  /// has a WAL keeps the origin durably recorded in its header (adopted at
  /// open), so reopening someone else's store — e.g. to merge from it —
  /// can never re-attribute their history.
  std::string origin = "local";
  FusionPolicy fusion = FusionPolicy::kMax;
  DecayPolicy decay;
  /// Learning semantics of the wrapped ExperienceBase (reinforcement,
  /// initial certainty, signature index flag).
  diagnosis::LearningOptions learning;
  /// Auto-compact after this many WAL records (0 = manual compact() only).
  std::uint64_t snapshotEveryEvents = 0;
  IoHooks hooks;
};

struct KbStats {
  std::size_t rules = 0;           ///< rule keys (incl. fully-tombstoned)
  std::size_t liveRules = 0;       ///< rules with at least one live slot
  std::size_t tombstoneSlots = 0;  ///< evicted (origin, rule) slots
  std::size_t origins = 0;         ///< distinct origins seen
  std::uint64_t localTick = 0;     ///< local events applied over all time
  std::uint64_t walEvents = 0;     ///< records in the current WAL generation
  std::uint64_t walReplayed = 0;   ///< records replayed at open()
  bool walRecoveredTail = false;   ///< open() truncated a corrupt tail
  std::uint64_t compactions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t merges = 0;
};

class KbError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Durability-layer failure (I/O error or injected crash).
class KbIoError : public KbError {
 public:
  using KbError::KbError;
};

/// Malformed snapshot / merge payload; carries the 1-based line number.
class KbFormatError : public KbError {
 public:
  KbFormatError(std::size_t line, const std::string& what)
      : KbError("kb snapshot line " + std::to_string(line) + ": " + what),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// One origin's locally-evolved state for one rule. Only the owning origin
/// ever mutates a slot (bumping `version`); everyone else replicates it
/// verbatim, so "higher version wins" is a total order per slot.
struct OriginSlot {
  std::uint64_t version = 0;
  double certainty = 0.5;
  std::uint32_t confirmations = 0;
  std::uint32_t failures = 0;
  /// Owning origin's local tick when the slot was last reinforced (decay
  /// measures staleness against this; meaningless across origins).
  std::uint64_t lastEvent = 0;
  /// Tombstone: the slot was evicted. Kept (with its version) so the
  /// eviction wins merges against older live copies.
  bool evicted = false;
  std::vector<diagnosis::Symptom> symptoms;  ///< empty when evicted
};

/// Rule identity: component + mode + quantized symptom-signature shape.
struct RuleKey {
  std::string component;
  std::string mode;
  std::string shape;

  bool operator<(const RuleKey& o) const {
    if (component != o.component) return component < o.component;
    if (mode != o.mode) return mode < o.mode;
    return shape < o.shape;
  }
  bool operator==(const RuleKey& o) const = default;
};

/// Canonical shape of a signature: symptoms sorted by quantity, each
/// rendered as `quantity~direction~bucket` (signed Dc quantized to
/// round(4*dc) in -4..4) joined with '|'. Quantization makes the key stable
/// under measurement noise so repeated confirmations of the same fault land
/// in the same slot on every instance.
[[nodiscard]] std::string signatureShape(
    std::vector<diagnosis::Symptom> signature);

class KbStore {
 public:
  /// Opens the store. With a durability dir: loads `snapshot.kb` if
  /// present, then replays `wal.log` on top (discarding it if it is bound
  /// to a different snapshot generation, truncating a corrupt tail).
  explicit KbStore(KbOptions options = {});

  // --- local learning ops (ExperienceBase semantics, WAL-logged) ---
  void recordSuccess(std::vector<diagnosis::Symptom> signature,
                     const std::string& component, const std::string& mode);
  void recordFailure(const std::string& component, const std::string& mode);
  /// One age sweep over local slots (see DecayPolicy).
  void decay();
  /// Destructively replaces the store's content with `base` (compat with
  /// DiagnosisService::seedExperience and legacy experience files): clears
  /// every origin, then restores each rule verbatim into the local origin.
  void seed(const diagnosis::ExperienceBase& base);

  // --- lookup hot path ---
  [[nodiscard]] std::vector<diagnosis::ExperienceHint> match(
      const std::vector<diagnosis::Symptom>& current) const {
    return view_.match(current);
  }
  /// The fused per-rule view (one SymptomRule per rule key with at least
  /// one live slot: certainty fused per FusionPolicy over origins,
  /// confirmations summed, signature confirmation-weighted).
  [[nodiscard]] const diagnosis::ExperienceBase& materialized() const {
    return view_;
  }

  // --- merge ---
  /// Canonical serialization of the whole state. Equal states produce
  /// byte-identical strings; this is also the snapshot file format and the
  /// merge payload.
  [[nodiscard]] std::string serialize() const;
  /// Joins a peer state (a serialize() payload) into this store: ticks
  /// pointwise max, slots per (rule, origin) by higher version. Durable
  /// stores compact() immediately afterwards so the merge is atomic on
  /// disk. Throws KbFormatError on a malformed payload.
  void mergeState(const std::string& canonicalState);
  void mergeFrom(const KbStore& other) { mergeState(other.serialize()); }

  // --- durability ---
  /// Folds the WAL into a fresh snapshot: write `snapshot.kb.tmp`, fsync-
  /// less flush, atomic rename over `snapshot.kb`, then reset `wal.log` to
  /// a header bound to the new snapshot's CRC. No-op for in-memory stores.
  void compact();

  [[nodiscard]] KbStats stats() const;
  [[nodiscard]] const KbOptions& options() const { return options_; }
  [[nodiscard]] bool durable() const { return !options_.dir.empty(); }

 private:
  void open();
  void applyLocal(const WalEvent& ev);
  void commitLocal(WalEvent ev);
  void appendWal(const WalEvent& ev);
  void resetWal();
  void rebuildView();
  [[nodiscard]] bool injectedCrash(std::string_view stage) const;

  [[nodiscard]] std::string snapshotPath() const;
  [[nodiscard]] std::string walPath() const;

  KbOptions options_;
  /// origin -> local event count; merged by pointwise max so converged
  /// stores agree on every origin's clock.
  std::map<std::string, std::uint64_t> ticks_;
  std::map<RuleKey, std::map<std::string, OriginSlot>> rules_;
  /// Cached fused view, rebuilt eagerly after every mutation so match()
  /// stays const (callable under a shared lock).
  diagnosis::ExperienceBase view_;

  bool hasSnapshot_ = false;
  std::uint32_t snapshotCrc_ = 0;
  std::uint64_t walEvents_ = 0;
  std::uint64_t walReplayed_ = 0;
  bool walRecoveredTail_ = false;
  std::uint64_t compactions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t merges_ = 0;
};

}  // namespace flames::kb
