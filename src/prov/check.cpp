#include "prov/check.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "fuzzy/consistency.h"

namespace flames::prov {

namespace {

using atms::AssumptionId;
using atms::Environment;
using constraints::ConflictPolicy;
using constraints::ValueSource;
using fuzzy::FuzzyInterval;

/// Checker-side view of one replayed entry.
struct Replayed {
  FuzzyInterval value;
  Environment env;
  ValueSource source = ValueSource::kDerived;
  double degree = 1.0;
  int depth = 0;
  bool fromMeasurement = false;
  bool valid = false;  ///< false when this entry itself failed to replay
};

class Checker {
 public:
  Checker(const circuit::Netlist& net, const Certificate& cert,
          const constraints::ModelBuildOptions& modelOptions,
          const CheckOptions& options)
      : cert_(cert),
        options_(options),
        built_(constraints::buildDiagnosticModel(net, modelOptions)) {}

  CheckResult run() {
    checkEntries();
    checkNogoods();
    checkCandidates();
    return std::move(result_);
  }

 private:
  void fail(const std::string& message) {
    if (result_.violations.size() < options_.maxViolations) {
      result_.violations.push_back(message);
    } else if (result_.violations.size() == options_.maxViolations) {
      result_.violations.push_back("... further violations truncated");
    }
  }

  bool near(double a, double b) const {
    return std::abs(a - b) <= options_.tolerance;
  }

  std::optional<Environment> envOf(const std::vector<std::string>& names,
                                   const std::string& where) {
    std::vector<AssumptionId> ids;
    for (const std::string& name : names) {
      const auto id = built_.model.findAssumption(name);
      if (!id) {
        fail(where + ": unknown assumption '" + name + "'");
        return std::nullopt;
      }
      ids.push_back(*id);
    }
    return Environment::fromIds(ids);
  }

  static std::optional<FuzzyInterval> interval(const CertValue& v) {
    try {
      return FuzzyInterval(v.m1, v.m2, v.alpha, v.beta);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }

  FuzzyInterval maybeCrisp(const FuzzyInterval& v) const {
    if (!cert_.crispify) return v;
    return FuzzyInterval::crispInterval(v.support().lo, v.support().hi);
  }

  // --- entries --------------------------------------------------------------

  void checkEntries() {
    replayed_.resize(cert_.entries.size());
    for (std::size_t i = 0; i < cert_.entries.size(); ++i) {
      const CertEntry& e = cert_.entries[i];
      const std::string where =
          "entry " + std::to_string(e.id) + " (" + e.quantity + ")";
      ++result_.entriesChecked;
      if (e.id != i) {
        fail(where + ": ids must be dense and ascending (expected " +
             std::to_string(i) + ")");
        continue;
      }
      Replayed& r = replayed_[i];
      const auto value = interval(e.value);
      if (!value) {
        fail(where + ": malformed trapezoid");
        continue;
      }
      const auto env = envOf(e.env, where);
      if (!env) continue;
      if (!built_.model.findQuantity(e.quantity)) {
        fail(where + ": unknown quantity");
        continue;
      }
      r.value = *value;
      r.env = *env;
      r.source = e.source;
      r.degree = e.degree;
      r.depth = e.depth;
      for (const std::uint32_t p : e.parents) {
        if (p == kNoParent) continue;
        if (p >= i) {
          fail(where + ": parent " + std::to_string(p) +
               " does not precede the entry (cycle)");
          return;
        }
      }
      switch (e.kind) {
        case CertKind::kRoot: checkRoot(e, r, where); break;
        case CertKind::kDerived: checkDerived(e, r, where); break;
        case CertKind::kRefinement: checkRefinement(e, r, where); break;
      }
    }
  }

  void checkRoot(const CertEntry& e, Replayed& r, const std::string& where) {
    if (!e.parents.empty()) {
      fail(where + ": root entries have no parents");
      return;
    }
    if (e.depth != 0) {
      fail(where + ": root entries have depth 0");
      return;
    }
    if (e.source == ValueSource::kMeasured) {
      r.fromMeasurement = true;
      for (const CertObservation& o : cert_.observations) {
        if (o.quantity != e.quantity) continue;
        const auto ov = interval(o.value);
        const auto oenv = envOf(o.env, where);
        if (!ov || !oenv) continue;
        if (maybeCrisp(*ov).approxEquals(r.value, options_.tolerance) &&
            *oenv == r.env && near(e.degree, 1.0)) {
          r.valid = true;
          return;
        }
      }
      fail(where + ": measured root matches no recorded observation");
      return;
    }
    if (e.source == ValueSource::kNominal) {
      for (const constraints::Model::Prediction& p :
           built_.model.predictions()) {
        if (built_.model.quantityInfo(p.quantity).name != e.quantity) {
          continue;
        }
        if (maybeCrisp(p.value).approxEquals(r.value, options_.tolerance) &&
            p.env == r.env && near(p.degree, e.degree)) {
          r.valid = true;
          return;
        }
      }
      fail(where + ": nominal root matches no model prediction");
      return;
    }
    fail(where + ": root entries must be measured or nominal");
  }

  void checkDerived(const CertEntry& e, Replayed& r,
                    const std::string& where) {
    const auto& constraints = built_.model.constraints();
    if (e.constraintIndex < 0 ||
        static_cast<std::size_t>(e.constraintIndex) >= constraints.size()) {
      fail(where + ": constraint index out of range");
      return;
    }
    const constraints::Constraint& c = *constraints[e.constraintIndex];
    const auto& vars = c.variables();
    if (e.parents.size() != vars.size()) {
      fail(where + ": parent list not aligned with constraint '" + c.name() +
           "' (" + std::to_string(e.parents.size()) + " slots, expected " +
           std::to_string(vars.size()) + ")");
      return;
    }
    std::size_t target = vars.size();
    std::vector<FuzzyInterval> inputs(vars.size());
    Environment env = c.validity();
    double degree = c.degree();
    int depth = 0;
    bool fromMeasurement = false;
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (e.parents[i] == kNoParent) {
        if (target != vars.size()) {
          fail(where + ": more than one solved-for slot");
          return;
        }
        target = i;
        continue;
      }
      const Replayed& p = replayed_[e.parents[i]];
      if (!p.valid) {
        fail(where + ": parent " + std::to_string(e.parents[i]) +
             " did not replay");
        return;
      }
      if (built_.model.quantityInfo(vars[i]).name !=
          cert_.entries[e.parents[i]].quantity) {
        fail(where + ": parent " + std::to_string(e.parents[i]) +
             " is not a value of slot quantity '" +
             built_.model.quantityInfo(vars[i]).name + "'");
        return;
      }
      inputs[i] = p.value;
      env = env.unionWith(p.env);
      degree = std::min(degree, p.degree);
      depth = std::max(depth, p.depth);
      fromMeasurement = fromMeasurement || p.fromMeasurement;
    }
    if (target == vars.size()) {
      fail(where + ": no solved-for slot");
      return;
    }
    if (built_.model.quantityInfo(vars[target]).name != e.quantity) {
      fail(where + ": solved-for slot is '" +
           built_.model.quantityInfo(vars[target]).name +
           "', entry claims '" + e.quantity + "'");
      return;
    }
    std::optional<FuzzyInterval> derived;
    try {
      derived = c.solveFor(target, inputs);
    } catch (const std::domain_error&) {
      derived = std::nullopt;
    }
    if (!derived) {
      fail(where + ": constraint '" + c.name() +
           "' is unsolvable for the recorded parents");
      return;
    }
    if (!maybeCrisp(*derived).approxEquals(r.value, options_.tolerance)) {
      fail(where + ": value does not replay through '" + c.name() +
           "' (recorded " + r.value.str() + ", replayed " +
           maybeCrisp(*derived).str() + ")");
      return;
    }
    if (!(env == r.env)) {
      fail(where + ": environment is not the union of parent environments "
                   "and the constraint validity");
      return;
    }
    if (!near(degree, e.degree)) {
      fail(where + ": degree is not the min over parents and constraint");
      return;
    }
    if (e.depth != depth + 1) {
      fail(where + ": depth is not max(parent depths) + 1");
      return;
    }
    r.fromMeasurement = fromMeasurement;
    r.valid = true;
  }

  void checkRefinement(const CertEntry& e, Replayed& r,
                       const std::string& where) {
    if (cert_.policy != ConflictPolicy::kCrisp) {
      fail(where + ": refinement entries only arise under the crisp policy");
      return;
    }
    if (e.parents.size() != 2 || e.parents[0] == kNoParent ||
        e.parents[1] == kNoParent) {
      fail(where + ": refinements have exactly two parents");
      return;
    }
    const Replayed& a = replayed_[e.parents[0]];
    const Replayed& b = replayed_[e.parents[1]];
    if (!a.valid || !b.valid) {
      fail(where + ": a parent did not replay");
      return;
    }
    if (cert_.entries[e.parents[0]].quantity != e.quantity ||
        cert_.entries[e.parents[1]].quantity != e.quantity) {
      fail(where + ": refinement parents must share the entry's quantity");
      return;
    }
    const fuzzy::Cut sa = a.value.support(), sb = b.value.support();
    const fuzzy::Cut inter{std::max(sa.lo, sb.lo), std::min(sa.hi, sb.hi)};
    if (inter.lo > inter.hi) {
      fail(where + ": refinement of disjoint supports");
      return;
    }
    if (!FuzzyInterval::crispInterval(inter.lo, inter.hi)
             .approxEquals(r.value, options_.tolerance)) {
      fail(where + ": value is not the support intersection of its parents");
      return;
    }
    if (!(a.env.unionWith(b.env) == r.env)) {
      fail(where + ": environment is not the union of the parents'");
      return;
    }
    if (!near(std::min(a.degree, b.degree), e.degree)) {
      fail(where + ": degree is not the min of the parents'");
      return;
    }
    if (e.depth != std::max(a.depth, b.depth) + 1) {
      fail(where + ": depth is not max(parent depths) + 1");
      return;
    }
    r.fromMeasurement = a.fromMeasurement || b.fromMeasurement;
    r.valid = true;
  }

  // --- nogoods --------------------------------------------------------------

  void checkNogoods() {
    for (std::size_t i = 0; i < cert_.nogoods.size(); ++i) {
      const CertNogood& n = cert_.nogoods[i];
      const std::string where = "nogood " + std::to_string(i) + " (" +
                                n.quantity + ")";
      ++result_.nogoodsChecked;
      if (n.a >= replayed_.size() || n.b >= replayed_.size()) {
        fail(where + ": entry reference out of range");
        continue;
      }
      const Replayed& a = replayed_[n.a];
      const Replayed& b = replayed_[n.b];
      if (!a.valid || !b.valid) {
        fail(where + ": a colliding entry did not replay");
        continue;
      }
      if (cert_.entries[n.a].quantity != n.quantity ||
          cert_.entries[n.b].quantity != n.quantity) {
        fail(where + ": colliding entries are not values of the quantity");
        continue;
      }
      const auto env = envOf(n.env, where);
      if (!env) continue;
      if (!(a.env.unionWith(b.env) == *env)) {
        fail(where + ": environment is not the union of both supports");
        continue;
      }
      double dc = 0.0, degree = 0.0;
      if (cert_.policy == ConflictPolicy::kCrisp) {
        if (a.value.supportsOverlap(b.value)) {
          fail(where + ": crisp conflict but the supports overlap");
          continue;
        }
        dc = 0.0;
        degree = std::min({1.0, a.degree, b.degree});
      } else {
        // The paper's coincidence-resolution rule (§6.1.1), exactly as the
        // engine applies it: the contained/containing case is a split, not
        // a conflict; the measurement-rooted side is Vm; a tie evaluates
        // both orders and keeps the worst; any pair involving a derived
        // value is graded by Zadeh's compatibility instead of the area
        // ratio alone.
        if (a.value.subsetOf(b.value) || b.value.subsetOf(a.value)) {
          fail(where + ": contained values are a split, never a conflict");
          continue;
        }
        fuzzy::Consistency cons;
        if (a.fromMeasurement != b.fromMeasurement) {
          const Replayed& vm = a.fromMeasurement ? a : b;
          const Replayed& vn = a.fromMeasurement ? b : a;
          cons = fuzzy::degreeOfConsistency(vm.value, vn.value);
        } else {
          const fuzzy::Consistency ab =
              fuzzy::degreeOfConsistency(a.value, b.value);
          const fuzzy::Consistency ba =
              fuzzy::degreeOfConsistency(b.value, a.value);
          cons = ab.dc <= ba.dc ? ab : ba;
        }
        dc = cons.dc;
        if (a.source == ValueSource::kDerived ||
            b.source == ValueSource::kDerived) {
          dc = std::max(dc, a.value.possibilityOfEquality(b.value));
        }
        degree = std::min({1.0 - dc, a.degree, b.degree});
      }
      if (!near(dc, n.dc)) {
        std::ostringstream os;
        os << where << ": Dc does not replay (recorded " << n.dc
           << ", replayed " << dc << ")";
        fail(os.str());
        continue;
      }
      if (!near(degree, n.degree)) {
        std::ostringstream os;
        os << where << ": degree does not replay (recorded " << n.degree
           << ", replayed " << degree << ")";
        fail(os.str());
        continue;
      }
    }
  }

  // --- candidates -----------------------------------------------------------

  void checkCandidates() {
    // Reconstruct the final nogood database by replaying the recorded
    // insertion sequence through the subsumption rule (a re-implementation,
    // not a call into atms::NogoodDb): an addition subsumed by an existing
    // stronger-or-equal subset is dropped; otherwise it evicts everything
    // it subsumes. The recorded `kept` flags must match.
    struct Db {
      Environment env;
      double degree = 0.0;
    };
    std::vector<Db> db;
    for (std::size_t i = 0; i < cert_.nogoods.size(); ++i) {
      const CertNogood& n = cert_.nogoods[i];
      const auto env = envOf(n.env, "nogood " + std::to_string(i));
      if (!env) return;
      const double degree = std::clamp(n.degree, 0.0, 1.0);
      bool subsumed = false;
      for (const Db& d : db) {
        if (d.degree >= degree && d.env.isSubsetOf(*env)) {
          subsumed = true;
          break;
        }
      }
      if (subsumed == n.kept) {
        fail("nogood " + std::to_string(i) +
             ": kept flag disagrees with the subsumption replay");
        return;
      }
      if (subsumed) continue;
      db.erase(std::remove_if(db.begin(), db.end(),
                              [&](const Db& d) {
                                return degree >= d.degree &&
                                       env->isSubsetOf(d.env);
                              }),
               db.end());
      db.push_back({*env, degree});
    }

    // The λ-cut minimal nogoods: strong enough, and no strict subset of
    // them is also in the cut.
    std::vector<Environment> minimal;
    for (const Db& n : db) {
      if (n.degree < cert_.lambda) continue;
      bool dominated = false;
      for (const Db& m : db) {
        if (m.degree < cert_.lambda) continue;
        if (&m != &n && m.env.isSubsetOf(n.env) && !(n.env == m.env)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) minimal.push_back(n.env);
    }

    for (std::size_t i = 0; i < cert_.candidates.size(); ++i) {
      const CertCandidate& c = cert_.candidates[i];
      const std::string where = "candidate " + std::to_string(i);
      ++result_.candidatesChecked;
      const auto members = envOf(c.members, where);
      if (!members) continue;
      if (members->size() != c.members.size()) {
        fail(where + ": duplicate members");
        continue;
      }
      if (c.members.empty()) {
        fail(where + ": empty candidate");
        continue;
      }
      if (cert_.maxCardinality != 0 &&
          c.members.size() > cert_.maxCardinality) {
        fail(where + ": exceeds the cardinality bound");
        continue;
      }
      bool hits = true;
      for (const Environment& m : minimal) {
        if (!m.intersects(*members)) {
          hits = false;
          break;
        }
      }
      if (!hits) {
        fail(where + ": not a hitting set of the λ-cut minimal nogoods");
        continue;
      }
      // Minimality witness: for every member there must be a nogood the
      // candidate hits through that member alone.
      for (const std::string& name : c.members) {
        const auto id = built_.model.findAssumption(name);
        Environment alone;
        alone.insert(*id);
        const Environment without = [&] {
          std::vector<AssumptionId> rest;
          for (const std::string& other : c.members) {
            if (other != name) {
              rest.push_back(*built_.model.findAssumption(other));
            }
          }
          return Environment::fromIds(rest);
        }();
        bool witnessed = false;
        for (const Environment& m : minimal) {
          if (m.intersects(alone) && !m.intersects(without)) {
            witnessed = true;
            break;
          }
        }
        if (!witnessed) {
          fail(where + ": member '" + name +
               "' has no witness nogood — the hitting set is not minimal");
          break;
        }
      }
    }
  }

  const Certificate& cert_;
  const CheckOptions& options_;
  constraints::BuiltModel built_;
  std::vector<Replayed> replayed_;
  CheckResult result_;
};

}  // namespace

CheckResult checkCertificate(const circuit::Netlist& net,
                             const Certificate& cert,
                             const constraints::ModelBuildOptions& modelOptions,
                             const CheckOptions& options) {
  Checker checker(net, cert, modelOptions, options);
  return checker.run();
}

}  // namespace flames::prov
