// Independent certificate replay (oracle invariant I10).
//
// checkCertificate() verifies a diagnosis certificate against a freshly
// built model with *no engine code on the replay path*: it never touches
// the Propagator, the Atms or the candidate generator. What it shares with
// the engine is exactly the model semantics the certificate is *about* —
// buildDiagnosticModel (deterministic: netlist + options -> the same
// quantities, assumptions, constraints and predictions), Constraint::
// solveFor for recomputing each derivation step, and the fuzzy primitives
// (degreeOfConsistency, possibilityOfEquality) that define Dc. The
// engine-side machinery being audited — queue scheduling, subsumption
// erasure, entry caps, coincidence bookkeeping — is re-derived here from
// first principles:
//
//   * every root entry must restate an observation or a model prediction;
//   * every derived entry must equal solveFor over its recorded parents,
//     with environment = union of parent environments + the constraint's
//     validity, degree = min of parent degrees and the constraint degree,
//     and depth = max parent depth + 1 (acyclic: parents have smaller ids);
//   * every nogood must have env = the union of its two entries' supports
//     and a Dc/degree that the checker reproduces from the paper's
//     coincidence-resolution rule (§6.1.1, including the derived-value
//     compatibility adjustment);
//   * every candidate must be a *minimal* hitting set of the λ-cut minimal
//     nogoods reconstructed from the certificate's nogood sequence (each
//     member carries a witness nogood it alone hits).
//
// This is strictly stronger than the report-shape invariants I3/I5: those
// check that nogoods and candidates are mutually consistent as printed,
// I10 checks that they follow from the model and the observations.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "constraints/model_builder.h"
#include "prov/certificate.h"

namespace flames::prov {

struct CheckOptions {
  /// Absolute tolerance for replayed values, degrees and Dc. The recorded
  /// numbers come from the same double-precision arithmetic, so the slack
  /// only needs to absorb the text round-trip (which is itself exact at 17
  /// significant digits).
  double tolerance = 1e-6;
  /// Stop collecting after this many violations.
  std::size_t maxViolations = 64;
};

struct CheckResult {
  std::vector<std::string> violations;
  std::size_t entriesChecked = 0;
  std::size_t nogoodsChecked = 0;
  std::size_t candidatesChecked = 0;
  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Replays `cert` against a model freshly built from `net`. `modelOptions`
/// must match the build options of the recording run (the oracle and the
/// CLIs pass their FlamesOptions::model through).
[[nodiscard]] CheckResult checkCertificate(
    const circuit::Netlist& net, const Certificate& cert,
    const constraints::ModelBuildOptions& modelOptions = {},
    const CheckOptions& options = {});

}  // namespace flames::prov
