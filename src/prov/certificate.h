// Diagnosis certificates (ROADMAP item 2: proof-logging the fuzzy ATMS).
//
// A certificate is the self-contained, name-based cut of one diagnosis
// run's provenance: the observations entered, every recorded derivation
// step (roots, constraint applications, crisp refinements), every recorded
// nogood with the Dc that condemned it, and the λ-cut hitting-set
// candidates. Everything an *independent* checker needs to replay the run
// against a freshly built model — and nothing engine-internal: entries are
// keyed by stable ids, environments and candidate members by assumption
// name, quantities by name, constraints by their index in the deterministic
// model build.
//
// The text format (renderCertificate/parseCertificate) is line-based like
// the .scenario files: one record per line, `flames-certificate v1` header,
// `end` trailer. flames_cli --certificate writes it; flames_check replays
// it; the scenario oracle skips the round-trip and checks the in-memory
// form directly (invariant I10).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/model_builder.h"
#include "diagnosis/flames.h"

namespace flames::prov {

/// Sentinel parent id marking the solved-for slot of a derived entry.
inline constexpr std::uint32_t kNoParent = constraints::kNoProvEntry;

/// A trapezoid [m1, m2, alpha, beta] by value (decoupled from FuzzyInterval
/// so a parsed certificate cannot fail interval validation before the
/// checker gets to report *where* it is malformed).
struct CertValue {
  double m1 = 0.0;
  double m2 = 0.0;
  double alpha = 0.0;
  double beta = 0.0;
};

enum class CertKind { kRoot, kDerived, kRefinement };

struct CertEntry {
  std::uint32_t id = 0;
  std::string quantity;
  CertKind kind = CertKind::kRoot;
  constraints::ValueSource source = constraints::ValueSource::kDerived;
  int constraintIndex = -1;  ///< kDerived only
  CertValue value;
  std::vector<std::string> env;  ///< assumption names, id order
  double degree = 1.0;
  int depth = 0;
  /// Slot-aligned (kDerived, kNoParent at the solved-for slot) or the
  /// coinciding pair (kRefinement); empty for roots.
  std::vector<std::uint32_t> parents;
};

struct CertNogood {
  std::string quantity;  ///< where the coincidence happened
  std::uint32_t a = kNoParent;
  std::uint32_t b = kNoParent;
  double dc = 0.0;     ///< degree of consistency that condemned the pair
  double degree = 0.0; ///< recorded nogood degree
  bool kept = false;   ///< NogoodDb subsumption verdict at insertion
  std::vector<std::string> env;
};

struct CertCandidate {
  std::vector<std::string> members;  ///< assumption names
};

struct CertObservation {
  std::string quantity;
  CertValue value;
  std::vector<std::string> env;
};

struct Certificate {
  int version = 1;
  constraints::ConflictPolicy policy = constraints::ConflictPolicy::kFuzzy;
  bool crispify = false;
  double lambda = 0.0;
  std::size_t maxCardinality = 0;
  std::vector<CertObservation> observations;
  std::vector<CertEntry> entries;
  std::vector<CertNogood> nogoods;
  std::vector<CertCandidate> candidates;
};

/// Cuts a certificate from a recorded run. `built` must be the model the
/// run recorded against (or a deterministic rebuild of it — the builder is
/// deterministic for a given netlist + ModelBuildOptions); it supplies the
/// quantity and assumption names.
[[nodiscard]] Certificate buildCertificate(
    const constraints::BuiltModel& built,
    const diagnosis::DiagnosisProvenance& provenance,
    const std::vector<diagnosis::Observation>& observations);

/// Line-based text round-trip. parseCertificate throws std::runtime_error
/// with a line number on malformed input.
[[nodiscard]] std::string renderCertificate(const Certificate& cert);
[[nodiscard]] Certificate parseCertificate(const std::string& text);

void writeCertificateFile(const std::string& path, const Certificate& cert);
[[nodiscard]] Certificate loadCertificateFile(const std::string& path);

}  // namespace flames::prov
