#include "prov/explain.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace flames::prov {

namespace {

using constraints::ProvEntry;
using constraints::ProvEntryId;
using constraints::ProvKind;
using constraints::ProvNogood;
using constraints::ProvenanceLog;
using constraints::ValueSource;
using diagnosis::DiagnosisProvenance;
using diagnosis::DiagnosisReport;

const char* sourceName(ValueSource s) {
  switch (s) {
    case ValueSource::kNominal: return "nominal";
    case ValueSource::kMeasured: return "measured";
    case ValueSource::kDerived: return "derived";
  }
  return "?";
}

void jsonEscape(std::ostream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << std::setw(4) << std::setfill('0')
             << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          os << c;
        }
    }
  }
}

/// Everything the renderers share: the target resolved to one of the two
/// modes, the implicating nogoods (strongest first, capped), and per-nogood
/// derivation chains (transitive ancestors of both colliding entries, in
/// ascending id order — parents always precede children).
struct Explanation {
  std::string target;
  bool isComponent = false;
  const DiagnosisProvenance* prov = nullptr;
  std::vector<std::size_t> nogoodIdx;            ///< into prov->log.nogoods()
  std::vector<std::vector<ProvEntryId>> chains;  ///< parallel to nogoodIdx
  std::size_t implicatingTotal = 0;  ///< before the maxNogoods cap
};

std::vector<ProvEntryId> chainOf(const ProvenanceLog& log, ProvEntryId a,
                                 ProvEntryId b, std::size_t cap) {
  std::set<ProvEntryId> seen;
  std::vector<ProvEntryId> stack;
  const auto push = [&](ProvEntryId id) {
    if (id != constraints::kNoProvEntry && seen.insert(id).second) {
      stack.push_back(id);
    }
  };
  push(a);
  push(b);
  while (!stack.empty()) {
    const ProvEntryId id = stack.back();
    stack.pop_back();
    const ProvEntry& e = log.entries()[id];
    const ProvEntryId* parents = log.parentsData(e);
    for (std::size_t i = 0; i < log.parentCount(e); ++i) push(parents[i]);
  }
  std::vector<ProvEntryId> chain(seen.begin(), seen.end());
  if (chain.size() > cap) chain.resize(cap);
  return chain;
}

Explanation resolve(const constraints::BuiltModel& built,
                    const DiagnosisReport& report, const std::string& target,
                    const ExplainOptions& options) {
  if (!report.provenance) {
    throw std::runtime_error(
        "explain: the report carries no provenance — run the diagnosis with "
        "recordProvenance (flames_cli/flames_batch --explain set it)");
  }
  Explanation ex;
  ex.target = target;
  ex.prov = report.provenance.get();
  const ProvenanceLog& log = ex.prov->log;

  const auto assumption = built.model.findAssumption(target);
  const auto quantity = built.model.findQuantity(target);
  if (assumption) {
    ex.isComponent = true;
  } else if (!quantity) {
    throw std::invalid_argument("explain: '" + target +
                                "' names neither a component assumption nor "
                                "a quantity of this model");
  }

  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < log.nogoods().size(); ++i) {
    const ProvNogood& n = log.nogoods()[i];
    const bool implicates =
        ex.isComponent
            ? n.env.ids().end() != std::find(n.env.ids().begin(),
                                             n.env.ids().end(), *assumption)
            : n.quantity == *quantity;
    if (implicates) idx.push_back(i);
  }
  ex.implicatingTotal = idx.size();
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return log.nogoods()[a].degree > log.nogoods()[b].degree;
  });
  if (idx.size() > options.maxNogoods) idx.resize(options.maxNogoods);
  ex.nogoodIdx = std::move(idx);
  for (const std::size_t i : ex.nogoodIdx) {
    const ProvNogood& n = log.nogoods()[i];
    ex.chains.push_back(chainOf(log, n.a, n.b, options.maxChainEntries));
  }
  return ex;
}

std::string constraintName(const constraints::BuiltModel& built, int idx) {
  if (idx < 0 ||
      static_cast<std::size_t>(idx) >= built.model.constraints().size()) {
    return "";
  }
  return built.model.constraints()[idx]->name();
}

void renderEntryLine(std::ostream& os, const constraints::BuiltModel& built,
                     const ProvenanceLog& log, ProvEntryId id) {
  const ProvEntry& e = log.entries()[id];
  os << "    #" << id << ' ' << built.model.quantityInfo(e.quantity).name
     << ' ' << sourceName(e.source);
  if (e.kind == ProvKind::kDerived) {
    os << " via " << constraintName(built, e.constraintIndex);
  } else if (e.kind == ProvKind::kRefinement) {
    os << " by refinement";
  }
  os << " = " << e.value.str() << " degree " << e.degree << " depth "
     << e.depth;
  const auto parents = log.parentsOf(e);
  bool any = false;
  for (const ProvEntryId p : parents) {
    if (p == constraints::kNoProvEntry) continue;
    os << (any ? "," : " from #") << p;
    any = true;
  }
  if (e.env.size() != 0) os << " env " << built.model.describe(e.env);
  os << '\n';
}

}  // namespace

std::string renderExplanation(const constraints::BuiltModel& built,
                              const DiagnosisReport& report,
                              const std::string& target,
                              const ExplainOptions& options) {
  const Explanation ex = resolve(built, report, target, options);
  const ProvenanceLog& log = ex.prov->log;
  std::ostringstream os;
  os << std::setprecision(4);

  if (ex.isComponent) {
    os << "Explanation for component " << target << "\n";
    const auto s = report.suspicion.find(target);
    if (s != report.suspicion.end()) {
      os << "  suspicion " << s->second << "\n";
    }
    bool anyCand = false;
    for (const diagnosis::RankedCandidate& c : report.candidates) {
      if (std::find(c.components.begin(), c.components.end(), target) ==
          c.components.end()) {
        continue;
      }
      if (!anyCand) os << "  candidate diagnoses containing it:\n";
      anyCand = true;
      os << "    {";
      for (std::size_t i = 0; i < c.components.size(); ++i) {
        os << (i ? "," : "") << c.components[i];
      }
      os << "} plausibility " << c.plausibility << "\n";
    }
    if (!anyCand) os << "  appears in no candidate diagnosis\n";
  } else {
    os << "Explanation for quantity " << target << "\n";
    for (const diagnosis::MeasurementSummary& m : report.measurements) {
      if (m.quantity != target) continue;
      os << "  measured " << m.measured.str() << " vs nominal "
         << m.nominal.str() << "  Dc " << m.signedDc << "\n";
    }
  }

  if (ex.nogoodIdx.empty()) {
    os << "  no recorded conflict "
       << (ex.isComponent ? "implicates it" : "occurred here") << "\n";
    return os.str();
  }
  os << "  " << (ex.isComponent ? "implicated by " : "conflicts here: ")
     << ex.implicatingTotal << " recorded conflict(s)";
  if (ex.implicatingTotal > ex.nogoodIdx.size()) {
    os << " (showing the " << ex.nogoodIdx.size() << " strongest)";
  }
  os << "\n";

  for (std::size_t k = 0; k < ex.nogoodIdx.size(); ++k) {
    const ProvNogood& n = log.nogoods()[ex.nogoodIdx[k]];
    os << "  conflict on " << built.model.quantityInfo(n.quantity).name
       << ": Dc " << n.dc << " -> nogood degree " << n.degree << " against "
       << built.model.describe(n.env)
       << (n.kept ? "" : " (subsumed by a stronger conflict)") << "\n";
    os << "    between #" << n.a << " and #" << n.b
       << "; full derivation:\n";
    for (const ProvEntryId id : ex.chains[k]) {
      renderEntryLine(os, built, log, id);
    }
  }
  return os.str();
}

std::string explanationJson(const constraints::BuiltModel& built,
                            const DiagnosisReport& report,
                            const std::string& target,
                            const ExplainOptions& options) {
  const Explanation ex = resolve(built, report, target, options);
  const ProvenanceLog& log = ex.prov->log;
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\"target\":\"";
  jsonEscape(os, target);
  os << "\",\"kind\":\"" << (ex.isComponent ? "component" : "quantity")
     << "\"";
  if (ex.isComponent) {
    const auto s = report.suspicion.find(target);
    if (s != report.suspicion.end()) {
      os << ",\"suspicion\":" << s->second;
    }
    os << ",\"candidates\":[";
    bool first = true;
    for (const diagnosis::RankedCandidate& c : report.candidates) {
      if (std::find(c.components.begin(), c.components.end(), target) ==
          c.components.end()) {
        continue;
      }
      if (!first) os << ',';
      first = false;
      os << "{\"members\":[";
      for (std::size_t i = 0; i < c.components.size(); ++i) {
        if (i) os << ',';
        os << '"';
        jsonEscape(os, c.components[i]);
        os << '"';
      }
      os << "],\"plausibility\":" << c.plausibility << "}";
    }
    os << "]";
  }

  // Union of all rendered chains, each entry once.
  std::set<ProvEntryId> entryIds;
  for (const auto& chain : ex.chains) {
    entryIds.insert(chain.begin(), chain.end());
  }

  os << ",\"nogoods\":[";
  for (std::size_t k = 0; k < ex.nogoodIdx.size(); ++k) {
    const ProvNogood& n = log.nogoods()[ex.nogoodIdx[k]];
    if (k) os << ',';
    os << "{\"quantity\":\"";
    jsonEscape(os, built.model.quantityInfo(n.quantity).name);
    os << "\",\"dc\":" << n.dc << ",\"degree\":" << n.degree
       << ",\"kept\":" << (n.kept ? "true" : "false") << ",\"a\":" << n.a
       << ",\"b\":" << n.b << ",\"env\":[";
    const auto ids = n.env.ids();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i) os << ',';
      os << '"';
      jsonEscape(os, built.model.assumptionName(ids[i]));
      os << '"';
    }
    os << "]}";
  }
  os << "],\"entries\":[";
  bool firstEntry = true;
  for (const ProvEntryId id : entryIds) {
    const ProvEntry& e = log.entries()[id];
    if (!firstEntry) os << ',';
    firstEntry = false;
    os << "{\"id\":" << id << ",\"quantity\":\"";
    jsonEscape(os, built.model.quantityInfo(e.quantity).name);
    os << "\",\"kind\":\"" << constraints::provKindName(e.kind)
       << "\",\"source\":\"" << sourceName(e.source) << "\"";
    const std::string cname = constraintName(built, e.constraintIndex);
    if (!cname.empty()) {
      os << ",\"constraint\":\"";
      jsonEscape(os, cname);
      os << "\"";
    }
    os << ",\"value\":[" << e.value.m1() << ',' << e.value.m2() << ','
       << e.value.alpha() << ',' << e.value.beta()
       << "],\"degree\":" << e.degree << ",\"depth\":" << e.depth
       << ",\"parents\":[";
    const auto parents = log.parentsOf(e);
    bool anyParent = false;
    for (const ProvEntryId p : parents) {
      if (p == constraints::kNoProvEntry) continue;
      if (anyParent) os << ',';
      anyParent = true;
      os << p;
    }
    os << "],\"env\":[";
    const auto ids = e.env.ids();
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i) os << ',';
      os << '"';
      jsonEscape(os, built.model.assumptionName(ids[i]));
      os << '"';
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace flames::prov
