// Explanation rendering over recorded diagnosis provenance.
//
// Turns the raw derivation log (constraints/provenance.h, recorded when
// FlamesOptions::recordProvenance is set) into the answer to "why does the
// report accuse X?": which nogoods implicate the component (with the Dc
// that condemned each coincidence), and the full constraint-application
// chain behind each colliding value, back to the observations and nominal
// predictions it was derived from.
//
// The target can be a component (assumption) name — the usual question —
// or a quantity name ("V(out)"), which explains every value and conflict
// recorded at that node instead. renderExplanation produces the human
// report flames_cli --explain prints; explanationJson the machine form.
#pragma once

#include <cstddef>
#include <string>

#include "constraints/model_builder.h"
#include "diagnosis/flames.h"

namespace flames::prov {

struct ExplainOptions {
  /// Render at most this many implicating nogoods (strongest first).
  std::size_t maxNogoods = 8;
  /// Cap on derivation-chain entries rendered per nogood.
  std::size_t maxChainEntries = 32;
};

/// Renders the explanation for `target` (a component/assumption name or a
/// quantity name). Throws std::invalid_argument when the target names
/// neither, and std::runtime_error when the report carries no provenance
/// (recordProvenance was off).
[[nodiscard]] std::string renderExplanation(
    const constraints::BuiltModel& built,
    const diagnosis::DiagnosisReport& report, const std::string& target,
    const ExplainOptions& options = {});

/// Same content as a JSON object (stable keys; see DESIGN.md §10).
[[nodiscard]] std::string explanationJson(
    const constraints::BuiltModel& built,
    const diagnosis::DiagnosisReport& report, const std::string& target,
    const ExplainOptions& options = {});

}  // namespace flames::prov
