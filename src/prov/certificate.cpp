#include "prov/certificate.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace flames::prov {

namespace {

using constraints::ConflictPolicy;
using constraints::ProvEntry;
using constraints::ProvKind;
using constraints::ProvNogood;
using constraints::ValueSource;

CertValue certValue(const fuzzy::FuzzyInterval& v) {
  return {v.m1(), v.m2(), v.alpha(), v.beta()};
}

std::vector<std::string> envNames(const constraints::Model& model,
                                  const atms::Environment& env) {
  std::vector<std::string> names;
  for (atms::AssumptionId id : env.ids()) {
    names.push_back(model.assumptionName(id));
  }
  return names;
}

const char* kindToken(CertKind k) {
  switch (k) {
    case CertKind::kRoot: return "root";
    case CertKind::kDerived: return "derived";
    case CertKind::kRefinement: return "refine";
  }
  return "?";
}

const char* sourceToken(ValueSource s) {
  switch (s) {
    case ValueSource::kNominal: return "nominal";
    case ValueSource::kMeasured: return "measured";
    case ValueSource::kDerived: return "derived";
  }
  return "?";
}

CertKind parseKind(const std::string& t, std::size_t line) {
  if (t == "root") return CertKind::kRoot;
  if (t == "derived") return CertKind::kDerived;
  if (t == "refine") return CertKind::kRefinement;
  throw std::runtime_error("certificate line " + std::to_string(line) +
                           ": unknown entry kind '" + t + "'");
}

ValueSource parseSource(const std::string& t, std::size_t line) {
  if (t == "nominal") return ValueSource::kNominal;
  if (t == "measured") return ValueSource::kMeasured;
  if (t == "derived") return ValueSource::kDerived;
  throw std::runtime_error("certificate line " + std::to_string(line) +
                           ": unknown value source '" + t + "'");
}

/// "env=-" or "env=R1,R3" -> name list.
std::vector<std::string> parseNameList(const std::string& token,
                                       const std::string& prefix,
                                       std::size_t line) {
  if (token.rfind(prefix, 0) != 0) {
    throw std::runtime_error("certificate line " + std::to_string(line) +
                             ": expected '" + prefix + "...', got '" + token +
                             "'");
  }
  std::vector<std::string> names;
  const std::string body = token.substr(prefix.size());
  if (body == "-") return names;
  std::istringstream is(body);
  std::string name;
  while (std::getline(is, name, ',')) {
    if (!name.empty()) names.push_back(name);
  }
  return names;
}

std::string renderNameList(const std::string& prefix,
                           const std::vector<std::string>& names) {
  if (names.empty()) return prefix + "-";
  std::string out = prefix;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i != 0) out += ',';
    out += names[i];
  }
  return out;
}

std::vector<std::uint32_t> parseParents(const std::string& token,
                                        std::size_t line) {
  if (token.rfind("parents=", 0) != 0) {
    throw std::runtime_error("certificate line " + std::to_string(line) +
                             ": expected 'parents=...', got '" + token + "'");
  }
  std::vector<std::uint32_t> parents;
  const std::string body = token.substr(8);
  if (body == "-") return parents;
  std::istringstream is(body);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item == "_") {
      parents.push_back(kNoParent);
    } else {
      parents.push_back(
          static_cast<std::uint32_t>(std::stoul(item)));
    }
  }
  return parents;
}

std::string renderParents(const std::vector<std::uint32_t>& parents) {
  if (parents.empty()) return "parents=-";
  std::string out = "parents=";
  for (std::size_t i = 0; i < parents.size(); ++i) {
    if (i != 0) out += ',';
    out += parents[i] == kNoParent ? "_" : std::to_string(parents[i]);
  }
  return out;
}

}  // namespace

Certificate buildCertificate(
    const constraints::BuiltModel& built,
    const diagnosis::DiagnosisProvenance& provenance,
    const std::vector<diagnosis::Observation>& observations) {
  const constraints::Model& model = built.model;
  Certificate cert;
  cert.policy = provenance.policy;
  cert.crispify = provenance.crispifyValues;
  cert.lambda = provenance.lambda;
  cert.maxCardinality = provenance.maxCardinality;

  for (const diagnosis::Observation& obs : observations) {
    CertObservation co;
    co.quantity = "V(" + obs.node + ")";
    co.value = certValue(obs.value);
    cert.observations.push_back(std::move(co));
  }

  const constraints::ProvenanceLog& log = provenance.log;
  for (std::size_t i = 0; i < log.entries().size(); ++i) {
    const ProvEntry& e = log.entries()[i];
    CertEntry ce;
    ce.id = static_cast<std::uint32_t>(i);
    ce.quantity = model.quantityInfo(e.quantity).name;
    switch (e.kind) {
      case ProvKind::kRoot: ce.kind = CertKind::kRoot; break;
      case ProvKind::kDerived: ce.kind = CertKind::kDerived; break;
      case ProvKind::kRefinement: ce.kind = CertKind::kRefinement; break;
    }
    ce.source = e.source;
    ce.constraintIndex = e.constraintIndex;
    ce.value = certValue(e.value);
    ce.env = envNames(model, e.env);
    ce.degree = e.degree;
    ce.depth = e.depth;
    ce.parents = log.parentsOf(e);
    cert.entries.push_back(std::move(ce));
  }

  for (const ProvNogood& n : log.nogoods()) {
    CertNogood cn;
    cn.quantity = model.quantityInfo(n.quantity).name;
    cn.a = n.a;
    cn.b = n.b;
    cn.dc = n.dc;
    cn.degree = n.degree;
    cn.kept = n.kept;
    cn.env = envNames(model, n.env);
    cert.nogoods.push_back(std::move(cn));
  }

  for (const std::vector<std::string>& members : provenance.hittingSets) {
    cert.candidates.push_back({members});
  }
  return cert;
}

std::string renderCertificate(const Certificate& cert) {
  std::ostringstream os;
  os << std::setprecision(17);
  os << "flames-certificate v" << cert.version << "\n";
  os << "policy "
     << (cert.policy == ConflictPolicy::kCrisp ? "crisp" : "fuzzy") << "\n";
  os << "crispify " << (cert.crispify ? 1 : 0) << "\n";
  os << "lambda " << cert.lambda << "\n";
  os << "maxcard " << cert.maxCardinality << "\n";
  for (const CertObservation& o : cert.observations) {
    os << "obs " << o.quantity << ' ' << o.value.m1 << ' ' << o.value.m2
       << ' ' << o.value.alpha << ' ' << o.value.beta << ' '
       << renderNameList("env=", o.env) << "\n";
  }
  for (const CertEntry& e : cert.entries) {
    os << "entry " << e.id << ' ' << e.quantity << ' ' << kindToken(e.kind)
       << ' ' << sourceToken(e.source) << ' ';
    if (e.constraintIndex < 0) {
      os << '-';
    } else {
      os << e.constraintIndex;
    }
    os << ' ' << e.value.m1 << ' ' << e.value.m2 << ' ' << e.value.alpha
       << ' ' << e.value.beta << ' ' << e.degree << ' ' << e.depth << ' '
       << renderParents(e.parents) << ' ' << renderNameList("env=", e.env)
       << "\n";
  }
  for (const CertNogood& n : cert.nogoods) {
    os << "nogood " << n.quantity << ' ' << n.a << ' ' << n.b << ' ' << n.dc
       << ' ' << n.degree << ' ' << (n.kept ? 1 : 0) << ' '
       << renderNameList("env=", n.env) << "\n";
  }
  for (const CertCandidate& c : cert.candidates) {
    os << renderNameList("cand ", c.members) << "\n";
  }
  os << "end\n";
  return os.str();
}

Certificate parseCertificate(const std::string& text) {
  Certificate cert;
  std::istringstream in(text);
  std::string line;
  std::size_t lineNo = 0;
  bool sawHeader = false, sawEnd = false;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    const auto fail = [&](const std::string& what) -> std::runtime_error {
      return std::runtime_error("certificate line " + std::to_string(lineNo) +
                                ": " + what);
    };
    if (!sawHeader) {
      if (tag != "flames-certificate") {
        throw fail("expected 'flames-certificate v1' header");
      }
      std::string version;
      is >> version;
      if (version != "v1") throw fail("unsupported version '" + version + "'");
      sawHeader = true;
      continue;
    }
    if (tag == "policy") {
      std::string p;
      is >> p;
      if (p == "fuzzy") {
        cert.policy = ConflictPolicy::kFuzzy;
      } else if (p == "crisp") {
        cert.policy = ConflictPolicy::kCrisp;
      } else {
        throw fail("unknown policy '" + p + "'");
      }
    } else if (tag == "crispify") {
      int v = 0;
      is >> v;
      cert.crispify = v != 0;
    } else if (tag == "lambda") {
      is >> cert.lambda;
    } else if (tag == "maxcard") {
      is >> cert.maxCardinality;
    } else if (tag == "obs") {
      CertObservation o;
      std::string envTok;
      is >> o.quantity >> o.value.m1 >> o.value.m2 >> o.value.alpha >>
          o.value.beta >> envTok;
      if (!is) throw fail("malformed obs record");
      o.env = parseNameList(envTok, "env=", lineNo);
      cert.observations.push_back(std::move(o));
    } else if (tag == "entry") {
      CertEntry e;
      std::string kindTok, sourceTok, cidxTok, parentsTok, envTok;
      is >> e.id >> e.quantity >> kindTok >> sourceTok >> cidxTok >>
          e.value.m1 >> e.value.m2 >> e.value.alpha >> e.value.beta >>
          e.degree >> e.depth >> parentsTok >> envTok;
      if (!is) throw fail("malformed entry record");
      e.kind = parseKind(kindTok, lineNo);
      e.source = parseSource(sourceTok, lineNo);
      e.constraintIndex = cidxTok == "-" ? -1 : std::stoi(cidxTok);
      e.parents = parseParents(parentsTok, lineNo);
      e.env = parseNameList(envTok, "env=", lineNo);
      cert.entries.push_back(std::move(e));
    } else if (tag == "nogood") {
      CertNogood n;
      int kept = 0;
      std::string envTok;
      is >> n.quantity >> n.a >> n.b >> n.dc >> n.degree >> kept >> envTok;
      if (!is) throw fail("malformed nogood record");
      n.kept = kept != 0;
      n.env = parseNameList(envTok, "env=", lineNo);
      cert.nogoods.push_back(std::move(n));
    } else if (tag == "cand") {
      std::string members;
      is >> members;
      CertCandidate c;
      if (members != "-") {
        std::istringstream ms(members);
        std::string m;
        while (std::getline(ms, m, ',')) {
          if (!m.empty()) c.members.push_back(m);
        }
      }
      cert.candidates.push_back(std::move(c));
    } else if (tag == "end") {
      sawEnd = true;
      break;
    } else {
      throw fail("unknown record '" + tag + "'");
    }
  }
  if (!sawHeader) throw std::runtime_error("certificate: missing header");
  if (!sawEnd) throw std::runtime_error("certificate: missing 'end' trailer");
  return cert;
}

void writeCertificateFile(const std::string& path, const Certificate& cert) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    throw std::runtime_error("cannot write certificate file " + path);
  }
  out << renderCertificate(cert);
  if (!out.good()) {
    throw std::runtime_error("failed writing certificate file " + path);
  }
}

Certificate loadCertificateFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    throw std::runtime_error("cannot read certificate file " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseCertificate(buf.str());
}

}  // namespace flames::prov
