#include "fuzzy/consistency.h"

#include <algorithm>
#include <cmath>

namespace flames::fuzzy {

namespace {

constexpr double kEps = 1e-12;

Deviation directionOf(const FuzzyInterval& measured,
                      const FuzzyInterval& nominal) {
  const double cm = measured.isPoint() ? measured.m1() : measured.centroid();
  const double cn = nominal.isPoint() ? nominal.m1() : nominal.centroid();
  // Tolerance scaled by the magnitudes involved.
  const double scale =
      std::max({1.0, std::abs(cm), std::abs(cn)});
  if (std::abs(cm - cn) <= 1e-9 * scale) return Deviation::kNone;
  return cm < cn ? Deviation::kBelow : Deviation::kAbove;
}

}  // namespace

Consistency degreeOfConsistency(const FuzzyInterval& measured,
                                const FuzzyInterval& nominal) {
  Consistency result;
  result.deviation = directionOf(measured, nominal);

  const double am = measured.area();
  const double an = nominal.area();

  if (am <= kEps) {
    // Point (or degenerate) measurement: Dc is the membership of the point
    // in the nominal distribution.
    result.dc = nominal.membership(measured.coreMidpoint());
    return result;
  }
  if (an <= kEps) {
    // A point nominal has zero area, so the area-ratio formula degenerates.
    // The natural extension is the possibility of the nominal point under
    // the measured distribution: Dc = mu_Vm(vn). (E.g. V0 derived as
    // [0.05, 1.06, 0.1, 0] against the crisp ground 0 V scores 0.5 — the
    // same degree the bound violation that produced it carries.)
    result.dc = measured.membership(nominal.coreMidpoint());
    return result;
  }

  // The paper's formula normalises by area(Vm), which presumes the nominal
  // is the wide, toleranced side. When the nominal happens to be *narrower*
  // than the measurement (a precisely determined prediction against a fuzzy
  // meter reading) that normalisation reads pure width mismatch as
  // conflict, so we take the larger of the two normalisations: a pair is
  // only discrepant when neither distribution substantially contains the
  // other. In the paper's regime (narrow Vm, wide Vn) this reduces to the
  // original area(Vm ⊓ Vn) / area(Vm).
  const PiecewiseLinear inter =
      measured.toPiecewiseLinear().min(nominal.toPiecewiseLinear());
  const double ia = inter.area();
  result.dc = std::clamp(std::max(ia / am, ia / an), 0.0, 1.0);
  return result;
}

double possibility(const FuzzyInterval& measured,
                   const FuzzyInterval& nominal) {
  return measured.possibilityOfEquality(nominal);
}

double necessity(const FuzzyInterval& measured, const FuzzyInterval& nominal) {
  // A crisp point measurement is fully certain, so necessity collapses to
  // the nominal's membership at the point (the general piecewise-linear
  // construction below cannot represent the zero-width dip of the
  // complement).
  if (measured.isPoint()) return nominal.membership(measured.m1());

  // N = inf_x max(1 - mu_m(x), mu_n(x)). Outside the support of the
  // measurement the complement is 1, so the infimum is attained on (the
  // closure of) that support; piecewise-linear functions attain extrema at
  // breakpoints, which PiecewiseLinear::max computes exactly (including
  // crossings).
  const Cut sm = measured.support();
  const Cut sn = nominal.support();
  const double lo = std::min(sm.lo, sn.lo) - 1.0;
  const double hi = std::max(sm.hi, sn.hi) + 1.0;

  // Complement of the measurement membership, materialised on [lo, hi].
  std::vector<PlPoint> comp;
  comp.push_back({lo, 1.0});
  const Cut cm = measured.core();
  comp.push_back({sm.lo, 1.0});
  comp.push_back({cm.lo, 0.0});
  comp.push_back({cm.hi, 0.0});
  comp.push_back({sm.hi, 1.0});
  comp.push_back({hi, 1.0});
  const PiecewiseLinear complement{std::move(comp)};

  // The nominal membership, extended with explicit zero tails so that
  // "zero outside range" matches on [lo, hi].
  std::vector<PlPoint> nom;
  nom.push_back({lo, 0.0});
  nom.push_back({sn.lo, 0.0});
  nom.push_back({nominal.core().lo, 1.0});
  nom.push_back({nominal.core().hi, 1.0});
  nom.push_back({sn.hi, 0.0});
  nom.push_back({hi, 0.0});
  const PiecewiseLinear nomPl{std::move(nom)};

  const PiecewiseLinear combined = complement.max(nomPl);
  double inf = 1.0;
  for (const PlPoint& p : combined.points()) inf = std::min(inf, p.y);
  return std::clamp(inf, 0.0, 1.0);
}

}  // namespace flames::fuzzy
