#include "fuzzy/fuzzy_interval.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flames::fuzzy {

namespace {

// Interval product [a.lo, a.hi] * [b.lo, b.hi] (classic four-corner rule).
Cut cutMul(const Cut& a, const Cut& b) {
  const double p1 = a.lo * b.lo, p2 = a.lo * b.hi;
  const double p3 = a.hi * b.lo, p4 = a.hi * b.hi;
  return {std::min(std::min(p1, p2), std::min(p3, p4)),
          std::max(std::max(p1, p2), std::max(p3, p4))};
}

Cut cutReciprocal(const Cut& c) {
  if (c.lo <= 0.0 && c.hi >= 0.0) {
    throw std::domain_error("fuzzy division by an interval containing zero");
  }
  return {1.0 / c.hi, 1.0 / c.lo};
}

}  // namespace

InvalidFuzzyInterval::InvalidFuzzyInterval(const std::string& reason,
                                           double m1, double m2, double alpha,
                                           double beta)
    : std::invalid_argument("FuzzyInterval: " + reason + " in [" +
                            std::to_string(m1) + ", " + std::to_string(m2) +
                            ", " + std::to_string(alpha) + ", " +
                            std::to_string(beta) + "]"),
      m1_(m1),
      m2_(m2),
      alpha_(alpha),
      beta_(beta) {}

FuzzyInterval::FuzzyInterval(double m1, double m2, double alpha, double beta)
    : m1_(m1), m2_(m2), alpha_(alpha), beta_(beta) {
  // NaN parameters fail the m1 <= m2 comparison, so non-finite cores are
  // rejected here too instead of silently poisoning later arithmetic.
  if (!(m1 <= m2)) throw InvalidFuzzyInterval("m1 > m2", m1, m2, alpha, beta);
  if (!(alpha >= 0.0) || !(beta >= 0.0)) {
    throw InvalidFuzzyInterval("negative spread", m1, m2, alpha, beta);
  }
}

FuzzyInterval FuzzyInterval::crisp(double m) { return {m, m, 0.0, 0.0}; }

FuzzyInterval FuzzyInterval::crispInterval(double a, double b) {
  return {a, b, 0.0, 0.0};
}

FuzzyInterval FuzzyInterval::number(double m, double alpha, double beta) {
  return {m, m, alpha, beta};
}

FuzzyInterval FuzzyInterval::about(double m, double spread) {
  return {m, m, spread, spread};
}

FuzzyInterval FuzzyInterval::withTolerance(double m, double relTol) {
  const double s = std::abs(m) * relTol;
  return {m, m, s, s};
}

FuzzyInterval FuzzyInterval::fromSupportCore(double a, double b, double c,
                                             double d) {
  // Guard against tiny negative spreads from floating-point noise.
  const double alpha = std::max(0.0, b - a);
  const double beta = std::max(0.0, d - c);
  if (!(b <= c)) {
    throw InvalidFuzzyInterval("fromSupportCore core inverted", b, c, alpha,
                               beta);
  }
  return {b, c, alpha, beta};
}

double FuzzyInterval::membership(double x) const {
  if (x >= m1_ && x <= m2_) return 1.0;
  if (x < m1_) {
    if (alpha_ == 0.0) return 0.0;
    const double v = (x - m1_ + alpha_) / alpha_;
    return std::clamp(v, 0.0, 1.0);
  }
  if (beta_ == 0.0) return 0.0;
  const double v = (m2_ + beta_ - x) / beta_;
  return std::clamp(v, 0.0, 1.0);
}

Cut FuzzyInterval::alphaCut(double level) const {
  const double l = std::clamp(level, 0.0, 1.0);
  return {m1_ - (1.0 - l) * alpha_, m2_ + (1.0 - l) * beta_};
}

double FuzzyInterval::area() const {
  return (m2_ - m1_) + 0.5 * (alpha_ + beta_);
}

double FuzzyInterval::centroid() const {
  if (isPoint()) return m1_;
  return toPiecewiseLinear().centroid();
}

PiecewiseLinear FuzzyInterval::toPiecewiseLinear() const {
  return PiecewiseLinear::trapezoid(m1_ - alpha_, m1_, m2_, m2_ + beta_);
}

FuzzyInterval FuzzyInterval::add(const FuzzyInterval& n) const {
  return {m1_ + n.m1_, m2_ + n.m2_, alpha_ + n.alpha_, beta_ + n.beta_};
}

FuzzyInterval FuzzyInterval::sub(const FuzzyInterval& n) const {
  return {m1_ - n.m2_, m2_ - n.m1_, alpha_ + n.beta_, beta_ + n.alpha_};
}

FuzzyInterval FuzzyInterval::negate() const {
  return {-m2_, -m1_, beta_, alpha_};
}

FuzzyInterval FuzzyInterval::mul(const FuzzyInterval& n) const {
  const Cut s = cutMul(support(), n.support());
  const Cut c = cutMul(core(), n.core());
  return fromSupportCore(s.lo, c.lo, c.hi, s.hi);
}

FuzzyInterval FuzzyInterval::div(const FuzzyInterval& n) const {
  return mul(n.reciprocal());
}

FuzzyInterval FuzzyInterval::scaled(double s) const {
  if (s >= 0.0) return {s * m1_, s * m2_, s * alpha_, s * beta_};
  return {s * m2_, s * m1_, -s * beta_, -s * alpha_};
}

FuzzyInterval FuzzyInterval::reciprocal() const {
  const Cut s = cutReciprocal(support());
  const Cut c = cutReciprocal(core());
  return fromSupportCore(s.lo, c.lo, c.hi, s.hi);
}

FuzzyInterval FuzzyInterval::hull(const FuzzyInterval& n) const {
  const double a = std::min(support().lo, n.support().lo);
  const double b = std::min(m1_, n.m1_);
  const double c = std::max(m2_, n.m2_);
  const double d = std::max(support().hi, n.support().hi);
  return fromSupportCore(a, b, c, d);
}

FuzzyInterval FuzzyInterval::widened(double margin) const {
  if (margin < 0.0) throw std::invalid_argument("widened: negative margin");
  return {m1_, m2_, alpha_ + margin, beta_ + margin};
}

bool FuzzyInterval::supportsOverlap(const FuzzyInterval& n) const {
  return support().intersects(n.support());
}

double FuzzyInterval::possibilityOfEquality(const FuzzyInterval& n) const {
  // For convex fuzzy sets the sup of the min is attained where the right
  // edge of one meets the left edge of the other (or 1 if cores overlap).
  if (core().intersects(n.core())) return 1.0;
  if (!supportsOverlap(n)) return 0.0;
  // This core entirely left of n's core, or vice versa.
  const FuzzyInterval& left = (m2_ < n.m1_) ? *this : n;
  const FuzzyInterval& right = (m2_ < n.m1_) ? n : *this;
  // Right edge of `left`: mu(x) = (left.m2 + left.beta - x) / left.beta.
  // Left edge of `right`: mu(x) = (x - right.m1 + right.alpha) / right.alpha.
  const double lb = left.beta_, ra = right.alpha_;
  if (lb == 0.0) return right.membership(left.m2_);
  if (ra == 0.0) return left.membership(right.m1_);
  const double x =
      (ra * (left.m2_ + lb) + lb * (right.m1_ - ra)) / (lb + ra);
  return std::clamp(left.membership(x), 0.0, 1.0);
}

bool FuzzyInterval::subsetOf(const FuzzyInterval& n) const {
  const Cut s = support(), ns = n.support();
  const Cut c = core(), nc = n.core();
  return ns.lo <= s.lo && s.hi <= ns.hi && nc.lo <= c.lo && c.hi <= nc.hi;
}

bool FuzzyInterval::approxEquals(const FuzzyInterval& n, double tol) const {
  return std::abs(m1_ - n.m1_) <= tol && std::abs(m2_ - n.m2_) <= tol &&
         std::abs(alpha_ - n.alpha_) <= tol && std::abs(beta_ - n.beta_) <= tol;
}

std::string FuzzyInterval::str() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FuzzyInterval& f) {
  os << '[' << f.m1() << ", " << f.m2() << ", " << f.alpha() << ", "
     << f.beta() << ']';
  return os;
}

}  // namespace flames::fuzzy
