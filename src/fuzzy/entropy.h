// Fuzzy entropy of a system of fuzzy faultiness estimations (paper §8.2).
//
// The paper adapts Shannon entropy to fuzzy probabilities:
//
//     Ent(S) = (+)_i  F_i (*) log2( 1 (/) F_i )
//
// where F_i is the fuzzy estimation of the faultiness of component i and the
// arithmetic is possibilistic. FLAMES uses Ent to score candidate test
// points: the best next test minimises the expected entropy after the
// measurement (paper §8.2).
//
// Two evaluation semantics are provided for the per-component term
// F (*) log2(1 (/) F):
//  * kTied (default): the exact extension-principle image of
//    h(x) = -x log2 x, which treats both occurrences of F as the same
//    variable (the mathematically tight reading);
//  * kIndependent: the paper's literal formula evaluated with fuzzy
//    arithmetic on independent occurrences, which over-spreads but matches
//    the formula term by term.
#pragma once

#include <vector>

#include "fuzzy/fuzzy_interval.h"

namespace flames::fuzzy {

/// How to evaluate F (*) log2(1 (/) F); see file comment.
enum class EntropyTermSemantics { kTied, kIndependent };

/// The per-component entropy term F (*) log2(1 (/) F) as a fuzzy interval.
///
/// Estimations are fuzzy subsets of [0, 1]; supports are clamped to
/// [0, 1] and the h(0) = h(1) = 0 continuous extension is used.
[[nodiscard]] FuzzyInterval entropyTerm(
    const FuzzyInterval& estimation,
    EntropyTermSemantics semantics = EntropyTermSemantics::kTied);

/// Fuzzy entropy of a set of component estimations: the fuzzy sum of the
/// per-component terms. Empty input yields crisp 0.
[[nodiscard]] FuzzyInterval fuzzyEntropy(
    const std::vector<FuzzyInterval>& estimations,
    EntropyTermSemantics semantics = EntropyTermSemantics::kTied);

/// Defuzzified (centroid) entropy, convenient for ranking tests.
[[nodiscard]] double crispEntropy(
    const std::vector<FuzzyInterval>& estimations,
    EntropyTermSemantics semantics = EntropyTermSemantics::kTied);

/// Crisp Shannon-like term h(x) = -x log2 x extended with h(0) = 0.
[[nodiscard]] double shannonTerm(double x);

}  // namespace flames::fuzzy
