#include "fuzzy/piecewise_linear.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flames::fuzzy {

namespace {

constexpr double kEps = 1e-12;

// Removes consecutive points that are exactly identical.
void dedupe(std::vector<PlPoint>& pts) {
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
}

}  // namespace

PiecewiseLinear::PiecewiseLinear(std::vector<PlPoint> points)
    : pts_(std::move(points)) {
  std::stable_sort(pts_.begin(), pts_.end(),
                   [](const PlPoint& a, const PlPoint& b) { return a.x < b.x; });
  dedupe(pts_);
}

PiecewiseLinear PiecewiseLinear::trapezoid(double a, double b, double c,
                                           double d) {
  if (!(a <= b && b <= c && c <= d)) {
    throw std::invalid_argument("trapezoid requires a <= b <= c <= d");
  }
  std::vector<PlPoint> pts;
  pts.push_back({a, 0.0});
  pts.push_back({b, 1.0});
  pts.push_back({c, 1.0});
  pts.push_back({d, 0.0});
  dedupe(pts);
  return PiecewiseLinear(std::move(pts));
}

double PiecewiseLinear::evaluate(double x) const {
  if (pts_.empty() || x < pts_.front().x || x > pts_.back().x) return 0.0;
  // Last index with pts_[i].x <= x.
  auto it = std::upper_bound(
      pts_.begin(), pts_.end(), x,
      [](double v, const PlPoint& p) { return v < p.x; });
  if (it == pts_.begin()) return pts_.front().y;
  const PlPoint& lo = *(it - 1);
  if (it == pts_.end()) return pts_.back().y;
  const PlPoint& hi = *it;
  if (hi.x - lo.x < kEps) return lo.y;  // jump: take the left-completed value
  const double t = (x - lo.x) / (hi.x - lo.x);
  return lo.y + t * (hi.y - lo.y);
}

double PiecewiseLinear::area() const {
  double a = 0.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    a += (pts_[i].x - pts_[i - 1].x) * (pts_[i].y + pts_[i - 1].y) * 0.5;
  }
  return a;
}

double PiecewiseLinear::height() const {
  double h = 0.0;
  for (const PlPoint& p : pts_) h = std::max(h, p.y);
  return h;
}

double PiecewiseLinear::centroid() const {
  double a = 0.0;
  double m = 0.0;
  for (std::size_t i = 1; i < pts_.size(); ++i) {
    const double x0 = pts_[i - 1].x, y0 = pts_[i - 1].y;
    const double x1 = pts_[i].x, y1 = pts_[i].y;
    const double seg = (x1 - x0) * (y0 + y1) * 0.5;
    if (std::abs(seg) < kEps) continue;
    const double cx = x0 + (x1 - x0) * (y0 + 2.0 * y1) / (3.0 * (y0 + y1));
    a += seg;
    m += seg * cx;
  }
  return a > kEps ? m / a : 0.0;
}

PiecewiseLinear PiecewiseLinear::combine(const PiecewiseLinear& f,
                                         const PiecewiseLinear& g,
                                         bool takeMin) {
  if (f.pts_.empty()) return takeMin ? PiecewiseLinear() : g;
  if (g.pts_.empty()) return takeMin ? PiecewiseLinear() : f;

  // Merge all breakpoint abscissae.
  std::vector<double> xs;
  xs.reserve(f.pts_.size() + g.pts_.size());
  for (const PlPoint& p : f.pts_) xs.push_back(p.x);
  for (const PlPoint& p : g.pts_) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end(),
                       [](double a, double b) { return std::abs(a - b) < kEps; }),
           xs.end());

  auto pick = [takeMin](double a, double b) {
    return takeMin ? std::min(a, b) : std::max(a, b);
  };

  std::vector<PlPoint> out;
  out.push_back({xs.front(), pick(f.evaluate(xs.front()), g.evaluate(xs.front()))});
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double x0 = xs[i - 1], x1 = xs[i];
    // On (x0, x1) both functions are linear; probe interior slopes.
    const double mid = 0.5 * (x0 + x1);
    const double q = 0.25 * x0 + 0.75 * x1;
    const double fm = f.evaluate(mid), gm = g.evaluate(mid);
    const double fq = f.evaluate(q), gq = g.evaluate(q);
    // Reconstruct the linear pieces from two interior samples (immune to
    // jumps located exactly at x0 or x1).
    const double fs = (fq - fm) / (q - mid);
    const double gs = (gq - gm) / (q - mid);
    const double f0 = fm + fs * (x0 - mid), f1 = fm + fs * (x1 - mid);
    const double g0 = gm + gs * (x0 - mid), g1 = gm + gs * (x1 - mid);
    const double d0 = f0 - g0, d1 = f1 - g1;
    if ((d0 > kEps && d1 < -kEps) || (d0 < -kEps && d1 > kEps)) {
      const double s = d0 / (d0 - d1);
      const double xc = x0 + s * (x1 - x0);
      const double yc = f0 + s * (f1 - f0);
      out.push_back({xc, yc});
    }
    // Close the open interval with the limit from inside, then the actual
    // combined value at x1 (captures jumps).
    const double inLimit = pick(f1, g1);
    const double atX1 = pick(f.evaluate(x1), g.evaluate(x1));
    out.push_back({x1, inLimit});
    if (std::abs(atX1 - inLimit) > kEps) out.push_back({x1, atX1});
  }
  dedupe(out);
  return PiecewiseLinear(std::move(out));
}

PiecewiseLinear PiecewiseLinear::min(const PiecewiseLinear& other) const {
  return combine(*this, other, /*takeMin=*/true);
}

PiecewiseLinear PiecewiseLinear::max(const PiecewiseLinear& other) const {
  return combine(*this, other, /*takeMin=*/false);
}

PiecewiseLinear PiecewiseLinear::clip(double level) const {
  if (pts_.empty()) return {};
  PiecewiseLinear constant(
      {{pts_.front().x, level}, {pts_.back().x, level}});
  return combine(*this, constant, /*takeMin=*/true);
}

PiecewiseLinear PiecewiseLinear::scaled(double s) const {
  if (s < 0.0) throw std::invalid_argument("scaled requires s >= 0");
  std::vector<PlPoint> pts = pts_;
  for (PlPoint& p : pts) p.y *= s;
  return PiecewiseLinear(std::move(pts));
}

}  // namespace flames::fuzzy
