// Trapezoidal fuzzy intervals [m1, m2, alpha, beta] (paper §3.2, Fig. 1).
//
// A fuzzy interval is a convex fuzzy set defined by its core [m1, m2] and
// left/right spreads alpha, beta:
//
//   mu(x) = (x - m1 + alpha) / alpha   for x in [m1 - alpha, m1]
//   mu(x) = 1                          for x in [m1, m2]
//   mu(x) = (m2 + beta - x) / beta     for x in [m2, m2 + beta]
//
// The representation uniformly covers a crisp number [m,m,0,0], a crisp
// interval [a,b,0,0], a fuzzy number [m,m,alpha,beta] and a general fuzzy
// interval. Arithmetic follows the possibilistic extension principle: + and -
// are exact in closed form (Dubois-Prade / Bonissone-Decker, paper §3.2);
// * and / (and arbitrary monotone maps) use alpha-cut interval arithmetic
// with a trapezoidal secant re-approximation from the support and core cuts.
#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "fuzzy/piecewise_linear.h"

namespace flames::fuzzy {

/// Thrown when FuzzyInterval construction receives parameters that violate
/// the trapezoid invariants (m1 <= m2, alpha >= 0, beta >= 0, all finite).
/// Derives from std::invalid_argument so existing catch sites keep working;
/// carries the offending parameters so diagnostics (lint L3, the netlist
/// parser) can show exactly which degenerate shape was attempted.
class InvalidFuzzyInterval : public std::invalid_argument {
 public:
  InvalidFuzzyInterval(const std::string& reason, double m1, double m2,
                       double alpha, double beta);

  [[nodiscard]] double m1() const { return m1_; }
  [[nodiscard]] double m2() const { return m2_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

 private:
  double m1_, m2_, alpha_, beta_;
};

/// A closed crisp interval [lo, hi]; the result of an alpha-cut.
struct Cut {
  double lo = 0.0;
  double hi = 0.0;

  [[nodiscard]] double width() const { return hi - lo; }
  [[nodiscard]] bool contains(double x) const { return lo <= x && x <= hi; }
  [[nodiscard]] bool intersects(const Cut& o) const {
    return lo <= o.hi && o.lo <= hi;
  }
  friend bool operator==(const Cut&, const Cut&) = default;
};

/// Trapezoidal fuzzy interval [m1, m2, alpha, beta].
class FuzzyInterval {
 public:
  /// The identically-crisp zero [0, 0, 0, 0].
  FuzzyInterval() = default;

  /// General constructor; requires m1 <= m2, alpha >= 0, beta >= 0.
  FuzzyInterval(double m1, double m2, double alpha, double beta);

  /// A crisp real number m = [m, m, 0, 0].
  static FuzzyInterval crisp(double m);

  /// A crisp interval [a, b] = [a, b, 0, 0].
  static FuzzyInterval crispInterval(double a, double b);

  /// A fuzzy number M = [m, m, alpha, beta].
  static FuzzyInterval number(double m, double alpha, double beta);

  /// A symmetric fuzzy number M = [m, m, spread, spread].
  static FuzzyInterval about(double m, double spread);

  /// A fuzzy number from a relative tolerance: core m, spreads |m| * relTol.
  static FuzzyInterval withTolerance(double m, double relTol);

  /// Builds from the support [a, d] and core [b, c] (a <= b <= c <= d).
  static FuzzyInterval fromSupportCore(double a, double b, double c, double d);

  [[nodiscard]] double m1() const { return m1_; }
  [[nodiscard]] double m2() const { return m2_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double beta() const { return beta_; }

  /// The core [m1, m2] (membership == 1).
  [[nodiscard]] Cut core() const { return {m1_, m2_}; }

  /// The support [m1 - alpha, m2 + beta] (membership > 0, closure thereof).
  [[nodiscard]] Cut support() const { return {m1_ - alpha_, m2_ + beta_}; }

  /// True if this is a crisp value or crisp interval (no spreads).
  [[nodiscard]] bool isCrisp() const { return alpha_ == 0.0 && beta_ == 0.0; }

  /// True if this is a single crisp point.
  [[nodiscard]] bool isPoint() const { return isCrisp() && m1_ == m2_; }

  /// Membership degree mu(x) in [0, 1].
  [[nodiscard]] double membership(double x) const;

  /// Alpha-cut at level in [0, 1]: {x : mu(x) >= level}, with the level-0 cut
  /// defined as the support.
  [[nodiscard]] Cut alphaCut(double level) const;

  /// Integral of the membership function: (m2 - m1) + (alpha + beta) / 2.
  [[nodiscard]] double area() const;

  /// Centroid (centre of gravity) of the membership function; for a crisp
  /// point this is the point itself.
  [[nodiscard]] double centroid() const;

  /// Midpoint of the core.
  [[nodiscard]] double coreMidpoint() const { return 0.5 * (m1_ + m2_); }

  /// Conversion to the exact piecewise-linear membership function.
  [[nodiscard]] PiecewiseLinear toPiecewiseLinear() const;

  // --- Possibilistic arithmetic (paper §3.2) ---

  /// M (+) N = [m1+n1, m2+n2, alpha+gamma, beta+delta].
  [[nodiscard]] FuzzyInterval add(const FuzzyInterval& n) const;

  /// M (-) N = [m1-n2, m2-n1, alpha+delta, beta+gamma].
  [[nodiscard]] FuzzyInterval sub(const FuzzyInterval& n) const;

  /// -M.
  [[nodiscard]] FuzzyInterval negate() const;

  /// M (*) N via alpha-cut interval products, trapezoid re-approximation.
  [[nodiscard]] FuzzyInterval mul(const FuzzyInterval& n) const;

  /// M (/) N; requires 0 outside the support of N.
  [[nodiscard]] FuzzyInterval div(const FuzzyInterval& n) const;

  /// Scaling by a crisp real.
  [[nodiscard]] FuzzyInterval scaled(double s) const;

  /// 1 (/) M; requires 0 outside the support.
  [[nodiscard]] FuzzyInterval reciprocal() const;

  /// Image under a monotone map f (either direction), via support/core cuts.
  template <typename F>
  [[nodiscard]] FuzzyInterval mapMonotone(F&& f) const {
    const Cut s = support();
    const Cut c = core();
    double sa = f(s.lo), sb = f(s.hi);
    double ca = f(c.lo), cb = f(c.hi);
    if (sa > sb) std::swap(sa, sb);
    if (ca > cb) std::swap(ca, cb);
    return fromSupportCore(sa, ca, cb, sb);
  }

  // --- Set-theoretic / relational operations ---

  /// Smallest trapezoid containing both (convex hull of supports and cores).
  [[nodiscard]] FuzzyInterval hull(const FuzzyInterval& n) const;

  /// Widens the spreads by a crisp margin on both sides.
  [[nodiscard]] FuzzyInterval widened(double margin) const;

  /// True if the supports overlap.
  [[nodiscard]] bool supportsOverlap(const FuzzyInterval& n) const;

  /// Possibility of equality: sup_x min(mu_M(x), mu_N(x)).
  [[nodiscard]] double possibilityOfEquality(const FuzzyInterval& n) const;

  /// True if every alpha-cut of this is contained in that of n
  /// (i.e. mu_M <= mu_N pointwise for trapezoids).
  [[nodiscard]] bool subsetOf(const FuzzyInterval& n) const;

  /// Approximate equality of parameters within tol.
  [[nodiscard]] bool approxEquals(const FuzzyInterval& n,
                                  double tol = 1e-9) const;

  [[nodiscard]] std::string str() const;

  friend bool operator==(const FuzzyInterval&, const FuzzyInterval&) = default;

 private:
  double m1_ = 0.0;
  double m2_ = 0.0;
  double alpha_ = 0.0;
  double beta_ = 0.0;
};

std::ostream& operator<<(std::ostream& os, const FuzzyInterval& f);

// Operator sugar for the possibilistic arithmetic.
inline FuzzyInterval operator+(const FuzzyInterval& a, const FuzzyInterval& b) {
  return a.add(b);
}
inline FuzzyInterval operator-(const FuzzyInterval& a, const FuzzyInterval& b) {
  return a.sub(b);
}
inline FuzzyInterval operator*(const FuzzyInterval& a, const FuzzyInterval& b) {
  return a.mul(b);
}
inline FuzzyInterval operator/(const FuzzyInterval& a, const FuzzyInterval& b) {
  return a.div(b);
}
inline FuzzyInterval operator-(const FuzzyInterval& a) { return a.negate(); }
inline FuzzyInterval operator*(double s, const FuzzyInterval& a) {
  return a.scaled(s);
}
inline FuzzyInterval operator*(const FuzzyInterval& a, double s) {
  return a.scaled(s);
}

}  // namespace flames::fuzzy
