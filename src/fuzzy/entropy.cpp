#include "fuzzy/entropy.h"

#include <algorithm>
#include <cmath>

namespace flames::fuzzy {

namespace {

constexpr double kPeak = 0.36787944117144233;  // 1/e, argmax of -x log2 x

// Range of h over a crisp interval [a, b] within [0, 1]; h is concave with a
// single maximum at 1/e, so extrema sit at the endpoints or at the peak.
Cut shannonRange(double a, double b) {
  a = std::clamp(a, 0.0, 1.0);
  b = std::clamp(b, 0.0, 1.0);
  const double ha = shannonTerm(a);
  const double hb = shannonTerm(b);
  double hi = std::max(ha, hb);
  if (a <= kPeak && kPeak <= b) hi = shannonTerm(kPeak);
  return {std::min(ha, hb), hi};
}

// Clamps a fuzzy estimation to the [0, 1] domain of probabilities.
FuzzyInterval clampToUnit(const FuzzyInterval& f) {
  const Cut s = f.support();
  const Cut c = f.core();
  const double a = std::clamp(s.lo, 0.0, 1.0);
  const double b = std::clamp(c.lo, 0.0, 1.0);
  const double cc = std::clamp(c.hi, 0.0, 1.0);
  const double d = std::clamp(s.hi, 0.0, 1.0);
  return FuzzyInterval::fromSupportCore(a, std::min(b, cc), std::max(b, cc),
                                        d);
}

}  // namespace

double shannonTerm(double x) {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return -x * std::log2(x);
}

FuzzyInterval entropyTerm(const FuzzyInterval& estimation,
                          EntropyTermSemantics semantics) {
  const FuzzyInterval f = clampToUnit(estimation);
  const Cut s = f.support();
  const Cut c = f.core();

  if (semantics == EntropyTermSemantics::kTied) {
    const Cut rs = shannonRange(s.lo, s.hi);
    const Cut rc = shannonRange(c.lo, c.hi);
    // The core image must stay inside the support image.
    const double lo = std::min(rs.lo, rc.lo);
    const double hi = std::max(rs.hi, rc.hi);
    return FuzzyInterval::fromSupportCore(lo, std::max(rc.lo, lo),
                                          std::min(rc.hi, hi), hi);
  }

  // Independent occurrences: F (*) log2(1 (/) F) with interval arithmetic.
  // Guard the logarithm against a zero/negative support edge.
  constexpr double kFloor = 1e-9;
  const double sl = std::max(s.lo, kFloor);
  const double cl = std::max(c.lo, kFloor);
  const double sh = std::max(s.hi, kFloor);
  const double ch = std::max(c.hi, kFloor);
  // log2(1/F): decreasing, so interval endpoints swap.
  const Cut logSupport{-std::log2(sh), -std::log2(sl)};
  const Cut logCore{-std::log2(ch), -std::log2(cl)};
  const FuzzyInterval logTerm = FuzzyInterval::fromSupportCore(
      logSupport.lo, std::max(logCore.lo, logSupport.lo),
      std::min(logCore.hi, logSupport.hi), logSupport.hi);
  return f.mul(logTerm);
}

FuzzyInterval fuzzyEntropy(const std::vector<FuzzyInterval>& estimations,
                           EntropyTermSemantics semantics) {
  FuzzyInterval total = FuzzyInterval::crisp(0.0);
  for (const FuzzyInterval& e : estimations) {
    total = total.add(entropyTerm(e, semantics));
  }
  return total;
}

double crispEntropy(const std::vector<FuzzyInterval>& estimations,
                    EntropyTermSemantics semantics) {
  return fuzzyEntropy(estimations, semantics).centroid();
}

}  // namespace flames::fuzzy
