// Linguistic terms over [0, 1] for fuzzy faultiness estimations (paper §8.1).
//
// The paper decomposes [0, 1] into linguistic terms defined by fuzzy
// intervals, e.g. Correct = [0, .05, 0, .05], Likely-correct =
// [.18, .34, .02, .06], with a granularity chosen by the expert. A
// LinguisticScale holds such a term set, maps crisp degrees to the
// best-matching term, and supplies the default five-term faultiness scale
// FLAMES uses when the expert provides none.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fuzzy/fuzzy_interval.h"

namespace flames::fuzzy {

/// A named fuzzy subset of [0, 1].
struct LinguisticTerm {
  std::string name;
  FuzzyInterval meaning;
};

/// An ordered set of linguistic terms partitioning (loosely) the [0,1] axis.
class LinguisticScale {
 public:
  LinguisticScale() = default;
  explicit LinguisticScale(std::vector<LinguisticTerm> terms);

  /// The paper's example granularity, extended to a full five-term scale of
  /// faultiness estimations:
  ///   correct, likely-correct, unknown, likely-faulty, faulty.
  static LinguisticScale defaultFaultiness();

  [[nodiscard]] const std::vector<LinguisticTerm>& terms() const {
    return terms_;
  }

  [[nodiscard]] bool empty() const { return terms_.empty(); }
  [[nodiscard]] std::size_t size() const { return terms_.size(); }

  /// Finds a term by name.
  [[nodiscard]] std::optional<LinguisticTerm> find(
      const std::string& name) const;

  /// The meaning of a named term; throws std::out_of_range if absent.
  [[nodiscard]] const FuzzyInterval& meaningOf(const std::string& name) const;

  /// The term with the highest membership for a crisp degree x in [0,1];
  /// ties broken towards the earlier (more-correct) term.
  [[nodiscard]] const LinguisticTerm& classify(double x) const;

  /// Linguistic approximation: the term whose meaning is most consistent
  /// with a fuzzy degree (max possibility of equality).
  [[nodiscard]] const LinguisticTerm& approximate(const FuzzyInterval& f) const;

 private:
  std::vector<LinguisticTerm> terms_;
};

/// Centre-of-gravity defuzzification of a fuzzy degree.
[[nodiscard]] double defuzzifyCentroid(const FuzzyInterval& f);

}  // namespace flames::fuzzy
