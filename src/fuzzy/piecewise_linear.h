// Exact piecewise-linear membership functions.
//
// Trapezoidal fuzzy intervals (paper Fig. 1) are piecewise linear, and the
// degree of consistency Dc = area(Vm ⊓ Vn) / area(Vm) (paper §6.1.2) needs
// the exact area under the pointwise minimum of two such functions. This
// module provides that: a continuous piecewise-linear function that is zero
// outside its breakpoint range, with exact min/max/area/clip.
#pragma once

#include <cstddef>
#include <vector>

namespace flames::fuzzy {

/// One breakpoint of a piecewise-linear function.
struct PlPoint {
  double x = 0.0;
  double y = 0.0;
  friend bool operator==(const PlPoint&, const PlPoint&) = default;
};

/// A continuous piecewise-linear function f : R -> [0, inf).
///
/// Between consecutive breakpoints the function interpolates linearly;
/// outside [front().x, back().x] it is zero. An empty breakpoint list is the
/// identically-zero function. Breakpoints are kept sorted by x and
/// deduplicated; a membership function must start and end at y == 0 for the
/// "zero outside" convention to make the function continuous, but this class
/// does not enforce that (step edges are represented by two breakpoints with
/// equal x, which evaluate() resolves by taking the later one).
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Builds from breakpoints; sorts by x and removes exact duplicates.
  explicit PiecewiseLinear(std::vector<PlPoint> points);

  /// Builds a trapezoid membership: 0 at a, rises to 1 on [b, c], 0 at d.
  /// Requires a <= b <= c <= d. Vertical edges (a == b or c == d) allowed.
  static PiecewiseLinear trapezoid(double a, double b, double c, double d);

  [[nodiscard]] bool empty() const { return pts_.empty(); }
  [[nodiscard]] const std::vector<PlPoint>& points() const { return pts_; }

  /// Function value at x (zero outside the breakpoint range).
  [[nodiscard]] double evaluate(double x) const;

  /// Exact integral of the function over all of R.
  [[nodiscard]] double area() const;

  /// Largest y over all breakpoints (the height of the function).
  [[nodiscard]] double height() const;

  /// x-centroid of the region under the curve; 0 if the area is zero.
  [[nodiscard]] double centroid() const;

  /// Pointwise minimum with another function (exact, including crossings).
  [[nodiscard]] PiecewiseLinear min(const PiecewiseLinear& other) const;

  /// Pointwise maximum with another function (exact, including crossings).
  ///
  /// Note: max of two functions that are zero outside their ranges is only
  /// piecewise linear on the union of ranges; this handles that correctly.
  [[nodiscard]] PiecewiseLinear max(const PiecewiseLinear& other) const;

  /// Pointwise min with the constant `level` (alpha-clip used by fuzzy
  /// inference).
  [[nodiscard]] PiecewiseLinear clip(double level) const;

  /// Scales all y values by s >= 0.
  [[nodiscard]] PiecewiseLinear scaled(double s) const;

 private:
  // Combines two functions breakpoint-by-breakpoint with an exact crossing
  // split; `takeMin` selects min vs max.
  static PiecewiseLinear combine(const PiecewiseLinear& f,
                                 const PiecewiseLinear& g, bool takeMin);

  std::vector<PlPoint> pts_;
};

}  // namespace flames::fuzzy
