#include "fuzzy/linguistic.h"

#include <stdexcept>

namespace flames::fuzzy {

LinguisticScale::LinguisticScale(std::vector<LinguisticTerm> terms)
    : terms_(std::move(terms)) {
  if (terms_.empty()) {
    throw std::invalid_argument("LinguisticScale: empty term set");
  }
}

LinguisticScale LinguisticScale::defaultFaultiness() {
  // The first two terms are the paper's own examples (§8.1); the remaining
  // three extend the scale symmetrically to cover [0, 1].
  std::vector<LinguisticTerm> terms;
  terms.push_back({"correct", FuzzyInterval(0.0, 0.05, 0.0, 0.05)});
  terms.push_back({"likely-correct", FuzzyInterval(0.18, 0.34, 0.02, 0.06)});
  terms.push_back({"unknown", FuzzyInterval(0.45, 0.55, 0.08, 0.08)});
  terms.push_back({"likely-faulty", FuzzyInterval(0.66, 0.82, 0.06, 0.02)});
  terms.push_back({"faulty", FuzzyInterval(0.95, 1.0, 0.05, 0.0)});
  return LinguisticScale(std::move(terms));
}

std::optional<LinguisticTerm> LinguisticScale::find(
    const std::string& name) const {
  for (const LinguisticTerm& t : terms_) {
    if (t.name == name) return t;
  }
  return std::nullopt;
}

const FuzzyInterval& LinguisticScale::meaningOf(
    const std::string& name) const {
  for (const LinguisticTerm& t : terms_) {
    if (t.name == name) return t.meaning;
  }
  throw std::out_of_range("LinguisticScale: unknown term '" + name + "'");
}

const LinguisticTerm& LinguisticScale::classify(double x) const {
  if (terms_.empty()) throw std::logic_error("LinguisticScale: empty");
  const LinguisticTerm* best = &terms_.front();
  double bestMu = best->meaning.membership(x);
  for (const LinguisticTerm& t : terms_) {
    const double mu = t.meaning.membership(x);
    if (mu > bestMu) {
      best = &t;
      bestMu = mu;
    }
  }
  return *best;
}

const LinguisticTerm& LinguisticScale::approximate(
    const FuzzyInterval& f) const {
  if (terms_.empty()) throw std::logic_error("LinguisticScale: empty");
  const LinguisticTerm* best = &terms_.front();
  double bestPoss = best->meaning.possibilityOfEquality(f);
  for (const LinguisticTerm& t : terms_) {
    const double p = t.meaning.possibilityOfEquality(f);
    if (p > bestPoss) {
      best = &t;
      bestPoss = p;
    }
  }
  return *best;
}

double defuzzifyCentroid(const FuzzyInterval& f) { return f.centroid(); }

}  // namespace flames::fuzzy
