// Triangular norms and conorms for combining membership / certainty degrees.
//
// FLAMES combines rule antecedents and certainty degrees with fuzzy
// conjunction/disjunction; the choice of t-norm is a tunable of the expert
// system (paper §6.2 treats assumptions as fuzzy propositions).
#pragma once

#include <algorithm>

namespace flames::fuzzy {

/// Which t-norm family to use for fuzzy conjunction.
enum class TNorm {
  kMin,          ///< Zadeh: T(a,b) = min(a,b)
  kProduct,      ///< probabilistic: T(a,b) = a*b
  kLukasiewicz,  ///< T(a,b) = max(0, a+b-1)
};

/// Fuzzy conjunction under the selected t-norm.
[[nodiscard]] constexpr double tnorm(TNorm t, double a, double b) {
  switch (t) {
    case TNorm::kMin:
      return a < b ? a : b;
    case TNorm::kProduct:
      return a * b;
    case TNorm::kLukasiewicz:
      return std::max(0.0, a + b - 1.0);
  }
  return a < b ? a : b;
}

/// Dual t-conorm (fuzzy disjunction) of the selected t-norm.
[[nodiscard]] constexpr double tconorm(TNorm t, double a, double b) {
  switch (t) {
    case TNorm::kMin:
      return a > b ? a : b;
    case TNorm::kProduct:
      return a + b - a * b;
    case TNorm::kLukasiewicz:
      return std::min(1.0, a + b);
  }
  return a > b ? a : b;
}

/// Standard fuzzy negation.
[[nodiscard]] constexpr double fuzzyNot(double a) { return 1.0 - a; }

}  // namespace flames::fuzzy
