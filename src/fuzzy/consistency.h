// Degree of consistency between fuzzy values (paper §6.1.2).
//
// Given a measured (or propagated) value Vm and a nominal (or predicted)
// value Vn, the paper evaluates the proposition "X in Vn" by
//
//     Dc = area(Vm ⊓ Vn) / area(Vm)
//
// where ⊓ is the pointwise minimum of the membership functions. Dc == 1
// when Vm is included in Vn (corroboration, Fig. 4c), Dc == 0 when the
// supports are disjoint (conflict, Fig. 4b), and 0 < Dc < 1 for a partial
// conflict. The nogood recorded from a discrepancy carries degree 1 - Dc
// (from the Fig. 5 walk-through: membership 0.5 => nogood degree 0.5).
//
// Fig. 7 additionally reports *signed* Dc values (e.g. -1): the sign encodes
// on which side of the nominal value the measurement fell, which downstream
// fault-mode reasoning uses ("R2 is very low or R3 is very high"). We keep
// the magnitude and the direction separate.
#pragma once

#include "fuzzy/fuzzy_interval.h"

namespace flames::fuzzy {

/// Which side of the nominal value the measured value leans towards.
enum class Deviation {
  kNone,   ///< centroids coincide (within tolerance)
  kBelow,  ///< measured value sits left of (below) nominal
  kAbove,  ///< measured value sits right of (above) nominal
};

/// Result of a consistency evaluation between measured and nominal values.
struct Consistency {
  /// Degree of consistency in [0, 1]; 1 = corroboration, 0 = hard conflict.
  double dc = 1.0;
  /// Direction of the deviation of the measurement from nominal.
  Deviation deviation = Deviation::kNone;

  /// Degree of the nogood implied by this coincidence: 1 - dc.
  [[nodiscard]] double nogoodDegree() const { return 1.0 - dc; }

  /// True if there is any discrepancy at all (dc < 1 - tol).
  [[nodiscard]] bool isDiscrepant(double tol = 1e-9) const {
    return dc < 1.0 - tol;
  }

  /// True if the conflict is total (dc ~ 0).
  [[nodiscard]] bool isHardConflict(double tol = 1e-9) const {
    return dc <= tol;
  }

  /// The paper's signed rendering: +dc above/none, -dc below nominal.
  [[nodiscard]] double signedDc() const {
    return deviation == Deviation::kBelow ? -dc : dc;
  }
};

/// Computes Dc(measured, nominal) = area(Vm ⊓ Vn) / area(Vm), extended to
/// be robust when the nominal is the narrower side: the implementation
/// takes max(area(⊓)/area(Vm), area(⊓)/area(Vn)), which coincides with the
/// paper's formula in its intended regime (precise measurement against a
/// toleranced nominal) and avoids reading pure width mismatch as conflict.
///
/// Degenerate cases: if Vm is a crisp point m, Dc = mu_Vn(m); symmetrically
/// a point nominal vn scores mu_Vm(vn); two points score 1 iff they
/// coincide exactly.
[[nodiscard]] Consistency degreeOfConsistency(const FuzzyInterval& measured,
                                              const FuzzyInterval& nominal);

/// Possibility measure Pi(Vm, Vn) = sup_x min(mu_Vm, mu_Vn): how possible is
/// it that the quantity satisfies both distributions at once.
[[nodiscard]] double possibility(const FuzzyInterval& measured,
                                 const FuzzyInterval& nominal);

/// Necessity measure N(Vn | Vm) = inf_x max(1 - mu_Vm(x), mu_Vn(x)):
/// how certainly the (possibilistic) measurement lies within the nominal set.
[[nodiscard]] double necessity(const FuzzyInterval& measured,
                               const FuzzyInterval& nominal);

}  // namespace flames::fuzzy
