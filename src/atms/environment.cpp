#include "atms/environment.h"

#include <bit>
#include <sstream>

#include "obs/obs.h"

namespace flames::atms {

namespace {
constexpr std::size_t kBits = 64;

// Environment construction is the ATMS's allocation hot spot; the counter
// tells a trace reader how much label/nogood churn a diagnosis caused.
obs::Counter& cEnvsCreated() {
  static obs::Counter& c = obs::counter("atms.environments_created");
  return c;
}
}  // namespace

Environment Environment::of(std::initializer_list<AssumptionId> ids) {
  Environment e;
  for (AssumptionId id : ids) e.insert(id);
  return e;
}

Environment Environment::fromIds(const std::vector<AssumptionId>& ids) {
  Environment e;
  for (AssumptionId id : ids) e.insert(id);
  return e;
}

bool Environment::empty() const { return words_.empty(); }

std::size_t Environment::size() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool Environment::contains(AssumptionId id) const {
  const std::size_t word = id / kBits;
  if (word >= words_.size()) return false;
  return (words_[word] >> (id % kBits)) & 1u;
}

bool Environment::isSubsetOf(const Environment& other) const {
  if (words_.size() > other.words_.size()) return false;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Environment::intersects(const Environment& other) const {
  const std::size_t n = std::min(words_.size(), other.words_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

void Environment::insert(AssumptionId id) {
  const std::size_t word = id / kBits;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= std::uint64_t{1} << (id % kBits);
}

void Environment::erase(AssumptionId id) {
  const std::size_t word = id / kBits;
  if (word >= words_.size()) return;
  words_[word] &= ~(std::uint64_t{1} << (id % kBits));
  normalize();
}

Environment Environment::unionWith(const Environment& other) const {
  cEnvsCreated().add();
  Environment out;
  out.words_.resize(std::max(words_.size(), other.words_.size()), 0);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    std::uint64_t w = 0;
    if (i < words_.size()) w |= words_[i];
    if (i < other.words_.size()) w |= other.words_[i];
    out.words_[i] = w;
  }
  out.normalize();
  return out;
}

Environment Environment::intersectWith(const Environment& other) const {
  cEnvsCreated().add();
  Environment out;
  out.words_.resize(std::min(words_.size(), other.words_.size()), 0);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  out.normalize();
  return out;
}

std::vector<AssumptionId> Environment::ids() const {
  std::vector<AssumptionId> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<AssumptionId>(w * kBits +
                                              static_cast<std::size_t>(bit)));
      word &= word - 1;
    }
  }
  return out;
}

std::string Environment::str() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (AssumptionId id : ids()) {
    if (!first) os << ',';
    os << id;
    first = false;
  }
  os << '}';
  return os.str();
}

bool Environment::orderedBefore(const Environment& other) const {
  const std::size_t sa = size(), sb = other.size();
  if (sa != sb) return sa < sb;
  const std::size_t n = std::max(words_.size(), other.words_.size());
  for (std::size_t i = n; i-- > 0;) {
    const std::uint64_t wa = i < words_.size() ? words_[i] : 0;
    const std::uint64_t wb = i < other.words_.size() ? other.words_[i] : 0;
    if (wa != wb) return wa < wb;
  }
  return false;
}

void Environment::normalize() {
  while (!words_.empty() && words_.back() == 0) words_.pop_back();
}

}  // namespace flames::atms
