// Assumption environments for the (fuzzy) ATMS.
//
// An environment is a set of assumptions; labels, nogoods and candidate
// diagnoses are all built from environments (de Kleer 1986, paper §6). The
// hot operations are union, subset test and subsumption filtering, so the
// representation is a dynamic bitset over assumption ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace flames::atms {

using AssumptionId = std::uint32_t;

/// A set of assumptions, stored as a dynamic bitset.
class Environment {
 public:
  Environment() = default;

  /// Builds from an explicit id list.
  static Environment of(std::initializer_list<AssumptionId> ids);
  static Environment fromIds(const std::vector<AssumptionId>& ids);

  /// The empty environment (holds unconditionally).
  [[nodiscard]] bool empty() const;

  /// Number of assumptions in the set.
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] bool contains(AssumptionId id) const;

  /// This ⊆ other.
  [[nodiscard]] bool isSubsetOf(const Environment& other) const;

  /// This ⊇ other.
  [[nodiscard]] bool isSupersetOf(const Environment& other) const {
    return other.isSubsetOf(*this);
  }

  /// True if the intersection is non-empty.
  [[nodiscard]] bool intersects(const Environment& other) const;

  /// In-place insertion.
  void insert(AssumptionId id);

  /// In-place removal.
  void erase(AssumptionId id);

  /// Set union (the env of a derived value is the union of its supports).
  [[nodiscard]] Environment unionWith(const Environment& other) const;

  /// Set intersection.
  [[nodiscard]] Environment intersectWith(const Environment& other) const;

  /// Sorted list of member ids.
  [[nodiscard]] std::vector<AssumptionId> ids() const;

  /// Deterministic render like "{1,4,7}".
  [[nodiscard]] std::string str() const;

  friend bool operator==(const Environment&, const Environment&) = default;

  /// Strict weak order (by size, then lexicographic on words) for use as a
  /// map key and for deterministic output.
  [[nodiscard]] bool orderedBefore(const Environment& other) const;

 private:
  void normalize();
  std::vector<std::uint64_t> words_;
};

struct EnvironmentLess {
  bool operator()(const Environment& a, const Environment& b) const {
    return a.orderedBefore(b);
  }
};

}  // namespace flames::atms
