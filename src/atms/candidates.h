// Candidate generation from the fuzzy nogood database (paper §6.1, §6.3).
//
// A candidate is a set of assumptions (in diagnosis: component-correctness
// assumptions) whose retraction explains every conflict — i.e. a hitting set
// of the nogood environments (GDE / Reiter). FLAMES works with *fuzzy*
// nogoods, so candidates are generated per λ-cut: at confidence λ only
// nogoods of degree >= λ must be explained. Lower λ means more conflicts are
// taken seriously and candidates grow; the ranked λ structure is what the
// paper uses to "restrict the effect of explosion".
#pragma once

#include <map>
#include <string>
#include <vector>

#include "atms/atms.h"

namespace flames::atms {

/// One candidate diagnosis.
struct Candidate {
  /// Assumptions to retract (components to suspect).
  std::vector<AssumptionId> members;
  /// λ-cut the candidate was generated at.
  double lambda = 1.0;
  /// min over members of the member's suspicion (see componentSuspicion).
  double suspicion = 0.0;
};

/// Computes all minimal hitting sets of `sets` (each a non-empty id list).
///
/// `maxCardinality` bounds the search depth (the paper entertains multiple
/// faults but the space grows exponentially; typical use is 2 or 3);
/// `maxCandidates` caps the output size. Results are subset-minimal and
/// sorted by cardinality then lexicographically.
[[nodiscard]] std::vector<std::vector<AssumptionId>> minimalHittingSets(
    const std::vector<std::vector<AssumptionId>>& sets,
    std::size_t maxCardinality = 4, std::size_t maxCandidates = 10000);

/// Suspicion of each assumption: the strongest nogood it participates in.
[[nodiscard]] std::map<AssumptionId, double> componentSuspicion(
    const NogoodDb& db);

/// Candidates at a λ-cut: minimal hitting sets of the subset-minimal nogoods
/// with degree >= λ, ranked by (cardinality asc, suspicion desc).
[[nodiscard]] std::vector<Candidate> candidatesAt(
    const NogoodDb& db, double lambda, std::size_t maxCardinality = 4,
    std::size_t maxCandidates = 10000);

/// The full λ-structure: candidates at every distinct nogood degree,
/// strongest cut first. Each entry pairs the λ value with its candidates.
[[nodiscard]] std::vector<std::pair<double, std::vector<Candidate>>>
candidateLattice(const NogoodDb& db, std::size_t maxCardinality = 4,
                 std::size_t maxCandidates = 10000);

}  // namespace flames::atms
