#include "atms/candidates.h"

#include <algorithm>
#include <set>

namespace flames::atms {

namespace {

// Branch-and-prune minimal hitting set enumeration. Classic scheme: pick the
// first unhit set, branch on each of its elements, prune supersets of found
// hitting sets at the end (cheap at these sizes).
void hitRecurse(const std::vector<std::vector<AssumptionId>>& sets,
                std::vector<AssumptionId>& partial, std::size_t maxCard,
                std::size_t maxCount,
                std::vector<std::vector<AssumptionId>>& out) {
  if (out.size() >= maxCount) return;
  // First set not hit by `partial`.
  const std::vector<AssumptionId>* unhit = nullptr;
  for (const auto& s : sets) {
    const bool hit = std::any_of(s.begin(), s.end(), [&](AssumptionId a) {
      return std::find(partial.begin(), partial.end(), a) != partial.end();
    });
    if (!hit) {
      unhit = &s;
      break;
    }
  }
  if (unhit == nullptr) {
    out.push_back(partial);
    std::sort(out.back().begin(), out.back().end());
    return;
  }
  if (partial.size() >= maxCard) return;
  for (AssumptionId a : *unhit) {
    partial.push_back(a);
    hitRecurse(sets, partial, maxCard, maxCount, out);
    partial.pop_back();
    if (out.size() >= maxCount) return;
  }
}

void sortAndMinimize(std::vector<std::vector<AssumptionId>>& hits) {
  std::sort(hits.begin(), hits.end(),
            [](const std::vector<AssumptionId>& a,
               const std::vector<AssumptionId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
  // Remove supersets of earlier (smaller) hitting sets.
  std::vector<std::vector<AssumptionId>> minimal;
  for (const auto& h : hits) {
    const bool dominated =
        std::any_of(minimal.begin(), minimal.end(), [&](const auto& m) {
          return std::includes(h.begin(), h.end(), m.begin(), m.end());
        });
    if (!dominated) minimal.push_back(h);
  }
  hits = std::move(minimal);
}

}  // namespace

std::vector<std::vector<AssumptionId>> minimalHittingSets(
    const std::vector<std::vector<AssumptionId>>& sets,
    std::size_t maxCardinality, std::size_t maxCandidates) {
  // An empty conflict set is unhittable: no candidates.
  for (const auto& s : sets) {
    if (s.empty()) return {};
  }
  if (sets.empty()) return {{}};  // nothing to explain: the empty candidate

  std::vector<std::vector<AssumptionId>> out;
  std::vector<AssumptionId> partial;
  hitRecurse(sets, partial, maxCardinality, maxCandidates, out);
  sortAndMinimize(out);
  return out;
}

std::map<AssumptionId, double> componentSuspicion(const NogoodDb& db) {
  std::map<AssumptionId, double> suspicion;
  for (const Nogood& n : db.all()) {
    for (AssumptionId a : n.env.ids()) {
      auto [it, inserted] = suspicion.emplace(a, n.degree);
      if (!inserted) it->second = std::max(it->second, n.degree);
    }
  }
  return suspicion;
}

std::vector<Candidate> candidatesAt(const NogoodDb& db, double lambda,
                                    std::size_t maxCardinality,
                                    std::size_t maxCandidates) {
  std::vector<std::vector<AssumptionId>> sets;
  for (const Nogood& n : db.minimalNogoods(lambda)) {
    sets.push_back(n.env.ids());
  }
  const auto hits = minimalHittingSets(sets, maxCardinality, maxCandidates);
  const auto suspicion = componentSuspicion(db);

  std::vector<Candidate> out;
  out.reserve(hits.size());
  for (const auto& h : hits) {
    Candidate c;
    c.members = h;
    c.lambda = lambda;
    c.suspicion = h.empty() ? 0.0 : 1.0;
    for (AssumptionId a : h) {
      const auto it = suspicion.find(a);
      const double s = it == suspicion.end() ? 0.0 : it->second;
      c.suspicion = std::min(c.suspicion, s);
    }
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.members.size() != b.members.size()) {
      return a.members.size() < b.members.size();
    }
    if (a.suspicion != b.suspicion) return a.suspicion > b.suspicion;
    return a.members < b.members;
  });
  return out;
}

std::vector<std::pair<double, std::vector<Candidate>>> candidateLattice(
    const NogoodDb& db, std::size_t maxCardinality,
    std::size_t maxCandidates) {
  std::set<double, std::greater<>> lambdas;
  for (const Nogood& n : db.all()) lambdas.insert(n.degree);
  std::vector<std::pair<double, std::vector<Candidate>>> out;
  for (double l : lambdas) {
    out.emplace_back(l, candidatesAt(db, l, maxCardinality, maxCandidates));
  }
  return out;
}

}  // namespace flames::atms
