// A fuzzy Assumption-based Truth Maintenance System (paper §6).
//
// The classic ATMS (de Kleer 1986) maintains, for every datum node, a label:
// the set of minimal, consistent assumption environments under which the
// datum holds. FLAMES extends it in two ways (paper §6.1.2):
//
//  * justifications carry a certainty degree in [0, 1] (the expert may add
//    fault models / qualitative rules that are only partially certain), and
//    a label environment's degree is the min (t-norm) of the degrees along
//    its derivation;
//  * nogoods carry a degree in [0, 1]: degree 1 is a hard contradiction
//    (the environment is removed from labels, as in the classic ATMS);
//    degree < 1 is a *partial* conflict — it is recorded and ranked but
//    only prunes labels when it reaches the configured hard threshold.
//
// The diagnosis-side consumers (candidate generation, ranked nogood lists)
// live in atms/candidates.*.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "atms/environment.h"

namespace flames::atms {

using NodeId = std::uint32_t;

/// One environment in a node's label, with its derivation degree.
struct LabelEnv {
  Environment env;
  double degree = 1.0;
};

/// A justification: antecedents (conjunction) => consequent, with a
/// certainty degree.
struct Justification {
  std::vector<NodeId> antecedents;
  NodeId consequent = 0;
  double degree = 1.0;
  std::string note;
};

/// A recorded (possibly partial) conflict.
struct Nogood {
  Environment env;
  double degree = 1.0;  ///< 1 = hard contradiction, <1 = partial conflict
  std::string note;
};

/// Database of fuzzy nogoods with subsumption.
///
/// Entry A subsumes entry B iff A.env ⊆ B.env and A.degree >= B.degree:
/// a stronger conflict on fewer assumptions makes the weaker one redundant.
class NogoodDb {
 public:
  /// Records a conflict; returns true if it was kept (not subsumed).
  bool add(Environment env, double degree, std::string note = {});

  /// Strongest degree of any recorded nogood contained in `env` (0 if none).
  [[nodiscard]] double degreeOf(const Environment& env) const;

  /// True if env contains a nogood of at least `lambda` degree.
  [[nodiscard]] bool isInconsistent(const Environment& env,
                                    double lambda = 1.0) const;

  /// All entries with degree >= lambda that are subset-minimal within that
  /// cut, sorted by degree descending then size ascending.
  [[nodiscard]] std::vector<Nogood> minimalNogoods(double lambda = 0.0) const;

  [[nodiscard]] const std::vector<Nogood>& all() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::vector<Nogood> entries_;
};

/// The fuzzy ATMS.
class Atms {
 public:
  Atms();

  /// The distinguished contradiction node.
  [[nodiscard]] NodeId contradiction() const { return kContradiction; }

  /// Creates an assumption node; its label is {{a}} with degree 1.
  NodeId addAssumption(std::string datum);

  /// Creates an ordinary datum node with an empty label.
  NodeId addNode(std::string datum);

  /// Installs `antecedents => consequent` with a certainty degree and
  /// propagates labels. Justifying the contradiction node records nogoods.
  void justify(std::vector<NodeId> antecedents, NodeId consequent,
               double degree = 1.0, std::string note = {});

  /// Premise: node holds under the empty environment (degree d).
  void premise(NodeId node, double degree = 1.0);

  /// Directly records a conflict environment with a degree.
  void addNogood(Environment env, double degree, std::string note = {});

  /// Label of a node: minimal consistent environments with degrees.
  [[nodiscard]] const std::vector<LabelEnv>& label(NodeId node) const;

  /// True if the node holds in at least one consistent environment with
  /// degree >= minDegree.
  [[nodiscard]] bool isIn(NodeId node, double minDegree = 0.0) const;

  /// True if the node holds under the given environment (some label env is
  /// a subset of it), at degree >= minDegree.
  [[nodiscard]] bool holdsIn(NodeId node, const Environment& env,
                             double minDegree = 0.0) const;

  [[nodiscard]] const std::string& datum(NodeId node) const;
  [[nodiscard]] bool isAssumption(NodeId node) const;
  [[nodiscard]] std::optional<AssumptionId> assumptionIdOf(NodeId node) const;
  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  [[nodiscard]] const NogoodDb& nogoods() const { return nogoodDb_; }
  [[nodiscard]] const std::vector<Justification>& justifications() const {
    return justifications_;
  }

  /// Environments with a nogood degree >= this threshold are removed from
  /// labels (default: only hard, degree-1 conflicts prune, as in the paper).
  void setHardConflictThreshold(double t) { hardThreshold_ = t; }
  [[nodiscard]] double hardConflictThreshold() const { return hardThreshold_; }

  /// Derivation trace: how `node` comes to hold under `env` (one line per
  /// step, leaves first, e.g. "ok(R1): assumption" then
  /// "i1 <= [ohm] (ok(R1), v1)"). Empty if the node does not hold in env.
  /// The trace is found by a greedy search over the current labels, so it
  /// is one valid derivation, not necessarily the one first discovered.
  [[nodiscard]] std::vector<std::string> explain(
      NodeId node, const Environment& env) const;

  /// Trace for the node's first (minimal) label environment.
  [[nodiscard]] std::vector<std::string> explain(NodeId node) const;

 private:
  static constexpr NodeId kContradiction = 0;

  struct Node {
    std::string datum;
    bool assumption = false;
    AssumptionId assumptionId = 0;
    std::vector<LabelEnv> label;
    std::vector<std::size_t> consequentOf;  // justification indices it feeds
  };

  // Inserts a candidate env into a node's label (minimality + consistency
  // maintained); returns true if the label changed.
  bool updateLabel(NodeId node, const LabelEnv& candidate);

  // Recomputes consequences of a changed node, breadth-first.
  void propagateFrom(NodeId node);

  // Handles new envs arriving at the contradiction node.
  void recordConflict(const LabelEnv& env, const std::string& note);

  // Removes label envs that became inconsistent after a new hard nogood.
  void pruneLabels();

  // Recursive greedy trace search used by explain().
  bool explainInto(NodeId node, const Environment& env,
                   std::vector<std::string>& out,
                   std::vector<NodeId>& visiting) const;

  std::vector<Node> nodes_;
  std::vector<Justification> justifications_;
  NogoodDb nogoodDb_;
  AssumptionId nextAssumption_ = 0;
  double hardThreshold_ = 1.0;
};

}  // namespace flames::atms
