#include "atms/atms.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "obs/obs.h"

namespace flames::atms {

namespace {

obs::Counter& cSubsumption() {
  static obs::Counter& c = obs::counter("atms.subsumption_checks");
  return c;
}
obs::Counter& cLabelUpdates() {
  static obs::Counter& c = obs::counter("atms.label_updates");
  return c;
}

// Nogood insertions bucketed by degree: hard contradictions (degree 1),
// strong partial conflicts (>= 0.5) and weak ones — the mix explains why
// the database (and hence candidate generation) grows.
obs::Counter& cNogoodBucket(double degree) {
  static obs::Counter& hard = obs::counter("atms.nogoods.hard");
  static obs::Counter& strong = obs::counter("atms.nogoods.strong");
  static obs::Counter& weak = obs::counter("atms.nogoods.weak");
  if (degree >= 1.0) return hard;
  return degree >= 0.5 ? strong : weak;
}

}  // namespace

// --- NogoodDb ---------------------------------------------------------------

bool NogoodDb::add(Environment env, double degree, std::string note) {
  degree = std::clamp(degree, 0.0, 1.0);
  // Subsumed by an existing stronger-or-equal, smaller-or-equal entry?
  cSubsumption().add(entries_.size());
  for (const Nogood& n : entries_) {
    if (n.degree >= degree && n.env.isSubsetOf(env)) return false;
  }
  // Remove entries the new one subsumes.
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Nogood& n) {
                                  return degree >= n.degree &&
                                         env.isSubsetOf(n.env);
                                }),
                 entries_.end());
  cNogoodBucket(degree).add();
  entries_.push_back({std::move(env), degree, std::move(note)});
  return true;
}

double NogoodDb::degreeOf(const Environment& env) const {
  double best = 0.0;
  for (const Nogood& n : entries_) {
    if (n.degree > best && n.env.isSubsetOf(env)) best = n.degree;
  }
  return best;
}

bool NogoodDb::isInconsistent(const Environment& env, double lambda) const {
  for (const Nogood& n : entries_) {
    if (n.degree >= lambda && n.env.isSubsetOf(env)) return true;
  }
  return false;
}

std::vector<Nogood> NogoodDb::minimalNogoods(double lambda) const {
  std::vector<Nogood> cut;
  for (const Nogood& n : entries_) {
    if (n.degree >= lambda) cut.push_back(n);
  }
  std::vector<Nogood> minimal;
  for (const Nogood& n : cut) {
    const bool dominated = std::any_of(
        cut.begin(), cut.end(), [&](const Nogood& m) {
          return &m != &n && m.env.isSubsetOf(n.env) && !(n.env == m.env);
        });
    if (!dominated) minimal.push_back(n);
  }
  std::sort(minimal.begin(), minimal.end(), [](const Nogood& a,
                                               const Nogood& b) {
    if (a.degree != b.degree) return a.degree > b.degree;
    const std::size_t sa = a.env.size(), sb = b.env.size();
    if (sa != sb) return sa < sb;
    return a.env.orderedBefore(b.env);
  });
  return minimal;
}

// --- Atms -------------------------------------------------------------------

Atms::Atms() {
  Node contradictionNode;
  contradictionNode.datum = "_|_";
  nodes_.push_back(std::move(contradictionNode));
}

NodeId Atms::addAssumption(std::string datum) {
  Node n;
  n.datum = std::move(datum);
  n.assumption = true;
  n.assumptionId = nextAssumption_++;
  Environment e;
  e.insert(n.assumptionId);
  n.label.push_back({std::move(e), 1.0});
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Atms::addNode(std::string datum) {
  Node n;
  n.datum = std::move(datum);
  nodes_.push_back(std::move(n));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Atms::justify(std::vector<NodeId> antecedents, NodeId consequent,
                   double degree, std::string note) {
  for (NodeId a : antecedents) {
    if (a >= nodes_.size()) throw std::out_of_range("justify: bad antecedent");
  }
  if (consequent >= nodes_.size()) {
    throw std::out_of_range("justify: bad consequent");
  }
  justifications_.push_back({antecedents, consequent,
                             std::clamp(degree, 0.0, 1.0), std::move(note)});
  const std::size_t jIdx = justifications_.size() - 1;
  for (NodeId a : antecedents) {
    auto& feeds = nodes_[a].consequentOf;
    if (std::find(feeds.begin(), feeds.end(), jIdx) == feeds.end()) {
      feeds.push_back(jIdx);
    }
  }

  // Fire the new justification once; label updates cascade from there.
  const Justification& j = justifications_[jIdx];
  // Cross product of antecedent labels.
  std::vector<LabelEnv> combos{{Environment{}, j.degree}};
  for (NodeId a : j.antecedents) {
    std::vector<LabelEnv> next;
    for (const LabelEnv& partial : combos) {
      for (const LabelEnv& le : nodes_[a].label) {
        next.push_back({partial.env.unionWith(le.env),
                        std::min(partial.degree, le.degree)});
      }
    }
    combos = std::move(next);
    if (combos.empty()) return;  // some antecedent label is empty
  }
  bool changed = false;
  for (const LabelEnv& c : combos) {
    if (j.consequent == kContradiction) {
      recordConflict(c, j.note);
    } else if (updateLabel(j.consequent, c)) {
      changed = true;
    }
  }
  if (changed) propagateFrom(j.consequent);
}

void Atms::premise(NodeId node, double degree) {
  if (node == kContradiction) {
    throw std::invalid_argument("premise: cannot premise the contradiction");
  }
  if (updateLabel(node, {Environment{}, degree})) propagateFrom(node);
}

void Atms::addNogood(Environment env, double degree, std::string note) {
  if (nogoodDb_.add(std::move(env), degree, std::move(note)) &&
      degree >= hardThreshold_) {
    pruneLabels();
  }
}

const std::vector<LabelEnv>& Atms::label(NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("label: bad node");
  return nodes_[node].label;
}

bool Atms::isIn(NodeId node, double minDegree) const {
  for (const LabelEnv& le : label(node)) {
    if (le.degree >= minDegree) return true;
  }
  return false;
}

bool Atms::holdsIn(NodeId node, const Environment& env,
                   double minDegree) const {
  for (const LabelEnv& le : label(node)) {
    if (le.degree >= minDegree && le.env.isSubsetOf(env)) return true;
  }
  return false;
}

const std::string& Atms::datum(NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("datum: bad node");
  return nodes_[node].datum;
}

bool Atms::isAssumption(NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("isAssumption: bad node");
  return nodes_[node].assumption;
}

std::optional<AssumptionId> Atms::assumptionIdOf(NodeId node) const {
  if (node >= nodes_.size()) throw std::out_of_range("assumptionIdOf");
  if (!nodes_[node].assumption) return std::nullopt;
  return nodes_[node].assumptionId;
}

bool Atms::updateLabel(NodeId node, const LabelEnv& candidate) {
  cLabelUpdates().add();
  if (nogoodDb_.isInconsistent(candidate.env, hardThreshold_)) return false;
  auto& label = nodes_[node].label;
  // Subsumed by an existing env (subset with >= degree)?
  cSubsumption().add(label.size());
  for (const LabelEnv& le : label) {
    if (le.degree >= candidate.degree && le.env.isSubsetOf(candidate.env)) {
      return false;
    }
  }
  // Remove envs the candidate subsumes.
  label.erase(std::remove_if(label.begin(), label.end(),
                             [&](const LabelEnv& le) {
                               return candidate.degree >= le.degree &&
                                      candidate.env.isSubsetOf(le.env);
                             }),
              label.end());
  label.push_back(candidate);
  return true;
}

void Atms::propagateFrom(NodeId start) {
  std::deque<NodeId> queue{start};
  // Each pass refires all justifications fed by the changed node. Labels
  // only grow (or get replaced by subsets), so this terminates.
  int guard = 0;
  const int kMaxRounds = 100000;
  while (!queue.empty()) {
    if (++guard > kMaxRounds) {
      throw std::runtime_error("Atms: propagation did not settle");
    }
    const NodeId node = queue.front();
    queue.pop_front();
    for (std::size_t jIdx : nodes_[node].consequentOf) {
      const Justification& j = justifications_[jIdx];
      std::vector<LabelEnv> combos{{Environment{}, j.degree}};
      for (NodeId a : j.antecedents) {
        std::vector<LabelEnv> next;
        for (const LabelEnv& partial : combos) {
          for (const LabelEnv& le : nodes_[a].label) {
            next.push_back({partial.env.unionWith(le.env),
                            std::min(partial.degree, le.degree)});
          }
        }
        combos = std::move(next);
        if (combos.empty()) break;
      }
      bool changed = false;
      for (const LabelEnv& c : combos) {
        if (j.consequent == kContradiction) {
          recordConflict(c, j.note);
        } else if (updateLabel(j.consequent, c)) {
          changed = true;
        }
      }
      if (changed) queue.push_back(j.consequent);
    }
  }
}

void Atms::recordConflict(const LabelEnv& env, const std::string& note) {
  // The degree of the conflict is the derivation degree of the environment
  // that reached the contradiction node.
  if (nogoodDb_.add(env.env, env.degree, note) &&
      env.degree >= hardThreshold_) {
    pruneLabels();
  }
}

namespace {

// Appends `line` to `out` unless already present (shared sub-derivations).
void pushUnique(std::vector<std::string>& out, std::string line) {
  if (std::find(out.begin(), out.end(), line) == out.end()) {
    out.push_back(std::move(line));
  }
}

}  // namespace

bool Atms::explainInto(NodeId node, const Environment& env,
                       std::vector<std::string>& out,
                       std::vector<NodeId>& visiting) const {
  const Node& n = nodes_[node];
  if (n.assumption) {
    if (!env.contains(n.assumptionId)) return false;
    pushUnique(out, n.datum + ": assumption");
    return true;
  }
  // Premise-style label env (empty environment, no justification needed to
  // re-derive for the trace).
  for (const LabelEnv& le : n.label) {
    if (le.env.empty()) {
      pushUnique(out, n.datum + ": premise");
      return true;
    }
  }
  // Guard against justification cycles.
  if (std::find(visiting.begin(), visiting.end(), node) != visiting.end()) {
    return false;
  }
  visiting.push_back(node);

  for (std::size_t jIdx = 0; jIdx < justifications_.size(); ++jIdx) {
    const Justification& j = justifications_[jIdx];
    if (j.consequent != node) continue;
    // Every antecedent must hold under some label env contained in `env`.
    bool ok = true;
    std::vector<std::string> sub;
    for (NodeId a : j.antecedents) {
      bool found = false;
      for (const LabelEnv& le : nodes_[a].label) {
        if (!le.env.isSubsetOf(env)) continue;
        std::vector<NodeId> branchVisiting = visiting;
        if (explainInto(a, env, sub, branchVisiting)) {
          found = true;
          break;
        }
      }
      // Assumptions and premises have label envs too, handled recursively.
      if (!found) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (std::string& line : sub) pushUnique(out, std::move(line));
      std::string line = n.datum + " <= ";
      if (!j.note.empty()) line += "[" + j.note + "] ";
      line += "(";
      for (std::size_t i = 0; i < j.antecedents.size(); ++i) {
        if (i != 0) line += ", ";
        line += nodes_[j.antecedents[i]].datum;
      }
      line += ")";
      if (j.degree < 1.0) {
        line += " degree " + std::to_string(j.degree);
      }
      pushUnique(out, std::move(line));
      visiting.pop_back();
      return true;
    }
  }
  visiting.pop_back();
  return false;
}

std::vector<std::string> Atms::explain(NodeId node,
                                       const Environment& env) const {
  if (node >= nodes_.size()) throw std::out_of_range("explain: bad node");
  if (!holdsIn(node, env)) return {};
  std::vector<std::string> out;
  std::vector<NodeId> visiting;
  if (!explainInto(node, env, out, visiting)) return {};
  return out;
}

std::vector<std::string> Atms::explain(NodeId node) const {
  const auto& lbl = label(node);
  if (lbl.empty()) return {};
  return explain(node, lbl.front().env);
}

void Atms::pruneLabels() {
  for (Node& n : nodes_) {
    n.label.erase(std::remove_if(n.label.begin(), n.label.end(),
                                 [&](const LabelEnv& le) {
                                   return nogoodDb_.isInconsistent(
                                       le.env, hardThreshold_);
                                 }),
                  n.label.end());
  }
}

}  // namespace flames::atms
