// bench_analyze — cost of the pre-propagation static analysis relative to
// what it buys.
//
// The analysis is paid once per compiled unit type (cached on the
// CompiledModel next to the lint report), so its absolute cost matters on
// the cold path only; these benchmarks pin it against the work it
// replaces or gates:
//   * AnalyzeModel/* — the full three-pass analysis per topology family,
//     scaled by circuit size (the envelope pass dominates: maxDepth rounds
//     of solveFor over every constraint);
//   * per-pass splits (Envelopes / CostModel / Decompose) on the paper amp,
//     so a regression can be attributed to one pass;
//   * DiagnoseWithDerivedCap vs DiagnoseWithStockCap on the 4x4 grid mesh —
//     the payoff measurement: the derived cap turns the mesh's stock-cap
//     propagation blowup into a bounded run (this is the gap the A2
//     admission gate protects the service queue from).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <cstdint>

#include "analyze/analyze.h"
#include "analyze/cost.h"
#include "analyze/decompose.h"
#include "analyze/envelope.h"
#include "circuit/catalog.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "fuzzy/fuzzy_interval.h"
#include "obs_optin.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;

void BM_AnalyzeModel_Fig6Amp(benchmark::State& state) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::analyzeModel(built));
  }
}
BENCHMARK(BM_AnalyzeModel_Fig6Amp);

void BM_AnalyzeModel_Ladder(benchmark::State& state) {
  const auto built = constraints::buildDiagnosticModel(
      workload::resistorLadder(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::analyzeModel(built));
  }
}
BENCHMARK(BM_AnalyzeModel_Ladder)->Arg(4)->Arg(16)->Arg(64);

void BM_AnalyzeModel_Grid(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto built =
      constraints::buildDiagnosticModel(workload::resistorGrid(n, n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::analyzeModel(built));
  }
}
BENCHMARK(BM_AnalyzeModel_Grid)->Arg(3)->Arg(5);

void BM_Envelopes_Fig6Amp(benchmark::State& state) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::computeEnvelopes(built.model));
  }
}
BENCHMARK(BM_Envelopes_Fig6Amp);

void BM_CostModel_Fig6Amp(benchmark::State& state) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::computeCostModel(built.model));
  }
}
BENCHMARK(BM_CostModel_Fig6Amp);

void BM_Decompose_Fig6Amp(benchmark::State& state) {
  const auto built =
      constraints::buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze::computeDecomposition(built));
  }
}
BENCHMARK(BM_Decompose_Fig6Amp);

/// One fully measured propagation of the 4x4 grid mesh under a given entry
/// cap: an open fault is simulated on the bench and every node is probed,
/// the service's "deliberately heavy request" shape. The grid couples every
/// node through KCL, the topology class whose stock-cap propagation cost
/// the derived cap exists to contain (the analysis clamps this model from
/// the stock 24 down to 16).
void propagateGridUnderCap(benchmark::State& state, bool derived) {
  const circuit::Netlist net = workload::resistorGrid(4, 4);
  const auto built = constraints::buildDiagnosticModel(net);
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::open("Rh1_1")}, workload::tapsOf(net, "g"));
  constraints::PropagatorOptions popts;
  if (derived) {
    const auto report = analyze::analyzeModel(
        built, analyze::analysisOptionsFor(popts));
    popts.maxEntriesPerQuantity = analyze::recommendedEntryCap(
        report, popts.maxEntriesPerQuantity);
  }
  std::uint64_t steps = 0;
  for (auto _ : state) {
    constraints::Propagator p(built.model, popts);
    for (const workload::ProbeReading& r : readings) {
      p.addMeasurement(built.voltage(r.node),
                       fuzzy::FuzzyInterval::about(r.volts, 0.05));
    }
    p.run();
    steps = p.steps();
    benchmark::DoNotOptimize(steps);
  }
  state.counters["cap"] =
      static_cast<double>(popts.maxEntriesPerQuantity);
  state.counters["steps"] = static_cast<double>(steps);
}

void BM_DiagnoseWithStockCap_Grid(benchmark::State& state) {
  propagateGridUnderCap(state, false);
}
BENCHMARK(BM_DiagnoseWithStockCap_Grid)->Unit(benchmark::kMillisecond);

void BM_DiagnoseWithDerivedCap_Grid(benchmark::State& state) {
  propagateGridUnderCap(state, true);
}
BENCHMARK(BM_DiagnoseWithDerivedCap_Grid)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
