// Incremental probe sessions vs from-scratch re-diagnosis (DESIGN.md §12).
//
// The interactive workflow the paper's §8 guided testing implies — measure,
// look at the ranking, probe again — re-runs the whole pipeline on every
// probe in the batch engine. The compiled-schedule incremental path
// (FlamesEngine::addMeasurement) re-propagates only the new probe's impact
// cone under the watch/watermark discipline, so second-and-later probes
// should be several times cheaper than a full re-diagnosis.
//
// Each iteration pays the session seed (the first half of the reading
// list) outside the timer and measures only the follow-up probes, in both
// modes, so the two series are directly comparable: same circuit, same
// readings, same number of timed probes. Seeding half the session is what
// makes the comparison honest for the interactive workload: batch
// re-diagnosis cost grows with the number of accumulated observations,
// while the delta path's cost is bounded by the probed quantity's cone, so
// the probes that matter — the later ones, where a user is iterating on a
// ranking — are exactly where the two modes diverge. The `incremental`
// counter reports how many timed probes actually ran as delta extensions —
// if the entry cap saturates, the exactness guard silently recomputes from
// scratch and the speedup evaporates; the counter makes that visible in
// the results table instead of just looking slow.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "diagnosis/flames.h"
#include "scenario/topology.h"

namespace {

using namespace flames;

struct ProbeSetup {
  circuit::Netlist net;
  /// Probe readings in visit order (healthy solved voltages for the
  /// generated families, the paper's faulted scenario for the Fig. 6 amp).
  std::vector<std::pair<std::string, double>> readings;
};

/// A *confluent* propagation configuration for the generated families: a
/// derivation depth and entry cap at which no derivation is ever discarded
/// at the cap, so the exactness guard never fires and the incremental
/// series genuinely measures the delta path (at the stock depth the
/// ladder/bridge families saturate and every probe would silently fall
/// back to a batch recompute — see DESIGN.md §12). The Fig. 6 amp is
/// confluent at stock settings and runs them unmodified.
diagnosis::FlamesOptions confluentOptions() {
  diagnosis::FlamesOptions o;
  o.propagation.maxDepth = 3;
  o.propagation.maxEntriesPerQuantity = 64;
  return o;
}

ProbeSetup setupFor(scenario::Family family, std::size_t depth) {
  scenario::TopologySpec spec;
  spec.family = family;
  spec.depth = depth;
  spec.valueSeed = 42;
  scenario::Topology topo = scenario::buildTopology(spec);
  const circuit::OperatingPoint sol = circuit::DcSolver(topo.net).solve();
  ProbeSetup s;
  for (const std::string& node : topo.probes) {
    s.readings.emplace_back(node, sol.v(topo.net.findNode(node)));
  }
  s.net = std::move(topo.net);
  return s;
}

ProbeSetup fig6Setup() {
  ProbeSetup s;
  s.net = circuit::paperFig6ThreeStageAmp();
  // The paper's Fig. 7 "short circuit on R2" readings (the README probe
  // walkthrough). A faulted session is the representative interactive
  // workload — its conflicts prune the environment lattice, where an
  // all-healthy probe set keeps every environment alive and the batch
  // re-propagation cost explodes at the stock depth.
  s.readings = {{"V1", 18.0},
                {"V2", 5.321},
                {"Vs", 4.621},
                {"E2", 17.3},
                {"N1", 0.70}};
  return s;
}

/// Readings before this index seed the session outside the timer; the
/// rest are the timed follow-up probes.
std::size_t seedCount(const ProbeSetup& s) {
  return (s.readings.size() + 1) / 2;
}

/// Every follow-up probe re-runs the whole batch pipeline.
void probesFromScratch(benchmark::State& state, const ProbeSetup& s,
                       const diagnosis::FlamesOptions& opts) {
  const std::size_t seed = seedCount(s);
  for (auto _ : state) {
    state.PauseTiming();
    diagnosis::FlamesEngine engine(s.net, opts);
    for (std::size_t i = 0; i < seed; ++i) {
      engine.measure(s.readings[i].first, s.readings[i].second);
    }
    auto report = engine.diagnose();
    state.ResumeTiming();
    for (std::size_t i = seed; i < s.readings.size(); ++i) {
      engine.measure(s.readings[i].first, s.readings[i].second);
      report = engine.diagnose();
      benchmark::DoNotOptimize(report);
    }
  }
  state.counters["probes"] =
      static_cast<double>(s.readings.size() - seedCount(s));
}

/// Follow-up probes extend the persistent incremental session.
void probesIncremental(benchmark::State& state, const ProbeSetup& s,
                       const diagnosis::FlamesOptions& opts) {
  const std::size_t seed = seedCount(s);
  std::size_t incremental = 0;
  for (auto _ : state) {
    state.PauseTiming();
    diagnosis::FlamesEngine engine(s.net, opts);
    // Seeds the session (from-scratch propagation + schedule compile,
    // then delta extensions for the rest of the seed prefix).
    diagnosis::DiagnosisReport report;
    for (std::size_t i = 0; i < seed; ++i) {
      report = engine.addMeasurement(s.readings[i].first,
                                     s.readings[i].second);
    }
    state.ResumeTiming();
    incremental = 0;
    for (std::size_t i = seed; i < s.readings.size(); ++i) {
      report = engine.addMeasurement(s.readings[i].first,
                                     s.readings[i].second);
      benchmark::DoNotOptimize(report);
      if (engine.incrementalSession()->lastIncremental()) ++incremental;
    }
  }
  state.counters["probes"] =
      static_cast<double>(s.readings.size() - seedCount(s));
  state.counters["incremental"] = static_cast<double>(incremental);
}

void BM_LadderProbesFromScratch(benchmark::State& state) {
  probesFromScratch(
      state, setupFor(scenario::Family::kLadder,
                      static_cast<std::size_t>(state.range(0))),
      confluentOptions());
}
BENCHMARK(BM_LadderProbesFromScratch)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_LadderProbesIncremental(benchmark::State& state) {
  probesIncremental(
      state, setupFor(scenario::Family::kLadder,
                      static_cast<std::size_t>(state.range(0))),
      confluentOptions());
}
BENCHMARK(BM_LadderProbesIncremental)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_BridgeProbesFromScratch(benchmark::State& state) {
  probesFromScratch(
      state, setupFor(scenario::Family::kBridge,
                      static_cast<std::size_t>(state.range(0))),
      confluentOptions());
}
BENCHMARK(BM_BridgeProbesFromScratch)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_BridgeProbesIncremental(benchmark::State& state) {
  probesIncremental(
      state, setupFor(scenario::Family::kBridge,
                      static_cast<std::size_t>(state.range(0))),
      confluentOptions());
}
BENCHMARK(BM_BridgeProbesIncremental)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_Fig6AmpProbesFromScratch(benchmark::State& state) {
  probesFromScratch(state, fig6Setup(), diagnosis::FlamesOptions{});
}
BENCHMARK(BM_Fig6AmpProbesFromScratch)->Unit(benchmark::kMillisecond);

void BM_Fig6AmpProbesIncremental(benchmark::State& state) {
  probesIncremental(state, fig6Setup(), diagnosis::FlamesOptions{});
}
BENCHMARK(BM_Fig6AmpProbesIncremental)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
