// E11 — time-domain (step-response) diagnosis: accuracy on reactive faults
// that leave the DC operating point untouched, plus solver timings. This is
// the complement of E9: together they cover the paper's "dynamic mode".
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/fault.h"
#include "circuit/transient.h"
#include "diagnosis/transient_diagnosis.h"

namespace {

using namespace flames;
using circuit::Fault;
using circuit::Netlist;
using diagnosis::StepFeature;
using diagnosis::StepProbe;
using diagnosis::TransientDiagnosisEngine;
using diagnosis::TransientDiagnosisOptions;

Netlist twoStageRc() {
  Netlist n;
  n.addVSource("Vin", "in", "0", 0.0);
  n.addResistor("R1", "in", "m", 1.0, 0.02);
  n.addCapacitor("C1", "m", "0", 1.0, 0.05);
  n.addGain("buf", "m", "b", 1.0, 0.0);
  n.addResistor("R2", "b", "out", 2.0, 0.02);
  n.addCapacitor("C2", "out", "0", 0.1, 0.05);
  return n;
}

std::vector<StepProbe> probes() {
  return {{"m", StepFeature::kRiseTime},
          {"m", StepFeature::kFinalValue},
          {"out", StepFeature::kRiseTime},
          {"out", StepFeature::kFinalValue}};
}

TransientDiagnosisOptions options() {
  TransientDiagnosisOptions o;
  o.transient.timeStep = 0.02;
  o.duration = 40.0;
  return o;
}

void printAccuracyTable() {
  std::cout << "==== E11: step-response diagnosis of DC-invisible reactive "
               "faults ====\n";
  std::cout << "fault | detected | culprit in top-2 | top candidate\n";
  const Netlist net = twoStageRc();

  struct Row {
    const char* name;
    Fault fault;
  };
  const std::vector<Row> rows = {
      {"C1 open", Fault::open("C1")},
      {"C2 open", Fault::open("C2")},
      {"C1 x3 drift", Fault::paramScale("C1", 3.0)},
      {"C2 x4 drift", Fault::paramScale("C2", 4.0)},
      {"C1 x0.3 drift", Fault::paramScale("C1", 0.3)},
  };

  std::size_t detected = 0, isolated = 0;
  for (const Row& row : rows) {
    TransientDiagnosisEngine engine(net, "Vin", probes(), options());
    const Netlist board = circuit::applyFaults(net, {row.fault});
    for (const StepProbe& p : probes()) {
      const auto v = engine.simulateFeature(board, p);
      if (v) engine.measure(p, *v);
    }
    const auto report = engine.diagnose();
    const bool det = report.faultDetected();
    bool found = false;
    std::string top = "-";
    if (det) {
      ++detected;
      if (!report.candidates.empty()) {
        top = report.candidates.front().components.front();
      }
      for (std::size_t k = 0;
           k < std::min<std::size_t>(2, report.candidates.size()); ++k) {
        for (const auto& c : report.candidates[k].components) {
          if (c == row.fault.component) found = true;
        }
      }
      if (found) ++isolated;
    }
    std::cout << "  " << row.name << " | " << (det ? "yes" : "NO") << " | "
              << (found ? "yes" : "NO") << " | {" << top << "}\n";
  }
  std::cout << "summary: " << detected << "/" << rows.size() << " detected, "
            << isolated << "/" << rows.size() << " isolated\n";
  std::cout << "(every one of these faults leaves all DC node voltages "
               "unchanged — the static-mode engine cannot see them at all)\n\n";
}

void BM_TransientSolve(benchmark::State& state) {
  const auto steps = static_cast<double>(state.range(0));
  const Netlist net = twoStageRc();
  for (auto _ : state) {
    circuit::TransientSolver solver(net, {0.02, 50});
    solver.setWaveform("Vin", [](double t) { return t > 0.0 ? 1.0 : 0.0; });
    benchmark::DoNotOptimize(solver.run(steps * 0.02));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TransientSolve)->Arg(100)->Arg(500)->Arg(2000);

void BM_TransientDiagnose(benchmark::State& state) {
  const Netlist net = twoStageRc();
  TransientDiagnosisEngine engine(net, "Vin", probes(), options());
  const Netlist board = circuit::applyFaults(net, {Fault::open("C2")});
  for (const StepProbe& p : probes()) {
    const auto v = engine.simulateFeature(board, p);
    if (v) engine.measure(p, *v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.diagnose());
  }
}
BENCHMARK(BM_TransientDiagnose);

}  // namespace

int main(int argc, char** argv) {
  printAccuracyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
