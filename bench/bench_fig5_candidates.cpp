// E2 — Fig. 5: candidate computation on the diode/two-resistor fragment,
// fuzzy (ranked) vs crisp (unranked), plus candidate-generation timings.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <iomanip>
#include <iostream>
#include <memory>

#include "atms/candidates.h"
#include "constraints/propagator.h"

namespace {

using namespace flames;
using constraints::Model;
using constraints::Propagator;
using fuzzy::FuzzyInterval;

struct Fig5Model {
  Model m;
  atms::AssumptionId r1, r2, d1;
  constraints::QuantityId vr1, vr2, gnd, ir1, ir2;

  Fig5Model() {
    r1 = m.addAssumption("r1");
    r2 = m.addAssumption("r2");
    d1 = m.addAssumption("d1");
    vr1 = m.addQuantity("Vr1");
    vr2 = m.addQuantity("Vr2");
    gnd = m.addQuantity("V0");
    ir1 = m.addQuantity("Ir1");
    ir2 = m.addQuantity("Ir2");
    m.addPrediction(gnd, FuzzyInterval::crisp(0.0), atms::Environment{});
    const FuzzyInterval rating(-0.001, 0.100, 0.0, 0.010);
    m.addPrediction(ir1, rating, atms::Environment::of({d1, r1}));
    m.addPrediction(ir2, rating, atms::Environment::of({d1, r2}));
    m.addConstraint(std::make_unique<constraints::OhmConstraint>(
        "ohm(r1)", vr1, gnd, ir1, FuzzyInterval::crisp(10.0),
        atms::Environment::of({r1})));
    m.addConstraint(std::make_unique<constraints::OhmConstraint>(
        "ohm(r2)", vr2, gnd, ir2, FuzzyInterval::crisp(10.0),
        atms::Environment::of({r2})));
  }
};

void printFig5Table() {
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "==== E2 / Fig. 5: diode rating [-1,100,0,10] uA, measured "
               "Vr1 = 1.05 V, Vr2 = 2 V ====\n";
  std::cout << "paper reference: Nogood{r1,d1} degree 0.5, Nogood{r2,d1} "
               "degree 1; candidates [d1] / [r1,r2]\n\n";

  Fig5Model f;
  Propagator p(f.m);
  p.addMeasurement(f.vr1, FuzzyInterval::crisp(1.05));
  p.addMeasurement(f.vr2, FuzzyInterval::crisp(2.0));
  p.run();

  std::cout << "fuzzy nogoods:\n";
  for (const auto& n : p.nogoods().minimalNogoods(0.0)) {
    std::cout << "  " << f.m.describe(n.env) << "  degree " << n.degree
              << '\n';
  }
  for (double lambda : {0.01, 1.0}) {
    std::cout << "candidates at lambda = " << lambda << ":";
    for (const auto& c : atms::candidatesAt(p.nogoods(), lambda)) {
      std::cout << "  {";
      for (std::size_t i = 0; i < c.members.size(); ++i) {
        std::cout << (i ? "," : "") << f.m.assumptionName(c.members[i]);
      }
      std::cout << "}(" << c.suspicion << ")";
    }
    std::cout << '\n';
  }

  // Crisp contrast: widen measurements to intervals; the 105 uA point sits
  // inside the widened crisp bound [-1, 110], so the r1 conflict vanishes
  // entirely and the remaining one is unranked.
  constraints::PropagatorOptions copts;
  copts.policy = constraints::ConflictPolicy::kCrisp;
  copts.crispifyValues = true;
  Fig5Model fc;
  Propagator pc(fc.m, copts);
  pc.addMeasurement(fc.vr1, FuzzyInterval::crisp(1.05));
  pc.addMeasurement(fc.vr2, FuzzyInterval::crisp(2.0));
  pc.run();
  std::cout << "\ncrisp nogoods (all weight 1, partial conflicts lost):\n";
  for (const auto& n : pc.nogoods().minimalNogoods(0.0)) {
    std::cout << "  " << fc.m.describe(n.env) << '\n';
  }
  std::cout << '\n';
}

void BM_Fig5Propagation(benchmark::State& state) {
  for (auto _ : state) {
    Fig5Model f;
    Propagator p(f.m);
    p.addMeasurement(f.vr1, FuzzyInterval::crisp(1.05));
    p.addMeasurement(f.vr2, FuzzyInterval::crisp(2.0));
    p.run();
    benchmark::DoNotOptimize(p.nogoods().size());
  }
}
BENCHMARK(BM_Fig5Propagation);

void BM_CandidateGeneration(benchmark::State& state) {
  // Synthetic nogood DBs of growing size: candidate explosion timing.
  const auto n = static_cast<atms::AssumptionId>(state.range(0));
  atms::NogoodDb db;
  for (atms::AssumptionId i = 0; i + 1 < n; ++i) {
    db.add(atms::Environment::of({i, i + 1}),
           0.5 + 0.5 * static_cast<double>(i % 2));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(atms::candidatesAt(db, 0.4, 4, 5000));
  }
}
BENCHMARK(BM_CandidateGeneration)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  printFig5Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
