// E1 — Fig. 2: crisp vs fuzzy interval propagation through the 3-amplifier
// chain, the masking case, and the propagation micro-timings.
//
// The table section regenerates the figure's numbers; the benchmark section
// times crisp vs fuzzy propagation of the same chain.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <iomanip>
#include <iostream>

#include "fuzzy/consistency.h"
#include "fuzzy/fuzzy_interval.h"

namespace {

using flames::fuzzy::FuzzyInterval;

void printFig2Table() {
  std::cout << std::fixed << std::setprecision(4);
  std::cout << "==== E1 / Fig. 2: propagation through amp1(x1) -> B, "
               "B -> amp2(x2) -> C, B -> amp3(x3) -> D ====\n";
  const auto amp1 = FuzzyInterval::about(1.0, 0.05);
  const auto amp2 = FuzzyInterval::about(2.0, 0.05);
  const auto amp3 = FuzzyInterval::about(3.0, 0.05);

  struct Case {
    const char* label;
    FuzzyInterval va;
  };
  const Case cases[] = {
      {"(1) crisp Va = [2.95, 3.05]", FuzzyInterval::crispInterval(2.95, 3.05)},
      {"(2) fuzzy Va = [3, 3, .05, .05]", FuzzyInterval::about(3.0, 0.05)},
  };
  std::cout << "paper reference: (1) Vb[2.95,3.05,.15,.15]* "
               "Vc[5.90,6.10,.44,.46]* Vd[8.85,9.15,.58,.62]*\n"
               "                 (2) Vb[3,3,.20,.20] Vc[6,6,.54,.57] "
               "Vd[9,9,.73,.77]\n"
               "(*the paper splits crisp-case imprecision into interval + "
               "spread; we carry it in the support, same totals)\n\n";
  for (const Case& c : cases) {
    const auto vb = c.va * amp1;
    const auto vc = vb * amp2;
    const auto vd = vb * amp3;
    std::cout << c.label << "\n  Vb = " << vb.str() << "  support ["
              << vb.support().lo << ", " << vb.support().hi << "]\n  Vc = "
              << vc.str() << "  support [" << vc.support().lo << ", "
              << vc.support().hi << "]\n  Vd = " << vd.str() << "  support ["
              << vd.support().lo << ", " << vd.support().hi << "]\n";
  }

  std::cout << "\n---- masking case: amp2 actually 1.8, Vc measured 5.6 ----\n";
  const auto vaBack = FuzzyInterval::crisp(5.6) / amp2 / amp1;
  std::cout << "back-propagated Va = " << vaBack.str() << '\n';
  const bool crispOk =
      vaBack.supportsOverlap(FuzzyInterval::crispInterval(2.95, 3.05));
  std::cout << "crisp engine:  overlap with [2.95,3.05] => "
            << (crispOk ? "CONSISTENT (fault masked)" : "conflict") << '\n';
  const auto dc = flames::fuzzy::degreeOfConsistency(
      vaBack, FuzzyInterval::about(3.0, 0.05));
  std::cout << "fuzzy engine:  Dc = " << dc.dc
            << " => partial conflict, nogood degree " << dc.nogoodDegree()
            << " (fault visible)\n\n";
}

void BM_CrispChainPropagation(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto va = FuzzyInterval::crispInterval(2.95, 3.05);
  const auto gain = FuzzyInterval::crispInterval(1.45, 1.55);
  for (auto _ : state) {
    FuzzyInterval v = va;
    for (std::size_t i = 0; i < stages; ++i) v = v * gain;
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stages));
}
BENCHMARK(BM_CrispChainPropagation)->Arg(3)->Arg(10)->Arg(30)->Arg(100);

void BM_FuzzyChainPropagation(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto va = FuzzyInterval::about(3.0, 0.05);
  const auto gain = FuzzyInterval::about(1.5, 0.05);
  for (auto _ : state) {
    FuzzyInterval v = va;
    for (std::size_t i = 0; i < stages; ++i) v = v * gain;
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(stages));
}
BENCHMARK(BM_FuzzyChainPropagation)->Arg(3)->Arg(10)->Arg(30)->Arg(100);

void BM_DegreeOfConsistency(benchmark::State& state) {
  const auto vm = FuzzyInterval::about(3.1, 0.2);
  const auto vn = FuzzyInterval::about(3.0, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flames::fuzzy::degreeOfConsistency(vm, vn));
  }
}
BENCHMARK(BM_DegreeOfConsistency);

}  // namespace

int main(int argc, char** argv) {
  printFig2Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
