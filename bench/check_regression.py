#!/usr/bin/env python3
"""Compares a bench run against the committed baseline and flags regressions.

Usage: bench/check_regression.py [--baseline=FILE] [--threshold=PCT]
                                 [--tolerances=FILE] [--github] current.json

Both files are the merged format written by bench/run_benchmarks.sh:
a map of bench binary name -> that run's full Google Benchmark JSON
document. Benchmarks are matched by (binary, benchmark name); only
`iteration` runs are compared, on cpu_time. A benchmark regresses when
its cpu_time grows by more than the suite's threshold percent over the
baseline; new and vanished benchmarks are reported but never fail the
check.

Thresholds come from --tolerances, a JSON file mapping bench binary
names to {"threshold": PCT, "blocking": bool} under "suites", with a
"default" entry for everything unlisted (see bench/tolerances.json).
Only regressions in *blocking* suites fail the check (exit 1); the rest
annotate. Without --tolerances every suite uses --threshold (default
10) and every regression blocks — the pre-tolerance behaviour.

With --github, regressions are also emitted as workflow annotations
(::error for blocking suites, ::warning otherwise) and a markdown table
is appended to $GITHUB_STEP_SUMMARY when set. Exit status: 0 = no
blocking regression, 1 = at least one, 2 = usage or unreadable input.
The stable propagation/lint/analyze suites have low enough variance to
gate; the rest stay advisory tripwires for order-of-magnitude mistakes,
not microbenchmark referees.
"""

import argparse
import glob
import json
import os
import sys


def newest_baseline():
    """The lexicographically last BENCH_*.json (dates sort correctly)."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    candidates = sorted(glob.glob(os.path.join(repo, "BENCH_*.json")))
    return candidates[-1] if candidates else None


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def flatten(doc):
    """{(binary, bench name): cpu_time_ns} over iteration runs."""
    out = {}
    for binary, run in doc.items():
        for b in run.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            unit = b.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
            if scale is None or "cpu_time" not in b:
                continue
            out[(binary, b["name"])] = b["cpu_time"] * scale
    return out


def suite_policy(tolerances, binary, fallback_threshold):
    """(threshold_pct, blocking) for one bench binary."""
    if tolerances is None:
        return fallback_threshold, True
    default = tolerances.get("default", {})
    suite = tolerances.get("suites", {}).get(binary, default)
    return (float(suite.get("threshold",
                            default.get("threshold", fallback_threshold))),
            bool(suite.get("blocking", default.get("blocking", False))))


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: newest committed BENCH_*.json)")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="fallback threshold in percent when no tolerance "
                         "file is given (default 10)")
    ap.add_argument("--tolerances", default=None,
                    help="per-suite tolerance JSON (bench/tolerances.json); "
                         "only blocking suites fail the check")
    ap.add_argument("--github", action="store_true",
                    help="emit GitHub workflow annotations and a step summary")
    ap.add_argument("current", help="bench JSON to check")
    args = ap.parse_args()

    baseline_path = args.baseline or newest_baseline()
    if baseline_path is None:
        print("error: no BENCH_*.json baseline found", file=sys.stderr)
        sys.exit(2)

    tolerances = load(args.tolerances) if args.tolerances else None
    base = flatten(load(baseline_path))
    cur = flatten(load(args.current))

    rows = []        # (binary, name, base_ns, cur_ns, delta_pct, threshold)
    regressions = [] # same + blocking flag
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        delta = (c - b) / b * 100.0 if b > 0 else 0.0
        threshold, blocking = suite_policy(tolerances, key[0], args.threshold)
        rows.append((*key, b, c, delta, threshold))
        if delta > threshold:
            regressions.append((*key, b, c, delta, threshold, blocking))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    print(f"baseline: {baseline_path} ({len(base)} benchmarks)")
    print(f"current:  {args.current} ({len(cur)} benchmarks)")
    print(f"compared: {len(rows)}"
          + (f", tolerances: {args.tolerances}" if tolerances is not None
             else f", threshold: +{args.threshold:g}%"))
    for binary, name, b, c, delta, threshold in rows:
        mark = "REGRESSED" if delta > threshold else "ok"
        print(f"  {mark:9s} {binary}:{name}  {b:.0f}ns -> {c:.0f}ns "
              f"({delta:+.1f}% vs +{threshold:g}%)")
    for key in only_base:
        print(f"  vanished  {key[0]}:{key[1]} (baseline only)")
    for key in only_cur:
        print(f"  new       {key[0]}:{key[1]} (not in baseline)")

    blocking_hits = [r for r in regressions if r[6]]
    if args.github:
        for binary, name, b, c, delta, threshold, blocking in regressions:
            level = "error" if blocking else "warning"
            print(f"::{level} title=bench regression::{binary}:{name} "
                  f"cpu_time {b:.0f}ns -> {c:.0f}ns ({delta:+.1f}% "
                  f"> +{threshold:g}%)")
        summary = os.environ.get("GITHUB_STEP_SUMMARY")
        if summary:
            with open(summary, "a", encoding="utf-8") as f:
                f.write("### Bench regression check\n\n")
                if regressions:
                    f.write("| benchmark | baseline | current | delta "
                            "| gate |\n|---|---|---|---|---|\n")
                    for (binary, name, b, c, delta, threshold,
                         blocking) in regressions:
                        f.write(f"| `{binary}:{name}` | {b:.0f}ns | {c:.0f}ns "
                                f"| {delta:+.1f}% (>+{threshold:g}%) "
                                f"| {'blocking' if blocking else 'advisory'} "
                                f"|\n")
                else:
                    f.write(f"No regressions across {len(rows)} compared "
                            f"benchmarks.\n")

    if regressions:
        print(f"{len(regressions)} regression(s), "
              f"{len(blocking_hits)} in blocking suites")
        return 1 if blocking_hits else 0
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
