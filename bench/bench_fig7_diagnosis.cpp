// E3 — Fig. 7: the five defect scenarios on the 3-stage amplifier (Fig. 6),
// printing DEFECT / DIAGNOSIS / Dc rows like the paper's table, plus
// end-to-end diagnosis timings.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <iomanip>
#include <iostream>

#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;
using circuit::Fault;

struct Row {
  const char* defect;
  std::vector<Fault> faults;
  const char* paperDiagnosis;
};

const std::vector<Row>& rows() {
  // Rows 2 and 3 are run twice: once with the paper's exact fault values
  // (which our reconstructed feedback-biased wiring renders unobservable —
  // the shift they induce at the probes is <0.1%, below any tolerance
  // band; see EXPERIMENTS.md E3) and once scaled to the smallest deviation
  // this topology makes observable, which exercises the same partial-
  // conflict mechanism the paper's rows demonstrate.
  static const std::vector<Row> kRows = {
      {"Short circuit on R2",
       {Fault::shortCircuit("R2")},
       "{R1,R2,R3,T1} => {R2}"},
      {"R2 slightly high (12.18k, paper value)",
       {Fault::paramExact("R2", 12.18)},
       "{R2} via Dc ~ 0.89"},
      {"R2 slightly high (14.4k, observable-scaled)",
       {Fault::paramExact("R2", 14.4)},
       "{R2} via Dc ~ 0.89"},
      {"Beta2 slightly low (194, paper value)",
       {Fault::paramExact("T2", 194.0)},
       "{T2} via Dc ~ 0.96"},
      {"Beta2 low (60, observable-scaled)",
       {Fault::paramExact("T2", 60.0)},
       "{T2} via Dc ~ 0.96"},
      {"Open circuit on R3", {Fault::open("R3")}, "{R2} {R3} via Dc signs"},
      {"Open circuit in N1",
       {Fault::pinOpen("T1", 1)},
       "{T2},{R4} / transistor model, V1 decisive"},
  };
  return kRows;
}

void printFig7Table() {
  std::cout << std::fixed << std::setprecision(3);
  std::cout << "==== E3 / Fig. 7: experimental results on the 3-stage "
               "amplifier ====\n";
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto nominal = circuit::DcSolver(net).solve();
  std::cout << "nominal: V1 = " << nominal.v(net.findNode("V1"))
            << ", V2 = " << nominal.v(net.findNode("V2"))
            << ", Vs = " << nominal.v(net.findNode("Vs")) << " (V)\n\n";

  for (const Row& row : rows()) {
    std::cout << "DEFECT: " << row.defect
              << "   [paper: " << row.paperDiagnosis << "]\n";
    std::vector<workload::ProbeReading> readings;
    try {
      readings =
          workload::simulateMeasurements(net, row.faults, {"V1", "V2", "Vs"});
    } catch (const std::exception& e) {
      std::cout << "  unsolvable faulted circuit: " << e.what() << "\n\n";
      continue;
    }
    diagnosis::FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto report = engine.diagnose();

    std::cout << "  Dc:";
    for (const auto& m : report.measurements) {
      std::cout << "  " << m.quantity << " = " << m.signedDc;
    }
    std::cout << "\n  nogoods:";
    for (const auto& ng : report.nogoods) {
      std::cout << "  " << diagnosis::renderComponents(ng.components) << '('
                << ng.degree << ')';
    }
    std::cout << "\n  candidates (refined):";
    std::size_t shown = 0;
    for (const auto& c : report.candidates) {
      if (++shown > 4) break;
      std::cout << "  " << diagnosis::renderComponents(c.components) << '('
                << c.plausibility << ')';
    }
    std::cout << "\n  => " << diagnosis::summarizeReport(report) << "\n\n";
  }
}

void BM_Fig7FullDiagnosis(benchmark::State& state) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto& row = rows()[static_cast<std::size_t>(state.range(0))];
  const auto readings =
      workload::simulateMeasurements(net, row.faults, {"V1", "V2", "Vs"});
  for (auto _ : state) {
    diagnosis::FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    benchmark::DoNotOptimize(engine.diagnose());
  }
  state.SetLabel(row.defect);
}
BENCHMARK(BM_Fig7FullDiagnosis)->DenseRange(0, 6);

void BM_Fig7PropagationOnly(benchmark::State& state) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  const auto readings = workload::simulateMeasurements(
      net, {Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  for (auto _ : state) {
    constraints::Propagator p(built.model);
    for (const auto& r : readings) {
      p.addMeasurement(built.voltage(r.node),
                       fuzzy::FuzzyInterval::about(r.volts, 0.05));
    }
    p.run();
    benchmark::DoNotOptimize(p.nogoods().size());
  }
}
BENCHMARK(BM_Fig7PropagationOnly);

// Same propagation with provenance recording on — the arena-backed log is
// reused across iterations so the benchmark measures the recording cost, not
// first-touch allocation. Paired with BM_Fig7PropagationOnly this is the
// overhead budget check (DESIGN.md §10: enabled single-digit %, disabled
// indistinguishable from baseline).
void BM_Fig7PropagationOnlyProvenance(benchmark::State& state) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  const auto readings = workload::simulateMeasurements(
      net, {Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  constraints::ProvenanceLog log;
  for (auto _ : state) {
    log.clear();
    constraints::PropagatorOptions opts;
    opts.provenance = &log;
    constraints::Propagator p(built.model, opts);
    for (const auto& r : readings) {
      p.addMeasurement(built.voltage(r.node),
                       fuzzy::FuzzyInterval::about(r.volts, 0.05));
    }
    p.run();
    benchmark::DoNotOptimize(log.entries().size());
  }
}
BENCHMARK(BM_Fig7PropagationOnlyProvenance);

void BM_Fig7ModelBuild(benchmark::State& state) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraints::buildDiagnosticModel(net));
  }
}
BENCHMARK(BM_Fig7ModelBuild);

}  // namespace

int main(int argc, char** argv) {
  printFig7Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
