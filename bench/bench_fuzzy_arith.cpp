// E7 — fuzzy-arithmetic microbenchmarks: the primitive operation costs that
// everything else is built on (add/sub closed-form, mul/div via cuts, exact
// piecewise-linear Dc, entropy terms).
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "fuzzy/consistency.h"
#include "fuzzy/entropy.h"
#include "fuzzy/fuzzy_interval.h"

namespace {

using namespace flames::fuzzy;

std::vector<FuzzyInterval> randomIntervals(std::size_t n, unsigned seed,
                                           double lo, double hi) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> mid(lo, hi);
  std::uniform_real_distribution<double> w(0.0, 1.0);
  std::vector<FuzzyInterval> out;
  for (std::size_t i = 0; i < n; ++i) {
    const double m = mid(rng);
    out.emplace_back(m, m + w(rng), w(rng), w(rng));
  }
  return out;
}

void BM_Add(benchmark::State& state) {
  const auto xs = randomIntervals(256, 1, -10, 10);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs[i % 256].add(xs[(i + 7) % 256]));
    ++i;
  }
}
BENCHMARK(BM_Add);

void BM_Sub(benchmark::State& state) {
  const auto xs = randomIntervals(256, 2, -10, 10);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs[i % 256].sub(xs[(i + 7) % 256]));
    ++i;
  }
}
BENCHMARK(BM_Sub);

void BM_Mul(benchmark::State& state) {
  const auto xs = randomIntervals(256, 3, -10, 10);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs[i % 256].mul(xs[(i + 7) % 256]));
    ++i;
  }
}
BENCHMARK(BM_Mul);

void BM_Div(benchmark::State& state) {
  const auto xs = randomIntervals(256, 4, 1.0, 10.0);  // positive
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs[i % 256].div(xs[(i + 7) % 256]));
    ++i;
  }
}
BENCHMARK(BM_Div);

void BM_Membership(benchmark::State& state) {
  const auto xs = randomIntervals(256, 5, -10, 10);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(xs[i % 256].membership(0.0));
    ++i;
  }
}
BENCHMARK(BM_Membership);

void BM_DcOverlapping(benchmark::State& state) {
  const auto a = FuzzyInterval::about(3.1, 0.4);
  const auto b = FuzzyInterval::about(3.0, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(degreeOfConsistency(a, b));
  }
}
BENCHMARK(BM_DcOverlapping);

void BM_DcDisjoint(benchmark::State& state) {
  const auto a = FuzzyInterval::about(1.0, 0.1);
  const auto b = FuzzyInterval::about(9.0, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(degreeOfConsistency(a, b));
  }
}
BENCHMARK(BM_DcDisjoint);

void BM_PossibilityOfEquality(benchmark::State& state) {
  const auto a = FuzzyInterval::about(3.0, 0.5);
  const auto b = FuzzyInterval::about(3.6, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.possibilityOfEquality(b));
  }
}
BENCHMARK(BM_PossibilityOfEquality);

void BM_Necessity(benchmark::State& state) {
  const auto a = FuzzyInterval::about(3.0, 0.5);
  const auto b = FuzzyInterval::about(3.6, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(necessity(a, b));
  }
}
BENCHMARK(BM_Necessity);

void BM_EntropyTermTied(benchmark::State& state) {
  const auto f = FuzzyInterval(0.3, 0.5, 0.1, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(entropyTerm(f, EntropyTermSemantics::kTied));
  }
}
BENCHMARK(BM_EntropyTermTied);

void BM_EntropyTermIndependent(benchmark::State& state) {
  const auto f = FuzzyInterval(0.3, 0.5, 0.1, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        entropyTerm(f, EntropyTermSemantics::kIndependent));
  }
}
BENCHMARK(BM_EntropyTermIndependent);

void BM_Centroid(benchmark::State& state) {
  const auto f = FuzzyInterval(1.0, 2.0, 0.5, 1.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.centroid());
  }
}
BENCHMARK(BM_Centroid);

}  // namespace

BENCHMARK_MAIN();
