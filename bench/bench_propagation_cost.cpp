// E5 — propagation cost: fuzzy vs crisp constraint propagation over growing
// synthetic circuits. Expected shape: fuzzy within a small constant factor
// of crisp (the paper's claim that fuzzy intervals "avoid possible
// explosions" rather than causing them).
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <iostream>

#include "constraints/model_builder.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;

void runOnce(const circuit::Netlist& net, constraints::ConflictPolicy policy,
             bool crispify, std::size_t& steps, std::size_t& nogoods) {
  const auto built = constraints::buildDiagnosticModel(net);
  const auto probes = workload::tapsOf(net);
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::paramScale(net.components().back().name, 1.4)},
      probes);
  constraints::PropagatorOptions opts;
  opts.policy = policy;
  opts.crispifyValues = crispify;
  constraints::Propagator p(built.model, opts);
  for (const auto& r : readings) {
    p.addMeasurement(built.voltage(r.node),
                     fuzzy::FuzzyInterval::about(r.volts, 0.02));
  }
  p.run();
  steps = p.steps();
  nogoods = p.nogoods().size();
}

void printCostTable() {
  std::cout << "==== E5: propagation steps, fuzzy vs crisp, divider "
               "cascades ====\n";
  std::cout << "stages | fuzzy steps | fuzzy nogoods | crisp steps | crisp "
               "nogoods\n";
  for (std::size_t stages : {2u, 4u, 8u, 16u}) {
    const auto net = workload::dividerCascade(stages);
    std::size_t fs = 0, fn = 0, cs = 0, cn = 0;
    runOnce(net, constraints::ConflictPolicy::kFuzzy, false, fs, fn);
    runOnce(net, constraints::ConflictPolicy::kCrisp, true, cs, cn);
    std::cout << "  " << stages << " | " << fs << " | " << fn << " | " << cs
              << " | " << cn << '\n';
  }
  std::cout << '\n';
}

void BM_FuzzyPropagation(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::dividerCascade(stages);
  const auto built = constraints::buildDiagnosticModel(net);
  const auto probes = workload::tapsOf(net);
  const auto readings = workload::simulateMeasurements(net, {}, probes);
  for (auto _ : state) {
    constraints::Propagator p(built.model);
    for (const auto& r : readings) {
      p.addMeasurement(built.voltage(r.node),
                       fuzzy::FuzzyInterval::about(r.volts, 0.02));
    }
    p.run();
    benchmark::DoNotOptimize(p.steps());
  }
  state.SetLabel(std::to_string(stages) + " stages");
}
BENCHMARK(BM_FuzzyPropagation)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_CrispPropagation(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::dividerCascade(stages);
  const auto built = constraints::buildDiagnosticModel(net);
  const auto probes = workload::tapsOf(net);
  const auto readings = workload::simulateMeasurements(net, {}, probes);
  constraints::PropagatorOptions opts;
  opts.policy = constraints::ConflictPolicy::kCrisp;
  opts.crispifyValues = true;
  for (auto _ : state) {
    constraints::Propagator p(built.model, opts);
    for (const auto& r : readings) {
      p.addMeasurement(built.voltage(r.node),
                       fuzzy::FuzzyInterval::about(r.volts, 0.02));
    }
    p.run();
    benchmark::DoNotOptimize(p.steps());
  }
  state.SetLabel(std::to_string(stages) + " stages");
}
BENCHMARK(BM_CrispPropagation)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ModelBuildScaling(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::dividerCascade(stages);
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraints::buildDiagnosticModel(net));
  }
}
BENCHMARK(BM_ModelBuildScaling)->Arg(2)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  printCostTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
