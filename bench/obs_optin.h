// Opt-in observability for the bench suite.
//
// Set FLAMES_OBS=1 in the environment to enable the flames::obs counter
// layer for the whole bench run and print the counter/histogram summary on
// exit; set FLAMES_OBS=2 to additionally record pipeline spans and write
// them to flames_bench.trace.json. Leaving the variable unset benchmarks
// the disabled-instrumentation fast path (the production default).
#pragma once

#include <cstdlib>
#include <iostream>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace flames::benchsupport {

inline void printObsSummary() {
  std::cout << obs::renderMetrics() << std::flush;
  if (obs::tracingEnabled()) {
    const char* path = "flames_bench.trace.json";
    obs::writeChromeTraceFile(path);
    std::cout << "trace written to " << path << " ("
              << obs::Tracer::global().size() << " spans)\n";
  }
}

struct ObsOptIn {
  ObsOptIn() {
    const char* v = std::getenv("FLAMES_OBS");
    if (v == nullptr || *v == '\0' || *v == '0') return;
    obs::setEnabled(true);
    if (*v == '2') obs::setTracing(true);
    std::atexit(printObsSummary);
  }
};

}  // namespace flames::benchsupport

namespace {
[[maybe_unused]] const flames::benchsupport::ObsOptIn kObsOptIn;
}  // namespace
