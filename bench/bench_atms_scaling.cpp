// E4 — ATMS scaling: label propagation cost and candidate-space explosion
// vs the ranked-nogood restriction. The paper argues the fuzzy ranking
// "restricts the effect of explosion"; the table shows the candidate counts
// at each lambda cut while the raw (crisp) count grows combinatorially.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <iostream>
#include <random>

#include "atms/atms.h"
#include "atms/candidates.h"

namespace {

using namespace flames::atms;

// Synthetic fuzzy nogood DB: `components` assumptions; each nogood picks
// `arity` of them; degrees alternate between partial and hard.
NogoodDb makeDb(std::size_t components, std::size_t conflicts,
                std::size_t arity, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<AssumptionId> pick(
      0, static_cast<AssumptionId>(components - 1));
  std::uniform_real_distribution<double> deg(0.0, 1.0);
  NogoodDb db;
  for (std::size_t i = 0; i < conflicts; ++i) {
    Environment e;
    while (e.size() < arity) e.insert(pick(rng));
    const double d = deg(rng);
    db.add(e, d < 0.5 ? 0.3 : (d < 0.8 ? 0.7 : 1.0));
  }
  return db;
}

void printExplosionTable() {
  std::cout << "==== E4: candidate explosion vs lambda-cut restriction ====\n";
  std::cout << "components | conflicts | cands(l=0.1) | cands(l=0.7) | "
               "cands(l=1.0)\n";
  for (std::size_t comps : {8u, 16u, 32u, 64u}) {
    const std::size_t conflicts = comps / 2;
    const NogoodDb db = makeDb(comps, conflicts, 3, 42);
    // Unbounded cardinality within the conflict count; candidate counts are
    // what explodes, the lambda cuts are what reins them in.
    const auto all = candidatesAt(db, 0.1, conflicts, 200000);
    const auto mid = candidatesAt(db, 0.7, conflicts, 200000);
    const auto hard = candidatesAt(db, 1.0, conflicts, 200000);
    std::cout << "  " << comps << " | " << conflicts << " | " << all.size()
              << " | " << mid.size() << " | " << hard.size() << '\n';
  }
  std::cout << "(shape: the full candidate set grows combinatorially; the "
               "hard / high-lambda cuts stay small)\n\n";
}

void BM_AtmsLabelPropagation(benchmark::State& state) {
  // A chain of justifications fanning in assumptions: classic ATMS load.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Atms atms;
    std::vector<NodeId> assumptions;
    for (std::size_t i = 0; i < n; ++i) {
      assumptions.push_back(atms.addAssumption("a" + std::to_string(i)));
    }
    NodeId prev = assumptions[0];
    for (std::size_t i = 1; i < n; ++i) {
      const NodeId node = atms.addNode("n" + std::to_string(i));
      atms.justify({prev, assumptions[i]}, node);
      prev = node;
    }
    benchmark::DoNotOptimize(atms.label(prev).size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AtmsLabelPropagation)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_AtmsDiamondLabels(benchmark::State& state) {
  // Diamond chains create multi-environment labels: minimality stress.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Atms atms;
    NodeId prev = atms.addAssumption("seed");
    for (std::size_t i = 0; i < n; ++i) {
      const NodeId a = atms.addAssumption("a" + std::to_string(i));
      const NodeId b = atms.addAssumption("b" + std::to_string(i));
      const NodeId join = atms.addNode("j" + std::to_string(i));
      atms.justify({prev, a}, join);
      atms.justify({prev, b}, join);
      prev = join;
    }
    benchmark::DoNotOptimize(atms.label(prev).size());
  }
}
BENCHMARK(BM_AtmsDiamondLabels)->Arg(2)->Arg(4)->Arg(8);

void BM_NogoodSubsumption(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::mt19937 rng(7);
  std::uniform_int_distribution<AssumptionId> pick(0, 63);
  std::vector<Environment> envs;
  for (std::size_t i = 0; i < n; ++i) {
    Environment e;
    while (e.size() < 3) e.insert(pick(rng));
    envs.push_back(e);
  }
  for (auto _ : state) {
    NogoodDb db;
    for (const auto& e : envs) db.add(e, 1.0);
    benchmark::DoNotOptimize(db.size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NogoodSubsumption)->Arg(16)->Arg(64)->Arg(256);

void BM_MinimalHittingSets(benchmark::State& state) {
  const auto comps = static_cast<std::size_t>(state.range(0));
  const NogoodDb db = makeDb(comps, comps, 3, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(candidatesAt(db, 0.1, 4, 50000));
  }
}
BENCHMARK(BM_MinimalHittingSets)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  printExplosionTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
