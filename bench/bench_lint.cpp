// bench_lint — cost of the static-analysis pass relative to the work it
// gates.
//
// The lint design promises two budgets:
//   * cold model build: the L1/L3/L4 gate inside buildDiagnosticModel adds
//     under 5% on top of the MNA solve + sensitivity sweep it protects
//     (compare ModelBuild/gated vs ModelBuild/ungated);
//   * cache hit: zero added work — the report is computed once per compiled
//     unit type, so the per-job lint cost in the service steady state is the
//     netlist-level pass at submit only (LintNetlist/* shows its absolute
//     cost, microseconds against the millisecond-scale diagnosis).
// L6 is benchmarked separately (LintModelWithSigns) because its bump
// simulations are deliberately excluded from both hot paths.
#include <benchmark/benchmark.h>

#include "circuit/catalog.h"
#include "constraints/model_builder.h"
#include "diagnosis/deviation_analysis.h"
#include "diagnosis/knowledge_base.h"
#include "lint/model_lint.h"
#include "workload/generators.h"

namespace {

using namespace flames;

void BM_LintNetlist_Fig6Amp(benchmark::State& state) {
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::lintNetlist(net));
  }
}
BENCHMARK(BM_LintNetlist_Fig6Amp);

void BM_LintNetlist_Ladder(benchmark::State& state) {
  const circuit::Netlist net =
      workload::resistorLadder(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::lintNetlist(net));
  }
}
BENCHMARK(BM_LintNetlist_Ladder)->Arg(4)->Arg(16)->Arg(64);

void BM_ModelBuild_Fig6Amp(benchmark::State& state) {
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  constraints::ModelBuildOptions opts;
  opts.lintBeforeBuild = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(constraints::buildDiagnosticModel(net, opts));
  }
}
BENCHMARK(BM_ModelBuild_Fig6Amp)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("gated");

void BM_LintModel_Fig6Amp(benchmark::State& state) {
  // The compile-cache pass: L1-L5, no signs. This is what every cold
  // CompiledModel pays once.
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  diagnosis::KnowledgeBase kb;
  diagnosis::addTransistorRegionRules(kb, net, built);
  lint::ModelLintInputs inputs;
  inputs.netlist = &net;
  inputs.built = &built;
  inputs.kb = &kb;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::lintModel(inputs));
  }
}
BENCHMARK(BM_LintModel_Fig6Amp);

void BM_LintModelWithSigns_Fig6Amp(benchmark::State& state) {
  // The audit-surface pass including the L6 diagnosability check; the sign
  // matrix is prebuilt here, as on the real audit path (CLI --lint), so
  // this measures the column comparison, not the bump simulations.
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto built = constraints::buildDiagnosticModel(net);
  const diagnosis::SensitivitySigns signs(net);
  lint::ModelLintInputs inputs;
  inputs.netlist = &net;
  inputs.built = &built;
  inputs.signs = &signs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lint::lintModel(inputs));
  }
}
BENCHMARK(BM_LintModelWithSigns_Fig6Amp);

}  // namespace

BENCHMARK_MAIN();
