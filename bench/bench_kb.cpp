// bench_kb — hot paths of the durable experience store (src/kb) and the
// signature-index A/B inside ExperienceBase::match.
//
// The table up front is the headline learning claim: with
// FlamesOptions::hintGuidedPropagation on, a warmed KB clamps the
// propagation entry cap on repeat sessions, so the second encounter of a
// known failure costs measurably fewer propagation steps than the first.
//
// BM_KbMatch{Indexed,Linear} pit the quantity-key bucket index against the
// legacy linear scan at 16/128/1024 rules whose quantity sets are distinct
// (the regime the index exists for: the probe's bucket holds O(1) rules
// while the scan still walks all N). BM_KbRecordSuccess / BM_KbCompaction /
// BM_KbMerge price the durable operations end to end, WAL fsync-less
// append through snapshot rewrite.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "circuit/catalog.h"
#include "circuit/fault.h"
#include "diagnosis/flames.h"
#include "diagnosis/learning.h"
#include "kb/store.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;
namespace fs = std::filesystem;

// --- headline table: hint-guided propagation on a warmed KB ---

void printWarmKbTable() {
  // A ladder with many taps: every measurement feeds every divider
  // constraint, so quantities accumulate enough value entries for the
  // per-quantity cap to be the binding resource. The small Fig. 6 amp
  // never fills the default cap of 24 and would show no delta.
  std::cout << "==== warmed-KB hint-guided propagation (8-section ladder) "
               "====\n";
  const auto net = workload::resistorLadder(8);
  const auto probes = workload::tapsOf(net, "t");
  diagnosis::FlamesOptions fopts;
  fopts.hintGuidedPropagation = true;

  const std::vector<std::pair<circuit::Fault, const char*>> faults = {
      {circuit::Fault::shortCircuit("Rs2"), "short"},
      {circuit::Fault::open("Rp3"), "open"},
  };
  for (const auto& [fault, mode] : faults) {
    const auto readings = workload::simulateMeasurements(net, {fault}, probes);
    diagnosis::FlamesEngine engine(net, fopts);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto cold = engine.diagnose();
    engine.confirm(cold, fault.component, mode);

    engine.clearMeasurements();
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto warm = engine.diagnose();
    std::cout << "  " << fault.component << ' ' << mode << ": cold "
              << cold.propagationSteps << " steps -> warm "
              << warm.propagationSteps << " steps (guided: "
              << (warm.hintGuided ? "yes" : "no") << ")\n";
  }
  std::cout << "(shape: the confirmed rule clamps the entry cap, so the "
               "repeat session is a confirmation pass)\n\n";
}

// --- signature-index A/B ---

/// N rules, each keyed on its own quantity, plus one shared probe bucket.
diagnosis::ExperienceBase basesWithRules(std::size_t n, bool indexed) {
  diagnosis::LearningOptions opts;
  opts.useSignatureIndex = indexed;
  diagnosis::ExperienceBase eb(opts);
  for (std::size_t i = 0; i < n; ++i) {
    eb.recordSuccess({{"V(n" + std::to_string(i) + ")", -0.5, -1},
                      {"V(Vs)", 0.5, 1}},
                     "C" + std::to_string(i), "open");
  }
  // The bucket the probe lands in.
  eb.recordSuccess({{"V(V1)", -0.4, -1}, {"V(Vs)", 0.4, 1}}, "R2", "short");
  return eb;
}

void benchMatch(benchmark::State& state, bool indexed) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const diagnosis::ExperienceBase eb = basesWithRules(n, indexed);
  const std::vector<diagnosis::Symptom> probe = {{"V(V1)", -0.5, -1},
                                                 {"V(Vs)", 0.5, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eb.match(probe));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

void BM_KbMatchIndexed(benchmark::State& state) { benchMatch(state, true); }
BENCHMARK(BM_KbMatchIndexed)->Arg(16)->Arg(128)->Arg(1024);

void BM_KbMatchLinear(benchmark::State& state) { benchMatch(state, false); }
BENCHMARK(BM_KbMatchLinear)->Arg(16)->Arg(128)->Arg(1024);

// --- durable store operations ---

struct TempKbDir {
  fs::path dir;
  explicit TempKbDir(const char* tag)
      : dir(fs::temp_directory_path() / (std::string("flames_bench_kb_") +
                                         tag)) {
    fs::remove_all(dir);
  }
  ~TempKbDir() { fs::remove_all(dir); }
};

kb::KbOptions durableOptions(const TempKbDir& t) {
  kb::KbOptions ko;
  ko.dir = t.dir.string();
  ko.origin = "bench";
  ko.snapshotEveryEvents = 0;  // compaction is measured separately
  return ko;
}

std::vector<diagnosis::Symptom> benchSignature(std::size_t i) {
  return {{"V(n" + std::to_string(i % 97) + ")",
           -1.0 + static_cast<double>(i % 9) / 4.0, 1},
          {"V(Vs)", 0.5, 1}};
}

void BM_KbRecordSuccess(benchmark::State& state) {
  const TempKbDir t("record");
  kb::KbStore store(durableOptions(t));
  std::size_t i = 0;
  for (auto _ : state) {
    store.recordSuccess(benchSignature(i), "C" + std::to_string(i % 97),
                        "open");
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
}
BENCHMARK(BM_KbRecordSuccess);

void BM_KbCompaction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TempKbDir t("compact");
  kb::KbStore store(durableOptions(t));
  for (std::size_t i = 0; i < n; ++i) {
    store.recordSuccess(benchSignature(i), "C" + std::to_string(i), "open");
  }
  for (auto _ : state) {
    store.compact();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KbCompaction)->Arg(16)->Arg(128);

void BM_KbMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const TempKbDir tPeer("merge_peer");
  kb::KbOptions peerOpts = durableOptions(tPeer);
  peerOpts.dir.clear();  // in-memory peer: we measure the merge, not its IO
  peerOpts.origin = "bench-peer";
  kb::KbStore peer(peerOpts);
  for (std::size_t i = 0; i < n; ++i) {
    peer.recordSuccess(benchSignature(i), "C" + std::to_string(i), "open");
  }
  const std::string payload = peer.serialize();

  kb::KbOptions mineOpts = peerOpts;
  mineOpts.origin = "bench";
  kb::KbStore mine(mineOpts);
  for (auto _ : state) {
    mine.mergeState(payload);  // idempotent join: steady-state re-merge cost
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_KbMerge)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  printWarmKbTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
