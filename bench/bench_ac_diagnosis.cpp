// E9 — dynamic-mode diagnosis: detection/isolation accuracy and cost on RC
// filter chains (the paper reports dynamic-mode trials without numbers; this
// bench supplies the table a release would need).
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <numbers>

#include "circuit/ac.h"
#include "circuit/fault.h"
#include "diagnosis/ac_diagnosis.h"
#include "workload/generators.h"

namespace {

using namespace flames;
using circuit::Fault;
using diagnosis::AcDiagnosisEngine;
using diagnosis::AcProbe;

// Probes per stage: below / at / above each section's corner frequency.
std::vector<AcProbe> probesFor(std::size_t stages, double spacing) {
  std::vector<AcProbe> probes;
  double farads = 1.0;
  for (std::size_t i = 1; i <= stages; ++i) {
    const double fc = 1.0 / (2.0 * std::numbers::pi * 1.0 * farads);
    probes.push_back({"t" + std::to_string(i), fc});
    probes.push_back({"t" + std::to_string(i), fc * 5.0});
    farads /= spacing;
  }
  return probes;
}

void printAccuracyTable() {
  std::cout << "==== E9: dynamic-mode (AC) diagnosis accuracy on RC "
               "chains ====\n";
  std::cout << "stages | faults tried | detected | culprit in top-2\n";
  for (std::size_t stages : {2u, 3u, 4u}) {
    const auto net = workload::rcFilterChain(stages);
    const auto probes = probesFor(stages, 4.0);
    std::size_t tried = 0, detected = 0, isolated = 0;
    for (std::size_t i = 1; i <= stages; ++i) {
      for (const char* kind : {"open", "short"}) {
        for (const char* comp : {"R", "C"}) {
          const std::string name = comp + std::to_string(i);
          const Fault f = std::string(kind) == "open"
                              ? Fault::open(name)
                              : Fault::shortCircuit(name);
          // A shorted series resistor barely changes a buffered RC corner;
          // skip the near-unobservable combinations like the paper skips
          // untestable faults.
          circuit::Netlist faulted = circuit::applyFaults(net, {f});
          std::unique_ptr<circuit::AcSolver> bench;
          try {
            bench = std::make_unique<circuit::AcSolver>(faulted);
          } catch (const std::runtime_error&) {
            continue;
          }
          ++tried;
          AcDiagnosisEngine engine(net, "Vin", probes);
          for (const AcProbe& p : probes) {
            engine.measure(p.node, p.hertz,
                           bench->gainMagnitude(p.hertz, "Vin", p.node));
          }
          const auto report = engine.diagnose();
          if (!report.faultDetected()) continue;
          ++detected;
          const std::size_t top =
              std::min<std::size_t>(2, report.candidates.size());
          bool found = false;
          for (std::size_t k = 0; k < top; ++k) {
            for (const auto& c : report.candidates[k].components) {
              if (c == name) found = true;
            }
          }
          if (found) ++isolated;
        }
      }
    }
    std::cout << "  " << stages << " | " << tried << " | " << detected
              << " | " << isolated << '\n';
  }
  std::cout << "(shape: every hard reactive/resistive fault shifts a corner "
               "frequency, so the per-stage probe pairs detect and isolate "
               "all of them)\n\n";
}

void BM_AcModelBuild(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::rcFilterChain(stages);
  const auto probes = probesFor(stages, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AcDiagnosisEngine(net, "Vin", probes));
  }
}
BENCHMARK(BM_AcModelBuild)->Arg(2)->Arg(4)->Arg(8);

void BM_AcDiagnose(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::rcFilterChain(stages);
  const auto probes = probesFor(stages, 4.0);
  const auto faulted = circuit::applyFaults(net, {Fault::open("C1")});
  const circuit::AcSolver bench(faulted);
  AcDiagnosisEngine engine(net, "Vin", probes);
  for (const AcProbe& p : probes) {
    engine.measure(p.node, p.hertz,
                   bench.gainMagnitude(p.hertz, "Vin", p.node));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.diagnose());
  }
}
BENCHMARK(BM_AcDiagnose)->Arg(2)->Arg(4)->Arg(8);

void BM_AcSolve(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::rcFilterChain(stages);
  const circuit::AcSolver solver(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.gainMagnitude(
        1.0, "Vin", "t" + std::to_string(stages)));
  }
}
BENCHMARK(BM_AcSolve)->Arg(2)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  printAccuracyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
