// Scenario-harness scaling: end-to-end diagnosis cost on *generated*
// circuits as the topology grows, per family. bench_atms_scaling measures
// the candidate-space explosion on synthetic nogood databases; this bench
// drives the same question through the whole pipeline — netlist generation,
// bench simulation, fuzzy propagation, conflict recording, hitting sets,
// fault-mode refinement — exactly as the fuzzer's oracle runs it.
//
// The propagation-entry cap is the lever that keeps mesh families tractable
// (see scenario::defaultOracleFlamesOptions); BM_BridgeEntryCap sweeps it on
// a fixed bridge so the cubic per-step cost is visible in one table.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <string>

#include "scenario/oracle.h"
#include "scenario/scenario.h"
#include "scenario/topology.h"
#include "workload/rng.h"

namespace {

using namespace flames;

// One observable scenario of the given family/depth: resample value seeds
// until the observability gate passes, exactly like the harness does.
scenario::Scenario scenarioFor(scenario::Family family, std::size_t depth) {
  scenario::GeneratorOptions opts;
  opts.topology.families = {family};
  opts.topology.minDepth = depth;
  opts.topology.maxDepth = depth;
  return scenario::sampleScenario(
      workload::deriveSeed(1, static_cast<std::uint64_t>(depth)), opts);
}

void runDiagnosis(benchmark::State& state, scenario::Family family) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const scenario::Scenario s = scenarioFor(family, depth);
  const auto net = scenario::buildNetlist(s);
  std::size_t candidates = 0;
  for (auto _ : state) {
    const scenario::OracleResult r = scenario::runOracle(s);
    candidates = r.report.candidates.size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["components"] =
      static_cast<double>(net.components().size());
  state.counters["candidates"] = static_cast<double>(candidates);
}

void BM_LadderDiagnosis(benchmark::State& state) {
  runDiagnosis(state, scenario::Family::kLadder);
}
BENCHMARK(BM_LadderDiagnosis)->Arg(2)->Arg(4)->Arg(8)->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_DividerDiagnosis(benchmark::State& state) {
  runDiagnosis(state, scenario::Family::kDivider);
}
BENCHMARK(BM_DividerDiagnosis)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_BridgeDiagnosis(benchmark::State& state) {
  runDiagnosis(state, scenario::Family::kBridge);
}
BENCHMARK(BM_BridgeDiagnosis)->Arg(2)->Arg(3)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_AmpChainDiagnosis(benchmark::State& state) {
  runDiagnosis(state, scenario::Family::kAmpChain);
}
BENCHMARK(BM_AmpChainDiagnosis)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The mesh pathology in isolation: one bridge scenario, rising entry cap.
// Beyond ~8 the per-step coincidence work dominates everything else in the
// pipeline; this is the regression canary for the oracle's budget choice.
void BM_BridgeEntryCap(benchmark::State& state) {
  const scenario::Scenario s = scenarioFor(scenario::Family::kBridge, 3);
  scenario::OracleOptions opts;
  opts.flames.propagation.maxEntriesPerQuantity =
      static_cast<std::size_t>(state.range(0));
  std::size_t steps = 0;
  for (auto _ : state) {
    const scenario::OracleResult r = scenario::runOracle(s, opts);
    steps = r.report.propagationSteps;
    benchmark::DoNotOptimize(r);
  }
  state.counters["steps"] = static_cast<double>(steps);
}
BENCHMARK(BM_BridgeEntryCap)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Generation alone (no diagnosis): the harness-side overhead per scenario.
void BM_SampleScenario(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario::sampleScenario(workload::deriveSeed(2, i++)));
  }
}
BENCHMARK(BM_SampleScenario)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
