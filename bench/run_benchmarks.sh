#!/usr/bin/env sh
# Runs the whole bench suite and collects the results into one
# BENCH_<date>.json, so successive runs can be diffed for regressions.
#
# Usage: bench/run_benchmarks.sh [--filter=<regex>] [build-dir] [output.json]
#
#   --filter=R   passed to every bench binary as --benchmark_filter=R;
#                binaries whose benchmarks all filter out are skipped in
#                the merged output
#   build-dir    directory holding the bench binaries (default: build)
#   output.json  merged output file (default: BENCH_<yyyy-mm-dd>.json)
#
# Each binary runs with --benchmark_format=json; the merged file maps
# bench name -> that run's full Google Benchmark JSON document. Set
# FLAMES_OBS=1 (or 2) to benchmark the instrumented paths instead of the
# disabled-observability default.
set -eu

filter=
case "${1:-}" in
  --filter=*) filter=${1#--filter=}; shift ;;
esac

build_dir=${1:-build}
out=${2:-BENCH_$(date +%F).json}
bench_dir=$build_dir/bench

if [ ! -d "$bench_dir" ]; then
  echo "error: no bench binaries under $bench_dir (build the project first)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

found=0
for bin in "$bench_dir"/bench_*; do
  [ -x "$bin" ] || continue
  found=1
  name=$(basename "$bin")
  echo "== $name"
  if [ -n "$filter" ]; then
    "$bin" --benchmark_format=json "--benchmark_filter=$filter" \
      >"$tmp/$name.json"
  else
    "$bin" --benchmark_format=json >"$tmp/$name.json"
  fi
done

if [ "$found" = 0 ]; then
  echo "error: no bench_* executables in $bench_dir" >&2
  exit 1
fi

python3 - "$tmp" "$out" "$filter" <<'EOF'
import json, pathlib, sys
tmp, out, flt = sys.argv[1], sys.argv[2], sys.argv[3]
merged = {}
for path in sorted(pathlib.Path(tmp).glob("*.json")):
    text = path.read_text()
    # bench_fig7_diagnosis prints a human-readable table around the JSON
    # document (which may itself contain braces, e.g. candidate sets), so
    # anchor on the document's own delimiters: the first line that is
    # exactly "{" and the last that is exactly "}".
    lines = text.splitlines()
    # A --filter that matches nothing leaves no JSON document at all.
    starts = [i for i, l in enumerate(lines) if l.strip() == "{"]
    if not starts:
        continue
    end = max(i for i, l in enumerate(lines) if l.strip() == "}")
    doc = json.loads("\n".join(lines[starts[0] : end + 1]))
    if not doc.get("benchmarks"):
        continue  # everything filtered out by --filter
    merged[path.stem] = doc
if flt and not merged:
    # A filter that matches nothing is almost always a typo; writing an
    # empty BENCH_*.json would silently poison the regression diff.
    print(f"error: --filter={flt!r} matched no benchmarks; available suites:",
          file=sys.stderr)
    for path in sorted(pathlib.Path(tmp).glob("*.json")):
        print(f"  {path.stem}", file=sys.stderr)
    sys.exit(1)
pathlib.Path(out).write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {out} ({len(merged)} suites)")
EOF
