// Service-layer scaling: batch-diagnosis throughput as the worker pool
// grows from 1 to N on a fixed request stream (cache-warm, one netlist).
// The per-worker counters in the labels confirm the compiled model is
// built at most once per distinct netlist regardless of concurrency.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <memory>
#include <string>
#include <vector>

#include "service/service.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;

struct Stream {
  std::shared_ptr<const circuit::Netlist> net;
  std::vector<workload::TrafficItem> traffic;
};

const Stream& ladderStream() {
  static const Stream s = [] {
    Stream st;
    st.net = std::make_shared<const circuit::Netlist>(
        workload::resistorLadder(4));
    st.traffic = workload::synthesizeTraffic(
        *st.net, workload::tapsOf(*st.net, "t"), 32, 7);
    return st;
  }();
  return s;
}

/// One batch: submit every traffic item, wait for all results.
void runBatch(service::DiagnosisService& svc, const Stream& stream,
              std::size_t* cacheMisses) {
  std::vector<service::JobHandle> handles;
  handles.reserve(stream.traffic.size());
  for (const auto& item : stream.traffic) {
    service::DiagnosisRequest req;
    req.netlist = stream.net;
    for (const auto& r : item.readings) {
      req.measurements.push_back(service::crispMeasurement(r.node, r.volts));
    }
    handles.push_back(svc.submit(req));
  }
  for (const auto& h : handles) {
    benchmark::DoNotOptimize(h->wait().status);
  }
  *cacheMisses = svc.stats().modelCache.misses;
}

/// Throughput of the full submit->diagnose->resolve path at Arg(0) workers.
/// The model cache is warmed before timing so the measurement isolates the
/// concurrent diagnosis pipeline, not the one-off model build.
void BM_ServiceThroughput(benchmark::State& state) {
  const Stream& stream = ladderStream();
  service::ServiceOptions sopts;
  sopts.workers = static_cast<std::size_t>(state.range(0));
  service::DiagnosisService svc(sopts);

  // Warm the compiled-model cache (exactly one build).
  std::size_t misses = 0;
  runBatch(svc, stream, &misses);

  std::size_t batches = 0;
  for (auto _ : state) {
    runBatch(svc, stream, &misses);
    ++batches;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      batches * stream.traffic.size()));
  state.counters["jobs_per_batch"] =
      static_cast<double>(stream.traffic.size());
  // One distinct netlist => at most one build, however many workers raced.
  state.counters["model_builds"] = static_cast<double>(misses);
  state.SetLabel("workers=" + std::to_string(state.range(0)) +
                 " model_builds=" + std::to_string(misses));
}
BENCHMARK(BM_ServiceThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Cost of a model-cache hit: the steady-state lookup on the submit path.
void BM_ModelCacheHit(benchmark::State& state) {
  const Stream& stream = ladderStream();
  service::ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  (void)cache.get(stream.net, opts);  // warm
  for (auto _ : state) {
    bool hit = false;
    benchmark::DoNotOptimize(cache.get(stream.net, opts, &hit));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModelCacheHit);

/// Cost of a model-cache miss: full diagnostic model compilation (MNA
/// solve, constraint emission, KB assembly) for a ladder of Arg(0)
/// sections. This is the latency the cache spares every job but the first.
void BM_ModelCacheMiss(benchmark::State& state) {
  const auto net = std::make_shared<const circuit::Netlist>(
      workload::resistorLadder(static_cast<std::size_t>(state.range(0))));
  diagnosis::FlamesOptions opts;
  for (auto _ : state) {
    service::ModelCache cache(1);
    benchmark::DoNotOptimize(cache.get(net, opts));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ModelCacheMiss)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
