// E10 — ablation of the consistency measure (DESIGN.md "key semantic
// decisions"): paper-literal Dc (normalised by the measured side only) vs
// this library's symmetric extension vs crisp interval overlap.
//
// Protocol: sample healthy and faulted divider-cascade scenarios, compare
// each measured tap against its fuzzy nominal prediction under the three
// rules, and tabulate false-alarm and detection rates. Expected shape:
// the paper-literal rule false-alarms whenever a prediction is *narrower*
// than the meter spread (precisely determined nodes), the crisp rule misses
// soft faults, and the symmetric rule keeps both rates sane.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "constraints/model_builder.h"
#include "fuzzy/consistency.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;
using fuzzy::FuzzyInterval;

// Paper-literal Dc: area(min)/area(Vm) only (with the point extensions).
double paperDc(const FuzzyInterval& vm, const FuzzyInterval& vn) {
  if (vm.area() <= 1e-12) return vn.membership(vm.coreMidpoint());
  if (vn.area() <= 1e-12) return vm.membership(vn.coreMidpoint());
  const auto inter = vm.toPiecewiseLinear().min(vn.toPiecewiseLinear());
  return std::clamp(inter.area() / vm.area(), 0.0, 1.0);
}

bool crispConflict(const FuzzyInterval& vm, const FuzzyInterval& vn) {
  return !vm.supportsOverlap(vn);
}

struct Rates {
  std::size_t flagged = 0;
  std::size_t total = 0;
  [[nodiscard]] double rate() const {
    return total == 0 ? 0.0 : static_cast<double>(flagged) /
                                  static_cast<double>(total);
  }
};

void printAblationTable() {
  std::cout << "==== E10: consistency-rule ablation (divider cascades) ====\n";
  // Stage 1 uses laser-trimmed (0.2%) resistors: its tap prediction is
  // *narrower* than the 0.02 V meter spread, which is precisely the regime
  // where the paper-literal normalisation misreads precision as conflict.
  auto net = workload::dividerCascade(6);
  net.component("Rt1").relTol = 0.002;
  net.component("Rb1").relTol = 0.002;
  const auto built = constraints::buildDiagnosticModel(net);
  auto probes = workload::tapsOf(net);
  probes.push_back("m1");  // the precisely-predicted internal node

  // Nominal predictions per probe.
  std::map<std::string, FuzzyInterval> nominal;
  for (const auto& p : built.model.predictions()) {
    for (const auto& probe : probes) {
      if (p.quantity == built.voltage(probe)) nominal.emplace(probe, p.value);
    }
  }

  const double kThreshold = 0.7;  // Dc below this flags a discrepancy
  Rates paperFa, symFa, crispFa;    // false alarms on healthy boards
  Rates paperDet, symDet, crispDet; // detections on faulted boards

  auto evaluate = [&](const std::vector<circuit::Fault>& faults, Rates& paper,
                      Rates& sym, Rates& crisp) {
    std::vector<workload::ProbeReading> readings;
    try {
      readings = workload::simulateMeasurements(net, faults, probes);
    } catch (const std::runtime_error&) {
      return;
    }
    bool paperFlag = false, symFlag = false, crispFlag = false;
    for (const auto& r : readings) {
      const auto vm = FuzzyInterval::about(r.volts, 0.02);
      const auto& vn = nominal.at(r.node);
      if (paperDc(vm, vn) < kThreshold) paperFlag = true;
      if (fuzzy::degreeOfConsistency(vm, vn).dc < kThreshold) symFlag = true;
      if (crispConflict(vm, vn)) crispFlag = true;
    }
    ++paper.total;
    ++sym.total;
    ++crisp.total;
    if (paperFlag) ++paper.flagged;
    if (symFlag) ++sym.flagged;
    if (crispFlag) ++crisp.flagged;
  };

  // Healthy boards (component values randomly inside tolerance).
  workload::ScenarioOptions healthyOpts;
  healthyOpts.includeOpens = false;
  healthyOpts.includeShorts = false;
  healthyOpts.softFactors = {1.001, 0.999};  // inside every tolerance band
  for (const auto& s : workload::sampleScenarios(net, 30, 11, healthyOpts)) {
    evaluate(s.faults, paperFa, symFa, crispFa);
  }

  // Faulted boards: soft deviations well outside tolerance.
  workload::ScenarioOptions faultyOpts;
  faultyOpts.includeOpens = false;
  faultyOpts.includeShorts = false;
  faultyOpts.softFactors = {1.3, 0.7};
  for (const auto& s : workload::sampleScenarios(net, 30, 23, faultyOpts)) {
    evaluate(s.faults, paperDet, symDet, crispDet);
  }

  std::cout << "rule | false-alarm rate (in-tolerance boards) | detection "
               "rate (30% soft faults)\n";
  std::cout << "  paper-literal Dc | " << paperFa.rate() << " | "
            << paperDet.rate() << '\n';
  std::cout << "  symmetric Dc (ours) | " << symFa.rate() << " | "
            << symDet.rate() << '\n';
  std::cout << "  crisp overlap | " << crispFa.rate() << " | "
            << crispDet.rate() << '\n';
  std::cout << "(shape: crisp misses soft faults; the paper-literal rule "
               "pays false alarms wherever predictions are narrower than "
               "the meter; the symmetric extension keeps detection without "
               "the false alarms)\n\n";
}

void BM_SymmetricDc(benchmark::State& state) {
  const auto vm = FuzzyInterval::about(5.0, 0.02);
  const auto vn = FuzzyInterval::about(5.05, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzy::degreeOfConsistency(vm, vn));
  }
}
BENCHMARK(BM_SymmetricDc);

void BM_PaperDc(benchmark::State& state) {
  const auto vm = FuzzyInterval::about(5.0, 0.02);
  const auto vn = FuzzyInterval::about(5.05, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(paperDc(vm, vn));
  }
}
BENCHMARK(BM_PaperDc);

}  // namespace

int main(int argc, char** argv) {
  printAblationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
