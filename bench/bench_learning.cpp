// E8 — learning ablation: repeated fault scenarios on the Fig. 6 amplifier
// with and without the experience base. With learning, the confirmed
// symptom-failure rules surface the culprit as a hint before any fault-mode
// search; the table reports hint hit-rates across sessions.
#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;
using circuit::Fault;

struct Scenario {
  const char* name;
  Fault fault;
  const char* mode;
};

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"R2 short", Fault::shortCircuit("R2"), "short"},
      {"R3 open", Fault::open("R3"), "open"},
      {"R5 drift high", Fault::paramScale("R5", 1.5), "high"},
      {"R6 drift low", Fault::paramScale("R6", 0.6), "low"},
  };
  return kScenarios;
}

void printLearningTable() {
  std::cout << "==== E8: learning-from-experience ablation (Fig. 6 "
               "circuit) ====\n";
  const auto net = circuit::paperFig6ThreeStageAmp();

  diagnosis::FlamesEngine engine(net);
  std::cout << "pass 1 (cold): hints available per scenario\n";
  for (const Scenario& s : scenarios()) {
    const auto readings =
        workload::simulateMeasurements(net, {s.fault}, {"V1", "V2", "Vs"});
    engine.clearMeasurements();
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto report = engine.diagnose();
    std::cout << "  " << s.name << ": " << report.hints.size() << " hints\n";
    engine.confirm(report, s.fault.component, s.mode);
  }

  std::cout << "pass 2 (warm): correct-hint rank per scenario\n";
  std::size_t correctTop = 0;
  for (const Scenario& s : scenarios()) {
    const auto readings =
        workload::simulateMeasurements(net, {s.fault}, {"V1", "V2", "Vs"});
    engine.clearMeasurements();
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto report = engine.diagnose();
    std::size_t rank = 0;
    bool found = false;
    for (const auto& h : report.hints) {
      ++rank;
      if (h.component == s.fault.component) {
        found = true;
        break;
      }
    }
    if (found && rank == 1) ++correctTop;
    std::cout << "  " << s.name << ": culprit hint rank "
              << (found ? std::to_string(rank) : std::string("absent"))
              << " of " << report.hints.size() << '\n';
  }
  std::cout << "top-1 hint accuracy after one confirmation each: "
            << correctTop << "/" << scenarios().size() << "\n";
  std::cout << "(shape: learning turns the second encounter of a known "
               "failure into an immediate hint)\n\n";
}

void BM_DiagnoseCold(benchmark::State& state) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  for (auto _ : state) {
    diagnosis::FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    benchmark::DoNotOptimize(engine.diagnose());
  }
}
BENCHMARK(BM_DiagnoseCold);

void BM_DiagnoseWarm(benchmark::State& state) {
  // Engine reused across sessions: the model build is amortised and the
  // experience base is populated.
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto first = engine.diagnose();
  engine.confirm(first, "R2", "short");
  for (auto _ : state) {
    engine.clearMeasurements();
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    benchmark::DoNotOptimize(engine.diagnose());
  }
}
BENCHMARK(BM_DiagnoseWarm);

void BM_ExperienceMatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  diagnosis::ExperienceBase eb;
  for (std::size_t i = 0; i < n; ++i) {
    eb.recordSuccess({{"V(V1)", -1.0 + 2.0 * static_cast<double>(i) /
                                     static_cast<double>(n)},
                      {"V(Vs)", 0.5}},
                     "C" + std::to_string(i), "open");
  }
  const std::vector<diagnosis::Symptom> probe = {{"V(V1)", 0.1},
                                                 {"V(Vs)", 0.5}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(eb.match(probe));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ExperienceMatch)->Arg(4)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  printLearningTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
