// E6 — test-selection quality: probes-to-isolation under the fuzzy-entropy
// policy vs naive sequential probing, plus ranking timings.
//
// Protocol: hide a fault, measure only the output, then repeatedly ask the
// policy for the next probe until the best candidate names the culprit (or
// probes run out). Fewer probes = better policy.
#include <benchmark/benchmark.h>

#include "obs_optin.h"

#include <algorithm>
#include <random>
#include <iostream>

#include "diagnosis/flames.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace {

using namespace flames;
using circuit::Fault;

// Returns the number of probes used until isolation (probes.size() + 1 if
// never isolated). `policy`: true = fuzzy-entropy recommendation, false =
// take probes in the (pre-shuffled) order given.
std::size_t probesToIsolate(const circuit::Netlist& net, const Fault& fault,
                            const std::vector<std::string>& outputProbe,
                            std::vector<std::string> internalProbes,
                            bool entropyPolicy) {
  const auto first =
      workload::simulateMeasurements(net, {fault}, outputProbe);
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : first) engine.measure(r.node, r.volts);
  auto report = engine.diagnose();

  std::size_t used = 0;
  while (!internalProbes.empty()) {
    const auto best = report.bestCandidate();
    if (best.size() == 1 && best.front() == fault.component &&
        report.candidates.front().plausibility > 0.5) {
      return used;
    }
    std::string next;
    if (entropyPolicy) {
      std::vector<diagnosis::TestPoint> pts;
      for (const auto& p : internalProbes) pts.push_back({p});
      const auto ranked = engine.recommendTests(pts, report);
      next = ranked.empty() ? internalProbes.front() : ranked.front().node;
    } else {
      next = internalProbes.front();
    }
    internalProbes.erase(
        std::find(internalProbes.begin(), internalProbes.end(), next));
    const auto reading = workload::simulateMeasurements(net, {fault}, {next});
    engine.measure(next, reading.front().volts);
    report = engine.diagnose();
    ++used;
  }
  const auto best = report.bestCandidate();
  if (best.size() == 1 && best.front() == fault.component) return used;
  return used + 1;
}

void printQualityTable() {
  std::cout << "==== E6: probes to isolation, entropy policy vs random "
               "probing ====\n";
  const std::size_t kStages = 6;
  const auto net = workload::dividerCascade(kStages);
  std::vector<std::string> internal;
  for (std::size_t i = 1; i <= kStages; ++i) {
    internal.push_back("m" + std::to_string(i));
  }
  const std::vector<std::string> output = {"t" + std::to_string(kStages)};

  std::cout << "fault | entropy-policy probes | random-order probes (mean "
               "of 4 shuffles)\n";
  double totalEntropy = 0, totalRandom = 0;
  std::size_t n = 0;
  std::mt19937 rng(123);
  for (std::size_t stage = 1; stage <= kStages; ++stage) {
    const Fault f = Fault::open("Rb" + std::to_string(stage));
    const auto e = probesToIsolate(net, f, output, internal, true);
    double r = 0.0;
    const int kShuffles = 4;
    for (int s = 0; s < kShuffles; ++s) {
      auto shuffled = internal;
      std::shuffle(shuffled.begin(), shuffled.end(), rng);
      r += static_cast<double>(
          probesToIsolate(net, f, output, shuffled, false));
    }
    r /= kShuffles;
    std::cout << "  " << f.component << " open | " << e << " | " << r << '\n';
    totalEntropy += static_cast<double>(e);
    totalRandom += r;
    ++n;
  }
  std::cout << "mean | " << totalEntropy / static_cast<double>(n) << " | "
            << totalRandom / static_cast<double>(n) << '\n';
  std::cout << "(shape: the entropy policy needs fewer probes on average "
               "than undirected probing)\n\n";
}

void BM_RecommendTests(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  const auto net = workload::dividerCascade(stages);
  const auto readings = workload::simulateMeasurements(
      net, {Fault::open("Rb1")}, {"t" + std::to_string(stages)});
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  std::vector<diagnosis::TestPoint> pts;
  for (std::size_t i = 1; i <= stages; ++i) {
    pts.push_back({"m" + std::to_string(i)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.recommendTests(pts, report));
  }
}
BENCHMARK(BM_RecommendTests)->Arg(3)->Arg(5)->Arg(8);

void BM_FuzzyEntropyComputation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto scale = fuzzy::LinguisticScale::defaultFaultiness();
  std::vector<fuzzy::FuzzyInterval> est;
  for (std::size_t i = 0; i < n; ++i) {
    est.push_back(scale.terms()[i % scale.size()].meaning);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuzzy::fuzzyEntropy(est));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FuzzyEntropyComputation)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  printQualityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
