// Soundness of fuzzy propagation (property-based).
//
// If every component of the board is within tolerance, then every value
// entry the propagator derives — under whatever assumption environment —
// must contain the board's true value at its support level: the possibilistic
// arithmetic is conservative, measurements are exact, and all assumptions
// hold. A violation would mean the engine can manufacture false conflicts
// on healthy boards, which is the one thing a diagnoser must never do.
#include <gtest/gtest.h>

#include <random>

#include "circuit/mna.h"
#include "constraints/model_builder.h"
#include "circuit/catalog.h"
#include "workload/generators.h"

namespace flames {
namespace {

using circuit::Component;
using circuit::ComponentKind;
using circuit::DcSolver;
using circuit::Netlist;
using constraints::BuiltModel;
using constraints::Propagator;
using constraints::QuantityId;

// Draws every toleranced parameter uniformly inside its support.
Netlist sampleWithinTolerance(const Netlist& nominal, std::mt19937& rng) {
  Netlist out = nominal;
  for (Component& c : out.components()) {
    if (c.relTol <= 0.0) continue;
    std::uniform_real_distribution<double> u(1.0 - c.relTol, 1.0 + c.relTol);
    c.value *= u(rng);
  }
  return out;
}

// True value of a model quantity on the actual (sampled) board, if the
// quantity maps onto something the simulator can report.
std::optional<double> trueValueOf(const std::string& name,
                                  const Netlist& actual,
                                  const circuit::OperatingPoint& op) {
  const DcSolver solver(actual);
  if (name.rfind("V(", 0) == 0) {
    return op.v(actual.findNode(name.substr(2, name.size() - 3)));
  }
  if (name.rfind("I(", 0) == 0) {
    return solver.current(op, name.substr(2, name.size() - 3));
  }
  if (name.rfind("Ib(", 0) == 0) {
    return solver.current(op, name.substr(3, name.size() - 4));
  }
  if (name.rfind("Ic(", 0) == 0) {
    const std::string comp = name.substr(3, name.size() - 4);
    return actual.component(comp).value * solver.current(op, comp);
  }
  if (name.rfind("Ie(", 0) == 0) {
    const std::string comp = name.substr(3, name.size() - 4);
    const double ib = solver.current(op, comp);
    return ib + actual.component(comp).value * ib;
  }
  return std::nullopt;
}

class SoundnessTest : public ::testing::TestWithParam<unsigned> {};

void checkSoundness(const Netlist& nominal, unsigned seed,
                    const std::vector<std::string>& probes) {
  std::mt19937 rng(seed);
  const Netlist actual = sampleWithinTolerance(nominal, rng);
  const auto op = DcSolver(actual).solve();
  ASSERT_TRUE(op.converged);

  const BuiltModel built = constraints::buildDiagnosticModel(nominal);
  Propagator prop(built.model);
  for (const auto& node : probes) {
    // Exact measurement of the true board (zero meter error: the strictest
    // case for soundness).
    prop.addMeasurement(built.voltage(node),
                        fuzzy::FuzzyInterval::crisp(op.v(actual.findNode(node))));
  }
  prop.run();
  ASSERT_TRUE(prop.completed());

  // No *hard* conflicts may be recorded against a healthy board: a
  // degree-1 nogood requires the true value outside some support, which
  // in-tolerance parameters cannot produce. (Low-grade partial conflicts
  // are legitimate for boards near the edge of tolerance — a point
  // measurement on the shoulder of the fuzzy nominal is "good with degree
  // mu" in the paper's own semantics.)
  EXPECT_EQ(prop.nogoods().minimalNogoods(0.95).size(), 0u)
      << "seed " << seed;

  // Every entry of every quantity must contain the true value.
  std::size_t checked = 0;
  for (QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    const std::string& name = built.model.quantityInfo(q).name;
    const auto truth = trueValueOf(name, actual, op);
    if (!truth) continue;
    for (const auto& entry : prop.values(q)) {
      const auto support = entry.value.support();
      EXPECT_GE(*truth, support.lo - 1e-7)
          << name << " entry " << entry.value.str() << " seed " << seed;
      EXPECT_LE(*truth, support.hi + 1e-7)
          << name << " entry " << entry.value.str() << " seed " << seed;
      ++checked;
    }
  }
  EXPECT_GT(checked, probes.size());  // derivations actually happened
}

TEST_P(SoundnessTest, ResistorLadderAllEntriesContainTruth) {
  const auto net = workload::resistorLadder(3, 10.0, 1.0, 2.0, 0.05);
  checkSoundness(net, GetParam(), workload::tapsOf(net));
}

TEST_P(SoundnessTest, DividerCascadeAllEntriesContainTruth) {
  const auto net = workload::dividerCascade(3);
  checkSoundness(net, GetParam(), workload::tapsOf(net));
}

TEST_P(SoundnessTest, ThreeStageAmpAllEntriesContainTruth) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  checkSoundness(net, GetParam(), {"V1", "V2", "Vs"});
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace flames
