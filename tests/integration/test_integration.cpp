// Cross-module integration: diagnosis accuracy sweeps over synthetic
// workloads, fuzzy vs crisp behaviour on the same inputs.
#include <gtest/gtest.h>

#include "baselines/crisp_diagnosis.h"
#include "circuit/mna.h"
#include "diagnosis/flames.h"
#include "workload/generators.h"
#include "diagnosis/transient_diagnosis.h"
#include "workload/scenarios.h"

namespace flames {
namespace {

using circuit::Fault;
using circuit::Netlist;
using diagnosis::FlamesEngine;
using diagnosis::FlamesOptions;

// Runs one scenario end to end; returns true if the true culprit appears in
// the top two ranked candidates (single probes leave genuinely ambiguous
// pairs, e.g. a series resistor low vs a shunt resistor open).
bool culpritFound(const Netlist& net, const Fault& fault,
                  const std::vector<std::string>& probes) {
  const auto readings = workload::simulateMeasurements(net, {fault}, probes);
  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  if (!report.faultDetected()) return false;
  const std::size_t top = std::min<std::size_t>(2, report.candidates.size());
  for (std::size_t i = 0; i < top; ++i) {
    for (const auto& c : report.candidates[i].components) {
      if (c == fault.component) return true;
    }
  }
  return false;
}

TEST(Integration, LadderHardFaultsAreDiagnosed) {
  const auto net = workload::resistorLadder(3);
  const auto probes = workload::tapsOf(net);
  std::size_t hits = 0;
  std::vector<Fault> faults;
  for (int i = 1; i <= 3; ++i) {
    faults.push_back(Fault::open("Rp" + std::to_string(i)));
    faults.push_back(Fault::shortCircuit("Rp" + std::to_string(i)));
  }
  for (const auto& f : faults) {
    if (culpritFound(net, f, probes)) ++hits;
  }
  // Hard faults with full observability: the engine should name the culprit
  // in the vast majority of cases.
  EXPECT_GE(hits, faults.size() - 1) << hits << "/" << faults.size();
}

TEST(Integration, DividerCascadeFaultIsolatedToStage) {
  const auto net = workload::dividerCascade(4);
  const auto probes = workload::tapsOf(net);
  const Fault fault = Fault::open("Rb2");
  const auto readings = workload::simulateMeasurements(net, {fault}, probes);
  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  // Every nogood should stay inside stage 2's cone (Rt2, Rb2, buf2 — plus
  // possibly upstream stage components, but never downstream-only sets).
  for (const auto& ng : report.nogoods) {
    bool touchesStage2Cone = false;
    for (const auto& comp : ng.components) {
      if (comp == "Rt2" || comp == "Rb2" || comp == "buf2" || comp == "Rt1" ||
          comp == "Rb1" || comp == "buf1") {
        touchesStage2Cone = true;
      }
    }
    EXPECT_TRUE(touchesStage2Cone);
  }
}

TEST(Integration, FuzzyFlagsSoftFaultCrispMisses) {
  // The paper's central claim (§4.2): a parametric drift inside the crisp
  // tolerance envelope is masked for the crisp engine but produces a
  // partial conflict for the fuzzy one.
  const auto net = workload::resistorLadder(2, 10.0, 1.0, 2.0, 0.05);
  const auto probes = workload::tapsOf(net);
  // 12% drift: inside the summed crisp interval bounds, but enough to tilt
  // the fuzzy Dc.
  const Fault fault = Fault::paramScale("Rp1", 1.12);
  const auto readings = workload::simulateMeasurements(net, {fault}, probes);

  FlamesOptions fopts;
  fopts.measurementSpread = 0.02;
  FlamesEngine engine(net, fopts);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto fuzzyReport = engine.diagnose();

  const auto& built = engine.builtModel();
  std::vector<baselines::CrispMeasurement> crisp;
  for (const auto& r : readings) {
    crisp.push_back(
        {built.voltage(r.node), fuzzy::FuzzyInterval::about(r.volts, 0.02)});
  }
  const auto crispReport = baselines::diagnoseCrisp(built.model, crisp);

  EXPECT_TRUE(fuzzyReport.faultDetected());
  EXPECT_TRUE(crispReport.nogoods.empty())
      << "crisp baseline unexpectedly saw the soft fault";
}

TEST(Integration, NoFalseAlarmOnHealthyWorkloads) {
  for (std::size_t stages : {2u, 4u, 6u}) {
    const auto net = workload::dividerCascade(stages);
    const auto probes = workload::tapsOf(net);
    const auto readings = workload::simulateMeasurements(net, {}, probes);
    FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto report = engine.diagnose();
    EXPECT_FALSE(report.faultDetected()) << stages << " stages";
  }
}

TEST(Integration, ScenarioSweepMostHardFaultsDetected) {
  const auto net = workload::resistorLadder(3);
  const auto probes = workload::tapsOf(net);
  workload::ScenarioOptions sopts;
  sopts.includeSoftDeviations = false;  // hard faults only
  const auto scenarios = workload::sampleScenarios(net, 12, 17, sopts);
  std::size_t detected = 0, total = 0;
  for (const auto& s : scenarios) {
    if (s.faults.empty()) continue;
    std::vector<workload::ProbeReading> readings;
    try {
      readings = workload::simulateMeasurements(net, s.faults, probes);
    } catch (const std::runtime_error&) {
      continue;  // unsolvable faulted circuit
    }
    ++total;
    FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    if (engine.diagnose().faultDetected()) ++detected;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GE(detected * 10, total * 9) << detected << "/" << total;
}

TEST(Integration, ResistorGridKclStress) {
  // A meshed topology (multiple paths between every pair of nodes)
  // exercises KCL-heavy propagation: a hard open must still be detected
  // and the engine must terminate within budget on a healthy grid.
  const auto net = workload::resistorGrid(3, 3);
  std::vector<std::string> probes;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      probes.push_back("g" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  {
    const auto readings = workload::simulateMeasurements(net, {}, probes);
    FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto report = engine.diagnose();
    EXPECT_TRUE(report.propagationCompleted);
    EXPECT_FALSE(report.faultDetected());
  }
  {
    const auto readings = workload::simulateMeasurements(
        net, {Fault::open("Rload")}, probes);
    FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    const auto report = engine.diagnose();
    EXPECT_TRUE(report.propagationCompleted);
    EXPECT_TRUE(report.faultDetected());
    EXPECT_GE(report.suspicion.count("Rload"), 1u);
  }
}

TEST(Integration, DcBlindReactiveFaultCaughtByDynamics) {
  // A drifted capacitor leaves every DC node voltage untouched: the static
  // engine sees a healthy board, the time-domain engine isolates the part —
  // the cross-mode complementarity the paper's "dynamic mode" is for.
  circuit::Netlist net;
  net.addVSource("Vin", "in", "0", 1.0);
  net.addResistor("R1", "in", "m", 1.0, 0.02);
  net.addCapacitor("C1", "m", "0", 1.0, 0.05);
  net.addResistor("R2", "m", "out", 2.0, 0.02);
  net.addCapacitor("C2", "out", "0", 0.1, 0.05);

  const Fault fault = Fault::paramScale("C1", 3.0);

  // Static mode: measure both nodes of the faulted board at DC.
  {
    const auto readings =
        workload::simulateMeasurements(net, {fault}, {"m", "out"});
    FlamesEngine engine(net);
    for (const auto& r : readings) engine.measure(r.node, r.volts);
    EXPECT_FALSE(engine.diagnose().faultDetected());
  }

  // Dynamic mode: step-response features of the same board.
  {
    diagnosis::TransientDiagnosisOptions opts;
    opts.transient.timeStep = 0.02;
    opts.duration = 40.0;
    const std::vector<diagnosis::StepProbe> probes = {
        {"m", diagnosis::StepFeature::kRiseTime},
        {"out", diagnosis::StepFeature::kRiseTime}};
    diagnosis::TransientDiagnosisEngine engine(net, "Vin", probes, opts);
    const auto board = circuit::applyFaults(net, {fault});
    for (const auto& p : probes) {
      const auto v = engine.simulateFeature(board, p);
      ASSERT_TRUE(v.has_value());
      engine.measure(p, *v);
    }
    const auto report = engine.diagnose();
    ASSERT_TRUE(report.faultDetected());
    EXPECT_GE(report.suspicion.count("C1"), 1u);
  }
}

TEST(Integration, PropagationStepBudgetRegression) {
  // Performance canary: a full-observability diagnosis on an 8-stage
  // cascade must stay within a modest step count. If entry subsumption or
  // the echo guards regress, this blows up long before wall-clock tests
  // would notice.
  const auto net = workload::dividerCascade(8);
  const auto probes = workload::tapsOf(net);
  const auto readings = workload::simulateMeasurements(
      net, {Fault::open("Rb4")}, probes);
  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  EXPECT_TRUE(report.propagationCompleted);
  EXPECT_LT(report.propagationSteps, 20000u);
}

TEST(Integration, LearningAcceleratesRepeatDiagnosis) {
  const auto net = workload::resistorLadder(3);
  const auto probes = workload::tapsOf(net);
  const Fault fault = Fault::open("Rp2");
  const auto readings = workload::simulateMeasurements(net, {fault}, probes);

  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto first = engine.diagnose();
  EXPECT_TRUE(first.hints.empty());
  engine.confirm(first, "Rp2", "open");

  engine.clearMeasurements();
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto second = engine.diagnose();
  ASSERT_FALSE(second.hints.empty());
  EXPECT_EQ(second.hints.front().component, "Rp2");
}

}  // namespace
}  // namespace flames
