// Multiple-fault diagnosis: the reason the paper uses an ATMS at all ("we
// entertain the possibility of multiple faults where the space of potential
// candidates grows exponentially", §6).
#include <gtest/gtest.h>

#include "atms/candidates.h"
#include "circuit/catalog.h"
#include "circuit/fault.h"
#include "diagnosis/flames.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace flames {
namespace {

using circuit::Fault;
using circuit::Netlist;
using diagnosis::FlamesEngine;

TEST(MultiFault, TwoIndependentOpensNeedDoubleCandidate) {
  // Opens in two different cascade stages: no single component can explain
  // both tap patterns, so the hitting sets must include a double candidate
  // containing both culprits.
  const auto net = workload::dividerCascade(4);
  const std::vector<Fault> faults = {Fault::open("Rb1"), Fault::open("Rb3")};
  const auto readings =
      workload::simulateMeasurements(net, faults, workload::tapsOf(net));

  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());

  // Both stages must be implicated somewhere in the nogoods.
  bool stage1 = false, stage3 = false;
  for (const auto& ng : report.nogoods) {
    for (const auto& c : ng.components) {
      if (c == "Rb1" || c == "Rt1" || c == "buf1") stage1 = true;
      if (c == "Rb3" || c == "Rt3" || c == "buf3") stage3 = true;
    }
  }
  EXPECT_TRUE(stage1);
  EXPECT_TRUE(stage3);

  // Some candidate must cover both stages (single-component candidates
  // cannot explain independent upstream+downstream symptoms).
  bool doubleCover = false;
  for (const auto& cand : report.candidates) {
    bool s1 = false, s3 = false;
    for (const auto& c : cand.components) {
      if (c == "Rb1" || c == "Rt1" || c == "buf1") s1 = true;
      if (c == "Rb3" || c == "Rt3" || c == "buf3") s3 = true;
    }
    if (s1 && s3) doubleCover = true;
  }
  EXPECT_TRUE(doubleCover);
}

TEST(MultiFault, SingleFaultCandidatesStaySingleton) {
  // Control: a single fault must not force multi-component candidates to
  // the top.
  const auto net = workload::dividerCascade(4);
  const auto readings = workload::simulateMeasurements(
      net, {Fault::open("Rb2")}, workload::tapsOf(net));
  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.candidates.front().components.size(), 1u);
}

TEST(MultiFault, CardinalityCapBoundsCandidates) {
  const auto net = workload::dividerCascade(4);
  const std::vector<Fault> faults = {Fault::open("Rb1"), Fault::open("Rb3")};
  const auto readings =
      workload::simulateMeasurements(net, faults, workload::tapsOf(net));

  diagnosis::FlamesOptions opts;
  opts.maxFaultCardinality = 2;
  FlamesEngine engine(net, opts);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  for (const auto& cand : report.candidates) {
    EXPECT_LE(cand.components.size(), 2u);
  }
}

TEST(MultiFault, AmplifierDoubleFaultImplicatesBothStages) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const std::vector<Fault> faults = {Fault::shortCircuit("R2"),
                                     Fault::paramScale("R6", 0.5)};
  const auto readings =
      workload::simulateMeasurements(net, faults, {"V1", "V2", "Vs"});
  FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  // R2's stage must be suspected; the output-stage deviation shows up in
  // the Vs symptom even if R6 itself hides behind T3.
  EXPECT_GE(report.suspicion.count("R2"), 1u);
  EXPECT_FALSE(report.nogoods.empty());
}

TEST(MultiFault, LatticeSeparatesHardAndSoftConflicts) {
  // One hard fault + one soft drift: at the hard lambda cut only the hard
  // culprit's cone needs explaining; lower cuts add the soft one. This is
  // the lattice view the paper's ranked nogoods enable.
  const auto net = workload::dividerCascade(4);
  // 2.5% drift on a 2%-tolerance part: lands on the fuzzy nominal's
  // shoulder, i.e. a partial conflict; Rb1 open is a hard one.
  const std::vector<Fault> faults = {Fault::open("Rb1"),
                                     Fault::paramScale("Rb4", 1.025)};
  const auto readings =
      workload::simulateMeasurements(net, faults, workload::tapsOf(net));

  diagnosis::FlamesOptions opts;
  opts.measurementSpread = 0.02;
  FlamesEngine engine(net, opts);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  bool sawHard = false, sawPartial = false;
  for (const auto& ng : report.nogoods) {
    if (ng.degree >= 0.999) sawHard = true;
    if (ng.degree < 0.999 && ng.degree > 0.05) sawPartial = true;
  }
  EXPECT_TRUE(sawHard);
  EXPECT_TRUE(sawPartial);
}

}  // namespace
}  // namespace flames
