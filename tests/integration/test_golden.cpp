// Golden-file regression tests for the full diagnosis pipeline.
//
// Each case diagnoses a canonical paper scenario (Fig. 6 amplifier, Fig. 7
// fault rows) and compares reportJson() byte-for-byte against a committed
// snapshot under tests/integration/golden/. Any behavioural drift in
// propagation, Dc scoring, candidate generation, ranking or fault-mode
// refinement shows up as a readable JSON diff instead of a distant
// downstream assertion.
//
// Updating intentionally-changed goldens:
//
//   FLAMES_UPDATE_GOLDEN=1 ctest --test-dir build -R GoldenReport
//
// rewrites the snapshots in the source tree; review the diff like any other
// code change. (The binary honours the variable too:
// FLAMES_UPDATE_GOLDEN=1 ./build/tests/test_golden.)
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "diagnosis/report.h"
#include "workload/scenarios.h"

#ifndef FLAMES_GOLDEN_DIR
#error "FLAMES_GOLDEN_DIR must point at tests/integration/golden"
#endif

namespace flames {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string(FLAMES_GOLDEN_DIR) + "/" + name + ".json";
}

std::string diagnoseToJson(const std::vector<circuit::Fault>& faults) {
  const circuit::Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto readings =
      workload::simulateMeasurements(net, faults, {"V1", "V2", "Vs"});
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  return diagnosis::reportJson(engine.diagnose());
}

void compareGolden(const std::string& name, const std::string& actual) {
  const std::string path = goldenPath(name);
  if (std::getenv("FLAMES_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "updated golden " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << path << " missing - run with FLAMES_UPDATE_GOLDEN=1 to create it";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "report drifted from " << path
      << "; if intentional, re-run with FLAMES_UPDATE_GOLDEN=1 and review "
         "the diff";
}

TEST(GoldenReport, Fig7OpenR3) {
  compareGolden("fig7_open_r3", diagnoseToJson({circuit::Fault::open("R3")}));
}

TEST(GoldenReport, Fig7ShortR2) {
  compareGolden("fig7_short_r2",
                diagnoseToJson({circuit::Fault::shortCircuit("R2")}));
}

TEST(GoldenReport, Fig6Nominal) {
  // The healthy amplifier: golden pins "no conflicts, no candidates" so a
  // future false-positive regression (spurious nogoods on a clean board)
  // cannot slip through.
  compareGolden("fig6_nominal", diagnoseToJson({}));
}

}  // namespace
}  // namespace flames
