// Reproduction assertions for the paper's figures (E1: Fig. 2, E2: Fig. 5,
// E3: Figs. 6/7). The benches print the full tables; these tests pin the
// shapes so regressions are caught by ctest.
#include <gtest/gtest.h>

#include "atms/candidates.h"
#include "circuit/catalog.h"
#include "circuit/mna.h"
#include "constraints/model_builder.h"
#include "diagnosis/flames.h"
#include "workload/scenarios.h"

namespace flames {
namespace {

using circuit::Fault;
using circuit::Netlist;
using fuzzy::FuzzyInterval;

// --- E1: Fig. 2 -------------------------------------------------------------

TEST(PaperFig2, CrispForwardPropagation) {
  // Crisp case (1): Va = [2.95, 3.05]; B = [2.8, 3.2], C = [5.46, 6.56],
  // D = [8.26, 9.76] — the figure's annotations.
  const auto va = FuzzyInterval::crispInterval(2.95, 3.05);
  const auto amp1 = FuzzyInterval::about(1.0, 0.05);
  const auto amp2 = FuzzyInterval::about(2.0, 0.05);
  const auto amp3 = FuzzyInterval::about(3.0, 0.05);
  const auto vb = va * amp1;
  const auto vc = vb * amp2;
  const auto vd = vb * amp3;
  EXPECT_NEAR(vb.support().lo, 2.8025, 1e-3);
  EXPECT_NEAR(vb.support().hi, 3.2025, 1e-3);
  EXPECT_NEAR(vc.support().lo, 5.46, 0.01);
  EXPECT_NEAR(vc.support().hi, 6.57, 0.01);
  EXPECT_NEAR(vd.support().lo, 8.26, 0.02);
  EXPECT_NEAR(vd.support().hi, 9.77, 0.02);
}

TEST(PaperFig2, FuzzyForwardPropagationKeepsCrispCore) {
  // Fuzzy case (2): Va = [3,3,.05,.05] — cores stay at the nominal values
  // 3, 6, 9 and the imprecision lives in the spreads (paper's point: the
  // two kinds of imprecision are separated).
  const auto va = FuzzyInterval::about(3.0, 0.05);
  const auto amp1 = FuzzyInterval::about(1.0, 0.05);
  const auto amp2 = FuzzyInterval::about(2.0, 0.05);
  const auto amp3 = FuzzyInterval::about(3.0, 0.05);
  const auto vb = va * amp1;
  const auto vc = vb * amp2;
  const auto vd = vb * amp3;
  EXPECT_NEAR(vb.coreMidpoint(), 3.0, 1e-12);
  EXPECT_NEAR(vc.coreMidpoint(), 6.0, 1e-12);
  EXPECT_NEAR(vd.coreMidpoint(), 9.0, 1e-12);
  // Spreads grow multiplicatively, close to the paper's 0.20 / ~0.55 / ~0.75.
  EXPECT_NEAR(vb.alpha(), 0.20, 0.01);
  EXPECT_NEAR(vc.alpha(), 0.55, 0.02);
  EXPECT_NEAR(vd.alpha(), 0.75, 0.02);
}

TEST(PaperFig2, MaskingCaseCrispConsistentFuzzyNot) {
  // amp2 faulted to 1.8, Vc measured 5.6 (paper §4.2). Back-propagation:
  // crisp Va' = [5.6/2.05/1.05, 5.6/1.95/0.95] overlaps the known
  // [2.95, 3.05] => masked. Fuzzy Dc against Va = [3,3,.05,.05] < 1 =>
  // "shows that there is a problem".
  const auto vcMeasured = FuzzyInterval::crisp(5.6);
  const auto amp1 = FuzzyInterval::about(1.0, 0.05);
  const auto amp2 = FuzzyInterval::about(2.0, 0.05);

  const auto vaBack = vcMeasured / amp2 / amp1;
  // Crisp check: supports overlap => no conflict for DIANA.
  EXPECT_TRUE(vaBack.supportsOverlap(FuzzyInterval::crispInterval(2.95, 3.05)));
  // Fuzzy check: Dc < 1 => partial conflict for FLAMES.
  const auto dc =
      fuzzy::degreeOfConsistency(vaBack, FuzzyInterval::about(3.0, 0.05));
  EXPECT_LT(dc.dc, 0.75);
  EXPECT_GT(dc.dc, 0.0);
  EXPECT_EQ(dc.deviation, fuzzy::Deviation::kBelow);
}

// --- E2: Fig. 5 -------------------------------------------------------------

TEST(PaperFig5, NogoodDegreesAndCandidates) {
  // Manual model replication of the figure: see also the propagator unit
  // test. Here we assert the full candidate structure.
  constraints::Model m;
  const auto r1 = m.addAssumption("r1");
  const auto r2 = m.addAssumption("r2");
  const auto d1 = m.addAssumption("d1");
  const auto vr1 = m.addQuantity("Vr1");
  const auto vr2 = m.addQuantity("Vr2");
  const auto gnd = m.addQuantity("V0");
  const auto ir1 = m.addQuantity("Ir1");
  const auto ir2 = m.addQuantity("Ir2");
  m.addPrediction(gnd, FuzzyInterval::crisp(0.0), atms::Environment{});
  const FuzzyInterval rating(-0.001, 0.100, 0.0, 0.010);
  m.addPrediction(ir1, rating, atms::Environment::of({d1, r1}));
  m.addPrediction(ir2, rating, atms::Environment::of({d1, r2}));
  m.addConstraint(std::make_unique<constraints::OhmConstraint>(
      "ohm(r1)", vr1, gnd, ir1, FuzzyInterval::crisp(10.0),
      atms::Environment::of({r1})));
  m.addConstraint(std::make_unique<constraints::OhmConstraint>(
      "ohm(r2)", vr2, gnd, ir2, FuzzyInterval::crisp(10.0),
      atms::Environment::of({r2})));

  constraints::Propagator p(m);
  p.addMeasurement(vr1, FuzzyInterval::crisp(1.05));
  p.addMeasurement(vr2, FuzzyInterval::crisp(2.0));
  p.run();

  // Candidates with all conflicts considered: {d1} and {r1,r2}, with {d1}
  // ranked first (suspicion 1 vs 0.5) — the paper's §6.3 ordering.
  const auto cands = atms::candidatesAt(p.nogoods(), 0.01);
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].members, (std::vector<atms::AssumptionId>{d1}));
  EXPECT_DOUBLE_EQ(cands[0].suspicion, 1.0);
  EXPECT_EQ(cands[1].members, (std::vector<atms::AssumptionId>{r1, r2}));
  EXPECT_NEAR(cands[1].suspicion, 0.5, 1e-9);

  // At the hard cut the expert can focus on {r2, d1} only.
  const auto hard = atms::candidatesAt(p.nogoods(), 1.0);
  ASSERT_EQ(hard.size(), 2u);
  EXPECT_EQ(hard[0].members.size(), 1u);
}

TEST(PaperFig5, GenericPipelineDiagnosesShortedDiode) {
  // The Fig. 5 circuit through the *generic* netlist pipeline. The ideal
  // constant-drop diode pins n1 = Vin - Vf, so resistor faults are
  // voltage-invisible here (physically correct for this model); the
  // observable defect class is the diode itself. A shorted d1 lifts n1 by
  // the missing drop and the conflict must implicate the diode's model
  // assumption, with {d1} (mode short) the leading candidate.
  const Netlist net = circuit::paperFig5DiodeNetwork();
  const auto readings = workload::simulateMeasurements(
      net, {Fault::shortCircuit("d1")}, {"n1", "n2"});
  diagnosis::FlamesOptions opts;
  opts.measurementSpread = 0.01;
  diagnosis::FlamesEngine engine(net, opts);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  bool diodeImplicated = false;
  for (const auto& ng : report.nogoods) {
    for (const auto& c : ng.components) {
      if (c == "d1") diodeImplicated = true;
    }
  }
  EXPECT_TRUE(diodeImplicated);
  ASSERT_FALSE(report.candidates.empty());
  EXPECT_EQ(report.bestCandidate(), std::vector<std::string>{"d1"});
  ASSERT_TRUE(report.candidates.front().modeMatch.has_value());
  EXPECT_EQ(report.candidates.front().modeMatch->mode, "short");
}

// --- E3: Figs. 6 & 7 ---------------------------------------------------------

struct Fig7Row {
  std::string name;
  std::vector<Fault> faults;
  std::string culprit;
};

class PaperFig7 : public ::testing::TestWithParam<int> {
 protected:
  static const std::vector<Fig7Row>& rows() {
    // Row 2 uses a +20% drift instead of the paper's +1.5%: in our
    // reconstructed (feedback-biased) stage the +1.5% shift moves V1 by
    // <0.1% — below any realistic tolerance band — so the soft-fault row is
    // exercised at the smallest deviation our topology makes observable.
    // See EXPERIMENTS.md (E3).
    static const std::vector<Fig7Row> kRows = {
        {"short circuit on R2", {Fault::shortCircuit("R2")}, "R2"},
        {"R2 slightly high (14.4k)", {Fault::paramExact("R2", 14.4)}, "R2"},
        {"open circuit on R3", {Fault::open("R3")}, "R3"},
    };
    return kRows;
  }
};

TEST_P(PaperFig7, DefectDetectedAndCulpritRanked) {
  const Fig7Row& row = rows()[static_cast<std::size_t>(GetParam())];
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, row.faults, {"V1", "V2", "Vs"});

  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();

  EXPECT_TRUE(report.faultDetected()) << row.name;
  ASSERT_FALSE(report.candidates.empty()) << row.name;
  // The true culprit must be among the top-ranked plausible candidates.
  bool found = false;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, report.candidates.size());
       ++i) {
    for (const auto& comp : report.candidates[i].components) {
      if (comp == row.culprit) found = true;
    }
  }
  EXPECT_TRUE(found) << row.name;
}

INSTANTIATE_TEST_SUITE_P(Rows, PaperFig7, ::testing::Range(0, 3));

// Sweep of hard faults across every resistor of the Fig. 6 amplifier: the
// culprit must always be detected, and isolated to the top two candidates
// whenever its fault keeps the circuit solvable and observable.
class Fig6HardFaultSweep : public ::testing::TestWithParam<int> {};

TEST_P(Fig6HardFaultSweep, DetectedAndRanked) {
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const std::string comp = "R" + std::to_string(GetParam());
  const Fault fault = Fault::open(comp);
  std::vector<workload::ProbeReading> readings;
  try {
    readings =
        workload::simulateMeasurements(net, {fault}, {"V1", "V2", "Vs"});
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << comp << " open leaves the bias unsolvable";
  }
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected()) << comp;
  bool top2 = false;
  for (std::size_t i = 0;
       i < std::min<std::size_t>(2, report.candidates.size()); ++i) {
    for (const auto& c : report.candidates[i].components) {
      if (c == comp) top2 = true;
    }
  }
  // R1 (the feedback element) is sign-indistinguishable from its divider
  // partners with three voltage probes; everything else must isolate.
  if (comp != "R1") {
    EXPECT_TRUE(top2) << comp;
  } else {
    EXPECT_GE(report.suspicion.count(comp), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Resistors, Fig6HardFaultSweep,
                         ::testing::Range(1, 7));

TEST(PaperFig7, SlightFaultGivesPartialConflict) {
  // The "R2 slightly high" row: Dc strictly between 0 and 1 on at least one
  // measured node — the paper's "Thanks to Dc" commentary.
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {Fault::paramExact("R2", 14.4)}, {"V1", "V2", "Vs"});
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  bool partial = false;
  for (const auto& ng : report.nogoods) {
    if (ng.degree > 0.0 && ng.degree < 1.0) partial = true;
  }
  EXPECT_TRUE(partial);
}

TEST(PaperFig7, NodeOpenPointsAtStageOne) {
  // "Open circuit in N1": the paper's diagnosis pins stage-1 components
  // ({R2} very low or {R3} very high via the Dc signs).
  const Netlist net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {Fault::pinOpen("T1", 1)}, {"V1", "V2", "Vs"});
  diagnosis::FlamesEngine engine(net);
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto report = engine.diagnose();
  ASSERT_TRUE(report.faultDetected());
  // The top-ranked plausible candidates must all be stage-1 components (the
  // paper resolves this row into stage-1 suspects via the Dc signs; our
  // fault-mode refinement produces the analogous "R2 very low / R1 very
  // high / T1 dead" explanations).
  ASSERT_GE(report.candidates.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(report.candidates[i].components.size(), 1u);
    const std::string& comp = report.candidates[i].components.front();
    EXPECT_TRUE(comp == "R1" || comp == "R2" || comp == "R3" || comp == "T1")
        << comp;
    EXPECT_GT(report.candidates[i].plausibility, 0.5);
  }
}

}  // namespace
}  // namespace flames
