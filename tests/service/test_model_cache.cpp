// Compiled-model cache: content keying, hit/miss accounting, LRU eviction,
// and the "at most one build per distinct netlist" guarantee under
// concurrent access.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "circuit/catalog.h"
#include "service/model_cache.h"

namespace flames::service {
namespace {

std::shared_ptr<const circuit::Netlist> divider(double r2 = 1000.0) {
  auto net = std::make_shared<circuit::Netlist>();
  net->addVSource("V1", "in", "0", 10.0);
  net->addResistor("R1", "in", "out", 1000.0);
  net->addResistor("R2", "out", "0", r2);
  return net;
}

TEST(ModelCacheKey, IdenticalContentSameKey) {
  diagnosis::FlamesOptions opts;
  EXPECT_EQ(modelCacheKey(*divider(), opts), modelCacheKey(*divider(), opts));
}

TEST(ModelCacheKey, ParameterChangesKey) {
  diagnosis::FlamesOptions opts;
  EXPECT_NE(modelCacheKey(*divider(1000.0), opts),
            modelCacheKey(*divider(1001.0), opts));
}

TEST(ModelCacheKey, BuildOptionsChangeKey) {
  diagnosis::FlamesOptions a;
  diagnosis::FlamesOptions b;
  b.model.spreadScale = 2.0;
  diagnosis::FlamesOptions c;
  c.installRegionRules = false;
  const auto net = divider();
  EXPECT_NE(modelCacheKey(*net, a), modelCacheKey(*net, b));
  EXPECT_NE(modelCacheKey(*net, a), modelCacheKey(*net, c));
}

TEST(ModelCacheKey, DigestIsStableForEqualKeys) {
  diagnosis::FlamesOptions opts;
  const auto k1 = modelCacheKey(*divider(), opts);
  const auto k2 = modelCacheKey(*divider(), opts);
  EXPECT_EQ(modelKeyDigest(k1), modelKeyDigest(k2));
}

TEST(ModelCache, SecondGetHits) {
  ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  bool hit = true;
  const auto a = cache.get(divider(), opts, &hit);
  EXPECT_FALSE(hit);
  const auto b = cache.get(divider(), opts, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a.get(), b.get());  // the same compiled model is shared
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.size, 1u);
}

TEST(ModelCache, CompiledModelCarriesKbAndPredictions) {
  ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  const auto amp = std::make_shared<const circuit::Netlist>(
      circuit::paperFig6ThreeStageAmp());
  const auto model = cache.get(amp, opts);
  // Region rules were installed for the three BJTs.
  EXPECT_GT(model->knowledgeBase().size(), 0u);
  EXPECT_GT(model->built().model.predictions().size(), 0u);
}

TEST(ModelCache, LruEvictsOldest) {
  ModelCache cache(2);
  diagnosis::FlamesOptions opts;
  (void)cache.get(divider(100.0), opts);
  (void)cache.get(divider(200.0), opts);
  (void)cache.get(divider(300.0), opts);  // evicts the 100-ohm model
  auto s = cache.stats();
  EXPECT_EQ(s.size, 2u);
  EXPECT_EQ(s.evictions, 1u);
  bool hit = true;
  (void)cache.get(divider(100.0), opts, &hit);  // rebuilt
  EXPECT_FALSE(hit);
  bool hit300 = false;
  (void)cache.get(divider(300.0), opts, &hit300);
  EXPECT_TRUE(hit300);
}

TEST(ModelCache, TouchOnHitRefreshesRecency) {
  ModelCache cache(2);
  diagnosis::FlamesOptions opts;
  (void)cache.get(divider(100.0), opts);
  (void)cache.get(divider(200.0), opts);
  (void)cache.get(divider(100.0), opts);  // 100 becomes most recent
  (void)cache.get(divider(300.0), opts);  // evicts 200, not 100
  bool hit = false;
  (void)cache.get(divider(100.0), opts, &hit);
  EXPECT_TRUE(hit);
}

TEST(ModelCache, ConcurrentGetsBuildOnce) {
  ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CompiledModel>> models(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back(
          [&, t] { models[t] = cache.get(divider(), opts); });
    }
    for (auto& th : threads) th.join();
  }
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u) << "exactly one thread must build";
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(models[0].get(), models[t].get());
  }
}

TEST(ModelCache, SensitivitySignsBuiltOnceAndShared) {
  ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  const auto model = cache.get(divider(), opts);
  const diagnosis::DeviationAnalysisOptions devOpts;
  const auto* first = &model->sensitivitySigns(devOpts);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&] { EXPECT_EQ(first, &model->sensitivitySigns(devOpts)); });
  }
  for (auto& th : threads) th.join();
}

TEST(ModelCache, PeekNeverBuildsAndLeavesStatsAlone) {
  ModelCache cache(4);
  diagnosis::FlamesOptions opts;

  // Peek on an empty cache: miss, and crucially no build was started.
  EXPECT_EQ(cache.peek(*divider(), opts), nullptr);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().size, 0u);

  const auto model = cache.get(divider(), opts);
  const auto before = cache.stats();
  EXPECT_EQ(cache.peek(*divider(), opts).get(), model.get());
  // A different key still misses without inserting a slot.
  EXPECT_EQ(cache.peek(*divider(999.0), opts), nullptr);
  const auto after = cache.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.size, before.size);
}

TEST(ModelCache, AnalysisBuiltOnceAndShared) {
  ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  const auto model = cache.get(divider(), opts);
  const constraints::PropagatorOptions popts;
  const auto* first = &model->analysis(popts);
  EXPECT_GT(first->cost.derivedEntryCap, 0u);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] { EXPECT_EQ(first, &model->analysis(popts)); });
  }
  for (auto& th : threads) th.join();
}

TEST(ModelCache, BuildFailurePropagatesAndAllowsRetry) {
  // Two parallel sources fighting over one node have no DC solution, so
  // prediction construction fails. The failure must reach the caller and
  // must not poison the slot.
  auto broken = std::make_shared<circuit::Netlist>();
  broken->addVSource("V1", "a", "0", 5.0);
  broken->addVSource("V2", "a", "0", 3.0);

  ModelCache cache(4);
  diagnosis::FlamesOptions opts;
  EXPECT_THROW((void)cache.get(broken, opts), std::exception);
  EXPECT_EQ(cache.stats().size, 0u) << "failed slot must be removed";
  EXPECT_THROW((void)cache.get(broken, opts), std::exception)
      << "retry must re-attempt the build, not deadlock on a dead future";
  EXPECT_EQ(cache.stats().misses, 2u);
}

}  // namespace
}  // namespace flames::service
