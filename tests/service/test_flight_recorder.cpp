// Tests for the service flight recorder (service/flight_recorder.h): the
// bounded ring itself, job-id correlation, provenance sampling, and the
// auto-dump hook on anomalous job outcomes.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "circuit/catalog.h"
#include "service/flight_recorder.h"
#include "service/service.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace flames::service {
namespace {

FlightRecord record(std::uint64_t jobId, const std::string& event) {
  FlightRecord r;
  r.jobId = jobId;
  r.event = event;
  return r;
}

TEST(FlightRecorder, RingKeepsTheNewestRecords) {
  FlightRecorder rec(3);
  for (std::uint64_t id = 1; id <= 5; ++id) rec.record(record(id, "done"));
  EXPECT_EQ(rec.recorded(), 5u);
  const std::vector<FlightRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // Oldest-first: 3, 4, 5 survive.
  EXPECT_EQ(snap[0].jobId, 3u);
  EXPECT_EQ(snap[1].jobId, 4u);
  EXPECT_EQ(snap[2].jobId, 5u);
}

TEST(FlightRecorder, PartialFillSnapshotsInOrder) {
  FlightRecorder rec(8);
  rec.record(record(1, "done"));
  rec.record(record(2, "failed"));
  const std::vector<FlightRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].jobId, 1u);
  EXPECT_EQ(snap[1].jobId, 2u);
}

TEST(FlightRecorder, ZeroCapacityDisables) {
  FlightRecorder rec(0);
  rec.record(record(1, "done"));
  EXPECT_TRUE(rec.snapshot().empty());
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorder, RenderNamesJobsAndEvents) {
  FlightRecord r = record(7, "failed");
  r.error = "boom";
  r.provenanceSampled = true;
  r.provEntries = 12;
  r.provNogoods = 3;
  r.worstNogoodDegree = 0.75;
  r.candidates = {"{R1}", "{R2,R3}"};
  const std::string text = renderFlightRecords({r}, 9);
  EXPECT_NE(text.find("1 of 9 job(s) retained"), std::string::npos);
  EXPECT_NE(text.find("job 7 failed"), std::string::npos);
  EXPECT_NE(text.find("boom"), std::string::npos);
  EXPECT_NE(text.find("12 entries"), std::string::npos);
  EXPECT_NE(text.find("{R2,R3}"), std::string::npos);
}

// --- service integration -------------------------------------------------

struct LadderBench {
  std::shared_ptr<const circuit::Netlist> net;
  std::vector<workload::TrafficItem> traffic;
};

LadderBench ladderBench(std::size_t jobs) {
  LadderBench b;
  b.net = std::make_shared<const circuit::Netlist>(
      workload::resistorLadder(2));
  const auto probes = workload::tapsOf(*b.net, "t");
  b.traffic = workload::synthesizeTraffic(*b.net, probes, jobs, 7, 0.0);
  return b;
}

TEST(FlightRecorderService, RecordsEveryJobWithItsId) {
  const LadderBench b = ladderBench(4);
  ASSERT_FALSE(b.traffic.empty());
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.provenanceSampleEvery = 0;  // no sampling in this test
  DiagnosisService svc(sopts);

  std::vector<std::uint64_t> ids;
  for (const auto& item : b.traffic) {
    DiagnosisRequest req;
    req.netlist = b.net;
    for (const auto& r : item.readings) {
      req.measurements.push_back(crispMeasurement(r.node, r.volts));
    }
    const JobResult& jr = svc.submit(req)->wait();
    EXPECT_EQ(jr.status, JobStatus::kDone);
    EXPECT_NE(jr.jobId, 0u);
    ids.push_back(jr.jobId);
  }

  const auto records = svc.flightRecords();
  ASSERT_EQ(records.size(), ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(records[i].jobId, ids[i]);
    EXPECT_EQ(records[i].event, "done");
    EXPECT_FALSE(records[i].provenanceSampled);
  }
  // Ids are distinct and increasing (single worker, serial submission).
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_GT(ids[i], ids[i - 1]);
}

TEST(FlightRecorderService, SamplesProvenancePerPolicy) {
  const LadderBench b = ladderBench(4);
  ASSERT_GE(b.traffic.size(), 2u);
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.provenanceSampleEvery = 1;  // every job
  DiagnosisService svc(sopts);

  for (const auto& item : b.traffic) {
    DiagnosisRequest req;
    req.netlist = b.net;
    for (const auto& r : item.readings) {
      req.measurements.push_back(crispMeasurement(r.node, r.volts));
    }
    const JobResult& jr = svc.submit(req)->wait();
    ASSERT_EQ(jr.status, JobStatus::kDone);
    // The sampled run carries its provenance back on the report.
    EXPECT_TRUE(jr.report.provenance != nullptr);
  }
  for (const auto& r : svc.flightRecords()) {
    EXPECT_TRUE(r.provenanceSampled);
    EXPECT_GT(r.provEntries, 0u);
  }
}

TEST(FlightRecorderService, DumpsOnAnomalousOutcome) {
  const LadderBench b = ladderBench(1);
  ASSERT_FALSE(b.traffic.empty());
  std::mutex mu;
  std::vector<std::string> dumps;
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.flightDumpSink = [&](const std::string& dump) {
    const std::lock_guard<std::mutex> lock(mu);
    dumps.push_back(dump);
  };
  DiagnosisService svc(sopts);

  DiagnosisRequest req;
  req.netlist = b.net;
  for (const auto& r : b.traffic.front().readings) {
    req.measurements.push_back(crispMeasurement(r.node, r.volts));
  }
  req.deadline = std::chrono::nanoseconds(1);  // expires immediately (0 = none)
  const JobResult& jr = svc.submit(req)->wait();
  EXPECT_NE(jr.status, JobStatus::kDone);

  const std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(dumps.empty());
  EXPECT_NE(dumps.front().find("flames flight recorder"), std::string::npos);
}

TEST(FlightRecorderService, OnDemandDumpRendersTheRing) {
  const LadderBench b = ladderBench(1);
  ASSERT_FALSE(b.traffic.empty());
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService svc(sopts);
  DiagnosisRequest req;
  req.netlist = b.net;
  for (const auto& r : b.traffic.front().readings) {
    req.measurements.push_back(crispMeasurement(r.node, r.volts));
  }
  (void)svc.submit(req)->wait();
  const std::string dump = svc.dumpFlightRecorder();
  EXPECT_NE(dump.find("1 of 1 job(s) retained"), std::string::npos);
  EXPECT_NE(dump.find("job 1 done"), std::string::npos);
}

}  // namespace
}  // namespace flames::service
