// DiagnosisService: result parity with the single-session engine, model
// reuse across a request stream, shared-experience learning, cancellation,
// deadlines, backpressure and drain semantics.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "circuit/catalog.h"
#include "diagnosis/flames.h"
#include "service/service.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace flames::service {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<const circuit::Netlist> ladder() {
  static const auto net = std::make_shared<const circuit::Netlist>(
      workload::resistorLadder(4));
  return net;
}

std::vector<std::string> ladderProbes() {
  return workload::tapsOf(*ladder(), "t");
}

/// A request diagnosing a "R1s shorted" ladder (a clear single fault).
DiagnosisRequest shortedLadderRequest() {
  DiagnosisRequest req;
  req.netlist = ladder();
  const auto readings = workload::simulateMeasurements(
      *ladder(), {circuit::Fault::shortCircuit("Rp1")}, ladderProbes());
  for (const auto& r : readings) {
    req.measurements.push_back(crispMeasurement(r.node, r.volts));
  }
  return req;
}

/// A deliberately heavy request (dense propagation) used to keep a worker
/// busy while queue behaviour is probed.
DiagnosisRequest slowRequest() {
  static const auto grid = std::make_shared<const circuit::Netlist>(
      workload::resistorGrid(4, 4));
  DiagnosisRequest req;
  req.netlist = grid;
  const auto probes = workload::tapsOf(*grid, "g");
  const auto readings = workload::simulateMeasurements(
      *grid, {circuit::Fault::open("Rh1_1")}, probes);
  for (const auto& r : readings) {
    req.measurements.push_back(crispMeasurement(r.node, r.volts));
  }
  return req;
}

TEST(DiagnosisService, MatchesSingleSessionEngine) {
  ServiceOptions sopts;
  sopts.workers = 2;
  DiagnosisService service(sopts);
  const auto handle = service.submit(shortedLadderRequest());
  const JobResult& result = handle->wait();
  ASSERT_EQ(result.status, JobStatus::kDone) << result.error;

  diagnosis::FlamesEngine engine(*ladder());
  const auto readings = workload::simulateMeasurements(
      *ladder(), {circuit::Fault::shortCircuit("Rp1")}, ladderProbes());
  for (const auto& r : readings) engine.measure(r.node, r.volts);
  const auto expected = engine.diagnose();

  EXPECT_EQ(result.report.faultDetected(), expected.faultDetected());
  EXPECT_EQ(result.report.bestCandidate(), expected.bestCandidate());
  EXPECT_EQ(result.report.nogoods.size(), expected.nogoods.size());
  EXPECT_EQ(result.report.candidates.size(), expected.candidates.size());
}

TEST(DiagnosisService, StreamAgainstOneNetlistBuildsOneModel) {
  ServiceOptions sopts;
  sopts.workers = 4;
  DiagnosisService service(sopts);

  const auto traffic =
      workload::synthesizeTraffic(*ladder(), ladderProbes(), 12, 7);
  ASSERT_GT(traffic.size(), 4u);
  std::vector<JobHandle> handles;
  for (const auto& item : traffic) {
    DiagnosisRequest req;
    req.netlist = ladder();
    for (const auto& r : item.readings) {
      req.measurements.push_back(crispMeasurement(r.node, r.volts));
    }
    handles.push_back(service.submit(req));
  }
  std::size_t done = 0;
  std::size_t cacheHits = 0;
  for (const auto& h : handles) {
    const JobResult& r = h->wait();
    ASSERT_EQ(r.status, JobStatus::kDone) << r.error;
    done += 1;
    cacheHits += r.modelCacheHit ? 1 : 0;
  }
  EXPECT_EQ(done, handles.size());
  const auto stats = service.stats();
  EXPECT_EQ(stats.completed, handles.size());
  EXPECT_EQ(stats.modelCache.misses, 1u)
      << "one distinct netlist must compile exactly once";
  EXPECT_EQ(cacheHits, handles.size() - 1);
}

TEST(DiagnosisService, DistinctNetlistsGetDistinctModels) {
  ServiceOptions sopts;
  sopts.workers = 2;
  DiagnosisService service(sopts);

  auto submitFor = [&](std::shared_ptr<const circuit::Netlist> net) {
    const auto probes = workload::tapsOf(*net, "t");
    DiagnosisRequest req;
    req.netlist = std::move(net);
    const auto readings =
        workload::simulateMeasurements(*req.netlist, {}, probes);
    for (const auto& r : readings) {
      req.measurements.push_back(crispMeasurement(r.node, r.volts));
    }
    return service.submit(req);
  };
  const auto a = submitFor(ladder());
  const auto b = submitFor(std::make_shared<const circuit::Netlist>(
      workload::resistorLadder(5)));
  EXPECT_EQ(a->wait().status, JobStatus::kDone);
  EXPECT_EQ(b->wait().status, JobStatus::kDone);
  EXPECT_EQ(service.stats().modelCache.misses, 2u);
}

TEST(DiagnosisService, ConfirmedDiagnosisHintsLaterJobs) {
  ServiceOptions sopts;
  sopts.workers = 2;
  DiagnosisService service(sopts);

  const auto first = service.submit(shortedLadderRequest());
  const JobResult& r1 = first->wait();
  ASSERT_EQ(r1.status, JobStatus::kDone) << r1.error;
  EXPECT_TRUE(r1.report.hints.empty());

  // The expert confirms the culprit; the compiled symptom-failure rule must
  // reach every job that runs afterwards.
  service.confirm(r1.report, "Rp1", "short");
  EXPECT_EQ(service.stats().experienceRules, 1u);

  const auto second = service.submit(shortedLadderRequest());
  const JobResult& r2 = second->wait();
  ASSERT_EQ(r2.status, JobStatus::kDone) << r2.error;
  ASSERT_FALSE(r2.report.hints.empty());
  EXPECT_EQ(r2.report.hints.front().component, "Rp1");
  EXPECT_EQ(r2.report.hints.front().mode, "short");
}

TEST(DiagnosisService, SnapshotAndSeedExperienceRoundTrip) {
  diagnosis::ExperienceBase seed;
  seed.recordSuccess({{"V(t1)", -0.1, -1}}, "Rp1", "short");

  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);
  service.seedExperience(seed);
  EXPECT_EQ(service.stats().experienceRules, 1u);
  const auto copy = service.snapshotExperience();
  ASSERT_EQ(copy.size(), 1u);
  EXPECT_EQ(copy.rules().front().component, "Rp1");
}

TEST(DiagnosisService, CancelledQueuedJobNeverRuns) {
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);

  // Occupy the only worker, then cancel a queued job before it starts.
  const auto busy = service.submit(slowRequest());
  const auto victim = service.submit(shortedLadderRequest());
  victim->cancel();
  const JobResult& r = victim->wait();
  EXPECT_EQ(r.status, JobStatus::kCancelled);
  EXPECT_EQ(busy->wait().status, JobStatus::kDone);
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST(DiagnosisService, ExpiredDeadlineShortCircuits) {
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);
  DiagnosisRequest req = shortedLadderRequest();
  req.deadline = 1ns;  // expired by the time any worker can look at it
  const auto job = service.submit(req);
  const JobResult& r = job->wait();
  EXPECT_EQ(r.status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadlineExceeded, 1u);
}

TEST(DiagnosisService, DefaultDeadlineApplies) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.defaultDeadline = 1ns;
  DiagnosisService service(sopts);
  const auto job = service.submit(shortedLadderRequest());
  EXPECT_EQ(job->wait().status, JobStatus::kDeadlineExceeded);
}

TEST(DiagnosisService, UnknownMeasurementNodeFailsTheJob) {
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);
  DiagnosisRequest req;
  req.netlist = ladder();
  req.measurements.push_back(crispMeasurement("no_such_node", 1.0));
  const auto job = service.submit(req);
  const JobResult& r = job->wait();
  EXPECT_EQ(r.status, JobStatus::kFailed);
  EXPECT_FALSE(r.error.empty());
  EXPECT_EQ(service.stats().failed, 1u);
}

TEST(DiagnosisService, TrySubmitRefusesWhenQueueFull) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.queueCapacity = 1;
  DiagnosisService service(sopts);
  const auto busy = service.submit(slowRequest());   // occupies the worker
  const auto queued = service.submit(slowRequest());  // fills the only slot
  const auto rejected = service.trySubmit(shortedLadderRequest());
  EXPECT_EQ(rejected, nullptr);
  EXPECT_EQ(busy->wait().status, JobStatus::kDone);
  EXPECT_EQ(queued->wait().status, JobStatus::kDone);
}

TEST(DiagnosisService, SubmitBlocksUntilASlotFrees) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.queueCapacity = 1;
  DiagnosisService service(sopts);
  const auto busy = service.submit(slowRequest());
  const auto queued = service.submit(shortedLadderRequest());
  // This submit must block until the worker drains a slot, then succeed.
  const auto blocked = service.submit(shortedLadderRequest());
  EXPECT_EQ(blocked->wait().status, JobStatus::kDone);
  EXPECT_EQ(busy->wait().status, JobStatus::kDone);
  EXPECT_EQ(queued->wait().status, JobStatus::kDone);
}

TEST(DiagnosisService, DrainWaitsForAllJobs) {
  ServiceOptions sopts;
  sopts.workers = 2;
  DiagnosisService service(sopts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(service.submit(shortedLadderRequest()));
  }
  service.drain();
  for (const auto& h : handles) {
    EXPECT_EQ(h->future().wait_for(0s), std::future_status::ready);
  }
}

TEST(DiagnosisService, DestructorDrainsQueuedJobs) {
  std::vector<JobHandle> handles;
  {
    ServiceOptions sopts;
    sopts.workers = 1;
    DiagnosisService service(sopts);
    for (int i = 0; i < 4; ++i) {
      handles.push_back(service.submit(shortedLadderRequest()));
    }
  }
  for (const auto& h : handles) {
    ASSERT_EQ(h->future().wait_for(0s), std::future_status::ready);
    EXPECT_EQ(h->wait().status, JobStatus::kDone);
  }
}

TEST(DiagnosisService, SubmitAfterShutdownThrows) {
  auto service = std::make_unique<DiagnosisService>(ServiceOptions{});
  DiagnosisService* raw = service.get();
  service.reset();
  (void)raw;  // destroyed; a fresh service still accepts work
  DiagnosisService fresh{ServiceOptions{}};
  EXPECT_EQ(fresh.submit(shortedLadderRequest())->wait().status,
            JobStatus::kDone);
}

TEST(DiagnosisService, ObservabilityOffByDefaultStatsStillCount) {
  // Service stats are always-on (they gate the acceptance criteria), not
  // conditional on flames::obs being enabled.
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);
  (void)service.submit(shortedLadderRequest())->wait();
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.modelCache.misses, 1u);
}

TEST(JobStatusName, CoversEveryStatus) {
  EXPECT_EQ(jobStatusName(JobStatus::kDone), "done");
  EXPECT_EQ(jobStatusName(JobStatus::kCancelled), "cancelled");
  EXPECT_EQ(jobStatusName(JobStatus::kDeadlineExceeded), "deadline_exceeded");
  EXPECT_EQ(jobStatusName(JobStatus::kFailed), "failed");
}

}  // namespace
}  // namespace flames::service
