// The static-analysis intake gate and the derived entry cap in the service:
// intractable unit types are refused once their compiled model is cached,
// tractable ones run under the analysis-derived cap.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "analyze/analyze.h"
#include "circuit/catalog.h"
#include "circuit/netlist.h"
#include "service/service.h"

namespace flames::service {
namespace {

/// Eight resistors on one KCL node: tractable to actually run (the runtime
/// is bounded by the retained entries), but the worst-case work estimate
/// overruns the admission budget even at the floor cap — the A2 error the
/// gate keys on.
std::shared_ptr<const circuit::Netlist> starNet() {
  auto net = std::make_shared<circuit::Netlist>();
  net->addVSource("V1", "hub", "0", 5.0);
  for (int i = 1; i <= 8; ++i) {
    net->addResistor("R" + std::to_string(i), "hub", "0", 1.0, 0.05);
  }
  return net;
}

std::shared_ptr<const circuit::Netlist> ampNet() {
  return std::make_shared<const circuit::Netlist>(
      circuit::paperFig6ThreeStageAmp());
}

DiagnosisRequest requestFor(std::shared_ptr<const circuit::Netlist> net,
                            const std::string& node, double volts) {
  DiagnosisRequest req;
  req.netlist = std::move(net);
  req.measurements.push_back(crispMeasurement(node, volts));
  return req;
}

TEST(AnalyzeGate, IntractableModelIsRefusedOnceCached) {
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);
  const auto net = starNet();

  // First submission: nothing cached, the non-blocking peek misses, the job
  // runs (clamped to the floor cap, so it finishes despite the estimate).
  const auto handle = service.submit(requestFor(net, "hub", 4.2));
  const JobResult& first = handle->wait();
  ASSERT_EQ(first.status, JobStatus::kDone) << first.error;
  EXPECT_EQ(first.entryCapUsed, 6u);
  EXPECT_EQ(service.stats().costRejections, 0u);

  // Now the compiled model (and its cached analysis) is visible to the
  // intake gate: the same unit type is refused before it enters the queue.
  EXPECT_THROW((void)service.submit(requestFor(net, "hub", 4.2)),
               analyze::AnalysisError);
  EXPECT_EQ(service.stats().costRejections, 1u);
}

TEST(AnalyzeGate, GateCanBeDisabled) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.analyzeOnSubmit = false;
  DiagnosisService service(sopts);
  const auto net = starNet();

  (void)service.submit(requestFor(net, "hub", 4.2))->wait();
  const auto handle = service.submit(requestFor(net, "hub", 4.2));
  EXPECT_EQ(handle->wait().status, JobStatus::kDone);
  EXPECT_EQ(service.stats().costRejections, 0u);
}

TEST(AnalyzeGate, JobsRunUnderTheDerivedCap) {
  ServiceOptions sopts;
  sopts.workers = 1;
  DiagnosisService service(sopts);

  const auto handle = service.submit(requestFor(ampNet(), "V2", 8.0));
  const JobResult& result = handle->wait();
  ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
  // The three-stage amp overruns the work budget at the stock cap of 24;
  // the analysis-derived cap for it is 21 (pinned by test_cost as well).
  EXPECT_EQ(result.entryCapUsed, 21u);
}

TEST(AnalyzeGate, DerivedCapCanBeDisabled) {
  ServiceOptions sopts;
  sopts.workers = 1;
  sopts.applyDerivedEntryCap = false;
  DiagnosisService service(sopts);

  const auto handle = service.submit(requestFor(ampNet(), "V2", 8.0));
  const JobResult& result = handle->wait();
  ASSERT_EQ(result.status, JobStatus::kDone) << result.error;
  EXPECT_EQ(result.entryCapUsed,
            constraints::PropagatorOptions{}.maxEntriesPerQuantity);
}

}  // namespace
}  // namespace flames::service
