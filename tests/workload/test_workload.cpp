#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/mna.h"
#include "workload/generators.h"
#include "workload/rng.h"
#include "workload/scenarios.h"

namespace flames::workload {
namespace {

TEST(Generators, GainChainSolves) {
  const auto net = gainChain(5, 1.0, 1.5, 0.05);
  const auto op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(net.findNode("t5")), std::pow(1.5, 5.0), 1e-9);
}

TEST(Generators, ResistorLadderMonotonicTaps) {
  const auto net = resistorLadder(4);
  const auto op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  double prev = op.v(net.findNode("t0"));
  for (int i = 1; i <= 4; ++i) {
    const double v = op.v(net.findNode("t" + std::to_string(i)));
    EXPECT_LT(v, prev);
    EXPECT_GT(v, 0.0);
    prev = v;
  }
}

TEST(Generators, DividerCascadeSolves) {
  const auto net = dividerCascade(3, 8.0, 10.0, 10.0, 2.0);
  const auto op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  // Each stage halves then doubles: output equals input.
  EXPECT_NEAR(op.v(net.findNode("t3")), 8.0, 1e-9);
}

TEST(Generators, TapsOfFindsOrderedTaps) {
  const auto net = gainChain(3);
  const auto taps = tapsOf(net);
  ASSERT_EQ(taps.size(), 4u);  // t0..t3
  EXPECT_EQ(taps.front(), "t0");
  EXPECT_EQ(taps.back(), "t3");
}

TEST(Generators, RcFilterChainRollsOff) {
  const auto net = rcFilterChain(2);
  // DC: capacitors open, buffers pass the DC level straight through.
  const auto op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.v(net.findNode("t2")), 1.0, 1e-9);
  EXPECT_TRUE(net.hasComponent("C1"));
  EXPECT_TRUE(net.hasComponent("buf2"));
}

TEST(Generators, ResistorGridSolvesAndIsMonotone) {
  const auto net = resistorGrid(3, 3);
  const auto op = circuit::DcSolver(net).solve();
  ASSERT_TRUE(op.converged);
  const double corner = op.v(net.findNode("g0_0"));
  const double far = op.v(net.findNode("g2_2"));
  EXPECT_NEAR(corner, 10.0, 1e-9);
  EXPECT_GT(far, 0.0);
  EXPECT_LT(far, corner);
  // Component count: 2*r*c - r - c grid resistors + load + source.
  EXPECT_EQ(net.components().size(), 2u * 3u * 3u - 3u - 3u + 2u);
}

TEST(Generators, ResistorGridValidation) {
  EXPECT_THROW(resistorGrid(0, 3), std::invalid_argument);
  EXPECT_THROW(resistorGrid(3, 0), std::invalid_argument);
}

TEST(Scenarios, DeterministicSampling) {
  const auto net = resistorLadder(4);
  const auto a = sampleScenarios(net, 10, 42);
  const auto b = sampleScenarios(net, 10, 42);
  ASSERT_EQ(a.size(), 10u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].description, b[i].description);
  }
}

TEST(Scenarios, NeverFaultsSources) {
  const auto net = resistorLadder(4);
  for (const auto& s : sampleScenarios(net, 50, 7)) {
    for (const auto& f : s.faults) {
      EXPECT_NE(f.component, "Vin");
    }
  }
}

TEST(Scenarios, MultiFaultOptionRespected) {
  ScenarioOptions opts;
  opts.maxFaultsPerScenario = 2;
  const auto net = resistorLadder(6);
  bool sawDouble = false;
  for (const auto& s : sampleScenarios(net, 50, 3, opts)) {
    EXPECT_LE(s.faults.size(), 2u);
    if (s.faults.size() == 2) sawDouble = true;
  }
  EXPECT_TRUE(sawDouble);
}

TEST(Scenarios, SimulateMeasurementsMatchesDirectSolve) {
  const auto net = resistorLadder(3);
  const auto readings = simulateMeasurements(
      net, {circuit::Fault::open("Rp2")}, {"t1", "t2", "t3"});
  ASSERT_EQ(readings.size(), 3u);
  const auto faulted =
      circuit::applyFaults(net, {circuit::Fault::open("Rp2")});
  const auto op = circuit::DcSolver(faulted).solve();
  for (const auto& r : readings) {
    EXPECT_NEAR(r.volts, op.v(faulted.findNode(r.node)), 1e-12);
  }
}

TEST(Traffic, SameSeedIsBitIdentical) {
  const auto net = resistorLadder(4);
  const std::vector<std::string> probes = {"t1", "t3"};
  const auto a = synthesizeTraffic(net, probes, 24, 7, 0.02);
  const auto b = synthesizeTraffic(net, probes, 24, 7, 0.02);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].scenario.faults.size(), b[i].scenario.faults.size());
    for (std::size_t f = 0; f < a[i].scenario.faults.size(); ++f) {
      EXPECT_EQ(a[i].scenario.faults[f].component,
                b[i].scenario.faults[f].component);
    }
    ASSERT_EQ(a[i].readings.size(), b[i].readings.size());
    for (std::size_t r = 0; r < a[i].readings.size(); ++r) {
      EXPECT_EQ(a[i].readings[r].node, b[i].readings[r].node);
      // Bit-identical, not merely close: replayability is the contract.
      EXPECT_DOUBLE_EQ(a[i].readings[r].volts, b[i].readings[r].volts);
    }
  }
}

TEST(Traffic, DifferentSeedsDiverge) {
  const auto net = resistorLadder(4);
  const std::vector<std::string> probes = {"t1", "t3"};
  const auto a = synthesizeTraffic(net, probes, 24, 7, 0.02);
  const auto b = synthesizeTraffic(net, probes, 24, 8, 0.02);
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    if (a[i].scenario.faults.size() != b[i].scenario.faults.size() ||
        (!a[i].scenario.faults.empty() &&
         a[i].scenario.faults[0].component !=
             b[i].scenario.faults[0].component)) {
      differs = true;
    }
    for (std::size_t r = 0; !differs && r < a[i].readings.size(); ++r) {
      if (a[i].readings[r].volts != b[i].readings[r].volts) differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Traffic, SubSeedDerivationHasNoAdjacentSeedCollisions) {
  // The old `seed + index` sub-seed derivation made (seed 7, item 1) reuse
  // (seed 8, item 0)'s noise stream. The splitmix64 derivation must keep
  // every (seed, stream) pair on a distinct sub-seed across a dense window
  // of master seeds — exactly the regime the additive scheme collided in.
  std::set<std::uint32_t> seen;
  std::size_t pairs = 0;
  for (std::uint32_t seed = 0; seed < 64; ++seed) {
    for (std::uint64_t stream = 0; stream < 64; ++stream) {
      seen.insert(deriveSeed(seed, stream));
      ++pairs;
    }
  }
  EXPECT_EQ(seen.size(), pairs);
}

TEST(Scenarios, NoiseIsBoundedAndDeterministic) {
  const auto net = resistorLadder(3);
  const auto clean = simulateMeasurements(net, {}, {"t1"});
  const auto noisy1 = simulateMeasurements(net, {}, {"t1"}, 0.01, 5);
  const auto noisy2 = simulateMeasurements(net, {}, {"t1"}, 0.01, 5);
  EXPECT_NEAR(noisy1.front().volts, clean.front().volts, 0.0100001);
  EXPECT_DOUBLE_EQ(noisy1.front().volts, noisy2.front().volts);
}

}  // namespace
}  // namespace flames::workload
