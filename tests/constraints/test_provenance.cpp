// Structural tests for the propagator's provenance recording
// (constraints/provenance.h): the log is off by default, and when attached
// it records an acyclic, slot-aligned derivation forest whose roots are
// exactly the measurements and nominal predictions entered.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>

#include "circuit/catalog.h"
#include "constraints/model_builder.h"
#include "constraints/propagator.h"
#include "workload/scenarios.h"

namespace flames::constraints {
namespace {

struct RecordedRun {
  BuiltModel built;
  ProvenanceLog log;
  std::size_t nogoodsInDb = 0;
};

RecordedRun recordedRun() {
  RecordedRun r{buildDiagnosticModel(circuit::paperFig6ThreeStageAmp()), {}, 0};
  const auto net = circuit::paperFig6ThreeStageAmp();
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});
  PropagatorOptions opts;
  opts.provenance = &r.log;
  Propagator p(r.built.model, opts);
  for (const auto& reading : readings) {
    p.addMeasurement(r.built.voltage(reading.node),
                     fuzzy::FuzzyInterval::about(reading.volts, 0.05));
  }
  p.run();
  r.nogoodsInDb = p.nogoods().all().size();
  return r;
}

TEST(Provenance, DisabledByDefault) {
  const BuiltModel built =
      buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  Propagator p(built.model);
  p.addMeasurement(built.voltage("V1"), fuzzy::FuzzyInterval::about(18.0, 0.05));
  p.run();
  for (QuantityId q = 0; q < built.model.quantityCount(); ++q) {
    for (const ValueEntry& e : p.values(q)) {
      EXPECT_EQ(e.provId, kNoProvEntry);
    }
  }
}

TEST(Provenance, RecordsRootsAndDerivations) {
  RecordedRun r = recordedRun();
  ASSERT_FALSE(r.log.entries().empty());
  std::size_t roots = 0, derived = 0;
  for (const ProvEntry& e : r.log.entries()) {
    if (e.kind == ProvKind::kRoot) {
      ++roots;
      EXPECT_EQ(r.log.parentCount(e), 0u);
      EXPECT_EQ(e.depth, 0);
      EXPECT_NE(e.source, ValueSource::kDerived);
    } else {
      ++derived;
      EXPECT_GT(r.log.parentCount(e), 0u);
      EXPECT_GT(e.depth, 0);
    }
  }
  // 3 measurements plus at least the probed nominal predictions.
  EXPECT_GE(roots, 3u);
  EXPECT_GT(derived, 0u);
}

TEST(Provenance, ParentIdsPrecedeChildren) {
  RecordedRun r = recordedRun();
  for (std::size_t id = 0; id < r.log.entries().size(); ++id) {
    const ProvEntry& e = r.log.entries()[id];
    for (ProvEntryId parent : r.log.parentsOf(e)) {
      if (parent == kNoProvEntry) continue;  // solved-for sentinel
      EXPECT_LT(parent, id) << "entry " << id << " consumes a later entry";
    }
  }
}

TEST(Provenance, DerivedEntriesAreSlotAligned) {
  RecordedRun r = recordedRun();
  for (const ProvEntry& e : r.log.entries()) {
    if (e.kind != ProvKind::kDerived) continue;
    ASSERT_GE(e.constraintIndex, 0);
    ASSERT_LT(static_cast<std::size_t>(e.constraintIndex),
              r.built.model.constraints().size());
    const auto& vars =
        r.built.model.constraints()[static_cast<std::size_t>(
                                        e.constraintIndex)]
            ->variables();
    ASSERT_EQ(r.log.parentCount(e), vars.size());
    std::size_t sentinels = 0;
    const ProvEntryId* parents = r.log.parentsData(e);
    for (std::size_t slot = 0; slot < vars.size(); ++slot) {
      if (parents[slot] == kNoProvEntry) {
        ++sentinels;
        // The solved-for slot is the entry's own quantity.
        EXPECT_EQ(vars[slot], e.quantity);
      } else {
        // Every consumed parent carries the slot's quantity.
        EXPECT_EQ(r.log.entries()[parents[slot]].quantity, vars[slot]);
      }
    }
    EXPECT_EQ(sentinels, 1u);
  }
}

TEST(Provenance, NogoodsReferenceRecordedEntries) {
  RecordedRun r = recordedRun();
  ASSERT_FALSE(r.log.nogoods().empty());
  std::size_t kept = 0;
  for (const ProvNogood& n : r.log.nogoods()) {
    ASSERT_LT(n.a, r.log.entries().size());
    ASSERT_LT(n.b, r.log.entries().size());
    EXPECT_EQ(r.log.entries()[n.a].quantity, n.quantity);
    EXPECT_EQ(r.log.entries()[n.b].quantity, n.quantity);
    EXPECT_GE(n.dc, 0.0);
    EXPECT_LE(n.dc, 1.0 + 1e-9);
    EXPECT_GT(n.degree, 0.0);
    EXPECT_LE(n.degree, 1.0);
    if (n.kept) ++kept;
  }
  // Kept verdicts mirror the NogoodDb working set.
  EXPECT_EQ(kept, r.nogoodsInDb);
}

TEST(Provenance, RecordingDoesNotChangeTheDiagnosis) {
  const auto net = circuit::paperFig6ThreeStageAmp();
  const BuiltModel built = buildDiagnosticModel(net);
  const auto readings = workload::simulateMeasurements(
      net, {circuit::Fault::shortCircuit("R2")}, {"V1", "V2", "Vs"});

  auto run = [&](ProvenanceLog* log) {
    PropagatorOptions opts;
    opts.provenance = log;
    Propagator p(built.model, opts);
    for (const auto& reading : readings) {
      p.addMeasurement(built.voltage(reading.node),
                       fuzzy::FuzzyInterval::about(reading.volts, 0.05));
    }
    p.run();
    std::set<std::pair<double, std::string>> nogoods;
    for (const auto& n : p.nogoods().all()) {
      nogoods.emplace(n.degree, n.env.str());
    }
    return nogoods;
  };

  ProvenanceLog log;
  EXPECT_EQ(run(nullptr), run(&log));
  EXPECT_FALSE(log.entries().empty());
}

TEST(Provenance, ClearEmptiesTheLog) {
  RecordedRun r = recordedRun();
  r.log.clear();
  EXPECT_TRUE(r.log.entries().empty());
  EXPECT_TRUE(r.log.nogoods().empty());
}

}  // namespace
}  // namespace flames::constraints
