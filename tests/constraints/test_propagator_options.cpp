// Option-surface tests for the propagation engine: entry caps, depth and
// width guards, measurement-trust environments, nogood floors — the knobs a
// deployment tunes and must be able to rely on.
#include <gtest/gtest.h>

#include <memory>

#include "constraints/propagator.h"

namespace flames::constraints {
namespace {

using atms::Environment;
using fuzzy::FuzzyInterval;

TEST(PropagatorOptions, EntryCapKeepsRootsFlowing) {
  // Many redundant constraints derive values for one quantity; the cap
  // bounds the derived entries but roots are always admitted.
  Model m;
  const auto x = m.addQuantity("x");
  std::vector<QuantityId> ys;
  for (int i = 0; i < 12; ++i) {
    const auto y = m.addQuantity("y" + std::to_string(i));
    ys.push_back(y);
    const auto assumption = m.addAssumption("C" + std::to_string(i));
    m.addConstraint(std::make_unique<DiffConstraint>(
        "d" + std::to_string(i), y, x,
        FuzzyInterval::about(1.0, 0.01 * (i + 1)),
        Environment::of({assumption})));
  }
  // Every y measured: each derives an x estimate through its constraint.
  PropagatorOptions opts;
  opts.maxEntriesPerQuantity = 4;
  Propagator p(m, opts);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    p.addMeasurement(ys[i], FuzzyInterval::crisp(2.0));
  }
  p.run();
  EXPECT_LE(p.values(x).size(), 4u);
  // Roots were all kept on their own quantities.
  for (const auto y : ys) {
    ASSERT_FALSE(p.values(y).empty());
  }
}

TEST(PropagatorOptions, MaxDerivedWidthDropsJunk) {
  // Division by a near-zero fuzzy factor produces an enormous interval; the
  // width guard must drop it.
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  m.addConstraint(std::make_unique<ScaleConstraint>(
      "s", x, y, FuzzyInterval(0.001, 0.001, 0.0009, 0.1), Environment{}));
  PropagatorOptions opts;
  opts.maxDerivedWidth = 100.0;
  Propagator p(m, opts);
  p.addMeasurement(y, FuzzyInterval::crisp(1.0));  // x = y / tiny => huge
  p.run();
  EXPECT_TRUE(p.values(x).empty());

  PropagatorOptions loose;
  loose.maxDerivedWidth = 1e9;
  Propagator q(m, loose);
  q.addMeasurement(y, FuzzyInterval::crisp(1.0));
  q.run();
  EXPECT_FALSE(q.values(x).empty());
}

TEST(PropagatorOptions, MinNogoodDegreeFloor) {
  Model m;
  const auto a = m.addAssumption("C");
  const auto x = m.addQuantity("x");
  // Nominal and measurement overlapping so that the discrepancy is mild.
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 10.0),
                  Environment::of({a}));
  PropagatorOptions strict;
  strict.minNogoodDegree = 0.5;
  Propagator p(m, strict);
  p.addMeasurement(x, FuzzyInterval::crispInterval(8.0, 12.0));  // Dc = 0.5
  p.run();
  // Nogood degree would be 0.5; the floor admits exactly at the boundary.
  EXPECT_EQ(p.nogoods().size(), 1u);

  PropagatorOptions stricter;
  stricter.minNogoodDegree = 0.6;
  Propagator q(m, stricter);
  q.addMeasurement(x, FuzzyInterval::crispInterval(8.0, 12.0));
  q.run();
  EXPECT_EQ(q.nogoods().size(), 0u);
}

TEST(PropagatorOptions, MeasurementTrustEnvJoinsNogoods) {
  // A distrusted meter's assumption must appear in the conflicts its
  // readings cause, making "the meter lied" a retractable hypothesis.
  Model m;
  const auto comp = m.addAssumption("C");
  const auto meter = m.addAssumption("meter");
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::about(5.0, 0.1), Environment::of({comp}));
  Propagator p(m);
  p.addMeasurement(x, FuzzyInterval::about(9.0, 0.1),
                   Environment::of({meter}));
  p.run();
  ASSERT_EQ(p.nogoods().size(), 1u);
  EXPECT_TRUE(p.nogoods().all().front().env.contains(comp));
  EXPECT_TRUE(p.nogoods().all().front().env.contains(meter));
}

TEST(PropagatorOptions, MaxEnvSizeBoundsDerivations) {
  // A chain where each hop adds one assumption: with maxEnvSize 3 the
  // propagation stops after three component hops.
  Model m;
  std::vector<QuantityId> q;
  for (int i = 0; i <= 6; ++i) {
    q.push_back(m.addQuantity("q" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    const auto a = m.addAssumption("C" + std::to_string(i));
    m.addConstraint(std::make_unique<DiffConstraint>(
        "d" + std::to_string(i), q[static_cast<std::size_t>(i) + 1],
        q[static_cast<std::size_t>(i)], FuzzyInterval::crisp(1.0),
        Environment::of({a})));
  }
  PropagatorOptions opts;
  opts.maxEnvSize = 3;
  Propagator p(m, opts);
  p.addMeasurement(q[0], FuzzyInterval::crisp(0.0));
  p.run();
  EXPECT_FALSE(p.values(q[3]).empty());
  EXPECT_TRUE(p.values(q[4]).empty());
}

TEST(PropagatorOptions, StepBudgetReportsIncomplete) {
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  m.addConstraint(std::make_unique<DiffConstraint>(
      "d", y, x, FuzzyInterval::crisp(1.0), Environment{}));
  PropagatorOptions opts;
  opts.maxSteps = 1;
  Propagator p(m, opts);
  p.addMeasurement(x, FuzzyInterval::crisp(0.0));
  p.addMeasurement(y, FuzzyInterval::crisp(5.0));
  p.run();
  EXPECT_FALSE(p.completed());
}

TEST(PropagatorOptions, CrispRefinementIntersectsOverlaps) {
  // DIANA semantics: two overlapping crisp predictions refine each other;
  // the intersection carries the union of the supports' environments.
  Model m;
  const auto a = m.addAssumption("A");
  const auto b = m.addAssumption("B");
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 10.0),
                  Environment::of({a}));
  m.addPrediction(x, FuzzyInterval::crispInterval(5.0, 15.0),
                  Environment::of({b}));
  PropagatorOptions opts;
  opts.policy = ConflictPolicy::kCrisp;
  opts.crispifyValues = true;
  Propagator p(m, opts);
  p.run();
  bool refined = false;
  for (const auto& e : p.values(x)) {
    if (e.value.approxEquals(FuzzyInterval::crispInterval(5.0, 10.0))) {
      refined = true;
      EXPECT_EQ(e.env, Environment::of({a, b}));
      EXPECT_EQ(e.source, ValueSource::kDerived);
    }
  }
  EXPECT_TRUE(refined);
  EXPECT_EQ(p.nogoods().size(), 0u);
}

TEST(PropagatorOptions, CrispRefinementCascades) {
  // Three mutually overlapping intervals collapse towards their common
  // core; the chain of pairwise intersections must terminate.
  Model m;
  const auto x = m.addQuantity("x");
  m.addPrediction(x, FuzzyInterval::crispInterval(0.0, 10.0),
                  Environment::of({m.addAssumption("A")}));
  m.addPrediction(x, FuzzyInterval::crispInterval(4.0, 14.0),
                  Environment::of({m.addAssumption("B")}));
  m.addPrediction(x, FuzzyInterval::crispInterval(-2.0, 6.0),
                  Environment::of({m.addAssumption("C")}));
  PropagatorOptions opts;
  opts.policy = ConflictPolicy::kCrisp;
  opts.crispifyValues = true;
  Propagator p(m, opts);
  p.run();
  EXPECT_TRUE(p.completed());
  bool core = false;
  for (const auto& e : p.values(x)) {
    if (e.value.approxEquals(FuzzyInterval::crispInterval(4.0, 6.0))) {
      core = true;
    }
  }
  EXPECT_TRUE(core);
}

TEST(PropagatorOptions, CancelCheckAbortsMidPropagation) {
  // The service layer cancels jobs cooperatively: a cancel check that trips
  // after N steps must abort the run with CancelledError, leave it
  // incomplete, and keep the propagator reusable for the next run() (the
  // agenda is cleared, not left half-consumed).
  Model m;
  std::vector<QuantityId> q;
  for (int i = 0; i <= 8; ++i) {
    q.push_back(m.addQuantity("q" + std::to_string(i)));
  }
  for (int i = 0; i < 8; ++i) {
    m.addConstraint(std::make_unique<DiffConstraint>(
        "d" + std::to_string(i), q[static_cast<std::size_t>(i) + 1],
        q[static_cast<std::size_t>(i)], FuzzyInterval::crisp(1.0),
        Environment{}));
  }
  int polls = 0;
  PropagatorOptions opts;
  opts.cancelCheck = [&polls] { return ++polls > 3; };
  Propagator p(m, opts);
  p.addMeasurement(q[0], FuzzyInterval::crisp(0.0));
  EXPECT_THROW(p.run(), CancelledError);
  EXPECT_FALSE(p.completed());
  EXPECT_GT(polls, 3) << "the check must be polled per step";
  // A fresh run with the tripped check still in place aborts immediately.
  p.addMeasurement(q[1], FuzzyInterval::crisp(7.0));
  EXPECT_THROW(p.run(), CancelledError);
}

TEST(PropagatorOptions, CancelCheckNeverTrippedIsHarmless) {
  Model m;
  const auto x = m.addQuantity("x");
  const auto y = m.addQuantity("y");
  m.addConstraint(std::make_unique<DiffConstraint>(
      "d", y, x, FuzzyInterval::crisp(1.0), Environment{}));
  PropagatorOptions opts;
  opts.cancelCheck = [] { return false; };
  Propagator p(m, opts);
  p.addMeasurement(x, FuzzyInterval::crisp(0.0));
  p.run();
  EXPECT_TRUE(p.completed());
  EXPECT_FALSE(p.values(y).empty());
}

TEST(PropagatorOptions, CrispifyWidensToSupport) {
  Model m;
  const auto x = m.addQuantity("x");
  PropagatorOptions opts;
  opts.crispifyValues = true;
  Propagator p(m, opts);
  p.addMeasurement(x, FuzzyInterval::about(5.0, 0.5));
  p.run();
  ASSERT_EQ(p.values(x).size(), 1u);
  const auto& v = p.values(x).front().value;
  EXPECT_TRUE(v.isCrisp());
  EXPECT_DOUBLE_EQ(v.m1(), 4.5);
  EXPECT_DOUBLE_EQ(v.m2(), 5.5);
}

}  // namespace
}  // namespace flames::constraints
