#include "constraints/model_builder.h"

#include <gtest/gtest.h>

#include "circuit/catalog.h"

namespace flames::constraints {
namespace {

using circuit::Netlist;

Netlist divider() {
  Netlist n;
  n.addVSource("V1", "in", "0", 10.0);
  n.addResistor("R1", "in", "mid", 1.0, 0.05);
  n.addResistor("R2", "mid", "0", 1.0, 0.05);
  return n;
}

TEST(ModelBuilder, CreatesAssumptionsForComponentsNotSources) {
  const auto built = buildDiagnosticModel(divider());
  EXPECT_EQ(built.assumptionOf.count("R1"), 1u);
  EXPECT_EQ(built.assumptionOf.count("R2"), 1u);
  EXPECT_EQ(built.assumptionOf.count("V1"), 0u);  // trusted source
}

TEST(ModelBuilder, UntrustedSourcesGetAssumptions) {
  ModelBuildOptions opts;
  opts.trustSources = false;
  const auto built = buildDiagnosticModel(divider(), opts);
  EXPECT_EQ(built.assumptionOf.count("V1"), 1u);
}

TEST(ModelBuilder, QuantitiesExist) {
  const auto built = buildDiagnosticModel(divider());
  EXPECT_NO_THROW((void)built.voltage("mid"));
  EXPECT_NO_THROW((void)built.voltage("in"));
  EXPECT_NO_THROW((void)built.current("R1"));
  EXPECT_NO_THROW((void)built.current("V1"));
}

TEST(ModelBuilder, NominalPredictionsMatchOperatingPoint) {
  const auto built = buildDiagnosticModel(divider());
  ASSERT_TRUE(built.nominalOp.converged);
  bool foundMid = false;
  for (const auto& p : built.model.predictions()) {
    if (p.quantity == built.voltage("mid")) {
      foundMid = true;
      EXPECT_NEAR(p.value.coreMidpoint(), 5.0, 1e-9);
      // Sensitivity of the divider mid to both 5% resistors: nonzero
      // spread, environment containing both.
      EXPECT_GT(p.value.alpha(), 0.1);
      EXPECT_TRUE(p.env.contains(built.assumptionOf.at("R1")));
      EXPECT_TRUE(p.env.contains(built.assumptionOf.at("R2")));
    }
  }
  EXPECT_TRUE(foundMid);
}

TEST(ModelBuilder, GroundPredictionIsCrispZero) {
  const auto built = buildDiagnosticModel(divider());
  bool found = false;
  for (const auto& p : built.model.predictions()) {
    if (p.quantity == built.voltage("0")) {
      found = true;
      EXPECT_TRUE(p.value.isPoint());
      EXPECT_TRUE(p.env.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelBuilder, MeasuredFaultyDividerConflicts) {
  // End-to-end: R2 actually 3x high => mid at 7.5 V; the measurement
  // conflicts with the nominal prediction [5 +/- spread] and the nogood
  // names both resistors.
  const auto built = buildDiagnosticModel(divider());
  Propagator p(built.model);
  p.addMeasurement(built.voltage("mid"), fuzzy::FuzzyInterval::about(7.5, 0.05));
  p.run();
  EXPECT_TRUE(p.completed());
  ASSERT_GE(p.nogoods().size(), 1u);
  const auto minimal = p.nogoods().minimalNogoods(0.9);
  ASSERT_FALSE(minimal.empty());
  EXPECT_TRUE(minimal.front().env.contains(built.assumptionOf.at("R1")) ||
              minimal.front().env.contains(built.assumptionOf.at("R2")));
}

TEST(ModelBuilder, HealthyMeasurementIsQuiet) {
  const auto built = buildDiagnosticModel(divider());
  Propagator p(built.model);
  p.addMeasurement(built.voltage("mid"), fuzzy::FuzzyInterval::about(5.0, 0.05));
  p.run();
  EXPECT_EQ(p.nogoods().minimalNogoods(0.5).size(), 0u);
}

TEST(ModelBuilder, Fig6ModelBuilds) {
  const auto built = buildDiagnosticModel(circuit::paperFig6ThreeStageAmp());
  ASSERT_TRUE(built.nominalOp.converged);
  EXPECT_NO_THROW((void)built.voltage("V1"));
  EXPECT_NO_THROW((void)built.voltage("V2"));
  EXPECT_NO_THROW((void)built.voltage("Vs"));
  // BJT quantities present.
  EXPECT_NO_THROW((void)built.model.quantity("Ib(T1)"));
  EXPECT_NO_THROW((void)built.model.quantity("Ic(T2)"));
  EXPECT_NO_THROW((void)built.model.quantity("Ie(T3)"));
  // Stage-1 observable depends on the stage-1 components.
  for (const auto& p : built.model.predictions()) {
    if (p.quantity == built.voltage("V1")) {
      EXPECT_TRUE(p.env.contains(built.assumptionOf.at("R1")));
      EXPECT_TRUE(p.env.contains(built.assumptionOf.at("R2")));
      EXPECT_TRUE(p.env.contains(built.assumptionOf.at("R3")));
      EXPECT_TRUE(p.env.contains(built.assumptionOf.at("T1")));
    }
  }
}

TEST(ModelBuilder, Fig5DiodeRatingBecomesPrediction) {
  const auto built = buildDiagnosticModel(circuit::paperFig5DiodeNetwork());
  bool found = false;
  for (const auto& p : built.model.predictions()) {
    if (p.quantity == built.current("d1")) {
      // Conducting diode: the fuzzy rating prediction.
      if (!p.value.isPoint()) {
        found = true;
        EXPECT_TRUE(p.env.contains(built.assumptionOf.at("d1")));
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(ModelBuilder, GainChainSkipsOutputKcl) {
  // Gain outputs have unconstrained source currents; KCL must not be
  // stamped there (the Fig. 2 chain would otherwise be inconsistent).
  const auto built = buildDiagnosticModel(circuit::paperFig2Chain());
  for (const auto& c : built.model.constraints()) {
    EXPECT_EQ(c->name().find("kcl(B)"), std::string::npos);
    EXPECT_EQ(c->name().find("kcl(C)"), std::string::npos);
    EXPECT_EQ(c->name().find("kcl(D)"), std::string::npos);
  }
}

}  // namespace
}  // namespace flames::constraints
